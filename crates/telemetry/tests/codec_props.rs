//! Round-trip property tests for the length-prefixed binary event
//! codec.
//!
//! Each `proptest!` property also has a plain `#[test]` mirror sweeping
//! a dense deterministic grid, so the invariants stay exercised even
//! where the proptest runner is unavailable.

use downlake_telemetry::codec::{
    decode_event, encode_event, encode_events, skip_event, EventReader,
};
use downlake_telemetry::RawEvent;
use downlake_types::{FileHash, FileMeta, MachineId, PackerInfo, SignerInfo, Timestamp, Url};
use proptest::prelude::*;

#[allow(clippy::too_many_arguments)] // mirrors the RawEvent field list
fn build_event(
    file: u64,
    machine: u64,
    process: u64,
    seconds: i64,
    executed: bool,
    file_meta: FileMeta,
    process_meta: FileMeta,
    host: &str,
    path: &str,
) -> RawEvent {
    RawEvent {
        file: FileHash::from_raw(file),
        file_meta,
        machine: MachineId::from_raw(machine),
        process: FileHash::from_raw(process),
        process_meta,
        url: Url::from_parts("http", host, path).expect("test host is valid"),
        timestamp: Timestamp::from_seconds(seconds),
        executed,
    }
}

fn meta(
    size: u64,
    disk: &str,
    signer: Option<(&str, &str, bool)>,
    packer: Option<&str>,
) -> FileMeta {
    FileMeta {
        size_bytes: size,
        disk_name: disk.to_owned(),
        signer: signer.map(|(subject, ca, valid)| SignerInfo {
            subject: subject.to_owned(),
            ca: ca.to_owned(),
            valid,
        }),
        packer: packer.map(PackerInfo::new),
    }
}

/// Checks the codec's core contract for one event: encode → decode is
/// the identity, the frame consumes exactly its own bytes, and the
/// streaming reader agrees with the one-shot decoder.
fn check_round_trip(event: &RawEvent) {
    let mut buf = Vec::new();
    encode_event(event, &mut buf);
    let (decoded, consumed) = decode_event(&buf).expect("self-encoded frame must decode");
    assert_eq!(&decoded, event, "decode(encode(e)) must equal e");
    assert_eq!(consumed, buf.len(), "frame must consume exactly its bytes");

    // Twice through the streaming reader: position advances per frame.
    let stream = encode_events([event, event]);
    let mut reader = EventReader::new(&stream);
    let first = reader.next().expect("first frame").expect("decodes");
    assert_eq!(reader.position(), buf.len());
    let second = reader.next().expect("second frame").expect("decodes");
    assert!(reader.next().is_none());
    assert_eq!(&first, event);
    assert_eq!(&second, event);

    // The skip fast path must agree with the full decoder on frame
    // geometry and the timestamp, frame by frame through a stream.
    let (ts, skipped) = skip_event(&buf).expect("self-encoded frame must skip");
    assert_eq!(ts, event.timestamp, "skip must surface the timestamp");
    assert_eq!(skipped, consumed, "skip and decode must consume alike");
    let (ts2, skipped2) = skip_event(&stream[skipped..]).expect("second frame must skip");
    assert_eq!(ts2, event.timestamp);
    assert_eq!(skipped + skipped2, stream.len());

    // Every strict prefix of a single frame must fail, never panic —
    // on the decode path and the skip path alike.
    for cut in 0..buf.len() {
        assert!(
            decode_event(&buf[..cut]).is_err(),
            "prefix of length {cut} must not decode"
        );
        assert!(
            skip_event(&buf[..cut]).is_err(),
            "prefix of length {cut} must not skip"
        );
    }
}

fn meta_strategy() -> impl Strategy<Value = FileMeta> {
    (
        any::<u64>(),
        "[a-z0-9_.]{0,16}",
        proptest::option::of(("[ -~]{0,12}", "[ -~]{0,12}", any::<bool>())),
        proptest::option::of("[A-Za-z0-9]{0,8}"),
    )
        .prop_map(|(size, disk, signer, packer)| {
            meta(
                size,
                &disk,
                signer
                    .as_ref()
                    .map(|(s, c, v)| (s.as_str(), c.as_str(), *v)),
                packer.as_deref(),
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn any_event_round_trips(
        file in any::<u64>(),
        machine in any::<u64>(),
        process in any::<u64>(),
        seconds in -1_000_000_000i64..1_000_000_000,
        executed in any::<bool>(),
        file_meta in meta_strategy(),
        process_meta in meta_strategy(),
        host in "[a-z]{1,10}(\\.[a-z]{1,8}){0,2}",
        path in "(/[a-zA-Z0-9_.-]{0,10}){0,3}",
    ) {
        let event = build_event(
            file, machine, process, seconds, executed,
            file_meta, process_meta, &host, &path,
        );
        check_round_trip(&event);
    }
}

#[test]
fn round_trip_grid_mirror() {
    let signers = [
        None,
        Some(("Somoto Ltd.", "thawte code signing ca g2", true)),
        Some(("", "", false)),
        Some(("ünïcode — signer", "漢字 CA", true)),
    ];
    let packers = [None, Some("NSIS"), Some("")];
    let hosts = [
        "a.com",
        "dl.files.softonic.com",
        "cdn.example.co.uk",
        "10.0.0.1",
    ];
    let paths = ["", "/", "/f/setup_v2.exe", "/päth/ütf8"];
    let mut count = 0usize;
    for (i, signer) in signers.iter().enumerate() {
        for (j, packer) in packers.iter().enumerate() {
            for (k, host) in hosts.iter().enumerate() {
                for (l, path) in paths.iter().enumerate() {
                    let salt = (i * 64 + j * 16 + k * 4 + l) as u64;
                    let event = build_event(
                        salt.wrapping_mul(0x9e37_79b9_7f4a_7c15),
                        salt,
                        u64::MAX - salt,
                        (salt as i64 - 96) * 86_400,
                        salt.is_multiple_of(2),
                        meta(salt, "setup.exe", *signer, *packer),
                        meta(0, "chrome.exe", *signer, *packer),
                        host,
                        path,
                    );
                    check_round_trip(&event);
                    count += 1;
                }
            }
        }
    }
    assert_eq!(
        count,
        signers.len() * packers.len() * hosts.len() * paths.len()
    );
}

#[test]
fn extreme_values_round_trip() {
    for raw in [0u64, 1, u64::MAX] {
        for seconds in [i64::MIN, -1, 0, 1, i64::MAX] {
            for executed in [false, true] {
                let event = build_event(
                    raw,
                    raw ^ 0xffff,
                    raw.rotate_left(17),
                    seconds,
                    executed,
                    meta(u64::MAX, "x", Some(("s", "c", true)), Some("UPX")),
                    meta(0, "", None, None),
                    "h",
                    "/",
                );
                check_round_trip(&event);
            }
        }
    }
}
