//! Download-event telemetry for `downlake`.
//!
//! This crate models the data-collection side of the paper (§II-A): each
//! monitored machine runs a *software agent* that observes web-based
//! software downloads; events of interest are reported to a centralized
//! *collection server* which applies the reporting policy (the downloaded
//! file must have been executed, its current prevalence must be below the
//! threshold σ, and the download URL must not be whitelisted).
//!
//! The output of the pipeline is a [`Dataset`]: a time-ordered sequence of
//! [`DownloadEvent`] 5-tuples `(file, machine, process, url, timestamp)`
//! together with interned per-file, per-process and per-URL records and the
//! indexes the measurement analyses need (prevalence, per-domain and
//! per-machine views, monthly partitions).
//!
//! # Example
//!
//! ```
//! use downlake_telemetry::{CollectionServer, RawEvent, ReportingPolicy};
//! use downlake_types::{FileHash, MachineId, Timestamp};
//!
//! let policy = ReportingPolicy::new(20).with_whitelisted_domain("microsoft.com");
//! let mut server = CollectionServer::new(policy);
//!
//! let raw = RawEvent::builder()
//!     .file(FileHash::from_raw(1))
//!     .machine(MachineId::from_raw(9))
//!     .process(FileHash::from_raw(2), "chrome.exe")
//!     .url("http://dl.example.com/setup.exe".parse()?)
//!     .timestamp(Timestamp::from_day(3))
//!     .executed(true)
//!     .build();
//! assert!(server.observe(raw));
//! let dataset = server.into_dataset();
//! assert_eq!(dataset.events().len(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod codec;
pub mod csv;
mod dataset;
mod event;
mod record;
mod server;
mod tables;

pub use codec::{CodecError, EventReader};
pub use csv::CsvError;
pub use dataset::{Dataset, DatasetBuilder, DatasetStats, MonthlyView};
pub use event::{DownloadEvent, RawEvent, RawEventBuilder};
pub use record::{FileRecord, ProcessRecord};
pub use server::{CollectionServer, ReportingPolicy, SuppressionReason, SuppressionStats};
pub use tables::{FileTable, MachineTable, ProcessTable, UrlTable};
