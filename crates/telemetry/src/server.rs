//! The collection server and its reporting policy (§II-A).
//!
//! Software agents capture all web-based download events, but only events
//! of interest reach the server:
//!
//! 1. the downloaded file must have been *executed* on the machine;
//! 2. the file's current prevalence (distinct machines that downloaded it
//!    before this event) must be below the threshold σ (set to 20 during
//!    the paper's collection);
//! 3. the download URL must not match the vendor's URL whitelist (major
//!    software-update hosts).

use crate::dataset::{Dataset, DatasetBuilder};
use crate::event::RawEvent;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::fmt;

use downlake_types::{FileHash, MachineId};

/// Why a raw event was not reported to the collection server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SuppressionReason {
    /// The downloaded file was never executed.
    NotExecuted,
    /// The file's prevalence had already reached σ.
    PrevalenceCap,
    /// The download URL's e2LD is whitelisted.
    WhitelistedUrl,
}

impl fmt::Display for SuppressionReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SuppressionReason::NotExecuted => "file not executed",
            SuppressionReason::PrevalenceCap => "prevalence cap reached",
            SuppressionReason::WhitelistedUrl => "whitelisted url",
        })
    }
}

/// Counts of suppressed events, by reason.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SuppressionStats {
    /// Events whose file was never executed.
    pub not_executed: u64,
    /// Events dropped by the σ prevalence cap.
    pub prevalence_cap: u64,
    /// Events from whitelisted URLs.
    pub whitelisted_url: u64,
}

impl SuppressionStats {
    /// Total suppressed events.
    pub fn total(&self) -> u64 {
        self.not_executed + self.prevalence_cap + self.whitelisted_url
    }

    fn bump(&mut self, reason: SuppressionReason) {
        match reason {
            SuppressionReason::NotExecuted => self.not_executed += 1,
            SuppressionReason::PrevalenceCap => self.prevalence_cap += 1,
            SuppressionReason::WhitelistedUrl => self.whitelisted_url += 1,
        }
    }
}

/// The collection server's reporting policy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReportingPolicy {
    sigma: u32,
    whitelisted_e2lds: HashSet<String>,
}

impl ReportingPolicy {
    /// Creates a policy with prevalence threshold `sigma` and an empty URL
    /// whitelist. The paper's deployment used σ = 20.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is zero (which would report nothing).
    pub fn new(sigma: u32) -> Self {
        assert!(sigma > 0, "sigma must be positive");
        Self {
            sigma,
            whitelisted_e2lds: HashSet::new(),
        }
    }

    /// The paper's production policy: σ = 20 with the major software-update
    /// hosts whitelisted.
    pub fn paper_default() -> Self {
        Self::paper_whitelist(20)
    }

    /// The paper's URL whitelist with a custom prevalence threshold σ —
    /// the knob the sensitivity sweeps turn. `paper_whitelist(20)` is
    /// exactly [`ReportingPolicy::paper_default`].
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is zero (which would report nothing).
    pub fn paper_whitelist(sigma: u32) -> Self {
        let mut policy = Self::new(sigma);
        for domain in [
            "microsoft.com",
            "windowsupdate.com",
            "apple.com",
            "adobe.com",
            "mozilla.org",
            "google.com",
            "java.com",
            "oracle.com",
        ] {
            policy = policy.with_whitelisted_domain(domain);
        }
        policy
    }

    /// Adds an e2LD to the URL whitelist (builder-style).
    pub fn with_whitelisted_domain(mut self, e2ld: &str) -> Self {
        self.whitelisted_e2lds.insert(e2ld.to_ascii_lowercase());
        self
    }

    /// The prevalence threshold σ.
    pub fn sigma(&self) -> u32 {
        self.sigma
    }

    /// Whether an e2LD is whitelisted.
    pub fn is_whitelisted(&self, e2ld: &str) -> bool {
        self.whitelisted_e2lds.contains(&e2ld.to_ascii_lowercase())
    }

    /// The whitelisted e2LDs in sorted order.
    ///
    /// Sorting makes the view deterministic, so serialized forms of the
    /// policy (e.g. the stream-service snapshot) are byte-stable across
    /// runs.
    pub fn whitelisted_sorted(&self) -> Vec<&str> {
        let mut domains: Vec<&str> = self.whitelisted_e2lds.iter().map(String::as_str).collect();
        domains.sort_unstable();
        domains
    }
}

impl Default for ReportingPolicy {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// The centralized collection server: applies the [`ReportingPolicy`] to a
/// stream of [`RawEvent`]s and accumulates reported events into a
/// [`Dataset`].
#[derive(Debug)]
pub struct CollectionServer {
    policy: ReportingPolicy,
    builder: DatasetBuilder,
    machines_per_file: HashMap<FileHash, HashSet<MachineId>>,
    suppressed: SuppressionStats,
}

impl CollectionServer {
    /// Creates a server with the given policy.
    pub fn new(policy: ReportingPolicy) -> Self {
        Self {
            policy,
            builder: DatasetBuilder::new(),
            machines_per_file: HashMap::new(),
            suppressed: SuppressionStats::default(),
        }
    }

    /// Applies the policy to one raw event. Returns `true` if the event was
    /// reported (recorded), `false` if it was suppressed.
    pub fn observe(&mut self, raw: RawEvent) -> bool {
        match self.check(&raw) {
            Ok(()) => {
                self.machines_per_file
                    .entry(raw.file)
                    .or_default()
                    .insert(raw.machine);
                self.builder.push(raw);
                true
            }
            Err(reason) => {
                self.suppressed.bump(reason);
                false
            }
        }
    }

    fn check(&self, raw: &RawEvent) -> Result<(), SuppressionReason> {
        if !raw.executed {
            return Err(SuppressionReason::NotExecuted);
        }
        if self.policy.is_whitelisted(raw.url.e2ld()) {
            return Err(SuppressionReason::WhitelistedUrl);
        }
        // The event is reported only if the number of distinct machines
        // that downloaded the file *before* this event is below sigma. A
        // machine re-downloading a file it already reported does not push
        // past the cap check (it is one of the counted machines).
        let seen = self.machines_per_file.get(&raw.file);
        let prior = seen.map_or(0, |s| s.len());
        let already_counted = seen.is_some_and(|s| s.contains(&raw.machine));
        if prior >= self.policy.sigma() as usize && !already_counted {
            return Err(SuppressionReason::PrevalenceCap);
        }
        Ok(())
    }

    /// Suppression counters so far.
    pub fn suppression_stats(&self) -> SuppressionStats {
        self.suppressed
    }

    /// Finishes collection, producing the indexed dataset.
    pub fn into_dataset(self) -> Dataset {
        self.builder.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use downlake_types::{Timestamp, Url};

    fn raw(file: u64, machine: u64, executed: bool, url: &str, day: u32) -> RawEvent {
        RawEvent::builder()
            .file(FileHash::from_raw(file))
            .machine(MachineId::from_raw(machine))
            .process(FileHash::from_raw(1000 + file), "chrome.exe")
            .url(url.parse::<Url>().unwrap())
            .timestamp(Timestamp::from_day(day))
            .executed(executed)
            .build()
    }

    #[test]
    fn unexecuted_downloads_are_suppressed() {
        let mut server = CollectionServer::new(ReportingPolicy::new(20));
        assert!(!server.observe(raw(1, 1, false, "http://a.com/f.exe", 0)));
        assert_eq!(server.suppression_stats().not_executed, 1);
        assert!(server.into_dataset().events().is_empty());
    }

    #[test]
    fn whitelisted_domains_are_suppressed_by_e2ld() {
        let policy = ReportingPolicy::new(20).with_whitelisted_domain("microsoft.com");
        let mut server = CollectionServer::new(policy);
        assert!(!server.observe(raw(1, 1, true, "http://dl.update.microsoft.com/kb.exe", 0)));
        assert!(server.observe(raw(1, 1, true, "http://microsoft.com.evil.biz/kb.exe", 0)));
        assert_eq!(server.suppression_stats().whitelisted_url, 1);
    }

    #[test]
    fn prevalence_cap_stops_new_machines() {
        let mut server = CollectionServer::new(ReportingPolicy::new(3));
        for m in 0..3 {
            assert!(server.observe(raw(7, m, true, "http://a.com/f.exe", 0)));
        }
        // 4th distinct machine: suppressed.
        assert!(!server.observe(raw(7, 99, true, "http://a.com/f.exe", 1)));
        assert_eq!(server.suppression_stats().prevalence_cap, 1);
        // A machine already counted may still report (re-download).
        assert!(server.observe(raw(7, 0, true, "http://a.com/f.exe", 2)));
        let ds = server.into_dataset();
        assert_eq!(ds.prevalence(FileHash::from_raw(7)), 3);
        assert_eq!(ds.events().len(), 4);
    }

    #[test]
    fn cap_applies_per_file() {
        let mut server = CollectionServer::new(ReportingPolicy::new(1));
        assert!(server.observe(raw(1, 1, true, "http://a.com/f.exe", 0)));
        assert!(!server.observe(raw(1, 2, true, "http://a.com/f.exe", 0)));
        assert!(server.observe(raw(2, 2, true, "http://a.com/g.exe", 0)));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_sigma_rejected() {
        ReportingPolicy::new(0);
    }

    #[test]
    fn paper_default_whitelists_update_hosts() {
        let p = ReportingPolicy::paper_default();
        assert_eq!(p.sigma(), 20);
        assert!(p.is_whitelisted("microsoft.com"));
        assert!(p.is_whitelisted("MICROSOFT.COM"));
        assert!(!p.is_whitelisted("softonic.com"));
    }

    #[test]
    fn paper_whitelist_varies_sigma_only() {
        let p = ReportingPolicy::paper_whitelist(5);
        assert_eq!(p.sigma(), 5);
        assert!(p.is_whitelisted("adobe.com"));
        let d = ReportingPolicy::paper_default();
        assert_eq!(d.sigma(), 20);
        assert_eq!(
            p.is_whitelisted("windowsupdate.com"),
            d.is_whitelisted("windowsupdate.com")
        );
    }

    #[test]
    fn suppression_total_sums_reasons() {
        let mut s = SuppressionStats::default();
        s.bump(SuppressionReason::NotExecuted);
        s.bump(SuppressionReason::PrevalenceCap);
        s.bump(SuppressionReason::WhitelistedUrl);
        s.bump(SuppressionReason::WhitelistedUrl);
        assert_eq!(s.total(), 4);
    }
}
