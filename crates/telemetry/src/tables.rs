//! Interning tables for URLs, e2LDs, files, processes, and machines.
//!
//! The paper's dataset contains 1.79M distinct files, 141k distinct
//! processes, and 1.63M distinct URLs referenced by 3.07M events; interning
//! keeps each distinct entity's metadata stored once and lets events carry
//! compact ids. Each table assigns *dense* ids ([`downlake_types::FileId`],
//! [`downlake_types::ProcessId`], [`downlake_types::MachineIdx`],
//! [`downlake_types::E2ldId`]) in first-seen order, so per-entity statistics
//! downstream can live in plain `Vec` columns indexed by id instead of
//! hash maps keyed by sparse 64-bit identifiers.

use crate::record::{FileRecord, ProcessRecord};
use downlake_types::{
    E2ldId, FileHash, FileId, FileMeta, MachineId, MachineIdx, ProcessId, Url, UrlId,
};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Interns distinct download URLs and resolves [`UrlId`]s.
///
/// Each URL's effective second-level domain is interned as well at
/// [`UrlTable::intern`] time, so resolving a URL to its e2LD is a dense
/// column lookup ([`UrlTable::e2ld_of`]) rather than a string operation.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct UrlTable {
    urls: Vec<Url>,
    by_url: HashMap<Url, UrlId>,
    /// Per-URL e2LD id, indexed by `UrlId`.
    url_e2ld: Vec<E2ldId>,
    /// Distinct e2LD strings, indexed by `E2ldId`.
    e2lds: Vec<String>,
    by_e2ld: HashMap<String, E2ldId>,
}

impl UrlTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a URL, returning its stable id. Repeated interning of the
    /// same URL returns the same id. The URL's e2LD is interned at the
    /// same time.
    pub fn intern(&mut self, url: Url) -> UrlId {
        if let Some(&id) = self.by_url.get(&url) {
            return id;
        }
        let id = UrlId::from_raw(
            u32::try_from(self.urls.len()).expect("more than u32::MAX distinct urls"), // downlake-lint: allow(P1) — u32 dense-id overflow is a hard data-model limit
        );
        let e2ld = self.intern_e2ld(url.e2ld());
        self.url_e2ld.push(e2ld);
        self.urls.push(url.clone());
        self.by_url.insert(url, id);
        id
    }

    fn intern_e2ld(&mut self, e2ld: &str) -> E2ldId {
        if let Some(&id) = self.by_e2ld.get(e2ld) {
            return id;
        }
        let id = E2ldId::from_raw(
            u32::try_from(self.e2lds.len()).expect("more than u32::MAX distinct e2LDs"), // downlake-lint: allow(P1) — u32 dense-id overflow is a hard data-model limit
        );
        self.e2lds.push(e2ld.to_owned());
        self.by_e2ld.insert(e2ld.to_owned(), id);
        id
    }

    /// Resolves an id to its URL.
    ///
    /// # Panics
    ///
    /// Panics if the id did not come from this table.
    pub fn resolve(&self, id: UrlId) -> &Url {
        &self.urls[id.index()]
    }

    /// Looks up the id of a previously interned URL.
    pub fn get(&self, url: &Url) -> Option<UrlId> {
        self.by_url.get(url).copied()
    }

    /// The e2LD id of an interned URL.
    ///
    /// # Panics
    ///
    /// Panics if the id did not come from this table.
    pub fn e2ld_of(&self, id: UrlId) -> E2ldId {
        self.url_e2ld[id.index()]
    }

    /// Resolves an e2LD id to its domain string.
    ///
    /// # Panics
    ///
    /// Panics if the id did not come from this table.
    pub fn e2ld_str(&self, id: E2ldId) -> &str {
        &self.e2lds[id.index()]
    }

    /// Number of distinct e2LDs across all interned URLs.
    pub fn e2ld_count(&self) -> usize {
        self.e2lds.len()
    }

    /// Iterates over distinct e2LD strings in interning order (dense
    /// [`E2ldId`] order).
    pub fn e2lds(&self) -> impl Iterator<Item = &str> {
        self.e2lds.iter().map(String::as_str)
    }

    /// Number of distinct URLs.
    pub fn len(&self) -> usize {
        self.urls.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.urls.is_empty()
    }

    /// Iterates over `(id, url)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (UrlId, &Url)> {
        self.urls
            .iter()
            .enumerate()
            .map(|(i, u)| (UrlId::from_raw(i as u32), u))
    }
}

/// Interns distinct downloaded files keyed by hash, assigning dense
/// [`FileId`]s in first-seen order.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FileTable {
    records: Vec<FileRecord>,
    by_hash: HashMap<FileHash, FileId>,
}

impl FileTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a file, returning its dense id. The first-seen metadata
    /// wins (file hashes are content hashes, so metadata cannot
    /// legitimately differ).
    pub fn intern(&mut self, hash: FileHash, meta: &FileMeta) -> FileId {
        if let Some(&id) = self.by_hash.get(&hash) {
            return id;
        }
        let id = FileId::from_raw(
            u32::try_from(self.records.len()).expect("more than u32::MAX distinct files"), // downlake-lint: allow(P1) — u32 dense-id overflow is a hard data-model limit
        );
        self.records.push(FileRecord::new(hash, meta.clone()));
        self.by_hash.insert(hash, id);
        id
    }

    /// Looks up a file record by hash.
    pub fn get(&self, hash: FileHash) -> Option<&FileRecord> {
        self.by_hash.get(&hash).map(|id| &self.records[id.index()])
    }

    /// Looks up the dense id of a previously interned file.
    pub fn id_of(&self, hash: FileHash) -> Option<FileId> {
        self.by_hash.get(&hash).copied()
    }

    /// The record at a dense id.
    ///
    /// # Panics
    ///
    /// Panics if the id did not come from this table.
    pub fn record(&self, id: FileId) -> &FileRecord {
        &self.records[id.index()]
    }

    /// Number of distinct files.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterates over all records in dense-id (first-seen) order.
    pub fn iter(&self) -> impl Iterator<Item = &FileRecord> {
        self.records.iter()
    }

    /// All records as a slice, indexed by dense id; lets consumers chunk
    /// the table into contiguous id ranges.
    pub fn records(&self) -> &[FileRecord] {
        &self.records
    }
}

/// Interns distinct downloading-process images keyed by image hash,
/// assigning dense [`ProcessId`]s in first-seen order.
///
/// Processes get their own id space distinct from [`FileId`] so process
/// and file columns cannot be cross-indexed by mistake.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ProcessTable {
    records: Vec<ProcessRecord>,
    by_hash: HashMap<FileHash, ProcessId>,
}

impl ProcessTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a process image, returning its dense id. First-seen
    /// metadata wins.
    pub fn intern(&mut self, hash: FileHash, meta: &FileMeta) -> ProcessId {
        if let Some(&id) = self.by_hash.get(&hash) {
            return id;
        }
        let id = ProcessId::from_raw(
            u32::try_from(self.records.len()).expect("more than u32::MAX distinct processes"), // downlake-lint: allow(P1) — u32 dense-id overflow is a hard data-model limit
        );
        self.records.push(ProcessRecord::new(hash, meta.clone()));
        self.by_hash.insert(hash, id);
        id
    }

    /// Looks up a process record by image hash.
    pub fn get(&self, hash: FileHash) -> Option<&ProcessRecord> {
        self.by_hash.get(&hash).map(|id| &self.records[id.index()])
    }

    /// Looks up the dense id of a previously interned process image.
    pub fn id_of(&self, hash: FileHash) -> Option<ProcessId> {
        self.by_hash.get(&hash).copied()
    }

    /// The record at a dense id.
    ///
    /// # Panics
    ///
    /// Panics if the id did not come from this table.
    pub fn record(&self, id: ProcessId) -> &ProcessRecord {
        &self.records[id.index()]
    }

    /// Number of distinct process images.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterates over all records in dense-id (first-seen) order.
    pub fn iter(&self) -> impl Iterator<Item = &ProcessRecord> {
        self.records.iter()
    }

    /// All records as a slice, indexed by dense id; lets consumers chunk
    /// the table into contiguous id ranges.
    pub fn records(&self) -> &[ProcessRecord] {
        &self.records
    }
}

/// Interns machine identifiers, assigning dense [`MachineIdx`] positions
/// in first-seen order.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MachineTable {
    ids: Vec<MachineId>,
    by_id: HashMap<MachineId, MachineIdx>,
}

impl MachineTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a machine id, returning its dense index.
    pub fn intern(&mut self, id: MachineId) -> MachineIdx {
        if let Some(&idx) = self.by_id.get(&id) {
            return idx;
        }
        let idx = MachineIdx::from_raw(
            u32::try_from(self.ids.len()).expect("more than u32::MAX distinct machines"), // downlake-lint: allow(P1) — u32 dense-id overflow is a hard data-model limit
        );
        self.ids.push(id);
        self.by_id.insert(id, idx);
        idx
    }

    /// Looks up the dense index of a previously interned machine.
    pub fn idx_of(&self, id: MachineId) -> Option<MachineIdx> {
        self.by_id.get(&id).copied()
    }

    /// The sparse machine id at a dense index.
    ///
    /// # Panics
    ///
    /// Panics if the index did not come from this table.
    pub fn resolve(&self, idx: MachineIdx) -> MachineId {
        self.ids[idx.index()]
    }

    /// Number of distinct machines.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Iterates over machine ids in dense-index (first-seen) order.
    pub fn iter(&self) -> impl Iterator<Item = MachineId> + '_ {
        self.ids.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn url_interning_is_idempotent() {
        let mut table = UrlTable::new();
        let u: Url = "http://a.com/x".parse().unwrap();
        let id1 = table.intern(u.clone());
        let id2 = table.intern(u.clone());
        assert_eq!(id1, id2);
        assert_eq!(table.len(), 1);
        assert_eq!(table.resolve(id1), &u);
        assert_eq!(table.get(&u), Some(id1));
    }

    #[test]
    fn url_ids_are_dense_and_ordered() {
        let mut table = UrlTable::new();
        for i in 0..10 {
            let u: Url = format!("http://d{i}.com/f").parse().unwrap();
            let id = table.intern(u);
            assert_eq!(id.index(), i);
        }
        assert_eq!(table.iter().count(), 10);
    }

    #[test]
    fn url_table_interns_e2lds_densely() {
        let mut table = UrlTable::new();
        let a1 = table.intern("http://dl.a.com/x".parse().unwrap());
        let a2 = table.intern("http://cdn.a.com/y".parse().unwrap());
        let b = table.intern("http://b.org/z".parse().unwrap());
        assert_eq!(table.e2ld_of(a1), table.e2ld_of(a2));
        assert_ne!(table.e2ld_of(a1), table.e2ld_of(b));
        assert_eq!(table.e2ld_count(), 2);
        assert_eq!(table.e2ld_str(table.e2ld_of(a1)), "a.com");
        assert_eq!(table.e2ld_str(table.e2ld_of(b)), "b.org");
        assert_eq!(table.e2lds().collect::<Vec<_>>(), vec!["a.com", "b.org"]);
    }

    #[test]
    fn file_first_meta_wins() {
        let mut table = FileTable::new();
        let h = FileHash::from_raw(1);
        let m1 = FileMeta {
            size_bytes: 10,
            ..FileMeta::default()
        };
        let m2 = FileMeta {
            size_bytes: 99,
            ..FileMeta::default()
        };
        let id1 = table.intern(h, &m1);
        let id2 = table.intern(h, &m2);
        assert_eq!(id1, id2);
        assert_eq!(table.get(h).unwrap().meta.size_bytes, 10);
        assert_eq!(table.record(id1).meta.size_bytes, 10);
        assert_eq!(table.id_of(h), Some(id1));
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn process_table_derives_categories() {
        let mut table = ProcessTable::new();
        let meta = FileMeta {
            disk_name: "java.exe".into(),
            ..FileMeta::default()
        };
        let id = table.intern(FileHash::from_raw(2), &meta);
        assert_eq!(
            table.record(id).category,
            downlake_types::ProcessCategory::Java
        );
    }

    #[test]
    fn file_and_process_ids_are_separate_spaces() {
        let mut files = FileTable::new();
        let mut procs = ProcessTable::new();
        let meta = FileMeta::default();
        let fid = files.intern(FileHash::from_raw(7), &meta);
        let pid = procs.intern(FileHash::from_raw(7), &meta);
        assert_eq!(fid.index(), 0);
        assert_eq!(pid.index(), 0);
        // Same hash, same raw index — but the types are distinct, so the
        // compiler rejects cross-indexing a file column with a ProcessId.
        assert_eq!(files.record(fid).hash, procs.record(pid).hash);
    }

    #[test]
    fn machine_table_interns_in_first_seen_order() {
        let mut table = MachineTable::new();
        let a = table.intern(MachineId::from_raw(50));
        let b = table.intern(MachineId::from_raw(3));
        assert_eq!(table.intern(MachineId::from_raw(50)), a);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(table.resolve(b), MachineId::from_raw(3));
        assert_eq!(table.idx_of(MachineId::from_raw(3)), Some(b));
        assert_eq!(table.idx_of(MachineId::from_raw(99)), None);
        assert_eq!(table.len(), 2);
        assert_eq!(
            table.iter().collect::<Vec<_>>(),
            vec![MachineId::from_raw(50), MachineId::from_raw(3)]
        );
    }

    #[test]
    fn empty_tables_report_empty() {
        assert!(UrlTable::new().is_empty());
        assert!(FileTable::new().is_empty());
        assert!(ProcessTable::new().is_empty());
        assert!(MachineTable::new().is_empty());
    }
}
