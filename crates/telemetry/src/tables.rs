//! Interning tables for URLs, files, and processes.
//!
//! The paper's dataset contains 1.79M distinct files, 141k distinct
//! processes, and 1.63M distinct URLs referenced by 3.07M events; interning
//! keeps each distinct entity's metadata stored once and lets events carry
//! compact ids.

use crate::record::{FileRecord, ProcessRecord};
use downlake_types::{FileHash, FileMeta, Url, UrlId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Interns distinct download URLs and resolves [`UrlId`]s.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct UrlTable {
    urls: Vec<Url>,
    by_url: HashMap<Url, UrlId>,
}

impl UrlTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a URL, returning its stable id. Repeated interning of the
    /// same URL returns the same id.
    pub fn intern(&mut self, url: Url) -> UrlId {
        if let Some(&id) = self.by_url.get(&url) {
            return id;
        }
        let id = UrlId::from_raw(
            u32::try_from(self.urls.len()).expect("more than u32::MAX distinct urls"),
        );
        self.urls.push(url.clone());
        self.by_url.insert(url, id);
        id
    }

    /// Resolves an id to its URL.
    ///
    /// # Panics
    ///
    /// Panics if the id did not come from this table.
    pub fn resolve(&self, id: UrlId) -> &Url {
        &self.urls[id.index()]
    }

    /// Looks up the id of a previously interned URL.
    pub fn get(&self, url: &Url) -> Option<UrlId> {
        self.by_url.get(url).copied()
    }

    /// Number of distinct URLs.
    pub fn len(&self) -> usize {
        self.urls.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.urls.is_empty()
    }

    /// Iterates over `(id, url)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (UrlId, &Url)> {
        self.urls
            .iter()
            .enumerate()
            .map(|(i, u)| (UrlId::from_raw(i as u32), u))
    }
}

/// Interns distinct downloaded files keyed by hash.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FileTable {
    records: HashMap<FileHash, FileRecord>,
}

impl FileTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a file. The first-seen metadata wins (file hashes are
    /// content hashes, so metadata cannot legitimately differ).
    pub fn intern(&mut self, hash: FileHash, meta: &FileMeta) -> &FileRecord {
        self.records
            .entry(hash)
            .or_insert_with(|| FileRecord::new(hash, meta.clone()))
    }

    /// Looks up a file record.
    pub fn get(&self, hash: FileHash) -> Option<&FileRecord> {
        self.records.get(&hash)
    }

    /// Number of distinct files.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterates over all records in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = &FileRecord> {
        self.records.values()
    }
}

/// Interns distinct downloading-process images keyed by image hash.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ProcessTable {
    records: HashMap<FileHash, ProcessRecord>,
}

impl ProcessTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a process image. First-seen metadata wins.
    pub fn intern(&mut self, hash: FileHash, meta: &FileMeta) -> &ProcessRecord {
        self.records
            .entry(hash)
            .or_insert_with(|| ProcessRecord::new(hash, meta.clone()))
    }

    /// Looks up a process record.
    pub fn get(&self, hash: FileHash) -> Option<&ProcessRecord> {
        self.records.get(&hash)
    }

    /// Number of distinct process images.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterates over all records in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = &ProcessRecord> {
        self.records.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn url_interning_is_idempotent() {
        let mut table = UrlTable::new();
        let u: Url = "http://a.com/x".parse().unwrap();
        let id1 = table.intern(u.clone());
        let id2 = table.intern(u.clone());
        assert_eq!(id1, id2);
        assert_eq!(table.len(), 1);
        assert_eq!(table.resolve(id1), &u);
        assert_eq!(table.get(&u), Some(id1));
    }

    #[test]
    fn url_ids_are_dense_and_ordered() {
        let mut table = UrlTable::new();
        for i in 0..10 {
            let u: Url = format!("http://d{i}.com/f").parse().unwrap();
            let id = table.intern(u);
            assert_eq!(id.index(), i);
        }
        assert_eq!(table.iter().count(), 10);
    }

    #[test]
    fn file_first_meta_wins() {
        let mut table = FileTable::new();
        let h = FileHash::from_raw(1);
        let m1 = FileMeta {
            size_bytes: 10,
            ..FileMeta::default()
        };
        let m2 = FileMeta {
            size_bytes: 99,
            ..FileMeta::default()
        };
        table.intern(h, &m1);
        table.intern(h, &m2);
        assert_eq!(table.get(h).unwrap().meta.size_bytes, 10);
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn process_table_derives_categories() {
        let mut table = ProcessTable::new();
        let meta = FileMeta {
            disk_name: "java.exe".into(),
            ..FileMeta::default()
        };
        let rec = table.intern(FileHash::from_raw(2), &meta);
        assert_eq!(rec.category, downlake_types::ProcessCategory::Java);
    }

    #[test]
    fn empty_tables_report_empty() {
        assert!(UrlTable::new().is_empty());
        assert!(FileTable::new().is_empty());
        assert!(ProcessTable::new().is_empty());
    }
}
