//! Raw (agent-side) and reported (server-side) download events.

use downlake_types::{FileHash, FileMeta, MachineId, Timestamp, Url, UrlId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A reported download event — the 5-tuple `(f, m, p, u, t)` of §II-A,
/// with the URL interned into the owning [`crate::Dataset`]'s URL table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DownloadEvent {
    /// The downloaded file.
    pub file: FileHash,
    /// The machine that downloaded the file.
    pub machine: MachineId,
    /// The process (by image hash) that initiated the download.
    pub process: FileHash,
    /// The download URL, as an index into the dataset URL table.
    pub url: UrlId,
    /// When the download occurred.
    pub timestamp: Timestamp,
}

impl fmt::Display for DownloadEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} downloaded {} via {} from {}",
            self.timestamp, self.machine, self.file, self.process, self.url
        )
    }
}

/// An event as observed by a machine's software agent, before the
/// collection server's reporting policy is applied.
///
/// Carries everything the policy needs to decide: the full URL (for
/// whitelist matching) and whether the downloaded file was ever executed.
/// It also carries the static metadata of the downloaded file and the
/// downloading process image, which the server interns on first sight.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RawEvent {
    /// The downloaded file.
    pub file: FileHash,
    /// Observable metadata of the downloaded file.
    pub file_meta: FileMeta,
    /// The machine observing the download.
    pub machine: MachineId,
    /// The downloading process image hash.
    pub process: FileHash,
    /// Observable metadata of the downloading process image. Its
    /// `disk_name` determines the process category.
    pub process_meta: FileMeta,
    /// Full download URL.
    pub url: Url,
    /// When the download occurred.
    pub timestamp: Timestamp,
    /// Whether the downloaded file was subsequently executed on the
    /// machine. Non-executed downloads are never reported.
    pub executed: bool,
}

impl RawEvent {
    /// Starts building a raw event. All of file, machine, process, url and
    /// timestamp must be supplied before [`RawEventBuilder::build`].
    pub fn builder() -> RawEventBuilder {
        RawEventBuilder::default()
    }
}

/// Builder for [`RawEvent`]. See [`RawEvent::builder`].
#[derive(Debug, Default)]
pub struct RawEventBuilder {
    file: Option<FileHash>,
    file_meta: FileMeta,
    machine: Option<MachineId>,
    process: Option<FileHash>,
    process_meta: FileMeta,
    url: Option<Url>,
    timestamp: Option<Timestamp>,
    executed: bool,
}

impl RawEventBuilder {
    /// Sets the downloaded file hash.
    pub fn file(mut self, file: FileHash) -> Self {
        self.file = Some(file);
        self
    }

    /// Sets the downloaded file's metadata.
    pub fn file_meta(mut self, meta: FileMeta) -> Self {
        self.file_meta = meta;
        self
    }

    /// Sets the observing machine.
    pub fn machine(mut self, machine: MachineId) -> Self {
        self.machine = Some(machine);
        self
    }

    /// Sets the downloading process image hash and its on-disk name.
    pub fn process(mut self, process: FileHash, disk_name: &str) -> Self {
        self.process = Some(process);
        self.process_meta.disk_name = disk_name.to_owned();
        self
    }

    /// Sets the downloading process's full metadata (overrides the
    /// disk name set by [`Self::process`] if both are called).
    pub fn process_meta(mut self, meta: FileMeta) -> Self {
        self.process_meta = meta;
        self
    }

    /// Sets the download URL.
    pub fn url(mut self, url: Url) -> Self {
        self.url = Some(url);
        self
    }

    /// Sets the event timestamp.
    pub fn timestamp(mut self, t: Timestamp) -> Self {
        self.timestamp = Some(t);
        self
    }

    /// Marks whether the downloaded file was executed.
    pub fn executed(mut self, executed: bool) -> Self {
        self.executed = executed;
        self
    }

    /// Finishes the event.
    ///
    /// # Panics
    ///
    /// Panics if any of file, machine, process, url, or timestamp is
    /// missing — builders are used by generators where absence is a bug.
    pub fn build(self) -> RawEvent {
        RawEvent {
            file: self.file.expect("raw event needs a file"), // downlake-lint: allow(P1) — documented builder contract (see `# Panics`)
            file_meta: self.file_meta,
            machine: self.machine.expect("raw event needs a machine"), // downlake-lint: allow(P1) — documented builder contract (see `# Panics`)
            process: self.process.expect("raw event needs a process"),
            process_meta: self.process_meta,
            url: self.url.expect("raw event needs a url"), // downlake-lint: allow(P1) — documented builder contract (see `# Panics`)
            timestamp: self.timestamp.expect("raw event needs a timestamp"),
            executed: self.executed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_raw() -> RawEvent {
        RawEvent::builder()
            .file(FileHash::from_raw(10))
            .machine(MachineId::from_raw(20))
            .process(FileHash::from_raw(30), "chrome.exe")
            .url("http://x.example.com/a.exe".parse().unwrap())
            .timestamp(Timestamp::from_day(1))
            .executed(true)
            .build()
    }

    #[test]
    fn builder_assembles_event() {
        let e = sample_raw();
        assert_eq!(e.file.raw(), 10);
        assert_eq!(e.machine.raw(), 20);
        assert_eq!(e.process.raw(), 30);
        assert_eq!(e.process_meta.disk_name, "chrome.exe");
        assert!(e.executed);
    }

    #[test]
    #[should_panic(expected = "needs a file")]
    fn builder_panics_without_file() {
        RawEvent::builder()
            .machine(MachineId::from_raw(1))
            .process(FileHash::from_raw(2), "x.exe")
            .url("http://h.com/".parse().unwrap())
            .timestamp(Timestamp::EPOCH)
            .build();
    }

    #[test]
    fn download_event_display_mentions_all_parts() {
        let e = DownloadEvent {
            file: FileHash::from_raw(1),
            machine: MachineId::from_raw(2),
            process: FileHash::from_raw(3),
            url: UrlId::from_raw(4),
            timestamp: Timestamp::from_day(5),
        };
        let s = e.to_string();
        assert!(s.contains("M-0000002"));
        assert!(s.contains("U-4"));
    }

    #[test]
    fn process_meta_overrides_disk_name() {
        let meta = FileMeta {
            disk_name: "other.exe".into(),
            ..FileMeta::default()
        };
        let e = RawEvent::builder()
            .file(FileHash::from_raw(1))
            .machine(MachineId::from_raw(1))
            .process(FileHash::from_raw(1), "chrome.exe")
            .process_meta(meta)
            .url("http://h.com/".parse().unwrap())
            .timestamp(Timestamp::EPOCH)
            .build();
        assert_eq!(e.process_meta.disk_name, "other.exe");
    }
}
