//! The indexed dataset of reported download events.

use crate::event::{DownloadEvent, RawEvent};
use crate::tables::{FileTable, ProcessTable, UrlTable};
use downlake_types::{FileHash, MachineId, Month, Timestamp, Url, UrlId, MONTHS_IN_STUDY};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::ops::Range;

/// Accumulates reported events and produces an indexed [`Dataset`].
///
/// Events may arrive in any order; [`DatasetBuilder::finish`] sorts them by
/// timestamp (stable, so equal-time events keep arrival order) and builds
/// the per-file / per-machine / per-month indexes.
#[derive(Debug, Default)]
pub struct DatasetBuilder {
    events: Vec<DownloadEvent>,
    urls: UrlTable,
    files: FileTable,
    processes: ProcessTable,
}

impl DatasetBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one reported event, interning its URL, file, and process.
    pub fn push(&mut self, raw: RawEvent) {
        let url = self.urls.intern(raw.url);
        self.files.intern(raw.file, &raw.file_meta);
        self.processes.intern(raw.process, &raw.process_meta);
        self.events.push(DownloadEvent {
            file: raw.file,
            machine: raw.machine,
            process: raw.process,
            url,
            timestamp: raw.timestamp,
        });
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Sorts, indexes, and produces the dataset.
    pub fn finish(mut self) -> Dataset {
        self.events.sort_by_key(|e| e.timestamp);

        let mut file_machines: HashMap<FileHash, Vec<MachineId>> = HashMap::new();
        let mut machine_events: HashMap<MachineId, Vec<u32>> = HashMap::new();
        let mut file_events: HashMap<FileHash, Vec<u32>> = HashMap::new();
        let mut process_events: HashMap<FileHash, Vec<u32>> = HashMap::new();
        for (idx, event) in self.events.iter().enumerate() {
            let idx = idx as u32;
            file_machines.entry(event.file).or_default().push(event.machine);
            machine_events.entry(event.machine).or_default().push(idx);
            file_events.entry(event.file).or_default().push(idx);
            process_events.entry(event.process).or_default().push(idx);
        }
        for machines in file_machines.values_mut() {
            machines.sort_unstable();
            machines.dedup();
        }

        let mut month_bounds = Vec::with_capacity(MONTHS_IN_STUDY);
        for month in Month::ALL {
            let start = Timestamp::from_day(month.start_day());
            let end = Timestamp::from_day(month.end_day());
            let lo = self.events.partition_point(|e| e.timestamp < start);
            let hi = self.events.partition_point(|e| e.timestamp < end);
            month_bounds.push(lo as u32..hi as u32);
        }

        Dataset {
            events: self.events,
            urls: self.urls,
            files: self.files,
            processes: self.processes,
            file_machines,
            machine_events,
            file_events,
            process_events,
            month_bounds,
        }
    }
}

/// A finished, immutable, indexed collection of download events.
///
/// This is the object every measurement analysis consumes. All indexes are
/// precomputed by [`DatasetBuilder::finish`].
#[derive(Debug, Serialize, Deserialize)]
pub struct Dataset {
    events: Vec<DownloadEvent>,
    urls: UrlTable,
    files: FileTable,
    processes: ProcessTable,
    file_machines: HashMap<FileHash, Vec<MachineId>>,
    machine_events: HashMap<MachineId, Vec<u32>>,
    file_events: HashMap<FileHash, Vec<u32>>,
    process_events: HashMap<FileHash, Vec<u32>>,
    month_bounds: Vec<Range<u32>>,
}

impl Dataset {
    /// All events, sorted by timestamp.
    pub fn events(&self) -> &[DownloadEvent] {
        &self.events
    }

    /// The URL interning table.
    pub fn urls(&self) -> &UrlTable {
        &self.urls
    }

    /// The distinct-file table.
    pub fn files(&self) -> &FileTable {
        &self.files
    }

    /// The distinct-process table.
    pub fn processes(&self) -> &ProcessTable {
        &self.processes
    }

    /// Resolves an event's URL.
    pub fn url_of(&self, event: &DownloadEvent) -> &Url {
        self.urls.resolve(event.url)
    }

    /// Resolves an event's URL id.
    pub fn resolve_url(&self, id: UrlId) -> &Url {
        self.urls.resolve(id)
    }

    /// The *prevalence* of a file: the number of distinct machines that
    /// downloaded it, as visible in the (σ-capped) reported data (§IV-A).
    pub fn prevalence(&self, file: FileHash) -> usize {
        self.file_machines.get(&file).map_or(0, Vec::len)
    }

    /// Distinct machines that downloaded a file, in ascending id order.
    pub fn machines_of_file(&self, file: FileHash) -> &[MachineId] {
        self.file_machines.get(&file).map_or(&[], Vec::as_slice)
    }

    /// Events (by reference) initiated on a machine, time-ordered.
    pub fn events_of_machine(&self, machine: MachineId) -> impl Iterator<Item = &DownloadEvent> {
        self.machine_events
            .get(&machine)
            .into_iter()
            .flatten()
            .map(move |&i| &self.events[i as usize])
    }

    /// Events that downloaded a given file, time-ordered.
    pub fn events_of_file(&self, file: FileHash) -> impl Iterator<Item = &DownloadEvent> {
        self.file_events
            .get(&file)
            .into_iter()
            .flatten()
            .map(move |&i| &self.events[i as usize])
    }

    /// Events initiated by a given process image, time-ordered.
    pub fn events_of_process(&self, process: FileHash) -> impl Iterator<Item = &DownloadEvent> {
        self.process_events
            .get(&process)
            .into_iter()
            .flatten()
            .map(move |&i| &self.events[i as usize])
    }

    /// All machine ids that appear in the dataset.
    pub fn machines(&self) -> impl Iterator<Item = MachineId> + '_ {
        self.machine_events.keys().copied()
    }

    /// Number of distinct machines.
    pub fn machine_count(&self) -> usize {
        self.machine_events.len()
    }

    /// The events of one study month.
    pub fn month(&self, month: Month) -> MonthlyView<'_> {
        let range = self.month_bounds[month.index()].clone();
        MonthlyView {
            dataset: self,
            month,
            range,
        }
    }

    /// Views for every study month, in order.
    pub fn months(&self) -> impl Iterator<Item = MonthlyView<'_>> {
        Month::ALL.into_iter().map(|m| self.month(m))
    }

    /// Headline counts (Table I "Overall" row inputs).
    pub fn stats(&self) -> DatasetStats {
        DatasetStats {
            events: self.events.len(),
            machines: self.machine_events.len(),
            files: self.files.len(),
            processes: self.processes.len(),
            urls: self.urls.len(),
            domains: self
                .urls
                .iter()
                .map(|(_, u)| u.e2ld())
                .collect::<HashSet<_>>()
                .len(),
        }
    }
}

/// Headline dataset counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Total download events.
    pub events: usize,
    /// Distinct machines.
    pub machines: usize,
    /// Distinct downloaded files.
    pub files: usize,
    /// Distinct downloading processes.
    pub processes: usize,
    /// Distinct download URLs.
    pub urls: usize,
    /// Distinct e2LDs.
    pub domains: usize,
}

/// A single month's slice of a [`Dataset`].
#[derive(Debug, Clone)]
pub struct MonthlyView<'a> {
    dataset: &'a Dataset,
    month: Month,
    range: Range<u32>,
}

impl<'a> MonthlyView<'a> {
    /// The month this view covers.
    pub fn month(&self) -> Month {
        self.month
    }

    /// The underlying dataset.
    pub fn dataset(&self) -> &'a Dataset {
        self.dataset
    }

    /// Events of the month, time-ordered.
    pub fn events(&self) -> &'a [DownloadEvent] {
        &self.dataset.events[self.range.start as usize..self.range.end as usize]
    }

    /// Distinct machines active in the month.
    pub fn distinct_machines(&self) -> HashSet<MachineId> {
        self.events().iter().map(|e| e.machine).collect()
    }

    /// Distinct files downloaded in the month.
    pub fn distinct_files(&self) -> HashSet<FileHash> {
        self.events().iter().map(|e| e.file).collect()
    }

    /// Distinct downloading processes in the month.
    pub fn distinct_processes(&self) -> HashSet<FileHash> {
        self.events().iter().map(|e| e.process).collect()
    }

    /// Distinct URLs in the month.
    pub fn distinct_urls(&self) -> HashSet<UrlId> {
        self.events().iter().map(|e| e.url).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use downlake_types::Url;

    fn raw(file: u64, machine: u64, day: u32, url: &str) -> RawEvent {
        RawEvent::builder()
            .file(FileHash::from_raw(file))
            .machine(MachineId::from_raw(machine))
            .process(FileHash::from_raw(500), "chrome.exe")
            .url(url.parse::<Url>().unwrap())
            .timestamp(Timestamp::from_day(day))
            .executed(true)
            .build()
    }

    fn sample_dataset() -> Dataset {
        let mut b = DatasetBuilder::new();
        // Deliberately out of time order.
        b.push(raw(1, 1, 40, "http://a.com/x.exe")); // February
        b.push(raw(1, 2, 5, "http://a.com/x.exe")); // January
        b.push(raw(2, 1, 70, "http://b.com/y.exe")); // March
        b.push(raw(2, 1, 75, "http://b.com/y.exe")); // March, re-download
        b.finish()
    }

    #[test]
    fn events_are_time_sorted() {
        let ds = sample_dataset();
        let times: Vec<_> = ds.events().iter().map(|e| e.timestamp.day()).collect();
        assert_eq!(times, vec![5, 40, 70, 75]);
    }

    #[test]
    fn prevalence_counts_distinct_machines() {
        let ds = sample_dataset();
        assert_eq!(ds.prevalence(FileHash::from_raw(1)), 2);
        assert_eq!(ds.prevalence(FileHash::from_raw(2)), 1); // same machine twice
        assert_eq!(ds.prevalence(FileHash::from_raw(99)), 0);
        assert_eq!(ds.machines_of_file(FileHash::from_raw(99)), &[]);
    }

    #[test]
    fn monthly_partition() {
        let ds = sample_dataset();
        assert_eq!(ds.month(Month::January).events().len(), 1);
        assert_eq!(ds.month(Month::February).events().len(), 1);
        assert_eq!(ds.month(Month::March).events().len(), 2);
        assert_eq!(ds.month(Month::April).events().len(), 0);
        let march = ds.month(Month::March);
        assert_eq!(march.distinct_machines().len(), 1);
        assert_eq!(march.distinct_files().len(), 1);
    }

    #[test]
    fn per_machine_and_per_file_indexes() {
        let ds = sample_dataset();
        let m1: Vec<_> = ds
            .events_of_machine(MachineId::from_raw(1))
            .map(|e| e.timestamp.day())
            .collect();
        assert_eq!(m1, vec![40, 70, 75]);
        assert_eq!(ds.events_of_file(FileHash::from_raw(2)).count(), 2);
        assert_eq!(ds.events_of_process(FileHash::from_raw(500)).count(), 4);
        assert_eq!(ds.machine_count(), 2);
    }

    #[test]
    fn stats_count_distincts() {
        let ds = sample_dataset();
        let s = ds.stats();
        assert_eq!(s.events, 4);
        assert_eq!(s.machines, 2);
        assert_eq!(s.files, 2);
        assert_eq!(s.processes, 1);
        assert_eq!(s.urls, 2);
        assert_eq!(s.domains, 2);
    }

    #[test]
    fn empty_dataset_is_well_formed() {
        let ds = DatasetBuilder::new().finish();
        assert!(ds.events().is_empty());
        assert_eq!(ds.machine_count(), 0);
        for view in ds.months() {
            assert!(view.events().is_empty());
        }
        assert_eq!(ds.stats().domains, 0);
    }

    #[test]
    fn builder_len_tracks_pushes() {
        let mut b = DatasetBuilder::new();
        assert!(b.is_empty());
        b.push(raw(1, 1, 0, "http://a.com/x"));
        assert_eq!(b.len(), 1);
    }
}
