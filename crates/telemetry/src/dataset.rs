//! The indexed dataset of reported download events.
//!
//! [`DatasetBuilder::finish`] interns every entity into dense id spaces
//! ([`FileId`], [`ProcessId`], [`MachineIdx`], [`downlake_types::E2ldId`])
//! and materialises per-event id *columns* plus CSR (offset + flat index
//! array) adjacency indexes, so every per-entity lookup downstream is an
//! array index instead of a hash probe.

use crate::event::{DownloadEvent, RawEvent};
use crate::tables::{FileTable, MachineTable, ProcessTable, UrlTable};
use downlake_types::{
    FileHash, FileId, MachineId, MachineIdx, Month, ProcessId, Timestamp, Url, UrlId,
    MONTHS_IN_STUDY,
};
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// Accumulates reported events and produces an indexed [`Dataset`].
///
/// Events may arrive in any order; [`DatasetBuilder::finish`] sorts them by
/// timestamp (stable, so equal-time events keep arrival order) and builds
/// the per-file / per-machine / per-month indexes.
#[derive(Debug, Default)]
pub struct DatasetBuilder {
    events: Vec<DownloadEvent>,
    urls: UrlTable,
    files: FileTable,
    processes: ProcessTable,
}

impl DatasetBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one reported event, interning its URL, file, and process.
    pub fn push(&mut self, raw: RawEvent) {
        let url = self.urls.intern(raw.url);
        self.files.intern(raw.file, &raw.file_meta);
        self.processes.intern(raw.process, &raw.process_meta);
        self.events.push(DownloadEvent {
            file: raw.file,
            machine: raw.machine,
            process: raw.process,
            url,
            timestamp: raw.timestamp,
        });
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Sorts, indexes, and produces the dataset.
    pub fn finish(mut self) -> Dataset {
        self.events.sort_by_key(|e| e.timestamp);

        // Dense per-event id columns. Machines are interned here, in
        // first-seen (time) order; files and processes were interned at
        // push time.
        let mut machines = MachineTable::new();
        let mut event_file = Vec::with_capacity(self.events.len());
        let mut event_process = Vec::with_capacity(self.events.len());
        let mut event_machine = Vec::with_capacity(self.events.len());
        for event in &self.events {
            // downlake-lint: allow(P1) — every pushed event interned its file/process in `push`
            event_file.push(self.files.id_of(event.file).expect("file interned at push"));
            event_process.push(
                self.processes
                    .id_of(event.process) // downlake-lint: allow(P1) — every pushed event interned its file/process in `push`
                    .expect("process interned at push"),
            );
            event_machine.push(machines.intern(event.machine));
        }

        let machine_events = Csr::group(machines.len(), event_machine.iter().map(|m| m.raw()));
        let file_events = Csr::group(self.files.len(), event_file.iter().map(|f| f.raw()));
        let process_events =
            Csr::group(self.processes.len(), event_process.iter().map(|p| p.raw()));

        // Per-file sorted distinct machine lists (prevalence).
        let mut file_machine_offsets = Vec::with_capacity(self.files.len() + 1);
        let mut file_machine_ids = Vec::new();
        file_machine_offsets.push(0u32);
        let mut scratch: Vec<MachineId> = Vec::new();
        for file in 0..self.files.len() {
            scratch.clear();
            scratch.extend(
                file_events
                    .row(file)
                    .iter()
                    .map(|&i| self.events[i as usize].machine),
            );
            scratch.sort_unstable();
            scratch.dedup();
            file_machine_ids.extend_from_slice(&scratch);
            file_machine_offsets
                // downlake-lint: allow(P1) — u32 CSR offsets overflowing is a hard data-model limit
                .push(u32::try_from(file_machine_ids.len()).expect("machine list overflow"));
        }

        let mut month_bounds = Vec::with_capacity(MONTHS_IN_STUDY);
        for month in Month::ALL {
            let start = Timestamp::from_day(month.start_day());
            let end = Timestamp::from_day(month.end_day());
            let lo = self.events.partition_point(|e| e.timestamp < start);
            let hi = self.events.partition_point(|e| e.timestamp < end);
            month_bounds.push(lo as u32..hi as u32);
        }

        // Per-month distinct-entity counts via stamp arrays: one pass over
        // the month's events, no per-call HashSet allocation later.
        let mut month_distinct = vec![MonthDistinct::default(); MONTHS_IN_STUDY];
        let mut machine_stamp = vec![u8::MAX; machines.len()];
        let mut file_stamp = vec![u8::MAX; self.files.len()];
        let mut process_stamp = vec![u8::MAX; self.processes.len()];
        let mut url_stamp = vec![u8::MAX; self.urls.len()];
        for (month, bounds) in month_bounds.iter().enumerate() {
            let tag = month as u8;
            let distinct = &mut month_distinct[month];
            for i in bounds.start as usize..bounds.end as usize {
                let machine = event_machine[i].index();
                if machine_stamp[machine] != tag {
                    machine_stamp[machine] = tag;
                    distinct.machines += 1;
                }
                let file = event_file[i].index();
                if file_stamp[file] != tag {
                    file_stamp[file] = tag;
                    distinct.files += 1;
                }
                let process = event_process[i].index();
                if process_stamp[process] != tag {
                    process_stamp[process] = tag;
                    distinct.processes += 1;
                }
                let url = self.events[i].url.index();
                if url_stamp[url] != tag {
                    url_stamp[url] = tag;
                    distinct.urls += 1;
                }
            }
        }

        let stats = DatasetStats {
            events: self.events.len(),
            machines: machines.len(),
            files: self.files.len(),
            processes: self.processes.len(),
            urls: self.urls.len(),
            domains: self.urls.e2ld_count(),
        };

        Dataset {
            events: self.events,
            urls: self.urls,
            files: self.files,
            processes: self.processes,
            machines,
            event_file,
            event_process,
            event_machine,
            machine_events,
            file_events,
            process_events,
            file_machine_offsets,
            file_machine_ids,
            month_bounds,
            month_distinct,
            stats,
        }
    }
}

/// A compressed sparse row (CSR) adjacency index: for each dense row id,
/// the time-ordered event indexes belonging to it, stored as one flat
/// array plus per-row offsets.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct Csr {
    /// `rows + 1` offsets into `values`.
    offsets: Vec<u32>,
    /// Event indexes, grouped by row, time-ordered within each row.
    values: Vec<u32>,
}

impl Csr {
    /// Groups positions `0..keys.len()` by their key via counting sort.
    /// Within a row, positions keep iteration (time) order.
    fn group(rows: usize, keys: impl Iterator<Item = u32> + Clone) -> Self {
        let mut offsets = vec![0u32; rows + 1];
        let mut len = 0usize;
        for key in keys.clone() {
            offsets[key as usize + 1] += 1;
            len += 1;
        }
        for row in 1..offsets.len() {
            offsets[row] += offsets[row - 1];
        }
        let mut cursor = offsets.clone();
        let mut values = vec![0u32; len];
        for (position, key) in keys.enumerate() {
            let slot = &mut cursor[key as usize];
            values[*slot as usize] = position as u32;
            *slot += 1;
        }
        Self { offsets, values }
    }

    /// The positions grouped under `row`.
    fn row(&self, row: usize) -> &[u32] {
        &self.values[self.offsets[row] as usize..self.offsets[row + 1] as usize]
    }
}

/// Per-month distinct-entity counts, precomputed at `finish()` time.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
struct MonthDistinct {
    machines: usize,
    files: usize,
    processes: usize,
    urls: usize,
}

/// A finished, immutable, indexed collection of download events.
///
/// This is the object every measurement analysis consumes. All indexes are
/// precomputed by [`DatasetBuilder::finish`]: dense per-event id columns
/// ([`Dataset::event_files`] and friends), CSR adjacency from machines /
/// files / processes to their events, per-file distinct machine lists, and
/// cached headline / per-month counts.
#[derive(Debug, Serialize, Deserialize)]
pub struct Dataset {
    events: Vec<DownloadEvent>,
    urls: UrlTable,
    files: FileTable,
    processes: ProcessTable,
    machines: MachineTable,
    event_file: Vec<FileId>,
    event_process: Vec<ProcessId>,
    event_machine: Vec<MachineIdx>,
    machine_events: Csr,
    file_events: Csr,
    process_events: Csr,
    file_machine_offsets: Vec<u32>,
    file_machine_ids: Vec<MachineId>,
    month_bounds: Vec<Range<u32>>,
    month_distinct: Vec<MonthDistinct>,
    stats: DatasetStats,
}

impl Dataset {
    /// All events, sorted by timestamp.
    pub fn events(&self) -> &[DownloadEvent] {
        &self.events
    }

    /// The URL interning table.
    pub fn urls(&self) -> &UrlTable {
        &self.urls
    }

    /// The distinct-file table.
    pub fn files(&self) -> &FileTable {
        &self.files
    }

    /// The distinct-process table.
    pub fn processes(&self) -> &ProcessTable {
        &self.processes
    }

    /// The machine interning table.
    pub fn machine_table(&self) -> &MachineTable {
        &self.machines
    }

    /// Per-event dense file ids, parallel to [`Dataset::events`].
    pub fn event_files(&self) -> &[FileId] {
        &self.event_file
    }

    /// Per-event dense process ids, parallel to [`Dataset::events`].
    pub fn event_processes(&self) -> &[ProcessId] {
        &self.event_process
    }

    /// Per-event dense machine indexes, parallel to [`Dataset::events`].
    pub fn event_machines(&self) -> &[MachineIdx] {
        &self.event_machine
    }

    /// Resolves an event's URL.
    pub fn url_of(&self, event: &DownloadEvent) -> &Url {
        self.urls.resolve(event.url)
    }

    /// Resolves an event's URL id.
    pub fn resolve_url(&self, id: UrlId) -> &Url {
        self.urls.resolve(id)
    }

    /// The *prevalence* of a file: the number of distinct machines that
    /// downloaded it, as visible in the (σ-capped) reported data (§IV-A).
    pub fn prevalence(&self, file: FileHash) -> usize {
        self.files
            .id_of(file)
            .map_or(0, |id| self.prevalence_of(id))
    }

    /// Prevalence by dense file id.
    pub fn prevalence_of(&self, file: FileId) -> usize {
        self.machines_of_file_id(file).len()
    }

    /// Distinct machines that downloaded a file, in ascending id order.
    pub fn machines_of_file(&self, file: FileHash) -> &[MachineId] {
        self.files
            .id_of(file)
            .map_or(&[], |id| self.machines_of_file_id(id))
    }

    /// Distinct machines that downloaded a file (by dense id), in
    /// ascending id order.
    pub fn machines_of_file_id(&self, file: FileId) -> &[MachineId] {
        let lo = self.file_machine_offsets[file.index()] as usize;
        let hi = self.file_machine_offsets[file.index() + 1] as usize;
        &self.file_machine_ids[lo..hi]
    }

    /// Events (by reference) initiated on a machine, time-ordered.
    pub fn events_of_machine(&self, machine: MachineId) -> impl Iterator<Item = &DownloadEvent> {
        self.machines
            .idx_of(machine)
            .map(|idx| self.machine_events.row(idx.index()))
            .unwrap_or(&[])
            .iter()
            .map(move |&i| &self.events[i as usize])
    }

    /// Time-ordered event indexes of a machine, by dense index.
    pub fn events_of_machine_idx(&self, machine: MachineIdx) -> &[u32] {
        self.machine_events.row(machine.index())
    }

    /// Events that downloaded a given file, time-ordered.
    pub fn events_of_file(&self, file: FileHash) -> impl Iterator<Item = &DownloadEvent> {
        self.files
            .id_of(file)
            .map(|id| self.file_events.row(id.index()))
            .unwrap_or(&[])
            .iter()
            .map(move |&i| &self.events[i as usize])
    }

    /// Events initiated by a given process image, time-ordered.
    pub fn events_of_process(&self, process: FileHash) -> impl Iterator<Item = &DownloadEvent> {
        self.processes
            .id_of(process)
            .map(|id| self.process_events.row(id.index()))
            .unwrap_or(&[])
            .iter()
            .map(move |&i| &self.events[i as usize])
    }

    /// All machine ids that appear in the dataset, in dense-index order.
    pub fn machines(&self) -> impl Iterator<Item = MachineId> + '_ {
        self.machines.iter()
    }

    /// Number of distinct machines.
    pub fn machine_count(&self) -> usize {
        self.machines.len()
    }

    /// The events of one study month.
    pub fn month(&self, month: Month) -> MonthlyView<'_> {
        let range = self.month_bounds[month.index()].clone();
        MonthlyView {
            dataset: self,
            month,
            range,
        }
    }

    /// Views for every study month, in order.
    pub fn months(&self) -> impl Iterator<Item = MonthlyView<'_>> {
        Month::ALL.into_iter().map(|m| self.month(m))
    }

    /// Headline counts (Table I "Overall" row inputs), cached at
    /// [`DatasetBuilder::finish`] time.
    pub fn stats(&self) -> DatasetStats {
        self.stats
    }
}

/// Headline dataset counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Total download events.
    pub events: usize,
    /// Distinct machines.
    pub machines: usize,
    /// Distinct downloaded files.
    pub files: usize,
    /// Distinct downloading processes.
    pub processes: usize,
    /// Distinct download URLs.
    pub urls: usize,
    /// Distinct e2LDs.
    pub domains: usize,
}

/// A single month's slice of a [`Dataset`].
#[derive(Debug, Clone)]
pub struct MonthlyView<'a> {
    dataset: &'a Dataset,
    month: Month,
    range: Range<u32>,
}

impl<'a> MonthlyView<'a> {
    /// The month this view covers.
    pub fn month(&self) -> Month {
        self.month
    }

    /// The underlying dataset.
    pub fn dataset(&self) -> &'a Dataset {
        self.dataset
    }

    /// Events of the month, time-ordered.
    pub fn events(&self) -> &'a [DownloadEvent] {
        &self.dataset.events[self.event_range()]
    }

    /// The month's index range into [`Dataset::events`].
    pub fn event_range(&self) -> Range<usize> {
        self.range.start as usize..self.range.end as usize
    }

    /// Number of distinct machines active in the month (precomputed).
    pub fn distinct_machines(&self) -> usize {
        self.dataset.month_distinct[self.month.index()].machines
    }

    /// Number of distinct files downloaded in the month (precomputed).
    pub fn distinct_files(&self) -> usize {
        self.dataset.month_distinct[self.month.index()].files
    }

    /// Number of distinct downloading processes in the month
    /// (precomputed).
    pub fn distinct_processes(&self) -> usize {
        self.dataset.month_distinct[self.month.index()].processes
    }

    /// Number of distinct URLs in the month (precomputed).
    pub fn distinct_urls(&self) -> usize {
        self.dataset.month_distinct[self.month.index()].urls
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use downlake_types::Url;

    fn raw(file: u64, machine: u64, day: u32, url: &str) -> RawEvent {
        RawEvent::builder()
            .file(FileHash::from_raw(file))
            .machine(MachineId::from_raw(machine))
            .process(FileHash::from_raw(500), "chrome.exe")
            .url(url.parse::<Url>().unwrap())
            .timestamp(Timestamp::from_day(day))
            .executed(true)
            .build()
    }

    fn sample_dataset() -> Dataset {
        let mut b = DatasetBuilder::new();
        // Deliberately out of time order.
        b.push(raw(1, 1, 40, "http://a.com/x.exe")); // February
        b.push(raw(1, 2, 5, "http://a.com/x.exe")); // January
        b.push(raw(2, 1, 70, "http://b.com/y.exe")); // March
        b.push(raw(2, 1, 75, "http://b.com/y.exe")); // March, re-download
        b.finish()
    }

    #[test]
    fn events_are_time_sorted() {
        let ds = sample_dataset();
        let times: Vec<_> = ds.events().iter().map(|e| e.timestamp.day()).collect();
        assert_eq!(times, vec![5, 40, 70, 75]);
    }

    #[test]
    fn prevalence_counts_distinct_machines() {
        let ds = sample_dataset();
        assert_eq!(ds.prevalence(FileHash::from_raw(1)), 2);
        assert_eq!(ds.prevalence(FileHash::from_raw(2)), 1); // same machine twice
        assert_eq!(ds.prevalence(FileHash::from_raw(99)), 0);
        assert_eq!(ds.machines_of_file(FileHash::from_raw(99)), &[]);
    }

    #[test]
    fn monthly_partition() {
        let ds = sample_dataset();
        assert_eq!(ds.month(Month::January).events().len(), 1);
        assert_eq!(ds.month(Month::February).events().len(), 1);
        assert_eq!(ds.month(Month::March).events().len(), 2);
        assert_eq!(ds.month(Month::April).events().len(), 0);
        let march = ds.month(Month::March);
        assert_eq!(march.distinct_machines(), 1);
        assert_eq!(march.distinct_files(), 1);
        assert_eq!(march.distinct_processes(), 1);
        assert_eq!(march.distinct_urls(), 1);
        assert_eq!(ds.month(Month::April).distinct_machines(), 0);
    }

    #[test]
    fn per_machine_and_per_file_indexes() {
        let ds = sample_dataset();
        let m1: Vec<_> = ds
            .events_of_machine(MachineId::from_raw(1))
            .map(|e| e.timestamp.day())
            .collect();
        assert_eq!(m1, vec![40, 70, 75]);
        assert_eq!(ds.events_of_file(FileHash::from_raw(2)).count(), 2);
        assert_eq!(ds.events_of_process(FileHash::from_raw(500)).count(), 4);
        assert_eq!(ds.machine_count(), 2);
    }

    #[test]
    fn dense_columns_are_parallel_to_events() {
        let ds = sample_dataset();
        assert_eq!(ds.event_files().len(), ds.events().len());
        assert_eq!(ds.event_processes().len(), ds.events().len());
        assert_eq!(ds.event_machines().len(), ds.events().len());
        for (i, event) in ds.events().iter().enumerate() {
            assert_eq!(ds.files().record(ds.event_files()[i]).hash, event.file);
            assert_eq!(
                ds.processes().record(ds.event_processes()[i]).hash,
                event.process
            );
            assert_eq!(
                ds.machine_table().resolve(ds.event_machines()[i]),
                event.machine
            );
        }
        // CSR rows by dense index agree with the hash-keyed iterators.
        let idx = ds.machine_table().idx_of(MachineId::from_raw(1)).unwrap();
        assert_eq!(ds.events_of_machine_idx(idx).len(), 3);
        let fid = ds.files().id_of(FileHash::from_raw(1)).unwrap();
        assert_eq!(ds.prevalence_of(fid), 2);
        assert_eq!(ds.machines_of_file_id(fid).len(), 2);
    }

    #[test]
    fn stats_count_distincts() {
        let ds = sample_dataset();
        let s = ds.stats();
        assert_eq!(s.events, 4);
        assert_eq!(s.machines, 2);
        assert_eq!(s.files, 2);
        assert_eq!(s.processes, 1);
        assert_eq!(s.urls, 2);
        assert_eq!(s.domains, 2);
    }

    #[test]
    fn empty_dataset_is_well_formed() {
        let ds = DatasetBuilder::new().finish();
        assert!(ds.events().is_empty());
        assert_eq!(ds.machine_count(), 0);
        for view in ds.months() {
            assert!(view.events().is_empty());
            assert_eq!(view.distinct_machines(), 0);
        }
        assert_eq!(ds.stats().domains, 0);
    }

    #[test]
    fn builder_len_tracks_pushes() {
        let mut b = DatasetBuilder::new();
        assert!(b.is_empty());
        b.push(raw(1, 1, 0, "http://a.com/x"));
        assert_eq!(b.len(), 1);
    }
}
