//! CSV interchange for download events.
//!
//! A minimal, dependency-free CSV codec so a real telemetry feed (or an
//! exported dataset) can flow through the exact same pipeline the
//! synthetic world uses. One row per event, with the columns:
//!
//! ```text
//! timestamp_secs,machine_id,file_hash,file_size,file_name,file_signer,
//! file_ca,file_signer_valid,file_packer,process_hash,process_name,
//! process_signer,process_ca,process_signer_valid,process_packer,url,executed
//! ```
//!
//! Hashes are 16-digit hex; empty `*_signer` / `*_packer` columns mean
//! "absent". Fields containing commas, quotes, or newlines are quoted
//! with standard `""` escaping.

use crate::dataset::Dataset;
use crate::event::RawEvent;
use downlake_types::{FileHash, FileMeta, MachineId, PackerInfo, SignerInfo, Timestamp, Url};
use std::error::Error;
use std::fmt;
use std::io::{self, BufRead, Write};

/// The column header written and expected by this codec.
pub const HEADER: &str = "timestamp_secs,machine_id,file_hash,file_size,file_name,file_signer,file_ca,file_signer_valid,file_packer,process_hash,process_name,process_signer,process_ca,process_signer_valid,process_packer,url,executed";

const COLUMNS: usize = 17;

/// Error produced when parsing an event CSV.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed line: `(1-based line number, description)`.
    Parse(usize, String),
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "i/o error reading event csv: {e}"),
            CsvError::Parse(line, what) => write!(f, "line {line}: {what}"),
        }
    }
}

impl Error for CsvError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CsvError::Io(e) => Some(e),
            CsvError::Parse(..) => None,
        }
    }
}

impl From<io::Error> for CsvError {
    fn from(e: io::Error) -> Self {
        CsvError::Io(e)
    }
}

fn quote(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_owned()
    }
}

/// Splits one CSV line respecting quotes. Returns an error description
/// on unbalanced quoting.
fn split_line(line: &str) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut current = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            if c == '"' {
                if chars.peek() == Some(&'"') {
                    current.push('"');
                    chars.next();
                } else {
                    in_quotes = false;
                }
            } else {
                current.push(c);
            }
        } else {
            match c {
                '"' if current.is_empty() => in_quotes = true,
                ',' => fields.push(std::mem::take(&mut current)),
                _ => current.push(c),
            }
        }
    }
    if in_quotes {
        return Err("unterminated quoted field".to_owned());
    }
    fields.push(current);
    Ok(fields)
}

fn meta_fields(meta: &FileMeta) -> [String; 5] {
    let (signer, ca, valid) = match &meta.signer {
        Some(s) => (s.subject.clone(), s.ca.clone(), s.valid.to_string()),
        None => (String::new(), String::new(), String::new()),
    };
    let packer = meta
        .packer
        .as_ref()
        .map(|p| p.name.clone())
        .unwrap_or_default();
    [meta.disk_name.clone(), signer, ca, valid, packer]
}

fn parse_meta(
    line: usize,
    size: &str,
    name: &str,
    signer: &str,
    ca: &str,
    valid: &str,
    packer: &str,
) -> Result<FileMeta, CsvError> {
    let size_bytes: u64 = size
        .parse()
        .map_err(|_| CsvError::Parse(line, format!("bad file size {size:?}")))?;
    let signer = if signer.is_empty() {
        None
    } else {
        let valid: bool = if valid.is_empty() {
            true
        } else {
            valid
                .parse()
                .map_err(|_| CsvError::Parse(line, format!("bad signer validity {valid:?}")))?
        };
        Some(SignerInfo {
            subject: signer.to_owned(),
            ca: ca.to_owned(),
            valid,
        })
    };
    let packer = if packer.is_empty() {
        None
    } else {
        Some(PackerInfo::new(packer))
    };
    Ok(FileMeta {
        size_bytes,
        disk_name: name.to_owned(),
        signer,
        packer,
    })
}

fn parse_hash(line: usize, field: &str, what: &str) -> Result<FileHash, CsvError> {
    u64::from_str_radix(field, 16)
        .map(FileHash::from_raw)
        .map_err(|_| CsvError::Parse(line, format!("bad {what} hash {field:?}")))
}

/// Writes every event of a dataset (header + rows). Reported events are
/// by definition executed, so the `executed` column is `true`.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_events<W: Write>(dataset: &Dataset, mut out: W) -> io::Result<()> {
    writeln!(out, "{HEADER}")?;
    for event in dataset.events() {
        let file_meta = dataset
            .files()
            .get(event.file)
            .map(|r| r.meta.clone())
            .unwrap_or_default();
        let process_meta = dataset
            .processes()
            .get(event.process)
            .map(|r| r.meta.clone())
            .unwrap_or_default();
        let [fname, fsigner, fca, fvalid, fpacker] = meta_fields(&file_meta);
        let [pname, psigner, pca, pvalid, ppacker] = meta_fields(&process_meta);
        let row = [
            event.timestamp.seconds().to_string(),
            event.machine.raw().to_string(),
            format!("{}", event.file),
            file_meta.size_bytes.to_string(),
            fname,
            fsigner,
            fca,
            fvalid,
            fpacker,
            format!("{}", event.process),
            pname,
            psigner,
            pca,
            pvalid,
            ppacker,
            dataset.url_of(event).to_string(),
            "true".to_owned(),
        ];
        let encoded: Vec<String> = row.iter().map(|f| quote(f)).collect();
        writeln!(out, "{}", encoded.join(","))?;
    }
    Ok(())
}

/// Reads raw events from CSV (with the [`HEADER`] header row).
///
/// # Errors
///
/// Returns [`CsvError`] on I/O failure or any malformed line; parsing is
/// strict because silently skipping telemetry rows would bias every
/// analysis downstream.
pub fn read_raw_events<R: BufRead>(reader: R) -> Result<Vec<RawEvent>, CsvError> {
    let mut events = Vec::new();
    let mut lines = reader.lines().enumerate();
    let Some((_, first)) = lines.next() else {
        return Ok(events);
    };
    let first = first?;
    if first.trim() != HEADER {
        return Err(CsvError::Parse(
            1,
            "missing or unexpected header".to_owned(),
        ));
    }
    for (idx, line) in lines {
        let line_no = idx + 1;
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let fields = split_line(&line).map_err(|e| CsvError::Parse(line_no, e))?;
        // One slice pattern per [`HEADER`] column: the match doubles as
        // the column-count check.
        let [ts, machine, file_hash, f_size, f_name, f_signer, f_ca, f_valid, f_packer, proc_hash, p_name, p_signer, p_ca, p_valid, p_packer, url, executed] =
            fields.as_slice()
        else {
            return Err(CsvError::Parse(
                line_no,
                format!("expected {COLUMNS} columns, found {}", fields.len()),
            ));
        };
        let timestamp: i64 = ts
            .parse()
            .map_err(|_| CsvError::Parse(line_no, format!("bad timestamp {ts:?}")))?;
        let machine: u64 = machine
            .parse()
            .map_err(|_| CsvError::Parse(line_no, format!("bad machine id {machine:?}")))?;
        let file = parse_hash(line_no, file_hash, "file")?;
        let file_meta = parse_meta(line_no, f_size, f_name, f_signer, f_ca, f_valid, f_packer)?;
        let process = parse_hash(line_no, proc_hash, "process")?;
        let process_meta = parse_meta(line_no, "0", p_name, p_signer, p_ca, p_valid, p_packer)?;
        let url: Url = url
            .parse()
            .map_err(|e| CsvError::Parse(line_no, format!("bad url: {e}")))?;
        let executed: bool = executed
            .parse()
            .map_err(|_| CsvError::Parse(line_no, format!("bad executed flag {executed:?}")))?;
        events.push(RawEvent {
            file,
            file_meta,
            machine: MachineId::from_raw(machine),
            process,
            process_meta,
            url,
            timestamp: Timestamp::from_seconds(timestamp),
            executed,
        });
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;

    fn sample_raw(signer: Option<&str>) -> RawEvent {
        RawEvent {
            file: FileHash::from_raw(0xabc),
            file_meta: FileMeta {
                size_bytes: 2048,
                disk_name: "setup, \"v2\".exe".into(),
                signer: signer.map(|s| SignerInfo::valid(s, "thawte code signing ca g2")),
                packer: Some(PackerInfo::new("NSIS")),
            },
            machine: MachineId::from_raw(42),
            process: FileHash::from_raw(0xdef),
            process_meta: FileMeta {
                size_bytes: 0,
                disk_name: "chrome.exe".into(),
                signer: Some(SignerInfo::valid("Google Inc", "verisign")),
                packer: None,
            },
            url: "http://dl.softonic.com/f/setup.exe".parse().unwrap(),
            timestamp: Timestamp::from_day(12),
            executed: true,
        }
    }

    #[test]
    fn round_trip_through_dataset() {
        let mut b = DatasetBuilder::new();
        b.push(sample_raw(Some("Somoto, Ltd.")));
        b.push(sample_raw(None));
        let ds = b.finish();

        let mut buffer = Vec::new();
        write_events(&ds, &mut buffer).unwrap();
        let text = String::from_utf8(buffer).unwrap();
        assert!(text.starts_with(HEADER));

        let parsed = read_raw_events(text.as_bytes()).unwrap();
        assert_eq!(parsed.len(), 2);
        let e = &parsed[0];
        assert_eq!(e.file, FileHash::from_raw(0xabc));
        assert_eq!(e.machine, MachineId::from_raw(42));
        assert_eq!(e.file_meta.disk_name, "setup, \"v2\".exe");
        assert_eq!(e.file_meta.packer.as_ref().unwrap().name, "NSIS");
        assert_eq!(e.url.e2ld(), "softonic.com");
        assert!(e.executed);
        // Both rows intern the same file hash: the first-seen metadata
        // (the signed variant) won inside the dataset, so both exported
        // rows carry it.
        assert_eq!(
            parsed[1]
                .file_meta
                .signer
                .as_ref()
                .map(|s| s.subject.as_str()),
            Some("Somoto, Ltd.")
        );
    }

    #[test]
    fn rejects_missing_header_and_bad_rows() {
        assert!(matches!(
            read_raw_events("not,a,header\n".as_bytes()),
            Err(CsvError::Parse(1, _))
        ));
        let bad_row = format!("{HEADER}\n1,2,3\n");
        assert!(matches!(
            read_raw_events(bad_row.as_bytes()),
            Err(CsvError::Parse(2, _))
        ));
        let bad_hash = format!(
            "{HEADER}\n0,1,zzzz,10,f.exe,,,,,0000000000000001,p.exe,,,,,http://a.com/,true\n"
        );
        assert!(matches!(
            read_raw_events(bad_hash.as_bytes()),
            Err(CsvError::Parse(2, _))
        ));
    }

    #[test]
    fn empty_input_is_empty() {
        assert!(read_raw_events("".as_bytes()).unwrap().is_empty());
        let header_only = format!("{HEADER}\n");
        assert!(read_raw_events(header_only.as_bytes()).unwrap().is_empty());
    }

    #[test]
    fn quoting_handles_embedded_delimiters() {
        assert_eq!(quote("plain"), "plain");
        assert_eq!(quote("a,b"), "\"a,b\"");
        assert_eq!(quote("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(
            split_line("a,\"b,c\",\"say \"\"hi\"\"\"").unwrap(),
            vec!["a", "b,c", "say \"hi\""]
        );
        assert!(split_line("\"unterminated").is_err());
    }

    #[test]
    fn unexecuted_events_round_trip() {
        let text = format!(
            "{HEADER}\n86400,7,00000000000000ab,512,f.exe,,,,UPX,00000000000000cd,chrome.exe,Google Inc,verisign,true,,http://x.com/f.exe,false\n"
        );
        let parsed = read_raw_events(text.as_bytes()).unwrap();
        assert_eq!(parsed.len(), 1);
        assert!(!parsed[0].executed);
        assert!(parsed[0].file_meta.signer.is_none());
        assert_eq!(parsed[0].file_meta.packer.as_ref().unwrap().name, "UPX");
        assert_eq!(parsed[0].timestamp.day(), 1);
    }
}
