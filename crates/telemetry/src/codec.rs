//! Length-prefixed binary codec for [`RawEvent`] streams.
//!
//! The online subsystem (`downlake-stream`) ingests *bytes*, not
//! in-memory structs: agents would ship serialized events over the
//! wire, and replay harnesses read them back one frame at a time. Each
//! event is one frame — a little-endian `u32` payload length followed
//! by the payload — so a reader can skip or resynchronize per event
//! without understanding the payload layout.
//!
//! Inside the payload every variable-length field (strings) is itself
//! length-prefixed (`u32` byte count, UTF-8 bytes) and every optional
//! field carries a one-byte presence tag, which keeps decoding total:
//! any truncation, bad tag, or malformed string surfaces as a
//! [`CodecError`] instead of a panic.
//!
//! The format has no padding and no implementation-defined layout, so
//! encoded bytes are byte-identical across platforms — the same
//! determinism contract as the rest of the workspace.

use crate::event::RawEvent;
use downlake_types::{FileHash, FileMeta, MachineId, PackerInfo, SignerInfo, Timestamp, Url};
use std::error::Error;
use std::fmt;

/// Why a byte buffer failed to decode as an event stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the field being read.
    Truncated {
        /// What was being decoded.
        what: &'static str,
        /// Byte offset at which the read was attempted.
        offset: usize,
    },
    /// A presence/bool tag byte held a value other than 0 or 1.
    BadTag {
        /// What was being decoded.
        what: &'static str,
        /// The offending byte.
        tag: u8,
    },
    /// A length-prefixed string was not valid UTF-8.
    BadUtf8 {
        /// What was being decoded.
        what: &'static str,
    },
    /// The URL components did not reassemble into a valid [`Url`].
    BadUrl,
    /// A frame's payload decoded to fewer bytes than its length prefix
    /// declared (trailing garbage inside the frame).
    FrameSlack {
        /// Bytes the prefix declared.
        declared: usize,
        /// Bytes the payload actually consumed.
        consumed: usize,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { what, offset } => {
                write!(f, "truncated input reading {what} at byte {offset}")
            }
            CodecError::BadTag { what, tag } => {
                write!(f, "invalid tag byte {tag:#04x} for {what}")
            }
            CodecError::BadUtf8 { what } => write!(f, "invalid UTF-8 in {what}"),
            CodecError::BadUrl => f.write_str("decoded URL components are not a valid URL"),
            CodecError::FrameSlack { declared, consumed } => {
                write!(
                    f,
                    "frame declared {declared} payload bytes but decoding consumed {consumed}"
                )
            }
        }
    }
}

impl Error for CodecError {}

/// Appends one event to `out` as a length-prefixed frame.
pub fn encode_event(event: &RawEvent, out: &mut Vec<u8>) {
    let frame_start = out.len();
    out.extend_from_slice(&[0u8; 4]); // length prefix placeholder
    let payload_start = out.len();

    put_u64(out, event.file.raw());
    put_meta(out, &event.file_meta);
    put_u64(out, event.machine.raw());
    put_u64(out, event.process.raw());
    put_meta(out, &event.process_meta);
    put_str(out, event.url.scheme());
    put_str(out, event.url.host());
    put_str(out, event.url.path());
    put_i64(out, event.timestamp.seconds());
    out.push(u8::from(event.executed));

    let payload_len = (out.len() - payload_start) as u32;
    out[frame_start..payload_start].copy_from_slice(&payload_len.to_le_bytes());
}

/// Encodes a whole event sequence into one contiguous byte stream.
pub fn encode_events<'a>(events: impl IntoIterator<Item = &'a RawEvent>) -> Vec<u8> {
    let mut out = Vec::new();
    for event in events {
        encode_event(event, &mut out);
    }
    out
}

/// Decodes the frame at the start of `buf`.
///
/// Returns the event and the total bytes consumed (prefix + payload),
/// so callers can advance through a concatenated stream.
///
/// # Errors
///
/// Returns a [`CodecError`] when the frame is truncated or malformed.
pub fn decode_event(buf: &[u8]) -> Result<(RawEvent, usize), CodecError> {
    let mut cursor = Cursor::new(buf);
    let declared = cursor.take_u32("frame length")? as usize;
    let payload_start = cursor.pos;
    if buf.len() - payload_start < declared {
        return Err(CodecError::Truncated {
            what: "frame payload",
            offset: buf.len(),
        });
    }

    let file = FileHash::from_raw(cursor.take_u64("file hash")?);
    let file_meta = cursor.take_meta("file")?;
    let machine = MachineId::from_raw(cursor.take_u64("machine id")?);
    let process = FileHash::from_raw(cursor.take_u64("process hash")?);
    let process_meta = cursor.take_meta("process")?;
    let scheme = cursor.take_str("url scheme")?;
    let host = cursor.take_str("url host")?;
    let path = cursor.take_str("url path")?;
    let url = Url::from_parts(&scheme, &host, &path).map_err(|_| CodecError::BadUrl)?;
    let timestamp = Timestamp::from_seconds(cursor.take_i64("timestamp")?);
    let executed = cursor.take_bool("executed flag")?;

    let consumed = cursor.pos - payload_start;
    if consumed != declared {
        return Err(CodecError::FrameSlack { declared, consumed });
    }
    let event = RawEvent {
        file,
        file_meta,
        machine,
        process,
        process_meta,
        url,
        timestamp,
        executed,
    };
    Ok((event, cursor.pos))
}

/// Skips the frame at the start of `buf` without materializing it.
///
/// Walks the same field layout as [`decode_event`] — every length
/// prefix and presence tag is followed and checked, including the
/// trailing [`CodecError::FrameSlack`] reconciliation — but string
/// bytes are seeked over rather than copied, so no allocation happens.
/// Returns the frame's timestamp (the one field window scans need) and
/// the total bytes consumed (prefix + payload).
///
/// Because string bytes are never inspected, this path does *not*
/// validate UTF-8 or URL well-formedness; a frame that skips cleanly
/// may still fail [`decode_event`] with [`CodecError::BadUtf8`] or
/// [`CodecError::BadUrl`]. Structural corruption (truncation, bad
/// tags, slack) is reported identically on both paths.
///
/// # Errors
///
/// Returns a [`CodecError`] when the frame is truncated or
/// structurally malformed.
pub fn skip_event(buf: &[u8]) -> Result<(Timestamp, usize), CodecError> {
    let mut cursor = Cursor::new(buf);
    let declared = cursor.take_u32("frame length")? as usize;
    let payload_start = cursor.pos;
    if buf.len() - payload_start < declared {
        return Err(CodecError::Truncated {
            what: "frame payload",
            offset: buf.len(),
        });
    }

    cursor.take_u64("file hash")?;
    cursor.skip_meta("file")?;
    cursor.take_u64("machine id")?;
    cursor.take_u64("process hash")?;
    cursor.skip_meta("process")?;
    cursor.skip_str("url scheme")?;
    cursor.skip_str("url host")?;
    cursor.skip_str("url path")?;
    let timestamp = Timestamp::from_seconds(cursor.take_i64("timestamp")?);
    cursor.take_bool("executed flag")?;

    let consumed = cursor.pos - payload_start;
    if consumed != declared {
        return Err(CodecError::FrameSlack { declared, consumed });
    }
    Ok((timestamp, cursor.pos))
}

/// Appends one [`FileMeta`] to `out` in the codec's wire layout.
///
/// Exposed so sidecar formats (the lake's world catalog) can reuse the
/// event codec's exact field encoding instead of inventing a second
/// one.
pub fn encode_file_meta(meta: &FileMeta, out: &mut Vec<u8>) {
    put_meta(out, meta);
}

/// Decodes one [`FileMeta`] from the start of `buf`.
///
/// Inverse of [`encode_file_meta`]; returns the meta and the bytes
/// consumed.
///
/// # Errors
///
/// Returns a [`CodecError`] when the buffer is truncated or malformed.
pub fn decode_file_meta(buf: &[u8]) -> Result<(FileMeta, usize), CodecError> {
    let mut cursor = Cursor::new(buf);
    let meta = cursor.take_meta("file meta")?;
    Ok((meta, cursor.pos))
}

/// Streaming decoder over a concatenated frame buffer.
///
/// Yields events until the buffer is exhausted; a malformed frame
/// yields one `Err` and fuses the iterator (no resynchronization is
/// attempted past a corrupt frame).
#[derive(Debug, Clone)]
pub struct EventReader<'a> {
    buf: &'a [u8],
    pos: usize,
    failed: bool,
}

impl<'a> EventReader<'a> {
    /// Creates a reader over a concatenated frame buffer.
    pub fn new(buf: &'a [u8]) -> Self {
        Self {
            buf,
            pos: 0,
            failed: false,
        }
    }

    /// Byte offset of the next unread frame.
    pub fn position(&self) -> usize {
        self.pos
    }
}

impl Iterator for EventReader<'_> {
    type Item = Result<RawEvent, CodecError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed || self.pos >= self.buf.len() {
            return None;
        }
        match decode_event(&self.buf[self.pos..]) {
            Ok((event, consumed)) => {
                self.pos += consumed;
                Some(Ok(event))
            }
            Err(e) => {
                self.failed = true;
                Some(Err(e))
            }
        }
    }
}

/// Appends a little-endian `u32` field.
///
/// The `put_*` functions are the codec's primitive field encodings,
/// exposed (like [`encode_file_meta`]) so sidecar formats — the lake's
/// world catalog, the stream service's snapshot files — reuse the exact
/// wire layout [`FieldReader`] decodes instead of inventing a second
/// one.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64` field.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `i64` field.
pub fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a one-byte bool tag (0 or 1), the codec's presence encoding.
pub fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(u8::from(v));
}

/// Appends a length-prefixed UTF-8 string (`u32` byte count + bytes).
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Panic-free forward reader over fields written by the `put_*`
/// functions.
///
/// Public counterpart of the codec's internal cursor: every accessor
/// bounds-checks and returns [`CodecError::Truncated`] with the caller's
/// field label instead of slicing out of range, so sidecar formats
/// (e.g. the stream service snapshot) inherit the codec's
/// corruption-is-a-typed-error contract for free.
#[derive(Debug)]
pub struct FieldReader<'a> {
    inner: Cursor<'a>,
}

impl<'a> FieldReader<'a> {
    /// Creates a reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self {
            inner: Cursor::new(buf),
        }
    }

    /// Byte offset of the next unread field.
    pub fn position(&self) -> usize {
        self.inner.pos
    }

    /// Bytes left in the buffer.
    pub fn remaining(&self) -> usize {
        self.inner.buf.len() - self.inner.pos
    }

    /// Reads a single byte (e.g. a presence or variant tag).
    pub fn take_u8(&mut self, what: &'static str) -> Result<u8, CodecError> {
        Ok(self.inner.take(1, what)?[0])
    }

    /// Reads a little-endian `u32` field.
    pub fn take_u32(&mut self, what: &'static str) -> Result<u32, CodecError> {
        self.inner.take_u32(what)
    }

    /// Reads a little-endian `u64` field.
    pub fn take_u64(&mut self, what: &'static str) -> Result<u64, CodecError> {
        self.inner.take_u64(what)
    }

    /// Reads a little-endian `i64` field.
    pub fn take_i64(&mut self, what: &'static str) -> Result<i64, CodecError> {
        self.inner.take_i64(what)
    }

    /// Reads a one-byte bool tag, rejecting anything but 0 or 1.
    pub fn take_bool(&mut self, what: &'static str) -> Result<bool, CodecError> {
        self.inner.take_bool(what)
    }

    /// Reads a length-prefixed UTF-8 string field.
    pub fn take_str(&mut self, what: &'static str) -> Result<String, CodecError> {
        self.inner.take_str(what)
    }
}

fn put_meta(out: &mut Vec<u8>, meta: &FileMeta) {
    put_u64(out, meta.size_bytes);
    put_str(out, &meta.disk_name);
    match &meta.signer {
        Some(signer) => {
            out.push(1);
            put_str(out, &signer.subject);
            put_str(out, &signer.ca);
            out.push(u8::from(signer.valid));
        }
        None => out.push(0),
    }
    match &meta.packer {
        Some(packer) => {
            out.push(1);
            put_str(out, &packer.name);
        }
        None => out.push(0),
    }
}

/// A panic-free forward reader over a byte slice.
#[derive(Debug)]
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], CodecError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let slice = &self.buf[self.pos..end];
                self.pos = end;
                Ok(slice)
            }
            None => Err(CodecError::Truncated {
                what,
                offset: self.pos,
            }),
        }
    }

    fn take_u32(&mut self, what: &'static str) -> Result<u32, CodecError> {
        let bytes = self.take(4, what)?;
        let mut arr = [0u8; 4];
        arr.copy_from_slice(bytes);
        Ok(u32::from_le_bytes(arr))
    }

    fn take_u64(&mut self, what: &'static str) -> Result<u64, CodecError> {
        let bytes = self.take(8, what)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(bytes);
        Ok(u64::from_le_bytes(arr))
    }

    fn take_i64(&mut self, what: &'static str) -> Result<i64, CodecError> {
        let bytes = self.take(8, what)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(bytes);
        Ok(i64::from_le_bytes(arr))
    }

    fn take_bool(&mut self, what: &'static str) -> Result<bool, CodecError> {
        match self.take(1, what)?.first().copied() {
            Some(0) => Ok(false),
            Some(1) => Ok(true),
            Some(tag) => Err(CodecError::BadTag { what, tag }),
            None => Err(CodecError::Truncated {
                what,
                offset: self.pos,
            }),
        }
    }

    fn take_str(&mut self, what: &'static str) -> Result<String, CodecError> {
        let len = self.take_u32(what)? as usize;
        let bytes = self.take(len, what)?;
        std::str::from_utf8(bytes)
            .map(str::to_owned)
            .map_err(|_| CodecError::BadUtf8 { what })
    }

    fn skip_str(&mut self, what: &'static str) -> Result<(), CodecError> {
        let len = self.take_u32(what)? as usize;
        self.take(len, what)?;
        Ok(())
    }

    fn skip_meta(&mut self, what: &'static str) -> Result<(), CodecError> {
        self.take_u64(what)?; // size_bytes
        self.skip_str(what)?; // disk_name
        if self.take_bool(what)? {
            self.skip_str(what)?; // signer subject
            self.skip_str(what)?; // signer ca
            self.take_bool(what)?; // signer valid
        }
        if self.take_bool(what)? {
            self.skip_str(what)?; // packer name
        }
        Ok(())
    }

    fn take_meta(&mut self, what: &'static str) -> Result<FileMeta, CodecError> {
        let size_bytes = self.take_u64(what)?;
        let disk_name = self.take_str(what)?;
        let signer = if self.take_bool(what)? {
            let subject = self.take_str(what)?;
            let ca = self.take_str(what)?;
            let valid = self.take_bool(what)?;
            Some(SignerInfo { subject, ca, valid })
        } else {
            None
        };
        let packer = if self.take_bool(what)? {
            Some(PackerInfo::new(self.take_str(what)?))
        } else {
            None
        };
        Ok(FileMeta {
            size_bytes,
            disk_name,
            signer,
            packer,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use downlake_types::{FileHash, MachineId, Timestamp};

    fn sample() -> RawEvent {
        RawEvent {
            file: FileHash::from_raw(0xdead_beef_0042),
            file_meta: FileMeta {
                size_bytes: 123_456,
                disk_name: "setup.exe".into(),
                signer: Some(SignerInfo::valid(
                    "Somoto Ltd.",
                    "thawte code signing ca g2",
                )),
                packer: Some(PackerInfo::new("NSIS")),
            },
            machine: MachineId::from_raw(7),
            process: FileHash::from_raw(100),
            process_meta: FileMeta {
                size_bytes: 0,
                disk_name: "chrome.exe".into(),
                signer: None,
                packer: None,
            },
            url: "http://dl.softonic.com/f/setup.exe".parse().unwrap(),
            timestamp: Timestamp::from_day(3),
            executed: true,
        }
    }

    #[test]
    fn round_trips_one_event() {
        let event = sample();
        let mut buf = Vec::new();
        encode_event(&event, &mut buf);
        let (decoded, consumed) = decode_event(&buf).unwrap();
        assert_eq!(decoded, event);
        assert_eq!(consumed, buf.len());
    }

    #[test]
    fn reader_round_trips_a_stream() {
        let a = sample();
        let mut b = sample();
        b.executed = false;
        b.file_meta.signer = None;
        let buf = encode_events([&a, &b]);
        let decoded: Vec<RawEvent> = EventReader::new(&buf).map(|r| r.unwrap()).collect();
        assert_eq!(decoded, vec![a, b]);
    }

    #[test]
    fn truncation_at_every_prefix_errors_cleanly() {
        let mut buf = Vec::new();
        encode_event(&sample(), &mut buf);
        for cut in 0..buf.len() {
            let err = decode_event(&buf[..cut]);
            assert!(err.is_err(), "cut at {cut} must not decode");
        }
    }

    #[test]
    fn bad_bool_tag_is_rejected() {
        let mut buf = Vec::new();
        encode_event(&sample(), &mut buf);
        let last = buf.len() - 1; // the `executed` byte
        buf[last] = 7;
        assert!(matches!(
            decode_event(&buf),
            Err(CodecError::BadTag { tag: 7, .. })
        ));
    }

    #[test]
    fn frame_slack_is_rejected() {
        let mut buf = Vec::new();
        encode_event(&sample(), &mut buf);
        // Inflate the declared payload length and pad the buffer: the
        // decoder must notice it consumed less than declared.
        let declared = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]);
        buf[0..4].copy_from_slice(&(declared + 2).to_le_bytes());
        buf.extend_from_slice(&[0, 0]);
        assert!(matches!(
            decode_event(&buf),
            Err(CodecError::FrameSlack { .. })
        ));
    }

    #[test]
    fn bad_utf8_is_rejected() {
        let mut buf = Vec::new();
        encode_event(&sample(), &mut buf);
        // The disk_name "setup.exe" starts right after the frame prefix,
        // file hash, size, and name-length prefix: 4 + 8 + 8 + 4 bytes in.
        buf[24] = 0xff;
        assert!(matches!(
            decode_event(&buf),
            Err(CodecError::BadUtf8 { .. })
        ));
    }

    #[test]
    fn reader_fuses_after_error() {
        let mut buf = Vec::new();
        encode_event(&sample(), &mut buf);
        encode_event(&sample(), &mut buf);
        let mid = buf.len() - 3;
        let mut reader = EventReader::new(&buf[..mid]);
        assert!(reader.next().unwrap().is_ok());
        assert!(reader.next().unwrap().is_err());
        assert!(reader.next().is_none(), "reader must fuse after an error");
    }

    #[test]
    fn empty_buffer_yields_nothing() {
        assert_eq!(EventReader::new(&[]).count(), 0);
    }

    #[test]
    fn skip_event_matches_decode_on_timestamp_and_consumed() {
        let a = sample();
        let mut b = sample();
        b.file_meta.signer = None;
        b.file_meta.packer = None;
        b.timestamp = Timestamp::from_day(99);
        let buf = encode_events([&a, &b]);
        let (ts_a, len_a) = skip_event(&buf).unwrap();
        let (_, dec_a) = decode_event(&buf).unwrap();
        assert_eq!(ts_a, a.timestamp);
        assert_eq!(len_a, dec_a);
        let (ts_b, len_b) = skip_event(&buf[len_a..]).unwrap();
        assert_eq!(ts_b, b.timestamp);
        assert_eq!(len_a + len_b, buf.len());
    }

    #[test]
    fn skip_event_rejects_truncation_at_every_cut() {
        let mut buf = Vec::new();
        encode_event(&sample(), &mut buf);
        for cut in 0..buf.len() {
            assert!(
                skip_event(&buf[..cut]).is_err(),
                "cut at {cut} must not skip"
            );
        }
    }

    #[test]
    fn skip_event_rejects_slack_and_bad_tags() {
        let mut buf = Vec::new();
        encode_event(&sample(), &mut buf);
        let mut slack = buf.clone();
        let declared = u32::from_le_bytes([slack[0], slack[1], slack[2], slack[3]]);
        slack[0..4].copy_from_slice(&(declared + 2).to_le_bytes());
        slack.extend_from_slice(&[0, 0]);
        assert!(matches!(
            skip_event(&slack),
            Err(CodecError::FrameSlack { .. })
        ));
        let last = buf.len() - 1;
        buf[last] = 9;
        assert!(matches!(
            skip_event(&buf),
            Err(CodecError::BadTag { tag: 9, .. })
        ));
    }

    #[test]
    fn file_meta_helpers_round_trip() {
        let metas = [sample().file_meta, sample().process_meta];
        for meta in metas {
            let mut buf = Vec::new();
            encode_file_meta(&meta, &mut buf);
            let (decoded, consumed) = decode_file_meta(&buf).unwrap();
            assert_eq!(decoded, meta);
            assert_eq!(consumed, buf.len());
        }
    }
}
