//! Interned per-file and per-process records.

use downlake_types::{FileHash, FileMeta, ProcessCategory};
use serde::{Deserialize, Serialize};

/// A distinct downloaded file, with its observable metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FileRecord {
    /// The file's hash.
    pub hash: FileHash,
    /// Observable static metadata.
    pub meta: FileMeta,
}

impl FileRecord {
    /// Creates a record.
    pub fn new(hash: FileHash, meta: FileMeta) -> Self {
        Self { hash, meta }
    }
}

/// A distinct downloading process image, with its observable metadata and
/// derived category.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcessRecord {
    /// The process image hash.
    pub hash: FileHash,
    /// Observable static metadata of the image.
    pub meta: FileMeta,
    /// Category derived from the on-disk executable name (§V-A).
    pub category: ProcessCategory,
}

impl ProcessRecord {
    /// Creates a record, deriving the category from `meta.disk_name`.
    pub fn new(hash: FileHash, meta: FileMeta) -> Self {
        let category = ProcessCategory::from_executable_name(&meta.disk_name);
        Self {
            hash,
            meta,
            category,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use downlake_types::BrowserKind;

    #[test]
    fn process_category_derived_from_disk_name() {
        let meta = FileMeta {
            disk_name: "iexplore.exe".into(),
            ..FileMeta::default()
        };
        let rec = ProcessRecord::new(FileHash::from_raw(5), meta);
        assert_eq!(
            rec.category,
            ProcessCategory::Browser(BrowserKind::InternetExplorer)
        );
    }

    #[test]
    fn unknown_names_fall_in_other() {
        let meta = FileMeta {
            disk_name: "updater_x.exe".into(),
            ..FileMeta::default()
        };
        let rec = ProcessRecord::new(FileHash::from_raw(5), meta);
        assert_eq!(rec.category, ProcessCategory::Other);
    }
}
