//! Full-report assembly: every table and figure, in paper order.
//!
//! Each table/figure pass reads the shared [`AnalysisFrame`] and renders
//! an independent section string, so the passes run as worker-pool jobs.
//! [`Pool::map`] hands sections back in input order and the assembly
//! below concatenates them in the fixed paper order, so the report is
//! byte-identical at every thread count.
//!
//! [`AnalysisFrame`]: downlake_analysis::AnalysisFrame

use crate::experiments;
use crate::pipeline::Study;
use downlake_exec::Pool;
use std::fmt::Write as _;

/// One report section: a pure function of the study.
type Pass = fn(&Study) -> String;

/// The §VI/§VII rule-mining block: learned-rule tables plus the
/// expansion summary and example rules, rendered as one section.
fn rules_pass(study: &Study) -> String {
    let mut out = String::new();
    let outcome = experiments::rule_experiments(study);
    let _ = writeln!(out, "{}", experiments::render_table16(&outcome));
    let _ = writeln!(out, "{}", experiments::render_table17(&outcome));
    let _ = writeln!(
        out,
        "rule labeling expansion: {} of {} unknowns labeled ({:.1}%), expansion factor {:.2}x",
        outcome.unknowns_labeled,
        outcome.total_unknowns,
        outcome.unknown_labeled_share(),
        outcome.expansion_factor()
    );
    if !outcome.example_rules.is_empty() {
        let _ = writeln!(out, "\nexample high-coverage rules:");
        for rule in &outcome.example_rules {
            let _ = writeln!(out, "  {rule}");
        }
    }
    out
}

/// Every section pass, in paper order. The order of this array IS the
/// order of the report; scheduling never reorders it.
const PASSES: &[Pass] = &[
    |s| experiments::table1(s).to_string(),
    |s| experiments::fig1(s).to_string(),
    |s| experiments::table2(s).to_string(),
    |s| experiments::fig2(s).to_string(),
    |s| experiments::table3(s).to_string(),
    |s| experiments::table4(s).to_string(),
    |s| experiments::fig3(s).to_string(),
    |s| experiments::table5(s).to_string(),
    |s| experiments::table6(s).to_string(),
    |s| experiments::table7(s).to_string(),
    |s| experiments::table8(s).to_string(),
    |s| experiments::table9(s).to_string(),
    |s| experiments::fig4(s).to_string(),
    |s| experiments::packers(s).to_string(),
    |s| experiments::table10(s).to_string(),
    |s| experiments::table11(s).to_string(),
    |s| experiments::table12(s).to_string(),
    |s| experiments::fig5(s).to_string(),
    |s| experiments::fig5_quantiles(s).to_string(),
    |s| experiments::fig6(s).to_string(),
    |s| experiments::table13(s).to_string(),
    |s| experiments::table14(s).to_string(),
    |_| experiments::table15().to_string(),
];

/// Runs every experiment and renders one plain-text report, using the
/// thread count from the study's own config.
pub fn full_report(study: &Study) -> String {
    full_report_with(study, &Pool::new(study.config().threads))
}

/// Like [`full_report`], but runs the section passes as jobs on `pool`.
/// Byte-identical for every pool width.
pub fn full_report_with(study: &Study, pool: &Pool) -> String {
    let mut out = String::new();
    let stats = study.dataset().stats();
    let _ = writeln!(
        out,
        "downlake study report — {} events, {} machines, {} files, {} processes, {} urls, {} domains\n",
        stats.events, stats.machines, stats.files, stats.processes, stats.urls, stats.domains
    );
    let suppression = study.suppression();
    let _ = writeln!(
        out,
        "collection-server suppression: {} not executed, {} prevalence-capped, {} whitelisted URLs\n",
        suppression.not_executed, suppression.prevalence_cap, suppression.whitelisted_url
    );

    // The rule-mining block and the post-rule tables ride in the same
    // job batch as the paper-order passes; everything is reassembled in
    // fixed order below regardless of completion order.
    let mut jobs: Vec<Pass> = PASSES.to_vec();
    jobs.push(rules_pass);
    jobs.push(|s| experiments::baselines_table(s).to_string());
    jobs.push(|s| experiments::evasion_table(s).to_string());
    jobs.push(|s| experiments::expansion_reach_table(s).to_string());
    let sections = pool.map(&jobs, |_, pass| pass(study));

    let mut sections = sections.into_iter();
    for section in sections.by_ref().take(PASSES.len()) {
        let _ = writeln!(out, "{section}");
    }
    if let Some(rules) = sections.next() {
        out.push_str(&rules);
    }
    if let Some(baselines) = sections.next() {
        let _ = writeln!(out, "\n{baselines}");
    }
    for section in sections {
        let _ = writeln!(out, "{section}");
    }

    let resolution = study.types().resolution_stats();
    let _ = writeln!(
        out,
        "\nAVType conflict resolution: {} no-conflict, {} voting, {} specificity, {} manual",
        resolution.no_conflict, resolution.voting, resolution.specificity, resolution.manual
    );
    out
}
