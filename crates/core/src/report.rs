//! Full-report assembly: every table and figure, in paper order.

use crate::experiments;
use crate::pipeline::Study;
use std::fmt::Write as _;

/// Runs every experiment and renders one plain-text report.
pub fn full_report(study: &Study) -> String {
    let mut out = String::new();
    let stats = study.dataset().stats();
    let _ = writeln!(
        out,
        "downlake study report — {} events, {} machines, {} files, {} processes, {} urls, {} domains\n",
        stats.events, stats.machines, stats.files, stats.processes, stats.urls, stats.domains
    );
    let suppression = study.suppression();
    let _ = writeln!(
        out,
        "collection-server suppression: {} not executed, {} prevalence-capped, {} whitelisted URLs\n",
        suppression.not_executed, suppression.prevalence_cap, suppression.whitelisted_url
    );

    let _ = writeln!(out, "{}", experiments::table1(study));
    let _ = writeln!(out, "{}", experiments::fig1(study));
    let _ = writeln!(out, "{}", experiments::table2(study));
    let _ = writeln!(out, "{}", experiments::fig2(study));
    let _ = writeln!(out, "{}", experiments::table3(study));
    let _ = writeln!(out, "{}", experiments::table4(study));
    let _ = writeln!(out, "{}", experiments::fig3(study));
    let _ = writeln!(out, "{}", experiments::table5(study));
    let _ = writeln!(out, "{}", experiments::table6(study));
    let _ = writeln!(out, "{}", experiments::table7(study));
    let _ = writeln!(out, "{}", experiments::table8(study));
    let _ = writeln!(out, "{}", experiments::table9(study));
    let _ = writeln!(out, "{}", experiments::fig4(study));
    let _ = writeln!(out, "{}", experiments::packers(study));
    let _ = writeln!(out, "{}", experiments::table10(study));
    let _ = writeln!(out, "{}", experiments::table11(study));
    let _ = writeln!(out, "{}", experiments::table12(study));
    let _ = writeln!(out, "{}", experiments::fig5(study));
    let _ = writeln!(out, "{}", experiments::fig5_quantiles(study));
    let _ = writeln!(out, "{}", experiments::fig6(study));
    let _ = writeln!(out, "{}", experiments::table13(study));
    let _ = writeln!(out, "{}", experiments::table14(study));
    let _ = writeln!(out, "{}", experiments::table15());

    let outcome = experiments::rule_experiments(study);
    let _ = writeln!(out, "{}", experiments::render_table16(&outcome));
    let _ = writeln!(out, "{}", experiments::render_table17(&outcome));
    let _ = writeln!(
        out,
        "rule labeling expansion: {} of {} unknowns labeled ({:.1}%), expansion factor {:.2}x",
        outcome.unknowns_labeled,
        outcome.total_unknowns,
        outcome.unknown_labeled_share(),
        outcome.expansion_factor()
    );
    if !outcome.example_rules.is_empty() {
        let _ = writeln!(out, "\nexample high-coverage rules:");
        for rule in &outcome.example_rules {
            let _ = writeln!(out, "  {rule}");
        }
    }
    let _ = writeln!(out, "\n{}", crate::experiments::baselines_table(study));
    let _ = writeln!(out, "{}", crate::experiments::evasion_table(study));
    let _ = writeln!(out, "{}", crate::experiments::expansion_reach_table(study));

    let resolution = study.types().resolution_stats();
    let _ = writeln!(
        out,
        "\nAVType conflict resolution: {} no-conflict, {} voting, {} specificity, {} manual",
        resolution.no_conflict, resolution.voting, resolution.specificity, resolution.manual
    );
    out
}
