//! Plain-text rendering of experiment outputs.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A rendered table: title, column headers, string rows.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct TextTable {
    /// Table title (e.g. `"Table II — Breakdown of malicious files per type"`).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows; each must have `headers.len()` cells.
    pub rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|&h| h.to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count mismatches the header count.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        writeln!(f, "{}", self.title)?;
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(cell);
                let pad = widths[i].saturating_sub(cell.chars().count());
                line.extend(std::iter::repeat_n(' ', pad));
            }
            writeln!(f, "{}", line.trim_end())
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// A rendered figure: one or more named series of `(x, y)` points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Figure {
    /// Figure title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// Named series.
    pub series: Vec<(String, Vec<(f64, f64)>)>,
}

impl Figure {
    /// Creates a figure.
    pub fn new(title: impl Into<String>, x_label: &str, y_label: &str) -> Self {
        Self {
            title: title.into(),
            x_label: x_label.to_owned(),
            y_label: y_label.to_owned(),
            series: Vec::new(),
        }
    }

    /// Adds a series.
    pub fn push_series(&mut self, name: impl Into<String>, points: Vec<(f64, f64)>) {
        self.series.push((name.into(), points));
    }

    /// Renders each series as a compact textual sparkline of key points.
    pub fn render_text(&self) -> String {
        let mut out = format!("{}\n  ({} vs {})\n", self.title, self.y_label, self.x_label);
        for (name, points) in &self.series {
            out.push_str(&format!("  series {name} ({} pts):", points.len()));
            let take = 8usize;
            let step = (points.len() / take).max(1);
            for (i, (x, y)) in points.iter().enumerate() {
                if i % step == 0 || i + 1 == points.len() {
                    out.push_str(&format!(" ({x:.4}, {y:.4})"));
                }
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Figure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new("Demo", &["name", "count"]);
        t.push_row(vec!["softonic.com".into(), "64300".into()]);
        t.push_row(vec!["x.io".into(), "7".into()]);
        let s = t.to_string();
        assert!(s.starts_with("Demo\n"));
        assert!(s.contains("softonic.com"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        let mut t = TextTable::new("Demo", &["a", "b"]);
        t.push_row(vec!["only one".into()]);
    }

    #[test]
    fn figure_renders_series() {
        let mut fig = Figure::new("Fig 2", "prevalence", "CDF");
        fig.push_series("unknown", vec![(1.0, 0.9), (2.0, 0.95), (20.0, 1.0)]);
        let text = fig.to_string();
        assert!(text.contains("series unknown"));
        assert!(text.contains("(20.0000, 1.0000)"));
    }
}
