//! Live (online) classification over the raw event stream.
//!
//! The §VI rules exist to be deployed: classify unknown files *as the
//! telemetry arrives*, not in a seven-month batch. This module stages
//! that deployment on top of a finished [`Study`]:
//!
//! 1. [`prepare`] trains a PART ruleset on one month (the same recipe
//!    as the Table XVI/XVII experiments), compiles it to a
//!    [`CompiledRuleSet`], computes the **batch oracle** (per-file
//!    verdicts and feature vectors from the finished dataset), and
//!    codec-encodes the study's raw pre-admission event stream;
//! 2. [`LivePrep::replay`] re-consumes those bytes through a
//!    [`StreamSession`] — one event at a time, or in `downlake-exec`
//!    micro-batches — and reports whether the end-of-stream state is
//!    byte-identical to the batch oracle.
//!
//! Determinism contract: `threads` changes wall-clock time only. The
//! replay admits, extracts, and classifies in arrival order, so the
//! session's verdict list and vectors must equal the batch pipeline's
//! at every pool width (`tests/stream_equivalence.rs` pins this; the
//! `stream` bench exits non-zero if it ever breaks). No timing happens
//! here — benches own the clock.

use crate::pipeline::Study;
use downlake_exec::Pool;
use downlake_features::{build_training_set, Extractor, FileVectors};
use downlake_groundtruth::UrlLabeler;
use downlake_obs::{Clock, Registry};
use downlake_rulelearn::{ConflictPolicy, PartLearner, RuleSet, TreeConfig, Verdict};
use downlake_stream::{CompiledRuleSet, StreamSession};
use downlake_synth::World;
use downlake_telemetry::codec::encode_events;
use downlake_telemetry::{CodecError, ReportingPolicy, SuppressionStats};
use downlake_types::{FileHash, Month};

/// Configuration of a live replay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LiveConfig {
    /// Month whose labeled files train the deployed ruleset.
    pub train_month: Month,
    /// Rule-selection threshold τ (the paper deploys τ = 0.1%).
    pub tau: f64,
    /// Micro-batch size for pooled replay (`replay` with threads > 1).
    pub batch: usize,
}

impl Default for LiveConfig {
    fn default() -> Self {
        Self {
            train_month: Month::January,
            tau: 0.001,
            batch: 512,
        }
    }
}

/// Everything a replay needs, staged once per study: the compiled
/// engine, the batch oracle, and the codec-encoded raw stream.
#[derive(Debug)]
pub struct LivePrep<'a> {
    urls: &'a UrlLabeler,
    config: LiveConfig,
    sigma: u32,
    engine: CompiledRuleSet,
    batch_vectors: FileVectors,
    batch_verdicts: Vec<(FileHash, Verdict)>,
    events_total: usize,
    bytes: Vec<u8>,
}

/// End-of-stream state of one replay.
#[derive(Debug, Clone, PartialEq)]
pub struct LiveOutcome {
    /// Events decoded from the byte stream (admitted + suppressed).
    pub events_total: usize,
    /// Events the streaming collector admitted.
    pub events_admitted: u64,
    /// What the streaming collector suppressed.
    pub suppression: SuppressionStats,
    /// Distinct files sighted (= verdicts issued).
    pub files: usize,
    /// Verdict tally per class index.
    pub class_counts: Vec<usize>,
    /// Files rejected due to rule conflicts.
    pub rejected: usize,
    /// Files matching no rule.
    pub no_match: usize,
    /// Whether verdicts *and* vectors are byte-identical to the batch
    /// oracle — the subsystem's central invariant.
    pub matches_batch: bool,
    /// Per-file verdicts in first-sighting order.
    pub verdicts: Vec<(FileHash, Verdict)>,
    /// Per-file feature vectors in first-sighting order.
    pub vectors: FileVectors,
}

/// Trains the deployed ruleset with the Table XVI recipe: PART, unpruned
/// (τ-selection is the quality filter at sub-paper scale), re-scored
/// against the whole training set, support floor scaled to its size.
fn train_ruleset(
    study: &Study,
    month: Month,
    tau: f64,
    obs: Option<(&Registry, &dyn Clock)>,
) -> RuleSet {
    let extractor = Extractor::new(study.dataset(), study.url_labeler());
    let train = extractor.extract_first_seen(study.dataset().month(month).events());
    let gt = study.ground_truth();
    let instances = build_training_set(train.iter().map(|(hash, vector)| (vector, gt.label(hash))));
    if instances.is_empty() {
        return RuleSet::new(instances.schema().clone(), Vec::new());
    }
    let learner = PartLearner::new(TreeConfig {
        min_leaf: 4,
        prune: false,
        ..TreeConfig::default()
    });
    let full = match obs {
        Some((registry, clock)) => learner.learn_observed(&instances, registry, clock),
        None => learner.learn(&instances),
    };
    let full = full.reevaluate(&instances);
    let min_coverage = (instances.len() / 120).clamp(8, 16);
    full.select_with(tau, min_coverage)
}

/// Trains and compiles a deployable rule engine on `month` with the
/// Table XVI recipe [`prepare`] uses for its own engine — the
/// retraining entry point for the stream service's epoch-based hot swap
/// (`downlake::serve`): train on a later month, stage the compiled
/// result, and let the service publish it at the next epoch boundary.
pub fn train_engine(study: &Study, month: Month, tau: f64) -> CompiledRuleSet {
    CompiledRuleSet::compile(&train_ruleset(study, month, tau, None))
}

/// Stages a live replay of `study`'s raw event stream.
///
/// Trains and compiles the ruleset, classifies the finished dataset the
/// batch way (the oracle every replay is checked against), regenerates
/// the deterministic pre-admission event stream, and encodes it with
/// the telemetry codec — the same bytes a collection endpoint would
/// receive on the wire.
pub fn prepare(study: &Study, config: LiveConfig) -> LivePrep<'_> {
    prepare_impl(study, config, None)
}

/// [`prepare`] plus metric observation.
///
/// Training runs through `learn_observed` (iteration counters, rule
/// coverage histogram), the staging work is wrapped in `live.prepare` /
/// `live.train` spans, and the staged artifacts are counted
/// (`live.rules_deployed`, `live.batch_files`, `live.stream_bytes`, …).
/// The returned prep is identical to the unobserved path.
pub fn prepare_observed<'a>(
    study: &'a Study,
    config: LiveConfig,
    registry: &Registry,
    clock: &dyn Clock,
) -> LivePrep<'a> {
    let prep = {
        let _span = registry.span("live.prepare", clock);
        prepare_impl(study, config, Some((registry, clock)))
    };
    registry.counter_add("live.rules_deployed", prep.engine.rule_count() as u64);
    registry.counter_add("live.batch_files", prep.batch_vectors.len() as u64);
    registry.counter_add("live.events_encoded", prep.events_total as u64);
    registry.counter_add("live.stream_bytes", prep.bytes.len() as u64);
    prep
}

fn prepare_impl<'a>(
    study: &'a Study,
    config: LiveConfig,
    obs: Option<(&Registry, &dyn Clock)>,
) -> LivePrep<'a> {
    let ruleset = {
        let _span = obs.map(|(registry, clock)| registry.span("live.train", clock));
        train_ruleset(study, config.train_month, config.tau, obs)
    };
    let engine = CompiledRuleSet::compile(&ruleset);

    // Batch oracle: vectors from the finished dataset, verdicts through
    // the batch classifier (interned encoder hoisted out of the loop).
    let extractor = Extractor::new(study.dataset(), study.url_labeler());
    let batch_vectors = extractor.extract_files();
    let encoder = ruleset.encoder();
    let mut encoded = Vec::new();
    let mut batch_verdicts = Vec::with_capacity(batch_vectors.len());
    for (hash, vector) in batch_vectors.iter() {
        encoder.encode_into(&vector.values(), &mut encoded);
        batch_verdicts.push((hash, ruleset.classify(&encoded, ConflictPolicy::Reject)));
    }

    // The raw stream the study's collection server consumed. A
    // lake-backed study replays it straight off the verified segments —
    // the merged frame bytes equal `encode_events` of the canonical
    // stream, no regeneration. Otherwise (or if the lake fails
    // underneath us) the stream is regenerated bit-for-bit (generation
    // is deterministic at any shard count) and serialized to wire
    // frames.
    let lake_bytes = study
        .lake()
        .and_then(|lake| lake.encode_merged().ok().map(|b| (lake.event_count(), b)));
    let (events_total, bytes) = match lake_bytes {
        Some((events, bytes)) => (events as usize, bytes),
        None => {
            let pool = Pool::new(study.config().threads);
            let generated =
                World::generate_with(&study.config().synth, study.config().shards, &pool);
            (generated.events.len(), encode_events(&generated.events))
        }
    };

    LivePrep {
        urls: study.url_labeler(),
        config,
        sigma: study.config().synth.sigma,
        engine,
        batch_vectors,
        batch_verdicts,
        events_total,
        bytes,
    }
}

impl LivePrep<'_> {
    /// The compiled engine replays classify with.
    pub fn engine(&self) -> &CompiledRuleSet {
        &self.engine
    }

    /// The configuration this prep was staged with.
    pub fn config(&self) -> LiveConfig {
        self.config
    }

    /// Events in the encoded stream.
    pub fn events_total(&self) -> usize {
        self.events_total
    }

    /// Size of the encoded stream in bytes.
    pub fn stream_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// The codec-encoded raw event stream itself — the same wire bytes
    /// [`LivePrep::replay`] consumes, exposed so the stream service
    /// (`downlake::serve`) can drive sharded runs, snapshot/resume
    /// splits, and hot-swap replays over the identical stream.
    pub fn stream(&self) -> &[u8] {
        &self.bytes
    }

    /// The study's prevalence cap σ — the policy every replay of this
    /// prep admits under.
    pub fn sigma(&self) -> u32 {
        self.sigma
    }

    /// Replays the encoded stream through a fresh [`StreamSession`].
    ///
    /// `threads <= 1` pushes one event at a time (the latency shape);
    /// otherwise events flow in micro-batches of `config.batch` through
    /// a pool of `threads` workers (the throughput shape). Both produce
    /// identical outcomes.
    ///
    /// # Errors
    ///
    /// Returns the first [`CodecError`] if the byte stream is malformed
    /// — impossible for bytes produced by [`prepare`].
    pub fn replay(&self, threads: usize) -> Result<LiveOutcome, CodecError> {
        self.replay_impl(threads, None)
    }

    /// [`LivePrep::replay`] plus metric observation.
    ///
    /// The whole replay runs under a `live.replay` span and the
    /// end-of-stream session state lands in `registry` via
    /// [`StreamSession::observe_into`] (admission, suppression, and
    /// per-class verdict counters). The outcome is identical to the
    /// unobserved path at every pool width.
    ///
    /// # Errors
    ///
    /// Same contract as [`LivePrep::replay`].
    pub fn replay_observed(
        &self,
        threads: usize,
        registry: &Registry,
        clock: &dyn Clock,
    ) -> Result<LiveOutcome, CodecError> {
        self.replay_impl(threads, Some((registry, clock)))
    }

    fn replay_impl(
        &self,
        threads: usize,
        obs: Option<(&Registry, &dyn Clock)>,
    ) -> Result<LiveOutcome, CodecError> {
        let _span = obs.map(|(registry, clock)| registry.span("live.replay", clock));
        // The session must admit exactly what the batch study's collection
        // server admitted, so the policy mirrors the study's σ.
        let mut session = StreamSession::new(
            ReportingPolicy::paper_whitelist(self.sigma),
            self.urls,
            &self.engine,
        );
        let events_total = if threads <= 1 {
            session.push_bytes(&self.bytes)?
        } else {
            let pool = Pool::new(threads);
            session.push_bytes_batched(&self.bytes, self.config.batch, &pool)?
        };
        if let Some((registry, _)) = obs {
            session.observe_into(registry);
        }
        let (class_counts, rejected, no_match) = session.verdict_counts();
        let matches_batch = session.verdicts() == self.batch_verdicts.as_slice()
            && session.vectors() == &self.batch_vectors;
        Ok(LiveOutcome {
            events_total,
            events_admitted: session.events_admitted(),
            suppression: session.suppression_stats(),
            files: session.verdicts().len(),
            class_counts,
            rejected,
            no_match,
            matches_batch,
            verdicts: session.verdicts().to_vec(),
            vectors: session.vectors().clone(),
        })
    }
}

/// Renders a replay outcome for the CLI (counts only — benches own the
/// clock).
pub fn render_summary(prep: &LivePrep<'_>, outcome: &LiveOutcome) -> String {
    let mut lines = Vec::new();
    lines.push(format!("events decoded    {}", outcome.events_total));
    lines.push(format!("events admitted   {}", outcome.events_admitted));
    let s = outcome.suppression;
    lines.push(format!(
        "suppressed        {} (not-executed {}, prevalence-cap {}, whitelisted {})",
        s.total(),
        s.not_executed,
        s.prevalence_cap,
        s.whitelisted_url
    ));
    lines.push(format!("distinct files    {}", outcome.files));
    lines.push(format!(
        "rules compiled    {} over {} attributes",
        prep.engine().rule_count(),
        prep.engine().arity()
    ));
    for (class, count) in outcome.class_counts.iter().enumerate() {
        let name = prep
            .engine()
            .class_name(Verdict::Class(class as u8))
            .unwrap_or("?");
        lines.push(format!("verdict {name:<10} {count}"));
    }
    lines.push(format!("verdict rejected  {}", outcome.rejected));
    lines.push(format!("verdict no-match  {}", outcome.no_match));
    lines.push(format!(
        "matches batch     {}",
        if outcome.matches_batch { "yes" } else { "NO" }
    ));
    lines.join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::StudyConfig;
    use downlake_synth::Scale;

    #[test]
    fn replay_reproduces_the_batch_pipeline_at_any_width() {
        let study = Study::run(&StudyConfig::new(7).with_scale(Scale::Tiny));
        let prep = prepare(&study, LiveConfig::default());
        assert!(prep.events_total() > 1_000);
        assert!(prep.stream_bytes() > prep.events_total() * 8);

        let one = prep.replay(1).expect("well-formed stream");
        let four = prep.replay(4).expect("well-formed stream");

        assert!(one.matches_batch, "per-event replay must equal batch");
        assert!(four.matches_batch, "batched replay must equal batch");
        assert_eq!(one, four, "pool width must never change the outcome");

        // The streaming collector re-derives the study's own suppression.
        assert_eq!(one.suppression, study.suppression());
        assert_eq!(one.files, study.dataset().files().len());
        assert_eq!(
            one.events_admitted as usize,
            study.dataset().stats().events,
            "admitted events must equal the dataset's event count"
        );

        // The summary renders without a panic and names the invariant.
        let summary = render_summary(&prep, &one);
        assert!(summary.contains("matches batch     yes"));
    }

    #[test]
    fn observed_replay_is_transparent_and_thread_invariant() {
        use downlake_obs::{Registry, TestClock};
        let study = Study::run(&StudyConfig::new(7).with_scale(Scale::Tiny));
        let registry = Registry::new();
        let clock = TestClock::with_tick(1);
        let prep = prepare_observed(&study, LiveConfig::default(), &registry, &clock);
        let plain = prepare(&study, LiveConfig::default());
        assert_eq!(prep.engine().rule_count(), plain.engine().rule_count());
        assert_eq!(prep.stream_bytes(), plain.stream_bytes());
        let staged = registry.snapshot();
        assert!(staged.counters["live.rules_deployed"] > 0);
        assert_eq!(
            staged.counters["live.stream_bytes"],
            plain.stream_bytes() as u64
        );
        assert_eq!(staged.timings["live.prepare"].count(), 1);

        // Observation never perturbs the outcome, and the deterministic
        // plane agrees at every pool width even under different clocks.
        let r1 = Registry::new();
        let one = prep
            .replay_observed(1, &r1, &TestClock::with_tick(1))
            .expect("well-formed stream");
        let r4 = Registry::new();
        let four = prep
            .replay_observed(4, &r4, &TestClock::with_tick(5))
            .expect("well-formed stream");
        assert_eq!(one, prep.replay(1).expect("well-formed stream"));
        assert_eq!(one, four);
        let (s1, s4) = (r1.snapshot(), r4.snapshot());
        assert_eq!(s1.counters, s4.counters);
        assert_eq!(s1.gauges, s4.gauges);
        assert_eq!(s1.counters["stream.files_classified"], one.files as u64);
        assert_eq!(s1.timings["live.replay"].count(), 1);
    }
}
