//! Regeneration functions for every table and figure of the paper's
//! evaluation. Each function consumes a completed [`Study`] and returns a
//! renderable [`TextTable`] or [`Figure`].

mod baselines;
mod evasion;
mod rules;

pub use baselines::{
    baselines_table, domain_reputation, graph_reputation, BaselineReport, BucketEval,
};

pub use evasion::{
    evasion_rows, evasion_table, expansion_reach, expansion_reach_table, EvasionRow,
    EvasionStrategy, ExpansionReach,
};
pub use rules::{
    render_table16, render_table17, rule_experiments, rule_experiments_over, table15, table16,
    table17, RuleExperimentOutcome, RuleRoundReport, TAU_SETTINGS,
};

use crate::pipeline::Study;
use crate::render::{Figure, TextTable};
use downlake_analysis::{EscalationKind, ProcessBehaviorRow, RankSource};
use downlake_types::{FileLabel, MalwareType};
use std::collections::BTreeMap;

fn pct(x: f64) -> String {
    format!("{x:.1}%")
}

fn pct2(x: f64) -> String {
    format!("{x:.2}%")
}

/// Table I: monthly summary of collected data, plus the Overall row.
pub fn table1(study: &Study) -> TextTable {
    let rows = study
        .frame()
        .monthly_summary(|e2ld| study.url_labeler().label_e2ld(e2ld));
    let overall = overall_row(study);
    let mut table = TextTable::new(
        "Table I — Monthly summary of collected data",
        &[
            "Month", "Machines", "Events", "Procs", "P-ben", "P-lben", "P-mal", "P-lmal", "Files",
            "F-ben", "F-lben", "F-mal", "F-lmal", "URLs", "U-ben", "U-mal",
        ],
    );
    for r in rows {
        table.push_row(vec![
            r.month.to_string(),
            r.machines.to_string(),
            r.events.to_string(),
            r.processes.to_string(),
            pct(r.process_shares.benign),
            pct(r.process_shares.likely_benign),
            pct(r.process_shares.malicious),
            pct(r.process_shares.likely_malicious),
            r.files.to_string(),
            pct(r.file_shares.benign),
            pct(r.file_shares.likely_benign),
            pct(r.file_shares.malicious),
            pct(r.file_shares.likely_malicious),
            r.urls.to_string(),
            pct(r.url_benign),
            pct(r.url_malicious),
        ]);
    }
    table.push_row(overall);
    table
}

/// The Table I "Overall" row: distinct counts over the whole window.
fn overall_row(study: &Study) -> Vec<String> {
    use downlake_types::{FileLabel, UrlLabel};
    let ds = study.dataset();
    let stats = ds.stats();
    let frame = study.frame();

    let mut file_counts = [0usize; 4];
    for &label in frame.file_labels() {
        bump_label(&mut file_counts, label);
    }
    let mut process_counts = [0usize; 4];
    for &label in frame.process_labels() {
        bump_label(&mut process_counts, label);
    }
    let mut url_benign = 0usize;
    let mut url_malicious = 0usize;
    for (_, url) in ds.urls().iter() {
        match study.url_labeler().label_e2ld(url.e2ld()) {
            UrlLabel::Benign => url_benign += 1,
            UrlLabel::Malicious => url_malicious += 1,
            UrlLabel::Unknown => {}
        }
    }
    fn bump_label(counts: &mut [usize; 4], label: FileLabel) {
        let [benign, likely_benign, malicious, likely_malicious] = counts;
        match label {
            FileLabel::Benign => *benign += 1,
            FileLabel::LikelyBenign => *likely_benign += 1,
            FileLabel::Malicious => *malicious += 1,
            FileLabel::LikelyMalicious => *likely_malicious += 1,
            FileLabel::Unknown => {}
        }
    }
    let share = |n: usize, total: usize| {
        if total == 0 {
            "0.0%".to_owned()
        } else {
            format!("{:.1}%", 100.0 * n as f64 / total as f64)
        }
    };
    let [p_benign, p_likely_benign, p_malicious, p_likely_malicious] = process_counts;
    let [f_benign, f_likely_benign, f_malicious, f_likely_malicious] = file_counts;
    vec![
        "Overall".to_owned(),
        stats.machines.to_string(),
        stats.events.to_string(),
        stats.processes.to_string(),
        share(p_benign, stats.processes),
        share(p_likely_benign, stats.processes),
        share(p_malicious, stats.processes),
        share(p_likely_malicious, stats.processes),
        stats.files.to_string(),
        share(f_benign, stats.files),
        share(f_likely_benign, stats.files),
        share(f_malicious, stats.files),
        share(f_likely_malicious, stats.files),
        stats.urls.to_string(),
        share(url_benign, stats.urls),
        share(url_malicious, stats.urls),
    ]
}

/// Fig. 1: distribution of malware families (top 25).
pub fn fig1(study: &Study) -> TextTable {
    let mut counts: BTreeMap<&str, u64> = BTreeMap::new();
    let mut unnamed = 0u64;
    let mut named = 0u64;
    let labels = study.frame().file_labels();
    for (i, record) in study.dataset().files().iter().enumerate() {
        if labels[i] != FileLabel::Malicious {
            continue;
        }
        match study.types().family(record.hash) {
            Some(f) => {
                *counts.entry(f).or_insert(0) += 1;
                named += 1;
            }
            None => unnamed += 1,
        }
    }
    let mut rows: Vec<(&str, u64)> = counts.into_iter().collect();
    rows.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
    rows.truncate(25);
    let mut table = TextTable::new(
        format!(
            "Fig. 1 — Top 25 malware families ({} named, {} unnamed = {:.0}% unnameable)",
            named,
            unnamed,
            100.0 * unnamed as f64 / (named + unnamed).max(1) as f64
        ),
        &["family", "# samples"],
    );
    for (family, n) in rows {
        table.push_row(vec![family.to_owned(), n.to_string()]);
    }
    table
}

/// Table II: breakdown of malicious files per behaviour type.
pub fn table2(study: &Study) -> TextTable {
    let frame = study.frame();
    let mut counts: BTreeMap<MalwareType, usize> = BTreeMap::new();
    let mut total = 0usize;
    for (i, &label) in frame.file_labels().iter().enumerate() {
        if label != FileLabel::Malicious {
            continue;
        }
        let ty = frame.file_types()[i].unwrap_or(MalwareType::Undefined);
        *counts.entry(ty).or_insert(0) += 1;
        total += 1;
    }
    let mut table = TextTable::new(
        "Table II — Breakdown of downloaded malicious files per type",
        &["Type", "Share"],
    );
    for ty in MalwareType::ALL {
        let n = counts.get(&ty).copied().unwrap_or(0);
        table.push_row(vec![
            ty.name().to_owned(),
            pct2(100.0 * n as f64 / total.max(1) as f64),
        ]);
    }
    table
}

/// Fig. 2: prevalence of downloaded files, per class.
pub fn fig2(study: &Study) -> Figure {
    let report = study
        .frame()
        .prevalence_report(study.config().synth.sigma as usize);
    let mut fig = Figure::new(
        format!(
            "Fig. 2 — File prevalence (P(1)={:.1}%, capped={:.2}%, machines touching unknown={:.1}%)",
            report.prevalence_one_share, report.capped_share, report.machines_touching_unknown
        ),
        "prevalence",
        "CCDF-style counts",
    );
    let to_points = |m: &BTreeMap<usize, usize>| -> Vec<(f64, f64)> {
        let total: usize = m.values().sum();
        let mut cum = 0usize;
        m.iter()
            .map(|(&p, &n)| {
                cum += n;
                (p as f64, cum as f64 / total.max(1) as f64)
            })
            .collect()
    };
    fig.push_series("all", to_points(&report.all));
    fig.push_series("benign", to_points(&report.benign));
    fig.push_series("malicious", to_points(&report.malicious));
    fig.push_series("unknown", to_points(&report.unknown));
    fig
}

/// Table III: domains with the highest download popularity.
pub fn table3(study: &Study) -> TextTable {
    let [overall, benign, malicious] = study.frame().domain_popularity(10);
    let mut table = TextTable::new(
        "Table III — Domains with highest download popularity (distinct machines)",
        &["Overall", "#m", "Benign", "#m", "Malicious", "#m"],
    );
    for i in 0..10 {
        let cell = |v: &[downlake_analysis::DomainCount], i: usize| -> (String, String) {
            v.get(i)
                .map(|d| (d.domain.clone(), d.count.to_string()))
                .unwrap_or_default()
        };
        let (o, oc) = cell(&overall, i);
        let (b, bc) = cell(&benign, i);
        let (m, mc) = cell(&malicious, i);
        if o.is_empty() && b.is_empty() && m.is_empty() {
            break;
        }
        table.push_row(vec![o, oc, b, bc, m, mc]);
    }
    table
}

/// Table IV: number of distinct files served per domain.
pub fn table4(study: &Study) -> TextTable {
    let [benign, malicious] = study.frame().files_per_domain(10);
    let mut table = TextTable::new(
        "Table IV — Number of files served per domain (top 10)",
        &["Benign domain", "#files", "Malicious domain", "#files"],
    );
    for i in 0..10 {
        let b = benign.get(i);
        let m = malicious.get(i);
        if b.is_none() && m.is_none() {
            break;
        }
        table.push_row(vec![
            b.map(|d| d.domain.clone()).unwrap_or_default(),
            b.map(|d| d.count.to_string()).unwrap_or_default(),
            m.map(|d| d.domain.clone()).unwrap_or_default(),
            m.map(|d| d.count.to_string()).unwrap_or_default(),
        ]);
    }
    table
}

fn rank_source(study: &Study) -> RankSource<'_> {
    RankSource::new(move |e2ld| study.url_labeler().rank(e2ld).rank())
}

/// Fig. 3: Alexa-rank distribution of benign vs malicious hosting domains.
pub fn fig3(study: &Study) -> Figure {
    let ranks = rank_source(study);
    let (benign, benign_unranked) = study.frame().rank_distribution(&ranks, FileLabel::Benign);
    let (malicious, malicious_unranked) = study
        .frame()
        .rank_distribution(&ranks, FileLabel::Malicious);
    let mut fig = Figure::new(
        format!(
            "Fig. 3 — Alexa ranks of hosting domains (unranked: benign={benign_unranked}, malicious={malicious_unranked})"
        ),
        "alexa rank",
        "CDF",
    );
    fig.push_series("benign", benign.points(64));
    fig.push_series("malicious", malicious.points(64));
    fig
}

/// Table V: popular download domains per type of malicious file.
pub fn table5(study: &Study) -> TextTable {
    let tables = study.frame().type_domain_tables(5);
    let mut table = TextTable::new(
        "Table V — Popular download domains per type of malicious file",
        &["Type", "Domain", "#files"],
    );
    for ty in MalwareType::ALL {
        if let Some(rows) = tables.get(&ty) {
            for d in rows {
                table.push_row(vec![
                    ty.name().to_owned(),
                    d.domain.clone(),
                    d.count.to_string(),
                ]);
            }
        }
    }
    table
}

/// Table VI: percentage of signed files per class.
pub fn table6(study: &Study) -> TextTable {
    let rows = study.frame().signing_rates_table();
    let mut table = TextTable::new(
        "Table VI — Percentage of signed benign, unknown, and malicious files",
        &[
            "Type",
            "# files",
            "Signed",
            "# from browsers",
            "Signed (browsers)",
        ],
    );
    for r in rows {
        table.push_row(vec![
            r.class,
            r.files.to_string(),
            pct(r.signed_pct),
            r.browser_files.to_string(),
            pct(r.browser_signed_pct),
        ]);
    }
    table
}

/// Table VII: common signers among malicious file types.
pub fn table7(study: &Study) -> TextTable {
    let rows = study.frame().signer_overlap();
    let mut table = TextTable::new(
        "Table VII — Common signers among malicious file types",
        &["Type", "# signers", "In common with benign"],
    );
    for r in rows {
        table.push_row(vec![
            r.class,
            r.signers.to_string(),
            r.common_with_benign.to_string(),
        ]);
    }
    table
}

/// Table VIII: top signers of different file types.
pub fn table8(study: &Study) -> TextTable {
    let report = study.frame().top_signers(3);
    let mut table = TextTable::new(
        "Table VIII — Top signers of different file types",
        &[
            "Type",
            "Top signers",
            "Top common with benign",
            "Top exclusive to malware",
        ],
    );
    let join = |v: &[(String, u64)]| {
        v.iter()
            .map(|(s, _)| s.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    };
    for (ty, top, common, exclusive) in &report.per_type {
        table.push_row(vec![ty.clone(), join(top), join(common), join(exclusive)]);
    }
    table
}

/// Table IX: top exclusively-benign and exclusively-malicious signers.
pub fn table9(study: &Study) -> TextTable {
    let report = study.frame().top_signers(10);
    let mut table = TextTable::new(
        "Table IX — Top signers that exclusively signed benign or malicious files",
        &["Benign signer", "# files", "Malicious signer", "# files"],
    );
    for i in 0..10 {
        let b = report.benign_exclusive.get(i);
        let m = report.malicious_exclusive.get(i);
        if b.is_none() && m.is_none() {
            break;
        }
        table.push_row(vec![
            b.map(|(s, _)| s.clone()).unwrap_or_default(),
            b.map(|(_, n)| n.to_string()).unwrap_or_default(),
            m.map(|(s, _)| s.clone()).unwrap_or_default(),
            m.map(|(_, n)| n.to_string()).unwrap_or_default(),
        ]);
    }
    table
}

/// Fig. 4: common signers between malicious and benign files (scatter).
pub fn fig4(study: &Study) -> Figure {
    let report = study.frame().top_signers(10);
    let mut fig = Figure::new(
        format!(
            "Fig. 4 — Common signers between malicious and benign files ({} shared signers)",
            report.scatter.len()
        ),
        "# benign files",
        "# malicious files",
    );
    fig.push_series(
        "shared signers",
        report
            .scatter
            .iter()
            .map(|p| (p.benign_files as f64, p.malicious_files as f64))
            .collect(),
    );
    fig
}

/// §IV-C packer statistics (prose numbers rendered as a table).
pub fn packers(study: &Study) -> TextTable {
    let report = study.frame().packer_report();
    let mut table = TextTable::new("§IV-C — Packer usage overlap", &["Metric", "Value"]);
    table.push_row(vec![
        "benign files packed".into(),
        pct(report.benign_packed_pct),
    ]);
    table.push_row(vec![
        "malicious files packed".into(),
        pct(report.malicious_packed_pct),
    ]);
    table.push_row(vec![
        "distinct packers".into(),
        report.total_packers.to_string(),
    ]);
    table.push_row(vec![
        "shared packers".into(),
        report.shared_packers.to_string(),
    ]);
    table.push_row(vec![
        "malicious-exclusive packers".into(),
        report.malicious_only.len().to_string(),
    ]);
    table.push_row(vec![
        "example malicious-exclusive".into(),
        report
            .malicious_only
            .iter()
            .take(3)
            .cloned()
            .collect::<Vec<_>>()
            .join(", "),
    ]);
    table.push_row(vec![
        "example shared".into(),
        report
            .shared
            .iter()
            .take(4)
            .cloned()
            .collect::<Vec<_>>()
            .join(", "),
    ]);
    table
}

fn behavior_table(title: &str, rows: Vec<ProcessBehaviorRow>) -> TextTable {
    let mut table = TextTable::new(
        title,
        &[
            "Row",
            "Procs",
            "Machines",
            "Unknown",
            "Benign",
            "Malicious",
            "Infected",
            "Top malicious types",
        ],
    );
    for r in rows {
        let mix = r
            .type_mix
            .iter()
            .take(4)
            .map(|(ty, p)| format!("{}={:.1}%", ty.name(), p))
            .collect::<Vec<_>>()
            .join(", ");
        table.push_row(vec![
            r.label,
            r.processes.to_string(),
            r.machines.to_string(),
            r.unknown_files.to_string(),
            r.benign_files.to_string(),
            r.malicious_files.to_string(),
            pct(r.infected_pct),
            mix,
        ]);
    }
    table
}

/// Table X: download behaviour of benign processes by category.
pub fn table10(study: &Study) -> TextTable {
    behavior_table(
        "Table X — Download behavior of benign processes (by category)",
        study.frame().category_behavior(),
    )
}

/// Table XI: download behaviour per browser.
pub fn table11(study: &Study) -> TextTable {
    behavior_table(
        "Table XI — Download behavior of benign browser processes",
        study.frame().browser_behavior(),
    )
}

/// Table XII: download behaviour of malicious processes per type.
pub fn table12(study: &Study) -> TextTable {
    behavior_table(
        "Table XII — Download behavior of malicious processes (by type)",
        study.frame().malicious_process_behavior(),
    )
}

/// Fig. 5: time delta between benign/adware/pup/dropper and other malware.
pub fn fig5(study: &Study) -> Figure {
    let report = study.frame().escalation_cdf();
    let mut fig = Figure::new(
        "Fig. 5 — Time delta between downloading benign/adware/pup/dropper and other malware",
        "days",
        "CDF",
    );
    for (kind, cdf, n) in &report.curves {
        fig.push_series(format!("{} (n={n})", kind.name()), cdf.points(32));
    }
    fig
}

/// Convenience: the same report as [`fig5`], as quantile rows.
pub fn fig5_quantiles(study: &Study) -> TextTable {
    let report = study.frame().escalation_cdf();
    let mut table = TextTable::new(
        "Fig. 5 (quantiles) — share of machines escalating within N days",
        &["Seed", "day 0", "≤5 days", "≤30 days", "samples"],
    );
    for kind in EscalationKind::ALL {
        if let Some(cdf) = report.curve(kind) {
            table.push_row(vec![
                kind.name().to_owned(),
                pct(100.0 * cdf.eval(0.0)),
                pct(100.0 * cdf.eval(5.0)),
                pct(100.0 * cdf.eval(30.0)),
                cdf.len().to_string(),
            ]);
        }
    }
    table
}

/// Fig. 6: Alexa-rank distribution of domains hosting unknown files.
pub fn fig6(study: &Study) -> Figure {
    let ranks = rank_source(study);
    let (unknown, unranked) = study.frame().rank_distribution(&ranks, FileLabel::Unknown);
    let mut fig = Figure::new(
        format!("Fig. 6 — Alexa ranks of domains hosting unknown files (unranked={unranked})"),
        "alexa rank",
        "CDF",
    );
    fig.push_series("unknown", unknown.points(64));
    fig
}

/// Table XIII: top 10 domains serving unknown files (by downloads).
pub fn table13(study: &Study) -> TextTable {
    let rows = study
        .frame()
        .top_domains_by_downloads(FileLabel::Unknown, 10);
    let mut table = TextTable::new(
        "Table XIII — Top 10 download domains (unknown files)",
        &["Domain", "# downloads"],
    );
    for d in rows {
        table.push_row(vec![d.domain, d.count.to_string()]);
    }
    table
}

/// Table XIV: process categories downloading unknown files.
pub fn table14(study: &Study) -> TextTable {
    let rows = study.frame().unknown_download_categories();
    let mut table = TextTable::new(
        "Table XIV — Categories of processes downloading unknown files",
        &["Downloading process type", "# unknown files"],
    );
    for (label, n) in rows {
        table.push_row(vec![label, n.to_string()]);
    }
    table
}
