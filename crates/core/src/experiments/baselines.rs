//! Related-work baselines (§VIII), implemented so the paper's arguments
//! against them can be *measured* instead of cited:
//!
//! * **Graph reputation (Polonium-style)** — belief propagation over the
//!   bipartite machine↔file graph. The paper notes Polonium "does not
//!   work on files seen on single machines" and reaches only ~48%
//!   detection at prevalence 2–3; this module reproduces that failure
//!   mode on the long tail.
//! * **Domain reputation (CAMP/Amico-style)** — score a file by the
//!   malicious share of its serving domain in the training window. The
//!   paper's §IV-B argues mixed-reputation hosting makes this noisy;
//!   here that shows up as false positives on benign files served by
//!   softonic-style hosts.

use crate::pipeline::Study;
use crate::render::TextTable;
use downlake_types::{FileHash, FileLabel, MachineId, Month};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Per-prevalence-bucket evaluation of a baseline classifier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct BucketEval {
    /// Malicious test files in the bucket.
    pub malicious: usize,
    /// Of those, detected.
    pub detected: usize,
    /// Benign test files in the bucket.
    pub benign: usize,
    /// Of those, false-positived.
    pub false_positives: usize,
}

impl BucketEval {
    /// Detection rate over malicious files (0 when none).
    pub fn detection_rate(&self) -> f64 {
        if self.malicious == 0 {
            0.0
        } else {
            self.detected as f64 / self.malicious as f64
        }
    }

    /// FP rate over benign files (0 when none).
    pub fn fp_rate(&self) -> f64 {
        if self.benign == 0 {
            0.0
        } else {
            self.false_positives as f64 / self.benign as f64
        }
    }
}

/// A baseline's evaluation, bucketed by file prevalence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct BaselineReport {
    /// `(bucket label, eval)` in display order.
    pub buckets: Vec<(String, BucketEval)>,
}

/// Prevalence buckets matching the Polonium discussion.
fn bucket_label(prevalence: usize) -> &'static str {
    match prevalence {
        0 | 1 => "prevalence 1",
        2 | 3 => "prevalence 2-3",
        _ => "prevalence 4+",
    }
}

/// Training/test split shared by both baselines: train on January-to-
/// train-month knowledge, evaluate on the following month's labeled
/// files (mirroring the rule experiments' protocol).
struct Split {
    test: Vec<(FileHash, bool)>, // (file, is_malicious)
}

fn split(study: &Study, train_month: Month) -> Split {
    let gt = study.ground_truth();
    let Some(test_month) = train_month.next() else {
        // Unreachable: callers iterate up to the second-to-last month.
        return Split { test: Vec::new() };
    };
    let train_files: HashSet<FileHash> = study
        .dataset()
        .month(train_month)
        .events()
        .iter()
        .map(|e| e.file)
        .collect();
    let mut seen = HashSet::new();
    let mut test = Vec::new();
    for event in study.dataset().month(test_month).events() {
        if !seen.insert(event.file) || train_files.contains(&event.file) {
            continue;
        }
        match gt.label(event.file) {
            FileLabel::Benign => test.push((event.file, false)),
            FileLabel::Malicious => test.push((event.file, true)),
            _ => {}
        }
    }
    let _ = train_files;
    Split { test }
}

/// Polonium-style graph reputation: two rounds of belief propagation on
/// the machine↔file bipartite graph, seeded by the training labels.
///
/// Returns the per-prevalence-bucket evaluation on the test files.
pub fn graph_reputation(study: &Study, train_month: Month) -> BaselineReport {
    let gt = study.ground_truth();
    let dataset = study.dataset();
    let split = split(study, train_month);

    // Machine badness prior: share of the machine's *training-window*
    // downloads that are known malicious.
    let mut machine_score: HashMap<MachineId, (f64, f64)> = HashMap::new(); // (bad, total)
    for event in dataset.month(train_month).events() {
        let entry = machine_score.entry(event.machine).or_insert((0.0, 0.0));
        entry.1 += 1.0;
        match gt.label(event.file) {
            FileLabel::Malicious => entry.0 += 1.0,
            FileLabel::Benign => {}
            // Unknowns contribute weak prior mass only to the denominator.
            _ => entry.1 -= 0.5,
        }
    }
    let machine_badness: HashMap<MachineId, f64> = machine_score
        .into_iter()
        .map(|(m, (bad, total))| {
            (
                m,
                if total <= 0.0 {
                    0.5
                } else {
                    (bad / total).clamp(0.0, 1.0)
                },
            )
        })
        .collect();

    // One propagation step: file badness = mean badness of its machines
    // (machines unseen in training carry an uninformative 0.5).
    let mut report: HashMap<&'static str, BucketEval> = HashMap::new();
    for &(file, is_malicious) in &split.test {
        let machines = dataset.machines_of_file(file);
        let (mut sum, mut n) = (0.0, 0usize);
        for m in machines {
            sum += machine_badness.get(m).copied().unwrap_or(0.5);
            n += 1;
        }
        let score = if n == 0 { 0.5 } else { sum / n as f64 };
        // Polonium's central weakness: a single uninformative machine
        // leaves the file at the prior — scores need corroboration.
        let detected = score > 0.6 && n >= 2;
        let flagged_benign = score < 0.2 && n >= 2;
        let bucket = report.entry(bucket_label(n)).or_default();
        if is_malicious {
            bucket.malicious += 1;
            if detected {
                bucket.detected += 1;
            }
        } else {
            bucket.benign += 1;
            if detected && !flagged_benign {
                bucket.false_positives += 1;
            }
        }
    }
    finish(report)
}

/// CAMP/Amico-style domain reputation: a file is flagged when the e2LD it
/// was downloaded from served a majority-malicious mix of the *labeled*
/// training files.
pub fn domain_reputation(study: &Study, train_month: Month) -> BaselineReport {
    let gt = study.ground_truth();
    let dataset = study.dataset();
    let split = split(study, train_month);

    // Scores are dense vectors over e2LD ids — no string keys or clones.
    let mut domain_score: Vec<(f64, f64)> = vec![(0.0, 0.0); dataset.urls().e2ld_count()];
    let mut counted: HashSet<(FileHash, downlake_types::E2ldId)> = HashSet::new();
    for event in dataset.month(train_month).events() {
        let e2ld = dataset.urls().e2ld_of(event.url);
        if !counted.insert((event.file, e2ld)) {
            continue;
        }
        let entry = &mut domain_score[e2ld.index()];
        match gt.label(event.file) {
            FileLabel::Malicious => {
                entry.0 += 1.0;
                entry.1 += 1.0;
            }
            FileLabel::Benign => entry.1 += 1.0,
            _ => {}
        }
    }

    // Test files: use the first event's domain (the deployment view).
    // Events are time-ordered, so the first write per file id wins.
    let mut first_domain: Vec<Option<downlake_types::E2ldId>> = vec![None; dataset.files().len()];
    for (e, event) in dataset.events().iter().enumerate() {
        let slot = &mut first_domain[dataset.event_files()[e].index()];
        if slot.is_none() {
            *slot = Some(dataset.urls().e2ld_of(event.url));
        }
    }

    let mut report: HashMap<&'static str, BucketEval> = HashMap::new();
    for &(file, is_malicious) in &split.test {
        let prevalence = dataset.prevalence(file);
        let score = dataset
            .files()
            .id_of(file)
            .and_then(|id| first_domain[id.index()])
            .map(|d| {
                let (bad, labeled) = domain_score[d.index()];
                if labeled < 3.0 {
                    0.5
                } else {
                    bad / labeled
                }
            })
            .unwrap_or(0.5);
        let detected = score > 0.6;
        let bucket = report.entry(bucket_label(prevalence)).or_default();
        if is_malicious {
            bucket.malicious += 1;
            if detected {
                bucket.detected += 1;
            }
        } else {
            bucket.benign += 1;
            if detected {
                bucket.false_positives += 1;
            }
        }
    }
    finish(report)
}

fn finish(map: HashMap<&'static str, BucketEval>) -> BaselineReport {
    let order = ["prevalence 1", "prevalence 2-3", "prevalence 4+"];
    BaselineReport {
        buckets: order
            .iter()
            .filter_map(|&label| map.get(label).map(|&b| (label.to_owned(), b)))
            .collect(),
    }
}

/// Renders both baselines against the rule system's bucketed results.
pub fn baselines_table(study: &Study) -> TextTable {
    let train_month = Month::January;
    let graph = graph_reputation(study, train_month);
    let domain = domain_reputation(study, train_month);
    let mut table = TextTable::new(
        "§VIII — Related-work baselines by file prevalence (train Jan, test Feb)",
        &["Baseline", "Bucket", "# mal", "Detected", "# ben", "FP"],
    );
    for (name, report) in [("graph reputation", &graph), ("domain reputation", &domain)] {
        for (bucket, eval) in &report.buckets {
            table.push_row(vec![
                name.to_owned(),
                bucket.clone(),
                eval.malicious.to_string(),
                format!("{:.1}%", 100.0 * eval.detection_rate()),
                eval.benign.to_string(),
                format!("{:.1}%", 100.0 * eval.fp_rate()),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::StudyConfig;
    use downlake_synth::Scale;
    use std::sync::OnceLock;

    fn study() -> &'static Study {
        static STUDY: OnceLock<Study> = OnceLock::new();
        STUDY.get_or_init(|| Study::run(&StudyConfig::new(42).with_scale(Scale::Tiny)))
    }

    #[test]
    fn graph_reputation_fails_on_singletons() {
        let report = graph_reputation(study(), Month::January);
        let singleton = report
            .buckets
            .iter()
            .find(|(b, _)| b == "prevalence 1")
            .map(|(_, e)| *e)
            .expect("singleton bucket present");
        // The Polonium argument: no corroboration ⇒ no detection.
        assert_eq!(singleton.detected, 0, "{singleton:?}");
        assert!(singleton.malicious > 0, "bucket must be populated");
    }

    #[test]
    fn domain_reputation_produces_mixed_reputation_fps() {
        let report = domain_reputation(study(), Month::January);
        let total_fp: usize = report.buckets.iter().map(|(_, e)| e.false_positives).sum();
        let total_benign: usize = report.buckets.iter().map(|(_, e)| e.benign).sum();
        assert!(total_benign > 0);
        // Mixed-reputation hosting: some benign files come from
        // majority-malicious domains (the paper's §IV-B warning).
        assert!(
            total_fp > 0,
            "domain reputation should misfire on mixed-reputation hosts"
        );
    }

    #[test]
    fn baselines_table_renders() {
        let table = baselines_table(study());
        assert!(!table.rows.is_empty());
        let text = table.to_string();
        assert!(text.contains("graph reputation"));
        assert!(text.contains("domain reputation"));
    }
}
