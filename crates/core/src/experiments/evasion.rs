//! §VII extensions: the *Evading Detection* discussion quantified, and
//! the machine-population reach of the expanded labeling.
//!
//! The paper argues evasion is technically possible but impractical:
//! new certificates cost money, stolen ones get revoked, and benign
//! packers make analysis easier. This module simulates those attacker
//! moves against the trained rule system and measures what each one
//! actually buys.

use crate::experiments::rules::{rule_experiments, RuleExperimentOutcome};
use crate::pipeline::Study;
use crate::render::TextTable;
use downlake_features::{build_training_set, Extractor, FeatureVector, FileVectors, UNSIGNED};
use downlake_rulelearn::{ConflictPolicy, PartLearner, RuleSet, TreeConfig, Verdict};
use downlake_types::{FileHash, FileLabel, Month};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// An attacker's evasion move, applied to a malicious file's features.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EvasionStrategy {
    /// No change (baseline detection rate).
    None,
    /// Re-sign every file with a freshly acquired, never-seen
    /// certificate (expensive per §VII).
    FreshCertificates,
    /// Sign with a certificate stolen from a reputable benign vendor.
    StolenBenignCertificate,
    /// Strip the signature entirely.
    StripSignature,
    /// Repack with a mainstream benign-ecosystem packer.
    BenignPacker,
    /// Fresh certificate + benign packer together.
    Combined,
}

impl EvasionStrategy {
    /// All strategies, in report order.
    pub const ALL: [EvasionStrategy; 6] = [
        EvasionStrategy::None,
        EvasionStrategy::FreshCertificates,
        EvasionStrategy::StolenBenignCertificate,
        EvasionStrategy::StripSignature,
        EvasionStrategy::BenignPacker,
        EvasionStrategy::Combined,
    ];

    /// Human-readable label.
    pub const fn name(self) -> &'static str {
        match self {
            EvasionStrategy::None => "baseline (no evasion)",
            EvasionStrategy::FreshCertificates => "fresh certificates",
            EvasionStrategy::StolenBenignCertificate => "stolen benign certificate",
            EvasionStrategy::StripSignature => "strip signature",
            EvasionStrategy::BenignPacker => "repack with benign packer",
            EvasionStrategy::Combined => "fresh cert + benign packer",
        }
    }

    /// Applies the move to a malicious file's raw feature values.
    fn apply<'a>(self, values: &mut [&'a str; 8], fresh_name: &'a str, stolen: &'a str) {
        // FEATURE_NAMES order: the first three slots are the file's
        // signer, CA, and packer — the only features a dropper controls.
        let [signer, ca, packer, ..] = values;
        match self {
            EvasionStrategy::None => {}
            EvasionStrategy::FreshCertificates => {
                *signer = fresh_name;
                *ca = "comodo code signing ca 2";
            }
            EvasionStrategy::StolenBenignCertificate => {
                *signer = stolen;
                *ca = "digicert assured id code signing ca-1";
            }
            EvasionStrategy::StripSignature => {
                *signer = UNSIGNED;
                *ca = UNSIGNED;
            }
            EvasionStrategy::BenignPacker => {
                *packer = "INNO";
            }
            EvasionStrategy::Combined => {
                *signer = fresh_name;
                *ca = "comodo code signing ca 2";
                *packer = "INNO";
            }
        }
    }
}

/// Detection outcome of one strategy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvasionRow {
    /// The strategy.
    pub strategy: EvasionStrategy,
    /// Malicious test files evaluated.
    pub samples: usize,
    /// Still classified malicious.
    pub detected: usize,
    /// Rejected due to rule conflicts (suspicious, not silent).
    pub rejected: usize,
    /// Now classified benign (a true evasion win).
    pub misclassified_benign: usize,
    /// Matching no rule at all (fell back to *unknown* — where the
    /// paper's pipeline would queue them for further analysis).
    pub unmatched: usize,
}

impl EvasionRow {
    /// Detection rate over all samples.
    pub fn detection_rate(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.detected as f64 / self.samples as f64
        }
    }
}

fn trained_rules(study: &Study) -> (RuleSet, Vec<FeatureVector>) {
    let extractor = Extractor::new(study.dataset(), study.url_labeler());
    let gt = study.ground_truth();
    let train = extractor.extract_first_seen(study.dataset().month(Month::January).events());
    let instances = build_training_set(train.iter().map(|(h, v)| (v, gt.label(h))));
    let learner = PartLearner::new(TreeConfig {
        min_leaf: 4,
        prune: false,
        ..TreeConfig::default()
    });
    let min_coverage = (instances.len() / 120).clamp(8, 16);
    let set = learner
        .learn(&instances)
        .reevaluate(&instances)
        .select_with(0.001, min_coverage);

    // Malicious files of February that the rules would face.
    let mut targets = Vec::new();
    let mut seen: HashSet<FileHash> = HashSet::new();
    for event in study.dataset().month(Month::February).events() {
        if !seen.insert(event.file) || train.contains(event.file) {
            continue;
        }
        if gt.label(event.file) == FileLabel::Malicious {
            targets.push(extractor.extract_event(event));
        }
    }
    (set, targets)
}

/// Runs every evasion strategy against rules trained on January.
pub fn evasion_rows(study: &Study) -> Vec<EvasionRow> {
    let (set, targets) = trained_rules(study);
    // The stolen certificate comes from the most prolific exclusively
    // benign signer the rules know about (worst case for the defender).
    let stolen = "TeamViewer";
    EvasionStrategy::ALL
        .iter()
        .map(|&strategy| {
            let mut row = EvasionRow {
                strategy,
                samples: targets.len(),
                detected: 0,
                rejected: 0,
                misclassified_benign: 0,
                unmatched: 0,
            };
            for (i, vector) in targets.iter().enumerate() {
                let fresh = format!("Fresh Shell Corp #{i}");
                let mut values = vector.values();
                strategy.apply(&mut values, &fresh, stolen);
                let encoded = set.schema().encode(&values);
                match set.classify(&encoded, ConflictPolicy::Reject) {
                    Verdict::Class(1) => row.detected += 1,
                    Verdict::Class(_) => row.misclassified_benign += 1,
                    Verdict::Rejected => row.rejected += 1,
                    Verdict::NoMatch => row.unmatched += 1,
                }
            }
            row
        })
        .collect()
}

/// Renders the evasion study as a table.
pub fn evasion_table(study: &Study) -> TextTable {
    let rows = evasion_rows(study);
    let mut table = TextTable::new(
        "§VII — Evading detection: attacker moves vs the trained rules",
        &[
            "Strategy",
            "Samples",
            "Detected",
            "Rejected",
            "As benign",
            "Unmatched",
        ],
    );
    for row in rows {
        table.push_row(vec![
            row.strategy.name().to_owned(),
            row.samples.to_string(),
            format!("{} ({:.1}%)", row.detected, 100.0 * row.detection_rate()),
            row.rejected.to_string(),
            row.misclassified_benign.to_string(),
            row.unmatched.to_string(),
        ]);
    }
    table
}

/// §VII's population-reach statistic: how many machines downloaded at
/// least one rule-labeled unknown file (the paper: 294,419 machines =
/// 31% of the population), plus how many downloaded any unknown at all.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExpansionReach {
    /// Machines that downloaded ≥1 unknown file labeled by the rules.
    pub machines_covered: usize,
    /// Machines that downloaded ≥1 unknown file at all.
    pub machines_with_unknowns: usize,
    /// Total monitored machines.
    pub machines_total: usize,
}

impl ExpansionReach {
    /// Covered machines as a share of the whole population.
    pub fn coverage_pct(&self) -> f64 {
        if self.machines_total == 0 {
            0.0
        } else {
            100.0 * self.machines_covered as f64 / self.machines_total as f64
        }
    }
}

/// Computes [`ExpansionReach`] from a completed rule experiment. The set
/// of rule-labeled unknowns is recomputed the same way
/// [`rule_experiments`] builds it.
pub fn expansion_reach(study: &Study, outcome: &RuleExperimentOutcome) -> ExpansionReach {
    // Re-derive the labeled-unknown set: all unknown test files whose
    // verdict was a class at τ=0.1% in any round. `rule_experiments`
    // counts them; to find the machines we need the hashes, so rerun the
    // classification per round is avoided by using the counts only when
    // hashes are not needed. Here we simply re-run the experiment if the
    // caller's outcome lacks hashes.
    let _ = outcome;
    let extractor = Extractor::new(study.dataset(), study.url_labeler());
    let gt = study.ground_truth();
    let learner = PartLearner::new(TreeConfig {
        min_leaf: 4,
        prune: false,
        ..TreeConfig::default()
    });

    let mut labeled: HashSet<FileHash> = HashSet::new();
    let monthly: Vec<FileVectors> = Month::ALL
        .into_iter()
        .map(|month| extractor.extract_first_seen(study.dataset().month(month).events()))
        .collect();
    for train_month in Month::ALL.into_iter().take(Month::ALL.len() - 1) {
        let Some(test_month) = train_month.next() else {
            continue; // unreachable: the loop stops before the last month
        };
        let train = &monthly[train_month.index()];
        let test = &monthly[test_month.index()];
        let instances = build_training_set(train.iter().map(|(h, v)| (v, gt.label(h))));
        if instances.is_empty() {
            continue;
        }
        let min_coverage = (instances.len() / 120).clamp(8, 16);
        let set = learner
            .learn(&instances)
            .reevaluate(&instances)
            .select_with(0.001, min_coverage);
        for (hash, vector) in test.iter() {
            if gt.label(hash) != FileLabel::Unknown || train.contains(hash) {
                continue;
            }
            let encoded = set.schema().encode(&vector.values());
            if matches!(
                set.classify(&encoded, ConflictPolicy::Reject),
                Verdict::Class(_)
            ) {
                labeled.insert(hash);
            }
        }
    }

    let mut covered: HashSet<u64> = HashSet::new();
    let mut with_unknowns: HashSet<u64> = HashSet::new();
    for event in study.dataset().events() {
        if gt.label(event.file) == FileLabel::Unknown {
            with_unknowns.insert(event.machine.raw());
            if labeled.contains(&event.file) {
                covered.insert(event.machine.raw());
            }
        }
    }
    ExpansionReach {
        machines_covered: covered.len(),
        machines_with_unknowns: with_unknowns.len(),
        machines_total: study.dataset().machine_count(),
    }
}

/// Convenience: run the rule experiments and the reach computation.
pub fn expansion_reach_table(study: &Study) -> TextTable {
    let outcome = rule_experiments(study);
    let reach = expansion_reach(study, &outcome);
    let mut table = TextTable::new(
        "§VII — Population reach of the expanded labeling",
        &["Metric", "Value"],
    );
    table.push_row(vec![
        "unknown files labeled by rules".into(),
        format!(
            "{} of {} ({:.1}%)",
            outcome.unknowns_labeled,
            outcome.total_unknowns,
            outcome.unknown_labeled_share()
        ),
    ]);
    table.push_row(vec![
        "machines touching a labeled unknown".into(),
        format!(
            "{} of {} ({:.1}%)",
            reach.machines_covered,
            reach.machines_total,
            reach.coverage_pct()
        ),
    ]);
    table.push_row(vec![
        "machines touching any unknown".into(),
        reach.machines_with_unknowns.to_string(),
    ]);
    table.push_row(vec![
        "ground-truth expansion factor".into(),
        format!("{:.2}x", outcome.expansion_factor()),
    ]);
    table
}
