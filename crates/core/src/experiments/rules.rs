//! The §VI rule-learning experiments (Tables XV–XVII).
//!
//! For every consecutive month pair `(T_tr, T_ts)`: learn PART rules from
//! the confidently labeled files first seen in `T_tr`, select rules with
//! training error ≤ τ, evaluate TP/FP on the labeled files of `T_ts`
//! (excluding any file already seen in training), and apply the selected
//! rules to `T_ts`'s *unknown* files with conflict rejection.

use crate::pipeline::Study;
use crate::render::TextTable;
use downlake_features::{build_training_set, Extractor, FileVectors, FEATURE_NAMES};
use downlake_rulelearn::{ConflictPolicy, Confusion, PartLearner, RuleSet, TreeConfig, Verdict};
use downlake_types::{FileHash, FileLabel, FileNature, Month};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// The two rule-selection thresholds the paper evaluates.
pub const TAU_SETTINGS: [f64; 2] = [0.0, 0.001];

/// One `(T_tr, T_ts, τ)` evaluation round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuleRoundReport {
    /// Training month.
    pub train_month: Month,
    /// Test month (the month after).
    pub test_month: Month,
    /// Rule-selection threshold.
    pub tau: f64,
    /// Rules PART extracted before selection.
    pub rules_total: usize,
    /// Rules surviving τ-selection.
    pub rules_selected: usize,
    /// Of those, rules concluding benign.
    pub benign_rules: usize,
    /// Rules concluding malicious.
    pub malicious_rules: usize,
    /// Confusion over the labeled test files that matched rules.
    pub confusion: Confusion,
    /// Distinct selected rules that produced at least one false positive.
    pub fp_rules: usize,
    /// Unknown files observed in the test month.
    pub unknown_total: usize,
    /// Unknowns matching at least one rule (classified or rejected).
    pub unknown_matched: usize,
    /// Unknowns labeled malicious.
    pub unknown_malicious: usize,
    /// Unknowns labeled benign.
    pub unknown_benign: usize,
    /// Unknowns rejected due to rule conflicts.
    pub unknown_rejected: usize,
    /// Reproduction bonus the paper could not compute: share of rule-
    /// labeled unknowns whose label agrees with the generator's hidden
    /// latent nature.
    pub unknown_latent_agreement: f64,
}

impl RuleRoundReport {
    /// Matched-share of the unknowns.
    pub fn unknown_match_pct(&self) -> f64 {
        if self.unknown_total == 0 {
            0.0
        } else {
            100.0 * self.unknown_matched as f64 / self.unknown_total as f64
        }
    }
}

/// The full outcome across all month pairs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct RuleExperimentOutcome {
    /// All rounds (month pair × τ).
    pub rounds: Vec<RuleRoundReport>,
    /// Distinct unknown files observed from February on.
    pub total_unknowns: usize,
    /// Distinct unknowns the τ = 0.1% rules labeled across all rounds.
    pub unknowns_labeled: usize,
    /// Distinct files with confident ground truth (the baseline the
    /// expansion is measured against).
    pub ground_truth_files: usize,
    /// A few example rules (highest coverage) rendered human-readably.
    pub example_rules: Vec<String>,
}

impl RuleExperimentOutcome {
    /// The labeling-expansion factor (§VII: 2.33× in the paper).
    pub fn expansion_factor(&self) -> f64 {
        if self.ground_truth_files == 0 {
            0.0
        } else {
            1.0 + self.unknowns_labeled as f64 / self.ground_truth_files as f64
        }
    }

    /// Share of unknowns the rules labeled (§VII: 28.3% in the paper).
    pub fn unknown_labeled_share(&self) -> f64 {
        if self.total_unknowns == 0 {
            0.0
        } else {
            100.0 * self.unknowns_labeled as f64 / self.total_unknowns as f64
        }
    }
}

/// Per-month per-file feature vectors (first event inside the month),
/// in deterministic first-sighting order.
fn monthly_vectors(study: &Study) -> Vec<FileVectors> {
    let extractor = Extractor::new(study.dataset(), study.url_labeler());
    Month::ALL
        .iter()
        .map(|&month| extractor.extract_first_seen(study.dataset().month(month).events()))
        .collect()
}

/// Runs the full §VI experiment suite at the paper's τ settings over
/// the whole seven-month window.
pub fn rule_experiments(study: &Study) -> RuleExperimentOutcome {
    rule_experiments_over(study, &TAU_SETTINGS, Month::ALL.len())
}

/// Runs the §VI experiment suite over the first `months` months of the
/// study window, evaluating every threshold in `taus`.
///
/// This is the re-runnable entry point the sweep harness fans out over:
/// `rule_experiments_over(study, &TAU_SETTINGS, Month::ALL.len())` is
/// exactly [`rule_experiments`]. Unknown-file coverage (the
/// `total_unknowns` / `unknowns_labeled` tallies) is tracked at the
/// *largest* τ in the list — the deployed threshold — which for the
/// paper settings reproduces the historical "τ = 0.1%" accounting
/// byte-for-byte.
pub fn rule_experiments_over(study: &Study, taus: &[f64], months: usize) -> RuleExperimentOutcome {
    let vectors = monthly_vectors(study);
    let gt = study.ground_truth();
    let malicious_class = 1u8; // classes are ["benign", "malicious"]

    // The τ whose unknown-coverage is reported; `max_by(total_cmp)` is
    // order-insensitive, so permuting `taus` cannot change it.
    let tracked_tau = taus
        .iter()
        .copied()
        .max_by(f64::total_cmp)
        .unwrap_or(f64::NAN);

    let mut outcome = RuleExperimentOutcome::default();
    let mut labeled_unknowns: HashSet<FileHash> = HashSet::new();
    let mut all_unknowns: HashSet<FileHash> = HashSet::new();

    let pairs = months.min(Month::ALL.len()).saturating_sub(1);
    for train_month in Month::ALL.into_iter().take(pairs) {
        let Some(test_month) = train_month.next() else {
            continue; // unreachable: the loop stops before the last month
        };
        let train = &vectors[train_month.index()];
        let test = &vectors[test_month.index()];

        let instances = build_training_set(train.iter().map(|(hash, vec)| (vec, gt.label(hash))));
        if instances.is_empty() {
            continue;
        }
        // At sub-paper training sizes, global pessimistic pruning starves
        // the rule extractor (per-signer leaves carry too few instances to
        // "pay" C4.5's pessimistic penalty), so PART runs unpruned and the
        // paper's own τ-selection provides the quality filter (§VI-C).
        let learner = PartLearner::new(TreeConfig {
            min_leaf: 4,
            prune: false,
            ..TreeConfig::default()
        });
        // Re-score every rule against the whole training set: deployed
        // rules act as an unordered set, not a decision list (§VI-C).
        let full = learner.learn(&instances).reevaluate(&instances);

        // Support floor scaled to the training-set size (the paper's
        // deployable rules are backed by ~50+ instances out of ~36k
        // monthly training files; same ratio here).
        let min_coverage = (instances.len() / 120).clamp(8, 16);
        for &tau in taus {
            let selected = full.select_with(tau, min_coverage);
            let composition = selected.class_composition();
            // Interned encoder + reusable row, hoisted out of both
            // per-file loops (the old path re-walked the schema's hash
            // tables and allocated a fresh row per call).
            let encoder = selected.encoder();
            let mut encoded = Vec::new();

            let mut confusion = Confusion::default();
            let mut fp_rules: HashSet<usize> = HashSet::new();
            for (hash, vector) in test.iter() {
                if train.contains(hash) {
                    continue; // enforce empty train∩test intersection
                }
                let truth = match gt.label(hash) {
                    FileLabel::Benign => 0u8,
                    FileLabel::Malicious => 1u8,
                    _ => continue,
                };
                encoder.encode_into(&vector.values(), &mut encoded);
                let verdict = selected.classify(&encoded, ConflictPolicy::Reject);
                confusion.record(verdict, truth, malicious_class);
                if verdict == Verdict::Class(malicious_class) && truth == 0 {
                    for (idx, rule) in selected.rules().iter().enumerate() {
                        if rule.class == malicious_class && rule.matches(&encoded) {
                            fp_rules.insert(idx);
                        }
                    }
                }
            }

            // Unknown files of the test month.
            let mut unknown_total = 0usize;
            let mut matched = 0usize;
            let mut unknown_malicious = 0usize;
            let mut unknown_benign = 0usize;
            let mut rejected = 0usize;
            let mut latent_checked = 0usize;
            let mut latent_agree = 0usize;
            for (hash, vector) in test.iter() {
                if gt.label(hash) != FileLabel::Unknown || train.contains(hash) {
                    continue;
                }
                unknown_total += 1;
                if tau == tracked_tau {
                    all_unknowns.insert(hash);
                }
                encoder.encode_into(&vector.values(), &mut encoded);
                match selected.classify(&encoded, ConflictPolicy::Reject) {
                    Verdict::NoMatch => {}
                    Verdict::Rejected => {
                        matched += 1;
                        rejected += 1;
                    }
                    Verdict::Class(class) => {
                        matched += 1;
                        let predicted_malicious = class == malicious_class;
                        if predicted_malicious {
                            unknown_malicious += 1;
                        } else {
                            unknown_benign += 1;
                        }
                        if tau == tracked_tau {
                            labeled_unknowns.insert(hash);
                        }
                        if let Some(latent) = study.world().latent(hash) {
                            latent_checked += 1;
                            let latent_malicious =
                                matches!(latent.nature, FileNature::Malicious(_));
                            if latent_malicious == predicted_malicious {
                                latent_agree += 1;
                            }
                        }
                    }
                }
            }

            outcome.rounds.push(RuleRoundReport {
                train_month,
                test_month,
                tau,
                rules_total: full.len(),
                rules_selected: selected.len(),
                benign_rules: composition.first().copied().unwrap_or(0),
                malicious_rules: composition.get(1).copied().unwrap_or(0),
                confusion,
                fp_rules: fp_rules.len(),
                unknown_total,
                unknown_matched: matched,
                unknown_malicious,
                unknown_benign,
                unknown_rejected: rejected,
                unknown_latent_agreement: if latent_checked == 0 {
                    0.0
                } else {
                    100.0 * latent_agree as f64 / latent_checked as f64
                },
            });

            if outcome.example_rules.is_empty() && tau > 0.0 {
                outcome.example_rules = example_rules(&selected, 5);
            }
        }
    }

    outcome.total_unknowns = all_unknowns.len();
    outcome.unknowns_labeled = labeled_unknowns.len();
    outcome.ground_truth_files = gt.iter().filter(|&(_, label)| label.is_confident()).count();
    outcome
}

fn example_rules(set: &RuleSet, k: usize) -> Vec<String> {
    let mut rules: Vec<_> = set.rules().to_vec();
    rules.sort_by_key(|rule| std::cmp::Reverse(rule.covered));
    rules
        .iter()
        .take(k)
        .map(|r| r.render(set.schema()))
        .collect()
}

/// Table XV: the feature catalog (static).
pub fn table15() -> TextTable {
    let mut table = TextTable::new(
        "Table XV — Features used by the rule-based classifier",
        &["Feature", "Explanation"],
    );
    let explanations = [
        "The entity who signed a downloaded file",
        "The certification authority in the file's chain of trust",
        "The packer software used to pack the downloaded file, if any",
        "The signer of the process that downloaded the file",
        "The CA of the downloading process",
        "The packer of the downloading process",
        "The type of downloading process (browser, windows process, ...)",
        "The Alexa-rank bucket of the download domain",
    ];
    for (name, explanation) in FEATURE_NAMES.iter().zip(explanations) {
        table.push_row(vec![(*name).to_owned(), explanation.to_owned()]);
    }
    table
}

/// Table XVI: rules extracted per training month and τ.
pub fn table16(study: &Study) -> TextTable {
    let outcome = rule_experiments(study);
    render_table16(&outcome)
}

/// Renders Table XVI from a precomputed outcome.
pub fn render_table16(outcome: &RuleExperimentOutcome) -> TextTable {
    let mut table = TextTable::new(
        "Table XVI — Extracted rules per training window",
        &[
            "T_tr",
            "τ",
            "Overall rules",
            "Selected",
            "# benign",
            "# malicious",
        ],
    );
    for round in &outcome.rounds {
        table.push_row(vec![
            round.train_month.to_string(),
            format!("{:.1}%", round.tau * 100.0),
            round.rules_total.to_string(),
            round.rules_selected.to_string(),
            round.benign_rules.to_string(),
            round.malicious_rules.to_string(),
        ]);
    }
    table
}

/// Table XVII: evaluation results and unknown-file classification.
pub fn table17(study: &Study) -> TextTable {
    let outcome = rule_experiments(study);
    render_table17(&outcome)
}

/// Renders Table XVII from a precomputed outcome.
pub fn render_table17(outcome: &RuleExperimentOutcome) -> TextTable {
    let mut table = TextTable::new(
        "Table XVII — Rule evaluation (test) and unknown-file classification",
        &[
            "T_tr-T_ts",
            "τ",
            "# mal",
            "TP",
            "# ben",
            "FP",
            "# FP rules",
            "# unknowns",
            "matched",
            "u-mal",
            "u-ben",
            "latent-agree",
        ],
    );
    for round in &outcome.rounds {
        table.push_row(vec![
            format!("{}-{}", round.train_month, round.test_month),
            format!("{:.1}%", round.tau * 100.0),
            round.confusion.positives().to_string(),
            format!("{:.2}%", 100.0 * round.confusion.tp_rate()),
            round.confusion.negatives().to_string(),
            format!("{:.2}%", 100.0 * round.confusion.fp_rate()),
            round.fp_rules.to_string(),
            round.unknown_total.to_string(),
            format!("{:.2}%", round.unknown_match_pct()),
            round.unknown_malicious.to_string(),
            round.unknown_benign.to_string(),
            format!("{:.1}%", round.unknown_latent_agreement),
        ]);
    }
    table
}
