//! Lake-backed world sourcing: wires the policy-free segment store of
//! [`downlake_lake`] to the generator it must never depend on.
//!
//! The lake crate sits below `downlake-synth` in the layering DAG, so
//! the knowledge of *how* to produce a world's shard streams and
//! sidecar lives here: [`ensure_world`] hands
//! [`Lake::open_or_build`] a builder closure that runs the sharded
//! generator and serializes the world's file table, and reconstructs
//! the [`World`] from the sidecar on **both** the warm and cold paths —
//! one code path, with the sidecar round-trip exercised on every run.
//!
//! Addressing: the world hash ([`SynthConfig::world_hash`]) covers
//! exactly the generation-relevant knobs — seed, scale, and the event
//! mixture — and excludes collection-time knobs like σ, so every sweep
//! permutation that shares a world shares one cached build.
//!
//! [`SynthConfig::world_hash`]: downlake_synth::SynthConfig::world_hash

use crate::pipeline::StudyConfig;
use downlake_exec::Pool;
use downlake_lake::{Lake, LakeBuild, LakeError};
use downlake_obs::{Clock, Registry};
use downlake_synth::{worldcodec, World};
use std::path::Path;

/// Segment shard count when the study config leaves `shards` at `0`
/// (auto). A fixed default — never the pool width — so the on-disk
/// layout is independent of the host's core count.
pub const LAKE_DEFAULT_SHARDS: usize = 8;

/// The shard count a cold build spills with: the config's explicit
/// `shards`, or [`LAKE_DEFAULT_SHARDS`]. Warm opens use whatever shard
/// count is on disk — the merge is order-identical at any `k`.
pub fn lake_shards(config: &StudyConfig) -> usize {
    if config.shards == 0 {
        LAKE_DEFAULT_SHARDS
    } else {
        config.shards
    }
}

/// Opens the cached world for `config` under `root` — building and
/// caching it when the cache is cold or corrupt — and reconstructs the
/// [`World`] from the lake's sidecar.
///
/// A warm open performs zero event generation: the builder closure is
/// only invoked on a cold or corrupt cache (see
/// [`Lake::open_or_build`]'s counters). The returned world is
/// byte-identical to a freshly generated one
/// (`World::rebuild` + the sidecar codec round-trip, both pinned by
/// `downlake-synth`'s tests).
///
/// # Errors
///
/// Returns [`LakeError`] only for real storage trouble (I/O failures,
/// or a world sidecar that fails to decode after passing its checksum)
/// — never for cache state. Callers fall back to the in-RAM pipeline.
pub fn ensure_world(
    root: &Path,
    config: &StudyConfig,
    pool: &Pool,
    registry: &Registry,
    clock: &dyn Clock,
) -> Result<(Lake, World), LakeError> {
    let world_hash = config.synth.world_hash();
    let shards = lake_shards(config);
    let lake = Lake::open_or_build(root, world_hash, registry, || {
        let (world, shard_events) =
            World::generate_sharded_observed(&config.synth, shards, pool, registry, clock);
        LakeBuild {
            shard_events,
            aux: worldcodec::encode_world_files(&world),
        }
    })?;
    let files = worldcodec::decode_world_files(lake.aux())?;
    let world = World::rebuild(config.synth.clone(), files);
    Ok((lake, world))
}
