//! The stream service driver: sharded multi-tenant classification over
//! a study's wire stream, with snapshot/resume and epoch-based rule
//! hot-swap.
//!
//! [`crate::live`] proves the single-session shape (one
//! `StreamSession`, byte-identical to the batch pipeline). This module
//! stages the *operational* shape on top of the same artifacts: a
//! [`StreamService`] routing machine ids onto shards, optionally
//! retraining a second engine on a later month ([`live::train_engine`])
//! and staging it for publication at an epoch boundary, and writing /
//! restoring lake-style checksummed snapshots mid-stream.
//!
//! Determinism contract, inherited from the service and pinned by
//! `tests/service_equivalence.rs` and the `service` bench: for a fixed
//! stream and engine history, `threads` and `shards` change wall-clock
//! time and routing bookkeeping only — the verdict stream, suppression
//! counters, swap divergences, and merged report tallies are
//! byte-identical at every `(threads, shards)` combination, and a
//! snapshot/resume split at any event count reproduces the
//! uninterrupted run exactly.

use crate::live::{self, LiveConfig, LivePrep};
use crate::pipeline::Study;
use downlake_exec::Pool;
use downlake_obs::Registry;
use downlake_rulelearn::Verdict;
use downlake_stream::{
    CompiledRuleSet, ServiceConfig, ServiceStatus, SnapshotError, StreamService, SwapDivergence,
};
use downlake_telemetry::codec::decode_event;
use downlake_telemetry::ReportingPolicy;
use downlake_types::{FileHash, Month};
use std::path::Path;

/// Configuration of a service run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeOptions {
    /// Events per epoch: a staged engine activates at the next multiple.
    pub epoch_len: u64,
    /// Micro-batch size for pooled ingestion.
    pub batch: usize,
    /// Month the deployed (generation-0) ruleset trains on.
    pub train_month: Month,
    /// Rule-selection threshold τ for both engines.
    pub tau: f64,
    /// When set, retrain on this month and stage the compiled result
    /// before the first event — it publishes at sequence `epoch_len`.
    pub swap_month: Option<Month>,
}

impl Default for ServeOptions {
    /// January training, τ = 0.1%, 4 096-event epochs, 512-event
    /// batches, no swap — the live replay defaults plus the service's
    /// own epoch default.
    fn default() -> Self {
        Self {
            epoch_len: 4096,
            batch: 512,
            train_month: Month::January,
            tau: 0.001,
            swap_month: None,
        }
    }
}

/// Everything a service run needs, staged once per study: the live-prep
/// artifacts (engine, batch oracle, wire stream) plus the optional
/// retrained swap engine.
#[derive(Debug)]
pub struct ServePrep<'a> {
    study: &'a Study,
    options: ServeOptions,
    prep: LivePrep<'a>,
    staged: Option<CompiledRuleSet>,
}

/// End-of-run state of one service run. Two runs over the same stream
/// with the same engine history must agree on everything
/// [`ServeRun::same_state`] compares, whatever their `threads` and
/// `shards`.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeRun {
    /// Pool width the run ingested with (timing plane only).
    pub threads: usize,
    /// Shard count the run routed onto.
    pub shards: usize,
    /// Merged report plus global counters at end of stream.
    pub status: ServiceStatus,
    /// Per-file verdicts in arrival (first-sighting) order.
    pub verdicts: Vec<(FileHash, Verdict)>,
    /// Divergence records of published hot swaps.
    pub swaps: Vec<SwapDivergence>,
}

impl ServeRun {
    /// Whether two runs ended in the same logical state: identical
    /// verdict streams, swap divergences, global counters, and merged
    /// verdict tallies. The two deliberate exclusions are `threads`
    /// (timing plane) and the report's `shards` partial count (routing
    /// bookkeeping that necessarily differs across shard counts).
    pub fn same_state(&self, other: &ServeRun) -> bool {
        self.verdicts == other.verdicts
            && self.swaps == other.swaps
            && self.status.events_seen == other.status.events_seen
            && self.status.events_admitted == other.status.events_admitted
            && self.status.suppressed == other.status.suppressed
            && self.status.generation == other.status.generation
            && self.status.swaps == other.status.swaps
            && self.status.report.events_routed == other.status.report.events_routed
            && self.status.report.files_classified == other.status.report.files_classified
            && self.status.report.class_verdicts == other.status.report.class_verdicts
            && self.status.report.rejected == other.status.report.rejected
            && self.status.report.no_match == other.status.report.no_match
    }
}

/// Stages a service run over `study`'s wire stream: trains and compiles
/// the generation-0 engine (and the swap engine, when
/// [`ServeOptions::swap_month`] is set), classifies the batch oracle,
/// and encodes the stream — all through [`live::prepare`], so the
/// service consumes exactly the bytes the single-session replay does.
pub fn stage(study: &Study, options: ServeOptions) -> ServePrep<'_> {
    let prep = live::prepare(
        study,
        LiveConfig {
            train_month: options.train_month,
            tau: options.tau,
            batch: options.batch,
        },
    );
    let staged = options
        .swap_month
        .map(|month| live::train_engine(study, month, options.tau));
    ServePrep {
        study,
        options,
        prep,
        staged,
    }
}

impl<'a> ServePrep<'a> {
    /// The staged live-replay artifacts (engine, oracle, wire stream).
    pub fn live(&self) -> &LivePrep<'a> {
        &self.prep
    }

    /// The retrained engine awaiting a hot swap, if any.
    pub fn staged(&self) -> Option<&CompiledRuleSet> {
        self.staged.as_ref()
    }

    /// The options this prep was staged with.
    pub fn options(&self) -> &ServeOptions {
        &self.options
    }

    /// Events in the wire stream.
    pub fn events_total(&self) -> usize {
        self.prep.events_total()
    }

    /// A cold service over the prep's engine and policy, with the swap
    /// engine (when configured) staged before the first event.
    fn new_service(&self, shards: usize) -> StreamService<'a> {
        let mut service = StreamService::new(
            ServiceConfig::new(shards, self.options.epoch_len),
            ReportingPolicy::paper_whitelist(self.prep.sigma()),
            self.study.url_labeler(),
            self.prep.engine().clone(),
        );
        if let Some(engine) = &self.staged {
            service.stage_engine(engine.clone());
        }
        service
    }

    /// Freezes a finished (or killed) service into a [`ServeRun`].
    fn finish(&self, service: &StreamService<'_>, threads: usize) -> ServeRun {
        ServeRun {
            threads,
            shards: service.shard_count(),
            status: service.status(&Pool::sequential()),
            verdicts: service.merged_verdicts(),
            swaps: service.swap_history().to_vec(),
        }
    }

    /// Runs the whole stream through a fresh service at `(threads,
    /// shards)`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Codec`] if the wire stream is malformed —
    /// impossible for bytes produced by [`live::prepare`].
    pub fn run(&self, threads: usize, shards: usize) -> Result<ServeRun, SnapshotError> {
        let mut service = self.new_service(shards);
        let pool = Pool::new(threads);
        service.push_bytes_batched(self.prep.stream(), self.options.batch, &pool)?;
        Ok(self.finish(&service, threads))
    }

    /// Runs the stream up to event `at` (default: the midpoint), writes
    /// a snapshot to `path`, and stops — the "kill" half of a
    /// kill-and-resume drill. The returned run covers the prefix only.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] if the snapshot cannot be written;
    /// [`SnapshotError::Codec`] if the wire stream is malformed.
    pub fn run_to_snapshot(
        &self,
        threads: usize,
        shards: usize,
        path: &Path,
        at: Option<u64>,
    ) -> Result<ServeRun, SnapshotError> {
        let bytes = self.prep.stream();
        let total = self.prep.events_total() as u64;
        let at = at.unwrap_or(total / 2).min(total);
        let split = offset_of_event(bytes, at)?;
        let mut service = self.new_service(shards);
        let pool = Pool::new(threads);
        service.push_bytes_batched(&bytes[..split], self.options.batch, &pool)?;
        service.snapshot_to(path)?;
        Ok(self.finish(&service, threads))
    }

    /// Restores the service from `path`, resolving which engine is
    /// active: the generation-0 engine, or — when the snapshot was taken
    /// after a hot swap published — the staged one.
    fn restore_service(&self, path: &Path) -> Result<StreamService<'a>, SnapshotError> {
        let urls = self.study.url_labeler();
        let first = StreamService::restore(path, urls, self.prep.engine(), self.staged.as_ref());
        match (first, &self.staged) {
            (
                Err(SnapshotError::EngineMismatch {
                    what: "active engine",
                    ..
                }),
                Some(staged),
            ) => StreamService::restore(path, urls, staged, None),
            (other, _) => other,
        }
    }

    /// Restores from `path` and replays the rest of the stream — the
    /// "resume" half of a kill-and-resume drill. An absent or damaged
    /// snapshot falls back to a cold start over the whole stream
    /// (counted in `registry` exactly as
    /// [`StreamService::restore_or_cold`] counts: one of
    /// `service.restore.warm` / `.cold` / `.corrupt` per call), so the
    /// returned run always covers the full stream and must equal an
    /// uninterrupted [`ServePrep::run`].
    ///
    /// # Errors
    ///
    /// [`SnapshotError::BadField`] if the snapshot claims more events
    /// than the stream holds (it belongs to a different stream);
    /// [`SnapshotError::Codec`] if the wire stream is malformed.
    pub fn resume(
        &self,
        threads: usize,
        shards: usize,
        path: &Path,
        registry: &Registry,
    ) -> Result<ServeRun, SnapshotError> {
        let mut service = match self.restore_service(path) {
            Ok(service) => {
                registry.counter_add("service.restore.warm", 1);
                service
            }
            Err(e) => {
                let counter = if e.is_cold() {
                    "service.restore.cold"
                } else {
                    "service.restore.corrupt"
                };
                registry.counter_add(counter, 1);
                self.new_service(shards)
            }
        };
        let bytes = self.prep.stream();
        let split = offset_of_event(bytes, service.events_seen())?;
        let pool = Pool::new(threads);
        service.push_bytes_batched(&bytes[split..], self.options.batch, &pool)?;
        Ok(self.finish(&service, threads))
    }
}

/// Byte offset of event number `count` in a codec stream (the position
/// after the first `count` frames) — how a resume locates the exact
/// point an interrupted run stopped at.
fn offset_of_event(bytes: &[u8], count: u64) -> Result<usize, SnapshotError> {
    let mut pos = 0usize;
    let mut seen = 0u64;
    while seen < count {
        if pos >= bytes.len() {
            return Err(SnapshotError::BadField {
                what: "snapshot ahead of stream",
            });
        }
        let (_, consumed) = decode_event(&bytes[pos..])?;
        pos += consumed;
        seen += 1;
    }
    Ok(pos)
}

/// Renders a finished run for the CLI: global counters, the merged
/// verdict tallies, and one block per published hot swap.
pub fn render_summary(run: &ServeRun) -> String {
    let mut lines = Vec::new();
    lines.push(format!("shards            {}", run.shards));
    lines.push(format!("events seen       {}", run.status.events_seen));
    lines.push(format!("events admitted   {}", run.status.events_admitted));
    let s = run.status.suppressed;
    lines.push(format!(
        "suppressed        {} (not-executed {}, prevalence-cap {}, whitelisted {})",
        s.total(),
        s.not_executed,
        s.prevalence_cap,
        s.whitelisted_url
    ));
    lines.push(format!(
        "files classified  {}",
        run.status.report.files_classified
    ));
    for (label, n) in &run.status.report.class_verdicts {
        lines.push(format!("verdict {label:<10} {n}"));
    }
    lines.push(format!("verdict rejected  {}", run.status.report.rejected));
    lines.push(format!("verdict no-match  {}", run.status.report.no_match));
    lines.push(format!("engine generation {}", run.status.generation));
    lines.push(format!("swaps published   {}", run.status.swaps));
    for swap in &run.swaps {
        lines.push(format!("{swap}").trim_end().to_owned());
    }
    lines.join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::StudyConfig;
    use downlake_synth::Scale;

    #[test]
    fn grid_runs_agree_and_match_the_single_session() {
        let study = Study::run(&StudyConfig::new(7).with_scale(Scale::Tiny));
        let prep = stage(&study, ServeOptions::default());
        let session = prep.live().replay(1).expect("well-formed stream");

        let base = prep.run(1, 1).expect("run");
        assert_eq!(
            base.verdicts, session.verdicts,
            "service verdicts must equal the single session's"
        );
        for shards in [1usize, 8] {
            for threads in [1usize, 4] {
                let run = prep.run(threads, shards).expect("run");
                assert!(
                    run.same_state(&base),
                    "threads={threads} shards={shards} must not change the outcome"
                );
            }
        }
    }

    #[test]
    fn kill_and_resume_reproduces_the_uninterrupted_run() {
        let study = Study::run(&StudyConfig::new(7).with_scale(Scale::Tiny));
        let prep = stage(
            &study,
            ServeOptions {
                epoch_len: 500,
                swap_month: Some(Month::February),
                ..ServeOptions::default()
            },
        );
        let dir = std::env::temp_dir().join(format!("downlake-serve-unit-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("scratch dir");
        let path = dir.join("serve.snap");

        let uninterrupted = prep.run(4, 8).expect("run");
        assert_eq!(
            uninterrupted.status.generation, 1,
            "the staged swap must have published"
        );

        let killed = prep.run_to_snapshot(1, 8, &path, None).expect("kill half");
        assert!(killed.status.events_seen < uninterrupted.status.events_seen);

        let registry = Registry::new();
        let resumed = prep.resume(4, 8, &path, &registry).expect("resume half");
        assert_eq!(registry.counter("service.restore.warm"), 1);
        assert!(
            resumed.same_state(&uninterrupted),
            "resume must reproduce the uninterrupted run byte-identically"
        );
        std::fs::remove_file(&path).ok();
    }
}
