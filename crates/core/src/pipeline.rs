//! The end-to-end study pipeline.

use downlake_analysis::{AnalysisFrame, LabelView};
use downlake_avtype::{BehaviorExtractor, FamilyExtractor, ResolutionStats};
use downlake_exec::{partition, Pool};
use downlake_groundtruth::{DomainFacts, GroundTruth, GroundTruthOracle, OracleConfig, UrlLabeler};
use downlake_lake::Lake;
use downlake_obs::{Clock, ObsReport, RealClock, Registry, RunManifest};
use downlake_synth::{Scale, SynthConfig, World};
use downlake_telemetry::{CollectionServer, Dataset, ReportingPolicy, SuppressionStats};
use downlake_types::{FileHash, FileLabel, MalwareType, Timestamp};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;

/// Configuration of a full study run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StudyConfig {
    /// World-generation configuration.
    pub synth: SynthConfig,
    /// Ground-truth oracle configuration.
    pub oracle: OracleConfig,
    /// Worker threads for every pipeline stage; `0` = one per available
    /// core, `1` = the sequential oracle path. Never affects output.
    #[serde(default)]
    pub threads: usize,
    /// Generation shards; `0` = one per worker thread. Never affects
    /// output.
    #[serde(default)]
    pub shards: usize,
    /// Root directory of the seed-addressed event lake. When set, the
    /// raw event stream is read from (and on a cold cache, spilled to)
    /// disk-resident segments instead of being regenerated in RAM.
    /// Never affects output bytes — only where the stream lives.
    #[serde(default)]
    pub lake: Option<PathBuf>,
}

impl StudyConfig {
    /// Default configuration with the given seed.
    pub fn new(seed: u64) -> Self {
        Self {
            synth: SynthConfig::new(seed),
            oracle: OracleConfig {
                seed: seed ^ 0x0617_C0DE,
                ..OracleConfig::default()
            },
            threads: 1,
            shards: 0,
            lake: None,
        }
    }

    /// Sets the world scale (builder-style).
    pub fn with_scale(mut self, scale: Scale) -> Self {
        self.synth.scale = scale;
        self
    }

    /// Sets the collection-server prevalence threshold σ (builder-style).
    /// The paper's deployment used σ = 20; the sweep harness varies it.
    pub fn with_sigma(mut self, sigma: u32) -> Self {
        self.synth.sigma = sigma;
        self
    }

    /// Sets the worker-thread count (builder-style); `0` = one per
    /// available core.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the generation shard count (builder-style); `0` = one per
    /// worker thread.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Sets the event-lake root directory (builder-style). Studies
    /// sharing a world hash then share one cached segment build.
    pub fn with_lake(mut self, root: impl Into<PathBuf>) -> Self {
        self.lake = Some(root.into());
        self
    }
}

impl Default for StudyConfig {
    fn default() -> Self {
        Self::new(SynthConfig::default().seed)
    }
}

/// Behaviour types and families assigned to malicious files by the
/// AVType / AVclass-style extractors.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TypeAssignments {
    types: HashMap<FileHash, MalwareType>,
    families: HashMap<FileHash, String>,
    resolution: ResolutionStats,
}

impl TypeAssignments {
    /// The behaviour type of a malicious file.
    pub fn malware_type(&self, file: FileHash) -> Option<MalwareType> {
        self.types.get(&file).copied()
    }

    /// The extracted family, if AVclass-style extraction found one.
    pub fn family(&self, file: FileHash) -> Option<&str> {
        self.families.get(&file).map(String::as_str)
    }

    /// Iterates over all `(file, type)` assignments in ascending hash
    /// order, so consumers see a deterministic sequence.
    pub fn types(&self) -> impl Iterator<Item = (FileHash, MalwareType)> + '_ {
        let mut rows: Vec<(FileHash, MalwareType)> =
            self.types.iter().map(|(&h, &t)| (h, t)).collect();
        rows.sort_by_key(|&(h, _)| h);
        rows.into_iter()
    }

    /// Iterates over all `(file, family)` assignments in ascending hash
    /// order, so consumers see a deterministic sequence.
    pub fn families(&self) -> impl Iterator<Item = (FileHash, &str)> {
        let mut rows: Vec<(FileHash, &str)> = self
            .families
            .iter()
            .map(|(&h, f)| (h, f.as_str()))
            .collect();
        rows.sort_by_key(|&(h, _)| h);
        rows.into_iter()
    }

    /// Conflict-resolution statistics across the corpus (§II-C).
    pub fn resolution_stats(&self) -> ResolutionStats {
        self.resolution
    }
}

/// A completed study: the world, the collected dataset, ground truth,
/// and type/family assignments — everything the experiments consume.
#[derive(Debug)]
pub struct Study {
    config: StudyConfig,
    lake: Option<Lake>,
    world: World,
    dataset: Dataset,
    suppression: SuppressionStats,
    ground_truth: GroundTruth,
    url_labeler: UrlLabeler,
    types: TypeAssignments,
    frame: AnalysisFrame,
    obs: ObsReport,
}

impl Study {
    /// Runs the full pipeline. Deterministic per configuration: the
    /// `threads` / `shards` knobs change wall-clock time only, never a
    /// byte of output (pinned by the `thread_matrix` integration test).
    ///
    /// Phase timings are measured against a [`RealClock`]; use
    /// [`Study::run_observed`] to inject a deterministic clock instead.
    pub fn run(config: &StudyConfig) -> Study {
        Self::run_observed(config, &RealClock::new())
    }

    /// [`Study::run`] with an injected [`Clock`].
    ///
    /// Every pipeline phase runs under an RAII span and feeds a metric
    /// registry whose snapshot ends up on [`Study::obs`]. The
    /// deterministic plane (counters, gauges, value histograms) is a
    /// pure function of the configuration — byte-identical at every
    /// `threads` / `shards` setting — while span durations live in the
    /// explicitly scheduling-dependent timing plane.
    pub fn run_observed(config: &StudyConfig, clock: &dyn Clock) -> Study {
        let registry = Registry::new();
        let pool = Pool::new(config.threads);

        // 1. Source the world + raw event stream: through the
        //    seed-addressed event lake when one is configured (zero
        //    generation on a warm cache), regenerated in RAM otherwise.
        //    Lake failures fall back to the in-RAM path — a broken cache
        //    costs time, never the study.
        let mut lake: Option<Lake> = None;
        let (world, ram_events) = {
            let _span = registry.span("phase.generate", clock);
            let mut opened = None;
            if let Some(root) = config.lake.as_deref() {
                match crate::lake::ensure_world(root, config, &pool, &registry, clock) {
                    Ok(pair) => opened = Some(pair),
                    Err(_) => registry.counter_add("lake.fallback", 1),
                }
            }
            match opened {
                Some((opened_lake, world)) => {
                    lake = Some(opened_lake);
                    (world, None)
                }
                None => {
                    let generated = World::generate_observed(
                        &config.synth,
                        config.shards,
                        &pool,
                        &registry,
                        clock,
                    );
                    (generated.world, Some(generated.events))
                }
            }
        };

        // 2. Feed the stream through the collection server.
        let (suppression, dataset) = {
            let _span = registry.span("phase.collect", clock);
            // The paper's URL whitelist at the *configured* σ: the default
            // (20) reproduces the paper byte-for-byte, while the sweep
            // harness turns this knob per scenario.
            let policy = ReportingPolicy::paper_whitelist(config.synth.sigma);
            let mut server = CollectionServer::new(policy);
            let streamed = match &lake {
                Some(opened) => feed_from_lake(opened, &mut server),
                None => false,
            };
            if !streamed {
                if lake.take().is_some() {
                    // The verified lake failed mid-scan (the files
                    // changed underneath us): regenerate in RAM rather
                    // than fail, and restart collection cleanly.
                    registry.counter_add("lake.fallback", 1);
                    server =
                        CollectionServer::new(ReportingPolicy::paper_whitelist(config.synth.sigma));
                }
                let events = match ram_events {
                    Some(events) => events,
                    None => {
                        World::generate_observed(
                            &config.synth,
                            config.shards,
                            &pool,
                            &registry,
                            clock,
                        )
                        .events
                    }
                };
                for raw in events {
                    server.observe(raw);
                }
            }
            (server.suppression_stats(), server.into_dataset())
        };
        registry.counter_add(
            "telemetry.suppressed.not_executed",
            suppression.not_executed,
        );
        registry.counter_add(
            "telemetry.suppressed.prevalence_cap",
            suppression.prevalence_cap,
        );
        registry.counter_add(
            "telemetry.suppressed.whitelisted_url",
            suppression.whitelisted_url,
        );
        let stats = dataset.stats();
        registry.counter_add("dataset.events", stats.events as u64);
        registry.counter_add("dataset.machines", stats.machines as u64);
        registry.counter_add("dataset.files", stats.files as u64);
        registry.counter_add("dataset.processes", stats.processes as u64);
        registry.counter_add("dataset.urls", stats.urls as u64);
        registry.counter_add("dataset.domains", stats.domains as u64);

        // 3. Collect ground truth over every file and process hash that
        //    survived into the dataset. A BTreeMap keeps the subject
        //    sequence deterministic regardless of event hashing.
        let ground_truth = {
            let _span = registry.span("phase.groundtruth", clock);
            let mut first_seen: BTreeMap<FileHash, Timestamp> = BTreeMap::new();
            for event in dataset.events() {
                first_seen.entry(event.file).or_insert(event.timestamp);
                first_seen.entry(event.process).or_insert(event.timestamp);
            }
            let oracle = GroundTruthOracle::new(config.oracle);
            let subjects: Vec<(FileHash, &downlake_types::LatentProfile, Timestamp)> = first_seen
                .iter()
                .filter_map(|(&hash, &t)| world.latent(hash).map(|p| (hash, p, t)))
                .collect();
            registry.counter_add("groundtruth.subjects", subjects.len() as u64);
            oracle.collect(subjects)
        };
        let counts = ground_truth.counts();
        for label in FileLabel::ALL {
            let key = format!("groundtruth.{}", label.name().replace(' ', "_"));
            registry.counter_add(&key, counts.get(&label).copied().unwrap_or(0) as u64);
        }

        // 4. URL labeler from the world's domain directory.
        let url_labeler = {
            let _span = registry.span("phase.url_labeler", clock);
            UrlLabeler::from_facts(world.domains().entries().iter().map(|e| {
                (
                    e.name.clone(),
                    DomainFacts {
                        rank: e.rank,
                        curated_whitelist: e.curated_whitelist,
                        gsb_listed: e.gsb_listed,
                        private_blacklist: e.private_blacklist,
                    },
                )
            }))
        };

        // 5. AVType + family extraction over the malicious scan reports,
        //    chunked over the hash-ordered malicious list. Chunk results
        //    land in hash-keyed maps and commutative counters, so the
        //    merge is independent of chunking.
        let _avtype_span = registry.span("phase.avtype", clock);
        let behavior = BehaviorExtractor::new();
        let families = FamilyExtractor::new();
        let malicious: Vec<FileHash> = ground_truth
            .iter()
            .filter(|&(_, label)| label == FileLabel::Malicious)
            .map(|(hash, _)| hash)
            .collect();
        let chunks = partition(malicious.len(), pool.threads().max(1));
        let extracted = pool.map(&chunks, |_, range| {
            let mut rows = Vec::with_capacity(range.len());
            let mut stats = ResolutionStats::default();
            for &hash in &malicious[range.clone()] {
                let Some(scan) = ground_truth.scan(hash) else {
                    continue;
                };
                let verdict = behavior.extract(&scan.leading_labels());
                stats.record(verdict.resolution);
                rows.push((hash, verdict.ty, families.extract(&scan.all_labels())));
            }
            (rows, stats)
        });
        let mut types = TypeAssignments::default();
        for (rows, stats) in extracted {
            types.resolution.merge(stats);
            for (hash, ty, family) in rows {
                types.types.insert(hash, ty);
                if let Some(family) = family {
                    types.families.insert(hash, family);
                }
            }
        }
        drop(_avtype_span);
        registry.counter_add("avtype.typed", types.types.len() as u64);
        registry.counter_add("avtype.families", types.families.len() as u64);
        let resolution = types.resolution;
        registry.counter_add("avtype.resolved.no_conflict", resolution.no_conflict as u64);
        registry.counter_add("avtype.resolved.voting", resolution.voting as u64);
        registry.counter_add("avtype.resolved.specificity", resolution.specificity as u64);
        registry.counter_add("avtype.resolved.manual", resolution.manual as u64);

        // 6. Resolve labels/types into the shared columnar frame every
        //    table and figure pass consumes. Labels are looked up once
        //    per distinct file and process here, never again per event.
        //    Lake-backed studies chunk by the on-disk shard count so the
        //    work units match the segment layout; either way the frame
        //    is chunk-count-invariant byte for byte.
        let frame = {
            let _span = registry.span("phase.frame", clock);
            let chunks = match &lake {
                Some(opened) => opened.shard_count(),
                None => pool.threads().max(1),
            };
            AnalysisFrame::build_observed_chunked(
                &dataset,
                &pool,
                chunks,
                &registry,
                clock,
                |h| ground_truth.label(h),
                |h| types.malware_type(h),
            )
        };

        Study {
            config: config.clone(),
            lake,
            world,
            dataset,
            suppression,
            ground_truth,
            url_labeler,
            types,
            frame,
            obs: registry.snapshot(),
        }
    }

    /// The configuration the study ran with.
    pub fn config(&self) -> &StudyConfig {
        &self.config
    }

    /// The generated world (latent truth included).
    pub fn world(&self) -> &World {
        &self.world
    }

    /// The opened event lake, when this study ran lake-backed.
    pub fn lake(&self) -> Option<&Lake> {
        self.lake.as_ref()
    }

    /// The collected, indexed dataset.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// What the collection server suppressed.
    pub fn suppression(&self) -> SuppressionStats {
        self.suppression
    }

    /// The collected ground truth.
    pub fn ground_truth(&self) -> &GroundTruth {
        &self.ground_truth
    }

    /// The URL labeler / rank directory.
    pub fn url_labeler(&self) -> &UrlLabeler {
        &self.url_labeler
    }

    /// Behaviour-type and family assignments.
    pub fn types(&self) -> &TypeAssignments {
        &self.types
    }

    /// The columnar [`AnalysisFrame`] shared by every analysis pass.
    pub fn frame(&self) -> &AnalysisFrame {
        &self.frame
    }

    /// Everything the pipeline observed about itself while running.
    ///
    /// Counters, gauges, and value histograms are deterministic — a pure
    /// function of [`StudyConfig`] minus the `threads` / `shards` knobs —
    /// while `timings` (the `phase.*` spans and per-unit pool timings)
    /// depend on the clock and scheduler.
    pub fn obs(&self) -> &ObsReport {
        &self.obs
    }

    /// Renders the observations as a [`RunManifest`] (kind `"study"`).
    ///
    /// The deterministic plane goes in the main sections; `threads` and
    /// `shards` are quarantined under `timing` because they are exactly
    /// the knobs allowed to differ between byte-compared runs.
    pub fn manifest(&self) -> RunManifest {
        let mut manifest = RunManifest::new("study");
        manifest
            .set_run("seed", self.config.synth.seed)
            .set_run("scale", format!("{:?}", self.config.synth.scale))
            .set_run("sigma", self.config.synth.sigma)
            .set_timing("threads", self.config.threads as u64)
            .set_timing("shards", self.config.shards as u64)
            .absorb(&self.obs);
        manifest
    }

    /// A [`LabelView`] over this study's ground truth.
    ///
    /// This is a thin compatibility shim for callers that still use the
    /// closure-based analysis entry points (e.g. ablations that re-label
    /// on the fly); the experiment drivers consume [`Study::frame`]
    /// directly. Both resolve through the same ground truth, so the
    /// outputs are identical.
    pub fn label_view(&self) -> LabelView<'_> {
        LabelView::new(
            |h| self.ground_truth.label(h),
            |h| self.types.malware_type(h),
        )
    }
}

/// Streams a verified lake's merged scan into the collection server.
/// Returns `false` on any scan error (the caller falls back to in-RAM
/// generation); the server must then be discarded, as it may have
/// consumed a partial stream.
fn feed_from_lake(lake: &Lake, server: &mut CollectionServer) -> bool {
    let Ok(scan) = lake.scan() else {
        return false;
    };
    for item in scan {
        match item {
            Ok(raw) => {
                server.observe(raw);
            }
            Err(_) => return false,
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_study() -> Study {
        Study::run(&StudyConfig::new(7).with_scale(Scale::Tiny))
    }

    #[test]
    fn pipeline_produces_labeled_dataset() {
        let study = tiny_study();
        let stats = study.dataset().stats();
        assert!(stats.events > 1_000, "events = {}", stats.events);
        assert!(stats.files > 1_000);
        assert!(stats.machines > 500);

        // Some of everything: benign, malicious, unknown.
        let counts = study.ground_truth().counts();
        assert!(counts.get(&FileLabel::Benign).copied().unwrap_or(0) > 0);
        assert!(counts.get(&FileLabel::Malicious).copied().unwrap_or(0) > 0);
        assert!(counts.get(&FileLabel::Unknown).copied().unwrap_or(0) > 0);
    }

    #[test]
    fn suppression_happened() {
        let study = tiny_study();
        let s = study.suppression();
        assert!(s.not_executed > 0);
        assert!(s.whitelisted_url > 0);
    }

    #[test]
    fn malicious_files_receive_types() {
        let study = tiny_study();
        let labeled_malicious = study
            .ground_truth()
            .iter()
            .filter(|&(_, l)| l == FileLabel::Malicious)
            .count();
        let typed = study.types().types().count();
        assert!(typed > 0);
        assert_eq!(typed, labeled_malicious, "every malicious file gets a type");
        // Families are extracted for a strict subset.
        let families = study.types().families().count();
        assert!(families > 0);
        assert!(families < typed);
    }

    #[test]
    fn unknown_share_has_paper_shape() {
        let study = tiny_study();
        // Over *downloaded files* (not processes), the unknown share must
        // dominate (paper: 83%).
        let view = study.label_view();
        let total = study.dataset().files().len();
        let unknown = study
            .dataset()
            .files()
            .iter()
            .filter(|r| view.label(r.hash) == FileLabel::Unknown)
            .count();
        let share = unknown as f64 / total as f64;
        assert!(share > 0.70 && share < 0.95, "unknown share {share}");
    }

    #[test]
    fn determinism() {
        let a = tiny_study();
        let b = tiny_study();
        assert_eq!(a.dataset().stats(), b.dataset().stats());
        assert_eq!(a.ground_truth().counts(), b.ground_truth().counts());
    }

    #[test]
    fn observed_deterministic_plane_is_thread_invariant() {
        use downlake_obs::TestClock;
        let base = StudyConfig::new(42).with_scale(Scale::Tiny);
        let a = Study::run_observed(
            &base.clone().with_threads(1).with_shards(1),
            &TestClock::with_tick(1),
        );
        let b = Study::run_observed(
            &base.with_threads(4).with_shards(4),
            &TestClock::with_tick(3),
        );
        assert_eq!(a.obs().counters, b.obs().counters);
        assert_eq!(a.obs().gauges, b.obs().gauges);
        assert_eq!(a.obs().values, b.obs().values);
        // The rendered manifests agree byte-for-byte once timing is
        // stripped, even though threads/shards/clock all differ.
        assert_eq!(
            a.manifest().to_json_stripped(),
            b.manifest().to_json_stripped()
        );
        assert_ne!(a.manifest().to_json(), b.manifest().to_json());
        // The observed counters mirror the dataset itself.
        let stats = a.dataset().stats();
        assert_eq!(a.obs().counters["dataset.events"], stats.events as u64);
        assert_eq!(
            a.obs().counters["telemetry.suppressed.not_executed"],
            a.suppression().not_executed
        );
        let counts = a.ground_truth().counts();
        assert_eq!(
            a.obs().counters["groundtruth.malicious"],
            counts.get(&FileLabel::Malicious).copied().unwrap_or(0) as u64
        );
        assert!(a.obs().timings.contains_key("phase.generate"));
        assert!(a.obs().timings.contains_key("phase.frame"));
    }
}
