//! `downlake` — an end-to-end reproduction of *Exploring the Long Tail of
//! (Malicious) Software Downloads* (Rahbarinia, Balduzzi, Perdisci —
//! DSN 2017).
//!
//! This crate wires the substrate crates into the paper's full pipeline:
//!
//! 1. **generate** a calibrated synthetic download world
//!    ([`downlake_synth`]) — the substitution for the proprietary
//!    Trend Micro telemetry;
//! 2. **collect** the raw event stream through the σ-capped collection
//!    server ([`downlake_telemetry`]);
//! 3. **label** files, processes, and URLs with the simulated
//!    VirusTotal / whitelist / GSB machinery ([`downlake_groundtruth`]);
//! 4. **type** malicious files with the AVType + AVclass-style
//!    extractors ([`downlake_avtype`]);
//! 5. **measure** everything §III–§V measures ([`downlake_analysis`]);
//! 6. **learn and evaluate** the rule-based classifier of §VI
//!    ([`downlake_features`] + [`downlake_rulelearn`]).
//!
//! Each table and figure of the paper has a regeneration function in
//! [`experiments`]; [`report::full_report`] runs them all.
//!
//! # Quickstart
//!
//! ```
//! use downlake::{Study, StudyConfig};
//! use downlake_synth::Scale;
//!
//! let study = Study::run(&StudyConfig::new(42).with_scale(Scale::Tiny));
//! let stats = study.dataset().stats();
//! assert!(stats.events > 0);
//! // The long tail: most files remain unknown.
//! let table1 = downlake::experiments::table1(&study);
//! assert!(!table1.rows.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod experiments;
pub mod lake;
pub mod live;
mod pipeline;
mod render;
pub mod report;
pub mod serve;

pub use pipeline::{Study, StudyConfig, TypeAssignments};
pub use render::{Figure, TextTable};
