//! A minimal JSON value, writer, and parser.
//!
//! The manifest writer needs three properties no general-purpose
//! dependency is required for: correct string escaping (the bug class
//! the bench bins' hand-rolled emitters had), deterministic rendering
//! (object keys emit in insertion order; callers insert
//! deterministically), and a parser good enough to validate and diff
//! emitted manifests in tests. Integers are kept exact (`u64`/`i64`
//! variants); floats appear only in timing data where bit-stability is
//! not promised.

use std::fmt;

/// A JSON value.
///
/// Objects preserve insertion order (a `Vec` of pairs, not a map): the
/// writer emits exactly what was built, and determinism is inherited
/// from the caller's deterministic construction order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (the manifest's native numeric type).
    UInt(u64),
    /// A signed integer.
    Int(i64),
    /// A float; non-finite values render as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::UInt(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Self {
        Json::UInt(u64::from(v))
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::UInt(v as u64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::Int(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Float(v)
    }
}
impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_owned())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}

impl Json {
    /// Looks a key up in an object (`None` for other variants or a
    /// missing key; first match wins).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64` when it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::UInt(v) => Some(v),
            Json::Int(v) => u64::try_from(v).ok(),
            _ => None,
        }
    }

    /// The value as `&str` when it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The value as `f64` when it is any numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::UInt(v) => Some(v as f64),
            Json::Int(v) => Some(v as f64),
            Json::Float(v) => Some(v),
            _ => None,
        }
    }

    /// The value as `bool` when it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value's elements when it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items.as_slice()),
            _ => None,
        }
    }

    /// Renders with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_into(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(v) => out.push_str(&itoa(*v)),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::Float(v) => {
                if v.is_finite() {
                    // `{:?}` keeps a decimal point ("1.0"), round-trips,
                    // and never produces exponent-less ambiguity.
                    out.push_str(&format!("{v:?}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                // Arrays of scalars stay on one line; nested structures
                // get one element per line.
                let scalar = items
                    .iter()
                    .all(|i| !matches!(i, Json::Arr(_) | Json::Obj(_)));
                if scalar {
                    out.push('[');
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        item.write_into(out, depth + 1);
                    }
                    out.push(']');
                } else {
                    out.push_str("[\n");
                    for (i, item) in items.iter().enumerate() {
                        indent(out, depth + 1);
                        item.write_into(out, depth + 1);
                        if i + 1 < items.len() {
                            out.push(',');
                        }
                        out.push('\n');
                    }
                    indent(out, depth);
                    out.push(']');
                }
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (key, value)) in pairs.iter().enumerate() {
                    indent(out, depth + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write_into(out, depth + 1);
                    if i + 1 < pairs.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn itoa(v: u64) -> String {
    v.to_string()
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// Escapes and quotes a string per RFC 8259.
fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: byte offset plus a static description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parses a JSON document. Total: never panics on any input.
pub fn parse(src: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(value)
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &'static str) -> JsonError {
        JsonError {
            offset: self.pos,
            msg,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, byte: u8, msg: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.eat_literal("true", Json::Bool(true)),
            Some(b'f') => self.eat_literal("false", Json::Bool(false)),
            Some(b'n') => self.eat_literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{', "expected '{'")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs: decode when both halves
                            // are present, otherwise substitute U+FFFD.
                            if (0xD800..0xDC00).contains(&code) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    if (0xDC00..0xE000).contains(&low) {
                                        let c = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                        out.push(char::from_u32(c).unwrap_or('\u{FFFD}'));
                                    } else {
                                        out.push('\u{FFFD}');
                                        out.push(char::from_u32(low).unwrap_or('\u{FFFD}'));
                                    }
                                } else {
                                    out.push('\u{FFFD}');
                                }
                            } else {
                                out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            }
                        }
                        _ => return Err(self.err("invalid escape character")),
                    }
                }
                b if b < 0x20 => return Err(self.err("raw control character in string")),
                _ => {
                    // Re-decode the UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    let Some(slice) = self.bytes.get(start..end) else {
                        return Err(self.err("truncated UTF-8 sequence"));
                    };
                    let Ok(s) = std::str::from_utf8(slice) else {
                        return Err(self.err("invalid UTF-8 sequence"));
                    };
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let Some(slice) = self.bytes.get(self.pos..self.pos + 4) else {
            return Err(self.err("truncated \\u escape"));
        };
        let Ok(s) = std::str::from_utf8(slice) else {
            return Err(self.err("invalid \\u escape"));
        };
        let Ok(code) = u32::from_str_radix(s, 16) else {
            return Err(self.err("invalid \\u escape"));
        };
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let Ok(text) = std::str::from_utf8(&self.bytes[start..self.pos]) else {
            return Err(self.err("invalid number"));
        };
        if !float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::Int(v));
            }
        }
        match text.parse::<f64>() {
            Ok(v) => Ok(Json::Float(v)),
            Err(_) => Err(self.err("invalid number")),
        }
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    #[test]
    fn render_escapes_every_hostile_string() {
        let j = obj(vec![(
            "name \"quoted\"\\path",
            Json::Str("line1\nline2\ttab \u{0001} unicode é".into()),
        )]);
        let rendered = j.render();
        let parsed = parse(&rendered).expect("round-trips");
        assert_eq!(parsed, j);
        assert!(rendered.contains("\\\"quoted\\\""));
        assert!(rendered.contains("\\u0001"));
    }

    #[test]
    fn round_trips_numbers_exactly() {
        let j = Json::Arr(vec![
            Json::UInt(u64::MAX),
            Json::Int(-42),
            Json::UInt(0),
            Json::Float(1.5),
            Json::Bool(true),
            Json::Null,
        ]);
        assert_eq!(parse(&j.render()).expect("round-trips"), j);
    }

    #[test]
    fn preserves_insertion_order() {
        let j = obj(vec![
            ("zebra", Json::UInt(1)),
            ("alpha", Json::UInt(2)),
            ("mid", Json::UInt(3)),
        ]);
        let rendered = j.render();
        let z = rendered.find("zebra").expect("present");
        let a = rendered.find("alpha").expect("present");
        let m = rendered.find("mid").expect("present");
        assert!(z < a && a < m);
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "\"unterminated",
            "truely",
            "[1] extra",
            "{\"a\": \u{0007}}",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parse_handles_escapes_and_surrogates() {
        let parsed = parse(r#""aéb 😀 c\/d""#).expect("valid");
        assert_eq!(parsed, Json::Str("aéb 😀 c/d".into()));
    }

    #[test]
    fn nonfinite_floats_render_null() {
        assert_eq!(Json::Float(f64::NAN).render(), "null\n");
        assert_eq!(Json::Float(f64::INFINITY).render(), "null\n");
    }

    #[test]
    fn get_and_accessors() {
        let j = obj(vec![("k", Json::UInt(9)), ("s", Json::Str("v".into()))]);
        assert_eq!(j.get("k").and_then(Json::as_u64), Some(9));
        assert_eq!(j.get("s").and_then(Json::as_str), Some("v"));
        assert_eq!(j.get("missing"), None);
        assert_eq!(Json::Null.get("k"), None);
    }

    #[test]
    fn numeric_bool_and_array_accessors() {
        assert_eq!(Json::UInt(3).as_f64(), Some(3.0));
        assert_eq!(Json::Int(-2).as_f64(), Some(-2.0));
        assert_eq!(Json::Float(0.001).as_f64(), Some(0.001));
        assert_eq!(Json::Str("x".into()).as_f64(), None);
        assert_eq!(Json::Bool(true).as_bool(), Some(true));
        assert_eq!(Json::UInt(1).as_bool(), None);
        let arr = Json::Arr(vec![Json::UInt(1), Json::UInt(2)]);
        assert_eq!(arr.as_arr().map(<[Json]>::len), Some(2));
        assert_eq!(Json::Null.as_arr(), None);
    }

    #[test]
    fn deep_nesting_is_rejected_not_overflowed() {
        let deep = "[".repeat(10_000) + &"]".repeat(10_000);
        assert!(parse(&deep).is_err());
    }
}
