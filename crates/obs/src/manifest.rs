//! The run manifest: one JSON document describing a run.
//!
//! Layout:
//!
//! ```text
//! {
//!   "manifest": 1,
//!   "kind": "study" | "stream" | "bench",
//!   "run": { seed, scale, ... },          // deterministic run identity
//!   "counters": { name: u64, ... },       // deterministic plane
//!   "gauges": { name: u64, ... },
//!   "histograms": { name: {count, sum, min, max, buckets}, ... },
//!   "timing": { ... }                     // explicitly nondeterministic
//! }
//! ```
//!
//! Everything outside `timing` is a pure function of the run
//! configuration: two runs with the same config must produce
//! byte-identical output there at any thread or shard count (and
//! [`RunManifest::to_json_stripped`] renders exactly that comparable
//! subset). `timing` holds thread counts, host facts, span durations —
//! anything scheduling- or host-dependent.

use crate::json::Json;
use crate::registry::ObsReport;
use std::io;
use std::path::Path;

/// Manifest schema version emitted under the `"manifest"` key.
pub const MANIFEST_VERSION: u64 = 1;

/// Builder for the run-manifest JSON document.
///
/// Fill `run` with deterministic run identity via
/// [`set_run`](Self::set_run), fold metric snapshots in with
/// [`absorb`](Self::absorb) (deterministic planes land in
/// counters/gauges/histograms; the timing plane lands under `timing`),
/// and attach host/config facts that are *not* reproducible — thread
/// counts, CPU counts, wall-clock seconds — with
/// [`set_timing`](Self::set_timing).
#[derive(Debug, Clone, Default)]
pub struct RunManifest {
    kind: String,
    run: Vec<(String, Json)>,
    report: ObsReport,
    timing_extra: Vec<(String, Json)>,
}

impl RunManifest {
    /// A manifest of the given kind (`"study"`, `"stream"`, `"bench"`).
    pub fn new(kind: &str) -> Self {
        Self {
            kind: kind.to_owned(),
            ..Self::default()
        }
    }

    /// Sets a key in the `run` section (deterministic run identity:
    /// seed, scale, experiment list). Insertion order is preserved;
    /// setting an existing key overwrites in place.
    pub fn set_run(&mut self, key: &str, value: impl Into<Json>) -> &mut Self {
        upsert(&mut self.run, key, value.into());
        self
    }

    /// Sets a key in the `timing` section (host- or
    /// scheduling-dependent facts: threads, shards, host CPUs, seconds).
    pub fn set_timing(&mut self, key: &str, value: impl Into<Json>) -> &mut Self {
        upsert(&mut self.timing_extra, key, value.into());
        self
    }

    /// Folds a metric snapshot into the manifest. Counters, gauges and
    /// value histograms join the deterministic sections; the snapshot's
    /// timing histograms render under `timing.spans`. Absorbing multiple
    /// reports merges them commutatively.
    pub fn absorb(&mut self, report: &ObsReport) -> &mut Self {
        self.report.merge(report);
        self
    }

    /// Renders the full manifest, `timing` section included.
    pub fn to_json(&self) -> String {
        self.document(true).render()
    }

    /// Renders the manifest **without** the `timing` section — the
    /// byte-comparable deterministic subset. Two runs of the same config
    /// must agree on this string exactly, regardless of thread count.
    pub fn to_json_stripped(&self) -> String {
        self.document(false).render()
    }

    /// Writes the full manifest to `path`.
    pub fn write(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    fn document(&self, with_timing: bool) -> Json {
        let mut doc = vec![
            ("manifest".to_owned(), Json::UInt(MANIFEST_VERSION)),
            ("kind".to_owned(), Json::Str(self.kind.clone())),
            ("run".to_owned(), Json::Obj(self.run.clone())),
            (
                "counters".to_owned(),
                Json::Obj(
                    self.report
                        .counters
                        .iter()
                        .map(|(k, &v)| (k.clone(), Json::UInt(v)))
                        .collect(),
                ),
            ),
            (
                "gauges".to_owned(),
                Json::Obj(
                    self.report
                        .gauges
                        .iter()
                        .map(|(k, &v)| (k.clone(), Json::UInt(v)))
                        .collect(),
                ),
            ),
            (
                "histograms".to_owned(),
                Json::Obj(
                    self.report
                        .values
                        .iter()
                        .map(|(k, h)| (k.clone(), hist_json(h)))
                        .collect(),
                ),
            ),
        ];
        if with_timing {
            let mut timing = self.timing_extra.clone();
            timing.push((
                "spans".to_owned(),
                Json::Obj(
                    self.report
                        .timings
                        .iter()
                        .map(|(k, h)| (k.clone(), hist_json(h)))
                        .collect(),
                ),
            ));
            doc.push(("timing".to_owned(), Json::Obj(timing)));
        }
        Json::Obj(doc)
    }
}

fn upsert(pairs: &mut Vec<(String, Json)>, key: &str, value: Json) {
    match pairs.iter_mut().find(|(k, _)| k == key) {
        Some((_, slot)) => *slot = value,
        None => pairs.push((key.to_owned(), value)),
    }
}

/// Renders a histogram as `{count, sum, min, max, buckets: [[lo, hi, n]]}`
/// with only occupied buckets listed (min/max are `null` when empty).
fn hist_json(h: &crate::Hist) -> Json {
    let opt = |v: Option<u64>| v.map_or(Json::Null, Json::UInt);
    Json::Obj(vec![
        ("count".to_owned(), Json::UInt(h.count())),
        ("sum".to_owned(), Json::UInt(h.sum())),
        ("min".to_owned(), opt(h.min())),
        ("max".to_owned(), opt(h.max())),
        (
            "buckets".to_owned(),
            Json::Arr(
                h.occupied_buckets()
                    .map(|(_, lo, hi, n)| {
                        Json::Arr(vec![Json::UInt(lo), Json::UInt(hi), Json::UInt(n)])
                    })
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::Registry;

    fn sample_report() -> ObsReport {
        let reg = Registry::new();
        reg.counter_add("events.total", 100);
        reg.gauge_max("intern.peak", 42);
        reg.record("unit.events", 12);
        reg.record("unit.events", 88);
        reg.record_nanos("phase.generate", 1_000_000);
        reg.snapshot()
    }

    #[test]
    fn emitted_manifest_parses_and_has_all_sections() {
        let mut m = RunManifest::new("study");
        m.set_run("seed", 42u64)
            .set_run("scale", "tiny")
            .absorb(&sample_report())
            .set_timing("threads", 4u64)
            .set_timing("seconds", 0.25f64);
        let doc = json::parse(&m.to_json()).expect("manifest is valid JSON");
        assert_eq!(doc.get("manifest").and_then(Json::as_u64), Some(1));
        assert_eq!(doc.get("kind").and_then(Json::as_str), Some("study"));
        let run = doc.get("run").expect("run section");
        assert_eq!(run.get("seed").and_then(Json::as_u64), Some(42));
        let counters = doc.get("counters").expect("counters section");
        assert_eq!(
            counters.get("events.total").and_then(Json::as_u64),
            Some(100)
        );
        let timing = doc.get("timing").expect("timing section");
        assert_eq!(timing.get("threads").and_then(Json::as_u64), Some(4));
        assert!(timing
            .get("spans")
            .and_then(|s| s.get("phase.generate"))
            .is_some());
    }

    #[test]
    fn stripped_manifest_omits_timing_only() {
        let mut m = RunManifest::new("study");
        m.set_run("seed", 7u64)
            .absorb(&sample_report())
            .set_timing("threads", 8u64);
        let full = json::parse(&m.to_json()).expect("valid");
        let stripped = json::parse(&m.to_json_stripped()).expect("valid");
        assert!(full.get("timing").is_some());
        assert_eq!(stripped.get("timing"), None);
        for section in ["run", "counters", "gauges", "histograms"] {
            assert_eq!(full.get(section), stripped.get(section), "{section}");
        }
    }

    #[test]
    fn stripped_output_is_invariant_to_timing_differences() {
        let build = |threads: u64, nanos: u64| {
            let reg = Registry::new();
            reg.counter_add("events.total", 500);
            reg.record_nanos("phase.x", nanos);
            let mut m = RunManifest::new("study");
            m.set_run("seed", 42u64)
                .absorb(&reg.snapshot())
                .set_timing("threads", threads);
            m
        };
        let a = build(1, 10);
        let b = build(4, 99_999);
        assert_ne!(a.to_json(), b.to_json());
        assert_eq!(a.to_json_stripped(), b.to_json_stripped());
    }

    #[test]
    fn set_run_overwrites_in_place_preserving_order() {
        let mut m = RunManifest::new("bench");
        m.set_run("first", 1u64).set_run("second", 2u64);
        m.set_run("first", 10u64);
        let doc = json::parse(&m.to_json()).expect("valid");
        let run = doc.get("run").expect("run");
        assert_eq!(run.get("first").and_then(Json::as_u64), Some(10));
        let rendered = m.to_json();
        let f = rendered.find("first").expect("present");
        let s = rendered.find("second").expect("present");
        assert!(f < s, "overwrite must not reorder keys");
    }

    #[test]
    fn hostile_run_values_are_escaped() {
        let mut m = RunManifest::new("study");
        m.set_run("label", "quote \" backslash \\ newline \n end");
        let doc = json::parse(&m.to_json()).expect("escaping is correct");
        assert_eq!(
            doc.get("run")
                .and_then(|r| r.get("label"))
                .and_then(Json::as_str),
            Some("quote \" backslash \\ newline \n end")
        );
    }
}
