//! The monotonic clock abstraction.
//!
//! Every duration in the workspace is measured against the [`Clock`]
//! trait, never against `std::time` directly. That indirection is what
//! keeps lint rule D2 (`ambient-nondeterminism`) meaningful: the one
//! sanctioned real-clock read lives in this file, inside [`RealClock`],
//! and everything it feeds is quarantined in the run manifest's
//! explicitly nondeterministic `timing` section. Tests and deterministic
//! replays inject a [`TestClock`] instead and get bit-identical span
//! values on every run.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic nanosecond clock.
///
/// Implementations must be monotonic per instance (consecutive reads
/// never decrease) and `Sync`, because worker-pool units read the clock
/// from their own threads.
pub trait Clock: Sync {
    /// Nanoseconds since an arbitrary per-instance epoch.
    fn now_nanos(&self) -> u64;
}

/// The production clock: a monotonic `Instant` anchored at construction.
///
/// This is the workspace's **only** real-clock source. Library code
/// never calls `Instant::now()` itself; it takes a `&dyn Clock` and the
/// caller decides whether time is real (`RealClock`) or scripted
/// ([`TestClock`]). Values read from this clock may only ever flow into
/// the `timing` section of a [`RunManifest`](crate::RunManifest).
#[derive(Debug)]
pub struct RealClock {
    epoch: Instant,
}

impl RealClock {
    /// A clock whose epoch is the moment of construction.
    pub fn new() -> Self {
        Self {
            // downlake-lint: allow(D2) — the workspace's single sanctioned real-clock read; every value derived from it is quarantined in the manifest's `timing` section
            epoch: Instant::now(),
        }
    }
}

impl Default for RealClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for RealClock {
    fn now_nanos(&self) -> u64 {
        let nanos = self.epoch.elapsed().as_nanos();
        u64::try_from(nanos).unwrap_or(u64::MAX)
    }
}

/// A deterministic clock for tests and replays.
///
/// Each read returns the current value and then advances it by a fixed
/// `tick`, so a span that starts and stops with nothing in between
/// always measures exactly one tick. [`TestClock::advance`] injects
/// extra elapsed time between reads. Reads are atomic, so the clock can
/// be shared with pool workers; under concurrency the *interleaving* of
/// reads is scheduling-dependent, which is fine — test-clock values are
/// timing-plane data like any other clock's.
#[derive(Debug, Default)]
pub struct TestClock {
    now: AtomicU64,
    tick: u64,
}

impl TestClock {
    /// A clock starting at zero that advances by `tick` nanoseconds on
    /// every read.
    pub fn with_tick(tick: u64) -> Self {
        Self {
            now: AtomicU64::new(0),
            tick,
        }
    }

    /// A frozen clock: reads do not advance it (every span measures 0
    /// until [`TestClock::advance`] is called between start and stop).
    pub fn new() -> Self {
        Self::with_tick(0)
    }

    /// Advances the clock by `nanos`.
    pub fn advance(&self, nanos: u64) {
        self.now.fetch_add(nanos, Ordering::Relaxed);
    }
}

impl Clock for TestClock {
    fn now_nanos(&self) -> u64 {
        self.now.fetch_add(self.tick, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_clock_is_monotonic() {
        let clock = RealClock::new();
        let a = clock.now_nanos();
        let b = clock.now_nanos();
        assert!(b >= a);
    }

    #[test]
    fn test_clock_ticks_deterministically() {
        let clock = TestClock::with_tick(5);
        assert_eq!(clock.now_nanos(), 0);
        assert_eq!(clock.now_nanos(), 5);
        clock.advance(100);
        assert_eq!(clock.now_nanos(), 110);
    }

    #[test]
    fn frozen_clock_stays_put_until_advanced() {
        let clock = TestClock::new();
        assert_eq!(clock.now_nanos(), 0);
        assert_eq!(clock.now_nanos(), 0);
        clock.advance(7);
        assert_eq!(clock.now_nanos(), 7);
    }
}
