//! Deterministic observability for the downlake workspace.
//!
//! This crate gives every pipeline stage a way to report what it did —
//! counters, gauges, histograms, span timers — without compromising the
//! workspace's core guarantee that output is a pure function of
//! configuration. It does so by splitting metrics into two planes:
//!
//! * the **deterministic plane** (counters, gauges, value histograms):
//!   integer-only, byte-stable across hosts, threads, and shard counts.
//!   Workers snapshot private registries and the caller merges them
//!   commutatively, so `threads=1` and `threads=8` produce identical
//!   bytes.
//! * the **timing plane** (span durations, per-unit pool timing):
//!   inherently scheduling-dependent, quarantined under the run
//!   manifest's `timing` section so consumers can diff everything else.
//!
//! Time is always read through the [`Clock`] trait — [`RealClock`] in
//! production, [`TestClock`] in tests — so the workspace's single real
//! clock read lives in one audited place.
//!
//! ```
//! use downlake_obs::{Registry, RunManifest, TestClock};
//!
//! let reg = Registry::new();
//! let clock = TestClock::with_tick(10);
//! {
//!     let _span = reg.span("phase.demo", &clock);
//!     reg.counter_add("events.total", 3);
//!     reg.record("batch.size", 128);
//! }
//!
//! let mut manifest = RunManifest::new("study");
//! manifest.set_run("seed", 42u64).absorb(&reg.snapshot());
//! let json = manifest.to_json();
//! assert!(json.contains("\"events.total\": 3"));
//! // The stripped form drops the scheduling-dependent timing section.
//! assert!(!manifest.to_json_stripped().contains("timing"));
//! ```
//!
//! The crate is dependency-free on purpose: manifests must be emittable
//! from hermetic CI containers and the bench binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod clock;
mod hist;
pub mod json;
mod manifest;
mod registry;

pub use clock::{Clock, RealClock, TestClock};
pub use hist::{Hist, BUCKETS};
pub use manifest::{RunManifest, MANIFEST_VERSION};
pub use registry::{ObsReport, Registry, Span};
