//! Integer histograms with fixed log-2 buckets.
//!
//! Bucket boundaries are powers of two, so bucket assignment is a pure
//! function of the recorded integer — no float math, no configuration,
//! and therefore byte-stable across hosts and commutative under merge.

/// Number of buckets: one for zero plus one per bit length 1..=64.
pub const BUCKETS: usize = 65;

/// A fixed-bucket log-2 histogram over `u64` samples.
///
/// Bucket 0 holds the value 0; bucket `b ≥ 1` holds values whose bit
/// length is `b`, i.e. the range `[2^(b-1), 2^b - 1]` (bucket 64 is
/// capped at `u64::MAX`). All state is integer, all updates commute, so
/// merging per-worker histograms in any order yields identical bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hist {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; BUCKETS],
}

impl Default for Hist {
    fn default() -> Self {
        Self::new()
    }
}

impl Hist {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }

    /// The bucket index a value lands in: 0 for 0, else the bit length.
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            (64 - value.leading_zeros()) as usize
        }
    }

    /// The inclusive `[lo, hi]` range of bucket `index` (`None` when the
    /// index is out of range).
    pub fn bucket_bounds(index: usize) -> Option<(u64, u64)> {
        match index {
            0 => Some((0, 0)),
            1..=63 => Some((1u64 << (index - 1), (1u64 << index) - 1)),
            64 => Some((1u64 << 63, u64::MAX)),
            _ => None,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[Self::bucket_index(value)] += 1;
    }

    /// Folds another histogram into this one. Commutative and
    /// associative: any merge order over any partition of the samples
    /// produces the same histogram.
    pub fn merge(&mut self, other: &Hist) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += *theirs;
        }
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean sample, or `None` when empty.
    pub fn mean(&self) -> Option<u64> {
        (self.count > 0).then(|| self.sum / self.count)
    }

    /// Non-empty buckets as `(index, lo, hi, count)`, ascending.
    pub fn occupied_buckets(&self) -> impl Iterator<Item = (usize, u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .filter_map(|(i, &n)| Self::bucket_bounds(i).map(|(lo, hi)| (i, lo, hi, n)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        // Zero gets its own bucket.
        assert_eq!(Hist::bucket_index(0), 0);
        // Each power of two opens a new bucket; its predecessor closes one.
        assert_eq!(Hist::bucket_index(1), 1);
        assert_eq!(Hist::bucket_index(2), 2);
        assert_eq!(Hist::bucket_index(3), 2);
        assert_eq!(Hist::bucket_index(4), 3);
        assert_eq!(Hist::bucket_index(7), 3);
        assert_eq!(Hist::bucket_index(8), 4);
        assert_eq!(Hist::bucket_index(1023), 10);
        assert_eq!(Hist::bucket_index(1024), 11);
        assert_eq!(Hist::bucket_index(u64::MAX), 64);
        assert_eq!(Hist::bucket_index(1u64 << 63), 64);
        // bounds ↔ index agree at every boundary.
        for index in 0..BUCKETS {
            let (lo, hi) = Hist::bucket_bounds(index).expect("in range");
            assert_eq!(Hist::bucket_index(lo), index, "lo of bucket {index}");
            assert_eq!(Hist::bucket_index(hi), index, "hi of bucket {index}");
        }
        assert_eq!(Hist::bucket_bounds(BUCKETS), None);
    }

    #[test]
    fn record_tracks_count_sum_min_max() {
        let mut h = Hist::new();
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        for v in [0u64, 3, 9, 1024] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1036);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1024));
        assert_eq!(h.mean(), Some(259));
        let occupied: Vec<_> = h.occupied_buckets().collect();
        assert_eq!(
            occupied,
            vec![
                (0, 0, 0, 1),
                (2, 2, 3, 1),
                (4, 8, 15, 1),
                (11, 1024, 2047, 1)
            ]
        );
    }

    #[test]
    fn merge_is_commutative() {
        let samples_a = [1u64, 5, 17, 0, 900];
        let samples_b = [2u64, 2, 1 << 40, 63];
        let mut a = Hist::new();
        let mut b = Hist::new();
        for &v in &samples_a {
            a.record(v);
        }
        for &v in &samples_b {
            b.record(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        // And equal to recording everything sequentially.
        let mut seq = Hist::new();
        for &v in samples_a.iter().chain(samples_b.iter()) {
            seq.record(v);
        }
        assert_eq!(ab, seq);
    }

    #[test]
    fn sum_saturates_instead_of_wrapping() {
        let mut h = Hist::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.count(), 2);
    }
}
