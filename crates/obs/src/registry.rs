//! The metric registry: counters, gauges, value histograms, and span
//! timers, split into a deterministic plane and a timing plane.
//!
//! The split is the crate's core invariant. **Counters, gauges, and
//! value histograms** may only ever receive values that are pure
//! functions of the run configuration — event counts, rule tallies,
//! intern-table sizes — so their bytes are identical at every thread
//! and shard count. **Timings** (span durations, per-unit pool timing)
//! are inherently scheduling-dependent and are kept in a separate map
//! that the manifest renders under the explicitly nondeterministic
//! `timing` section.

use crate::clock::Clock;
use crate::hist::Hist;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;

/// A single-threaded metric registry.
///
/// Methods take `&self` (interior mutability), so spans can stay alive
/// while counters are recorded underneath them. The registry itself is
/// deliberately **not** `Sync`: worker threads never record into a
/// shared registry — they return data, and either the caller records it
/// or each worker snapshots a private registry and the caller folds the
/// [`ObsReport`]s together with [`Registry::merge`], which is
/// commutative by construction.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RefCell<BTreeMap<String, u64>>,
    gauges: RefCell<BTreeMap<String, u64>>,
    values: RefCell<BTreeMap<String, Hist>>,
    timings: RefCell<BTreeMap<String, Hist>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the named monotonic counter.
    pub fn counter_add(&self, name: &str, n: u64) {
        let mut counters = self.counters.borrow_mut();
        match counters.get_mut(name) {
            Some(slot) => *slot = slot.saturating_add(n),
            None => {
                counters.insert(name.to_owned(), n);
            }
        }
    }

    /// The current value of a counter (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.borrow().get(name).copied().unwrap_or(0)
    }

    /// Raises the named gauge to `v` if `v` is larger (max-merge keeps
    /// gauges commutative; use it for peaks like intern-table sizes).
    pub fn gauge_max(&self, name: &str, v: u64) {
        let mut gauges = self.gauges.borrow_mut();
        match gauges.get_mut(name) {
            Some(slot) => *slot = (*slot).max(v),
            None => {
                gauges.insert(name.to_owned(), v);
            }
        }
    }

    /// The current value of a gauge (0 when never touched).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.borrow().get(name).copied().unwrap_or(0)
    }

    /// Records one sample into the named **deterministic** value
    /// histogram (per-unit event counts, rule coverages, …).
    pub fn record(&self, name: &str, value: u64) {
        self.values
            .borrow_mut()
            .entry(name.to_owned())
            .or_default()
            .record(value);
    }

    /// Records one duration into the named **timing** histogram. Only
    /// clock-derived values belong here; they render under the
    /// manifest's `timing` section.
    pub fn record_nanos(&self, name: &str, nanos: u64) {
        self.timings
            .borrow_mut()
            .entry(name.to_owned())
            .or_default()
            .record(nanos);
    }

    /// Starts an RAII span: the duration between this call and the
    /// returned guard's drop is recorded under `name` in the timing
    /// plane.
    ///
    /// ```
    /// use downlake_obs::{Registry, TestClock};
    ///
    /// let reg = Registry::new();
    /// let clock = TestClock::new();
    /// {
    ///     let _span = reg.span("phase.demo", &clock);
    ///     clock.advance(1_500);
    ///     reg.counter_add("work.items", 3); // registry stays usable inside
    /// }
    /// let report = reg.snapshot();
    /// assert_eq!(report.timings["phase.demo"].sum(), 1_500);
    /// assert_eq!(report.counters["work.items"], 3);
    /// ```
    pub fn span<'a>(&'a self, name: &str, clock: &'a dyn Clock) -> Span<'a> {
        Span {
            registry: self,
            clock,
            name: name.to_owned(),
            start: clock.now_nanos(),
        }
    }

    /// Copies the registry's current state into a plain, `Sync`,
    /// mergeable report.
    pub fn snapshot(&self) -> ObsReport {
        ObsReport {
            counters: self.counters.borrow().clone(),
            gauges: self.gauges.borrow().clone(),
            values: self.values.borrow().clone(),
            timings: self.timings.borrow().clone(),
        }
    }

    /// Folds a report into this registry: counters add, gauges
    /// max-merge, histograms merge bucket-wise. Commutative, so worker
    /// snapshots can arrive in any order.
    pub fn merge(&self, report: &ObsReport) {
        for (name, &n) in &report.counters {
            self.counter_add(name, n);
        }
        for (name, &v) in &report.gauges {
            self.gauge_max(name, v);
        }
        let mut values = self.values.borrow_mut();
        for (name, hist) in &report.values {
            values.entry(name.clone()).or_default().merge(hist);
        }
        let mut timings = self.timings.borrow_mut();
        for (name, hist) in &report.timings {
            timings.entry(name.clone()).or_default().merge(hist);
        }
    }
}

/// A finished, immutable snapshot of a [`Registry`].
///
/// Plain owned maps: `Sync`, cloneable, and mergeable — the form metric
/// state travels in (stored on a finished `Study`, returned from
/// workers, absorbed into a [`RunManifest`](crate::RunManifest)).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ObsReport {
    /// Monotonic counters (deterministic plane).
    pub counters: BTreeMap<String, u64>,
    /// Max-merged gauges (deterministic plane).
    pub gauges: BTreeMap<String, u64>,
    /// Value histograms (deterministic plane).
    pub values: BTreeMap<String, Hist>,
    /// Duration histograms (timing plane — scheduling-dependent).
    pub timings: BTreeMap<String, Hist>,
}

impl ObsReport {
    /// Folds `other` into `self` (counters add, gauges max, histograms
    /// merge). Commutative.
    pub fn merge(&mut self, other: &ObsReport) {
        for (name, &n) in &other.counters {
            let slot = self.counters.entry(name.clone()).or_insert(0);
            *slot = slot.saturating_add(n);
        }
        for (name, &v) in &other.gauges {
            let slot = self.gauges.entry(name.clone()).or_insert(0);
            *slot = (*slot).max(v);
        }
        for (name, hist) in &other.values {
            self.values.entry(name.clone()).or_default().merge(hist);
        }
        for (name, hist) in &other.timings {
            self.timings.entry(name.clone()).or_default().merge(hist);
        }
    }
}

/// An RAII timer started by [`Registry::span`]; records its elapsed
/// nanoseconds into the registry's timing plane on drop.
pub struct Span<'a> {
    registry: &'a Registry,
    clock: &'a dyn Clock,
    name: String,
    start: u64,
}

impl fmt::Debug for Span<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Span")
            .field("name", &self.name)
            .field("start", &self.start)
            .finish()
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let elapsed = self.clock.now_nanos().saturating_sub(self.start);
        self.registry.record_nanos(&self.name, elapsed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::TestClock;

    #[test]
    fn counters_add_and_gauges_max() {
        let reg = Registry::new();
        reg.counter_add("a", 2);
        reg.counter_add("a", 3);
        reg.gauge_max("g", 10);
        reg.gauge_max("g", 4);
        assert_eq!(reg.counter("a"), 5);
        assert_eq!(reg.counter("missing"), 0);
        assert_eq!(reg.gauge("g"), 10);
        assert_eq!(reg.gauge("missing"), 0);
    }

    #[test]
    fn span_records_exactly_the_advanced_time() {
        let reg = Registry::new();
        let clock = TestClock::new();
        {
            let _outer = reg.span("outer", &clock);
            clock.advance(100);
            {
                let _inner = reg.span("inner", &clock);
                clock.advance(40);
            }
            clock.advance(60);
        }
        let report = reg.snapshot();
        assert_eq!(report.timings["outer"].sum(), 200);
        assert_eq!(report.timings["outer"].count(), 1);
        assert_eq!(report.timings["inner"].sum(), 40);
    }

    #[test]
    fn span_with_ticking_clock_is_deterministic() {
        // Two identical runs against tick-per-read clocks must agree on
        // every recorded nanosecond — this is what keeps `Study::run`
        // reproducible under a scripted clock.
        let run = || {
            let reg = Registry::new();
            let clock = TestClock::with_tick(7);
            {
                let _span = reg.span("phase", &clock);
                let _ = clock.now_nanos();
            }
            reg.snapshot()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn merge_of_worker_snapshots_is_commutative() {
        let worker = |values: &[u64]| {
            let reg = Registry::new();
            for &v in values {
                reg.counter_add("events", 1);
                reg.record("sizes", v);
                reg.gauge_max("peak", v);
            }
            reg.snapshot()
        };
        let a = worker(&[1, 2, 300]);
        let b = worker(&[40, 0]);

        let ab = Registry::new();
        ab.merge(&a);
        ab.merge(&b);
        let ba = Registry::new();
        ba.merge(&b);
        ba.merge(&a);
        assert_eq!(ab.snapshot(), ba.snapshot());
        assert_eq!(ab.counter("events"), 5);
        assert_eq!(ab.gauge("peak"), 300);

        let mut ra = a.clone();
        ra.merge(&b);
        let mut rb = b.clone();
        rb.merge(&a);
        assert_eq!(ra, rb);
        assert_eq!(ra, ab.snapshot());
    }
}
