//! Property tests for the shard partitioner and the per-unit seed
//! stream.
//!
//! Each `proptest!` property also has a plain `#[test]` mirror sweeping
//! a dense deterministic grid, so the invariants stay exercised even
//! where the proptest runner is unavailable.

use downlake_exec::{partition, unit_seed};
use proptest::prelude::*;

/// Checks every partition invariant for one `(n, k)` pair:
/// shards tile `0..n` exactly (disjoint, exhaustive, in order), no
/// shard is empty, and sizes differ by at most one.
fn check_partition(n: usize, k: usize) {
    let shards = partition(n, k);
    // Exhaustive + disjoint + order-stable: the concatenation of the
    // ranges is exactly 0..n.
    let mut next = 0usize;
    for range in &shards {
        assert_eq!(
            range.start, next,
            "gap or overlap at {range:?} (n={n}, k={k})"
        );
        assert!(
            range.end > range.start,
            "empty shard {range:?} (n={n}, k={k})"
        );
        next = range.end;
    }
    assert_eq!(next, n, "shards do not cover 0..{n} (k={k})");
    if n == 0 {
        assert!(shards.is_empty());
        return;
    }
    // Effective shard count and balance.
    assert_eq!(shards.len(), k.max(1).min(n));
    let min = shards.iter().map(|r| r.len()).min().unwrap_or(0);
    let max = shards.iter().map(|r| r.len()).max().unwrap_or(0);
    assert!(
        max - min <= 1,
        "unbalanced shards (n={n}, k={k}): {min}..{max}"
    );
}

/// Checks that `unit_seed` is a pure function and distinguishes its
/// three inputs over a small neighbourhood.
fn check_unit_seed(seed: u64, salt: u64, index: u64) {
    assert_eq!(unit_seed(seed, salt, index), unit_seed(seed, salt, index));
    assert_ne!(
        unit_seed(seed, salt, index),
        unit_seed(seed, salt, index.wrapping_add(1)),
        "adjacent unit indexes must get distinct streams"
    );
    assert_ne!(
        unit_seed(seed, salt, index),
        unit_seed(seed, salt.wrapping_add(1), index),
        "adjacent salts must get distinct streams"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn partition_tiles_any_input(n in 0usize..5_000, k in 0usize..64) {
        check_partition(n, k);
    }

    #[test]
    fn unit_seed_pure_and_sensitive(seed in any::<u64>(), salt in any::<u64>(), index in 0u64..1_000_000) {
        check_unit_seed(seed, salt, index);
    }
}

#[test]
fn partition_tiles_dense_grid() {
    for n in 0..200 {
        for k in 0..40 {
            check_partition(n, k);
        }
    }
    // A few large / degenerate shapes.
    for (n, k) in [(4_999, 63), (5_000, 1), (1, 63), (1_000_000, 16)] {
        check_partition(n, k);
    }
}

#[test]
fn unit_seed_grid_mirror() {
    for seed in [0u64, 42, u64::MAX] {
        for salt in [0u64, 1, 0x1bd1_1bda_a9fc_1a22] {
            for index in [0u64, 1, 2, 511, 512, 999_999] {
                check_unit_seed(seed, salt, index);
            }
        }
    }
}
