//! The deterministic worker pool.

use downlake_obs::Clock;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// Per-unit timing observed by [`Pool::map_timed`].
///
/// All values are scheduling-dependent: they belong in the run
/// manifest's `timing` section and nowhere else.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UnitTiming {
    /// Nanoseconds between the map call starting and a worker claiming
    /// this unit.
    pub queue_nanos: u64,
    /// Nanoseconds the unit's closure ran for.
    pub exec_nanos: u64,
}

/// A fixed-width worker pool over OS threads.
///
/// The pool itself is just a thread-count policy: each [`Pool::map`] call
/// opens a fresh [`std::thread::scope`], so borrowed inputs work without
/// `'static` bounds and no threads linger between calls. Work items are
/// claimed from an atomic cursor (cheap dynamic load balancing), but
/// results are returned **in input order**, which is what makes every
/// consumer deterministic regardless of how the OS schedules the workers.
pub struct Pool {
    threads: usize,
}

impl fmt::Debug for Pool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Pool")
            .field("threads", &self.threads)
            .finish()
    }
}

impl Pool {
    /// A pool with the given width; `0` asks the OS via
    /// [`std::thread::available_parallelism`] (falling back to 1).
    ///
    /// The width only affects wall-clock time, never output: a
    /// `Pool::new(8)` and a [`Pool::sequential`] drive every downstream
    /// stage to byte-identical results.
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            threads
        };
        Self { threads }
    }

    /// The single-threaded pool: runs every job inline on the caller's
    /// thread, spawning nothing. This is the oracle path the thread-matrix
    /// tests compare all wider pools against.
    pub fn sequential() -> Self {
        Self { threads: 1 }
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `f` to every item and returns the results in item order.
    ///
    /// `f` receives `(index, &item)` and must be a pure function of them
    /// (plus shared read-only state); under that contract the output is
    /// identical for every pool width. Worker panics are propagated to
    /// the caller.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.map_impl(items, &f, None).0
    }

    /// [`Pool::map`] plus per-unit queue/exec timing read from `clock`.
    ///
    /// The results vector is identical to what `map` returns — timing
    /// observation never perturbs output. The timings vector is indexed
    /// like the input but is inherently scheduling-dependent; route it
    /// to the run manifest's `timing` section only.
    pub fn map_timed<T, R, F>(
        &self,
        items: &[T],
        clock: &dyn Clock,
        f: F,
    ) -> (Vec<R>, Vec<UnitTiming>)
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.map_impl(items, &f, Some(clock))
    }

    /// Shared body of `map` / `map_timed`: timing reads are skipped
    /// entirely when no clock is supplied, so the untimed path stays
    /// free of clock overhead.
    fn map_impl<T, R, F>(
        &self,
        items: &[T],
        f: &F,
        clock: Option<&dyn Clock>,
    ) -> (Vec<R>, Vec<UnitTiming>)
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let n = items.len();
        let t0 = clock.map_or(0, |c| c.now_nanos());
        let timed_unit = |c: &dyn Clock, i: usize, item: &T| -> (R, UnitTiming) {
            let claimed = c.now_nanos();
            let result = f(i, item);
            let done = c.now_nanos();
            let timing = UnitTiming {
                queue_nanos: claimed.saturating_sub(t0),
                exec_nanos: done.saturating_sub(claimed),
            };
            (result, timing)
        };
        let workers = self.threads.min(n);
        if workers <= 1 {
            // Inline sequential path: no scope, no spawn, no atomics.
            return match clock {
                None => (
                    items.iter().enumerate().map(|(i, t)| f(i, t)).collect(),
                    Vec::new(),
                ),
                Some(c) => items
                    .iter()
                    .enumerate()
                    .map(|(i, t)| timed_unit(c, i, t))
                    .unzip(),
            };
        }
        let cursor = AtomicUsize::new(0);
        let mut indexed: Vec<(usize, R, UnitTiming)> = Vec::with_capacity(n);
        thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut out: Vec<(usize, R, UnitTiming)> = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            if let Some(item) = items.get(i) {
                                let (result, timing) = match clock {
                                    None => (f(i, item), UnitTiming::default()),
                                    Some(c) => timed_unit(c, i, item),
                                };
                                out.push((i, result, timing));
                            }
                        }
                        out
                    })
                })
                .collect();
            for handle in handles {
                match handle.join() {
                    Ok(part) => indexed.extend(part),
                    Err(panic) => std::panic::resume_unwind(panic),
                }
            }
        });
        // Indices are unique, so the unstable sort is deterministic.
        indexed.sort_unstable_by_key(|&(i, _, _)| i);
        let mut results = Vec::with_capacity(n);
        let mut timings = Vec::with_capacity(if clock.is_some() { n } else { 0 });
        for (_, result, timing) in indexed {
            results.push(result);
            if clock.is_some() {
                timings.push(timing);
            }
        }
        (results, timings)
    }
}

impl Default for Pool {
    /// `Pool::new(0)`: one worker per available core.
    fn default() -> Self {
        Self::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_pool_spawns_nothing_and_preserves_order() {
        let pool = Pool::sequential();
        assert_eq!(pool.threads(), 1);
        let items: Vec<u64> = (0..100).collect();
        let out = pool.map(&items, |i, &x| (i as u64) * 1000 + x);
        let expected: Vec<u64> = (0..100).map(|i| i * 1000 + i).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn wide_pool_matches_sequential() {
        let items: Vec<u64> = (0..257).collect();
        let work = |i: usize, x: &u64| -> u64 {
            // A little per-item compute so scheduling actually interleaves.
            (0..(*x % 17)).fold(i as u64, |acc, k| acc.wrapping_mul(31).wrapping_add(k))
        };
        let seq = Pool::sequential().map(&items, work);
        for threads in [2, 3, 8] {
            let par = Pool::new(threads).map(&items, work);
            assert_eq!(par, seq, "threads = {threads}");
        }
    }

    #[test]
    fn zero_width_resolves_to_at_least_one() {
        assert!(Pool::new(0).threads() >= 1);
        assert!(Pool::default().threads() >= 1);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let out = Pool::new(16).map(&[1u32, 2, 3], |_, &x| x * 2);
        assert_eq!(out, vec![2, 4, 6]);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let items: Vec<u32> = Vec::new();
        let out: Vec<u32> = Pool::new(4).map(&items, |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn map_timed_returns_identical_results_plus_one_timing_per_unit() {
        use downlake_obs::TestClock;
        let items: Vec<u64> = (0..97).collect();
        let work = |i: usize, x: &u64| (i as u64).wrapping_mul(37).wrapping_add(*x);
        let plain = Pool::new(4).map(&items, work);
        for threads in [1, 4] {
            let clock = TestClock::with_tick(1);
            let (timed, timings) = Pool::new(threads).map_timed(&items, &clock, work);
            assert_eq!(timed, plain, "threads = {threads}");
            assert_eq!(timings.len(), items.len(), "threads = {threads}");
        }
    }

    #[test]
    fn map_timed_sequential_measures_exact_ticks() {
        use downlake_obs::TestClock;
        // tick-per-read clock: t0 is read 0; unit i reads (claim, done).
        let clock = TestClock::with_tick(1);
        let (_, timings) = Pool::sequential().map_timed(&[10u32, 20, 30], &clock, |_, &x| x);
        assert_eq!(timings.len(), 3);
        for (i, t) in timings.iter().enumerate() {
            assert_eq!(t.exec_nanos, 1, "unit {i}");
            assert_eq!(t.queue_nanos, 1 + 2 * i as u64, "unit {i}");
        }
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        let items: Vec<u32> = (0..64).collect();
        Pool::new(4).map(&items, |_, &x| {
            if x == 40 {
                panic!("boom");
            }
            x
        });
    }
}
