//! Counter-derived seed streams.
//!
//! Every parallel work unit draws from an RNG seeded by
//! [`unit_seed`]`(seed, salt, index)` — a pure function of the study seed,
//! a per-stage salt, and the unit's position in the *logical* work list.
//! Because the stream is keyed to the unit rather than to whichever shard
//! or thread happened to execute it, regrouping units into different
//! shard counts (or none at all) cannot move a single random draw.

/// One round of the SplitMix64 output function (Steele et al., 2014).
///
/// Used both as the seed mixer for per-unit streams and as a cheap
/// avalanche step wherever a well-spread 64-bit value is needed from a
/// structured counter.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The golden-ratio increment of the SplitMix64 stream.
const GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

/// The seed for work unit `index` of the stage identified by `salt`,
/// under study seed `seed`.
///
/// This is the canonical SplitMix64 counter stream: mix the stage state
/// `splitmix64(seed ^ salt)`, jump the counter by `index` golden-ratio
/// increments, and run the finalizer. The asymmetric `state + index·γ`
/// form avoids the commutative-sum trap (`mix(a) + mix(b)` collides
/// whenever two stages swap state and index values) while keeping
/// nearby indices far apart in seed space.
pub fn unit_seed(seed: u64, salt: u64, index: u64) -> u64 {
    splitmix64(splitmix64(seed ^ salt).wrapping_add(index.wrapping_mul(GAMMA)))
}

/// Folds one value into a running hash state with the same asymmetric
/// SplitMix64 step [`unit_seed`] uses.
///
/// This is the canonical way to derive a stable 64-bit identity from a
/// *sequence* of structured values (a config manifest, a work-unit
/// descriptor): start from any fixed state, fold each value in a fixed
/// field order, and the result is a pure function of the sequence —
/// position-sensitive (swapping two values changes the hash) and
/// independent of how the values were spelled or keyed in a source
/// document.
pub fn mix(state: u64, value: u64) -> u64 {
    splitmix64(state.wrapping_add(value.wrapping_mul(GAMMA)))
}

/// Folds a string into a running hash state byte by byte, prefixed with
/// its length so `("ab", "c")` and `("a", "bc")` cannot collide.
pub fn mix_str(state: u64, s: &str) -> u64 {
    s.bytes()
        .fold(mix(state, s.len() as u64), |st, b| mix(st, u64::from(b)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix64_matches_reference_vectors() {
        // Reference values from the canonical splitmix64.c with state 0
        // and 1: the first output of each stream.
        assert_eq!(splitmix64(0), 0xe220_a839_7b1d_cdaf);
        assert_eq!(splitmix64(1), 0x910a_2dec_8902_5cc1);
    }

    #[test]
    fn unit_seed_is_pure_and_distinct() {
        let a = unit_seed(42, 0xfeed, 7);
        assert_eq!(a, unit_seed(42, 0xfeed, 7));
        // Neighbouring indices, salts, and seeds all land elsewhere.
        assert_ne!(a, unit_seed(42, 0xfeed, 8));
        assert_ne!(a, unit_seed(42, 0xfeee, 7));
        assert_ne!(a, unit_seed(43, 0xfeed, 7));
    }

    #[test]
    fn mix_is_position_sensitive_and_pure() {
        let a = mix(mix(0, 7), 9);
        assert_eq!(a, mix(mix(0, 7), 9));
        assert_ne!(a, mix(mix(0, 9), 7), "swapped values must land elsewhere");
        assert_ne!(mix(0, 0), 0);
    }

    #[test]
    fn mix_str_is_length_prefixed() {
        assert_eq!(mix_str(42, "abc"), mix_str(42, "abc"));
        assert_ne!(mix_str(42, "abc"), mix_str(42, "abd"));
        // Without the length prefix these two fold the same byte stream.
        assert_ne!(
            mix_str(mix_str(0, "ab"), "c"),
            mix_str(mix_str(0, "a"), "bc")
        );
    }

    #[test]
    fn unit_seed_streams_do_not_collide_over_a_small_grid() {
        let mut seen = std::collections::BTreeSet::new();
        for salt in 0..4u64 {
            for index in 0..1024u64 {
                assert!(seen.insert(unit_seed(42, salt, index)));
            }
        }
    }
}
