//! Contiguous work partitioning.
//!
//! Shards exist purely to amortise scheduling: a shard is a contiguous
//! range of work-unit indices handed to [`crate::Pool::map`] as one job.
//! Because per-unit randomness comes from [`crate::unit_seed`] and the
//! results are reassembled in shard order (which, for contiguous ranges,
//! is unit order), the shard count is invisible in the output.

use std::ops::Range;

/// Splits `0..n` into at most `k` contiguous, disjoint, exhaustive,
/// order-stable ranges.
///
/// The first `n % k` shards get one extra unit, so sizes differ by at
/// most one. No shard is empty: when `n < k` only `n` ranges are
/// returned, and `n == 0` yields no ranges at all. `k == 0` is treated
/// as `k == 1`.
pub fn partition(n: usize, k: usize) -> Vec<Range<usize>> {
    let k = k.max(1).min(n);
    if n == 0 {
        return Vec::new();
    }
    let base = n / k;
    let extra = n % k;
    let mut out = Vec::with_capacity(k);
    let mut start = 0;
    for shard in 0..k {
        let len = base + usize::from(shard < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_is_partition(n: usize, k: usize) {
        let shards = partition(n, k);
        // Exhaustive, disjoint, and order-stable: the ranges tile 0..n
        // exactly, in order, with no gaps or overlaps.
        let mut cursor = 0;
        for shard in &shards {
            assert_eq!(shard.start, cursor, "n={n} k={k}");
            assert!(shard.end > shard.start, "empty shard for n={n} k={k}");
            cursor = shard.end;
        }
        assert_eq!(cursor, n, "n={n} k={k}");
        // Balanced: sizes differ by at most one.
        if let (Some(max), Some(min)) = (
            shards.iter().map(|s| s.len()).max(),
            shards.iter().map(|s| s.len()).min(),
        ) {
            assert!(max - min <= 1, "n={n} k={k} max={max} min={min}");
        }
    }

    #[test]
    fn partitions_tile_the_range_for_a_grid_of_shapes() {
        for n in [0, 1, 2, 3, 7, 64, 100, 101, 1023] {
            for k in [0, 1, 2, 3, 4, 7, 8, 63, 64, 65, 4096] {
                assert_is_partition(n, k);
            }
        }
    }

    #[test]
    fn no_empty_shards_when_n_below_k() {
        let shards = partition(3, 8);
        assert_eq!(shards.len(), 3);
        assert_eq!(shards, vec![0..1, 1..2, 2..3]);
    }

    #[test]
    fn zero_units_means_zero_shards() {
        assert!(partition(0, 4).is_empty());
    }

    #[test]
    fn remainder_goes_to_the_leading_shards() {
        assert_eq!(partition(10, 4), vec![0..3, 3..6, 6..8, 8..10]);
    }
}
