//! `downlake-exec` — the workspace's only sanctioned concurrency entry
//! point.
//!
//! Every parallel stage in the pipeline (sharded event generation,
//! frame-partial builds, table/figure passes) goes through [`Pool::map`],
//! which has one contract: **the output is a pure function of the input
//! order, never of scheduling**. Results come back indexed by input
//! position, so any thread count — including the `threads = 1` inline
//! path, which spawns nothing and serves as the sequential oracle in the
//! thread-matrix tests — produces byte-identical output.
//!
//! The companion [`shard`] module provides the contiguous partition used
//! to group work units into shards, and [`seed`] derives the
//! counter-based per-unit RNG streams (SplitMix64 of `seed ⊕ salt ⊕
//! index`) that make shard boundaries invisible to the generated world:
//! randomness is keyed to the *unit*, not to the shard that happened to
//! run it, so shard count and thread count can vary freely without
//! perturbing a single draw.
//!
//! Raw `std::thread::spawn` / `Mutex` use anywhere else in the workspace
//! is rejected by `downlake-lint` rule D4 (`raw-concurrency`); this crate
//! is the carve-out and deliberately needs neither lock: workers own
//! their partial results and hand them back through the scope join.
//!
//! ```
//! use downlake_exec::{partition, Pool};
//!
//! let pool = Pool::new(4);
//! let items: Vec<u64> = (0..100).collect();
//! // Output is a pure function of the input order — never of scheduling.
//! let doubled = pool.map(&items, |_, &x| x * 2);
//! assert_eq!(doubled, Pool::sequential().map(&items, |_, &x| x * 2));
//! // Contiguous shards cover the input exactly once.
//! let shards = partition(items.len(), 3);
//! assert_eq!(shards.iter().map(|s| s.len()).sum::<usize>(), items.len());
//! ```
//!
//! [`Pool::map_timed`] is the observability variant: same results, plus
//! one [`pool::UnitTiming`] per unit read from an injected
//! [`downlake_obs::Clock`] — data that belongs only in the run
//! manifest's `timing` section.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod pool;
pub mod seed;
pub mod shard;

pub use pool::{Pool, UnitTiming};
pub use seed::{mix, mix_str, splitmix64, unit_seed};
pub use shard::partition;
