//! Property tests for the sweep planner.
//!
//! The contract under test: the [`RunSpec`] list is a **pure function
//! of the manifest's values** — invariant to JSON key order and to the
//! `threads` knob — with collision-free run ids and a stable expansion
//! order. Each `proptest!` property has a plain `#[test]` mirror
//! sweeping a dense deterministic grid, so the invariants stay
//! exercised even where the proptest runner is unavailable.

use downlake_sweep::{plan, SweepManifest};
use proptest::prelude::*;

/// τ pool the generators draw from: valid, distinct, bit-exact under
/// JSON round-tripping.
const TAU_POOL: [f64; 6] = [0.0, 0.0005, 0.001, 0.005, 0.01, 0.1];

/// The manifest keys, in the spelling order `render` permutes.
const KEYS: [&str; 7] = [
    "name", "scale", "seeds", "sigmas", "taus", "months", "threads",
];

/// Renders a manifest as JSON with its keys in the given order.
fn render(m: &SweepManifest, order: &[&str]) -> String {
    let field = |key: &str| match key {
        "name" => format!("\"name\": \"{}\"", m.name),
        "scale" => "\"scale\": \"tiny\"".to_owned(),
        "seeds" => format!("\"seeds\": {:?}", m.seeds),
        "sigmas" => format!("\"sigmas\": {:?}", m.sigmas),
        "taus" => format!("\"taus\": {:?}", m.taus),
        "months" => format!("\"months\": {:?}", m.months),
        "threads" => format!("\"threads\": {}", m.threads),
        other => unreachable!("unknown key {other}"),
    };
    let body: Vec<String> = order.iter().map(|&k| field(k)).collect();
    format!("{{{}}}", body.join(", "))
}

/// A generator for small valid manifests (ASCII name, distinct axes).
/// Axis draws are sorted + deduplicated to satisfy the manifest's
/// duplicate-free contract.
fn manifest_strategy() -> impl Strategy<Value = SweepManifest> {
    (
        "[a-z][a-z0-9-]{0,11}",
        proptest::collection::vec(0u64..500, 1..4),
        proptest::collection::vec(1u32..60, 1..4),
        proptest::collection::vec(0usize..TAU_POOL.len(), 1..4),
        proptest::collection::vec(2usize..=7, 1..3),
        0usize..9,
    )
        .prop_map(
            |(name, mut seeds, mut sigmas, tau_idx, mut months, threads)| {
                seeds.sort_unstable();
                seeds.dedup();
                sigmas.sort_unstable();
                sigmas.dedup();
                months.sort_unstable();
                months.dedup();
                let mut taus: Vec<f64> = tau_idx.iter().map(|&i| TAU_POOL[i]).collect();
                taus.sort_by(f64::total_cmp);
                taus.dedup_by(|a, b| a.to_bits() == b.to_bits());
                let m = SweepManifest {
                    name,
                    scale: downlake_synth::Scale::Tiny,
                    seeds,
                    sigmas,
                    taus,
                    months,
                    threads,
                };
                m.validate().expect("generator yields valid manifests");
                m
            },
        )
}

/// Deterministic Fisher–Yates over the key list, driven by `seed` — the
/// stub proptest has no `prop_shuffle`, so permutations come from a
/// plain u64 draw.
fn shuffled_keys(seed: u64) -> Vec<&'static str> {
    let mut keys = KEYS.to_vec();
    let mut state = seed;
    for i in (1..keys.len()).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = ((state >> 33) as usize) % (i + 1);
        keys.swap(i, j);
    }
    keys
}

/// Core invariant check for one manifest and one key permutation.
fn check_plan(m: &SweepManifest, order: &[&str]) {
    let specs = plan(m);

    // 1. Size and order: the fixed seeds → σ → τ → months nesting.
    assert_eq!(specs.len(), m.run_count());
    let mut expected = 0u64;
    let mut walker = specs.iter();
    for &seed in &m.seeds {
        for &sigma in &m.sigmas {
            for &tau in &m.taus {
                for &months in &m.months {
                    let spec = walker.next().expect("plan too short");
                    assert_eq!(
                        (spec.seed, spec.sigma, spec.tau.to_bits(), spec.months),
                        (seed, sigma, tau.to_bits(), months),
                        "expansion order broke at index {expected}"
                    );
                    assert_eq!(spec.index, expected);
                    expected += 1;
                }
            }
        }
    }
    assert!(walker.next().is_none(), "plan too long");

    // 2. Collision-free ids.
    let mut ids: Vec<u64> = specs.iter().map(|s| s.id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), specs.len(), "run ids collided");

    // 3. Purity: re-planning and re-parsing from a key-permuted JSON
    //    spelling reproduce the identical list, ids included.
    assert_eq!(specs, plan(m));
    let respelled = render(m, order);
    let reparsed = SweepManifest::parse(&respelled)
        .unwrap_or_else(|e| panic!("respelled manifest must parse: {e}\n{respelled}"));
    assert_eq!(&reparsed, m, "JSON round-trip changed the manifest");
    assert_eq!(plan(&reparsed), specs, "key order leaked into the plan");

    // 4. `threads` is timing-plane only: it moves neither ids nor order.
    let mut rethreaded = m.clone();
    rethreaded.threads = m.threads.wrapping_add(7);
    assert_eq!(
        plan(&rethreaded),
        specs,
        "thread count leaked into the plan"
    );
}

proptest! {
    #[test]
    fn plan_is_pure_collision_free_and_spelling_invariant(
        m in manifest_strategy(),
        order_seed in any::<u64>(),
    ) {
        check_plan(&m, &shuffled_keys(order_seed));
    }
}

/// Deterministic mirror: a dense grid of manifests × every rotation of
/// the key order.
#[test]
fn grid_mirror_plan_invariants() {
    for seeds in [vec![42], vec![1, 2, 3]] {
        for sigmas in [vec![20], vec![5, 20, 60]] {
            for taus in [vec![0.0], vec![0.0, 0.001], vec![0.001, 0.01, 0.1]] {
                for months in [vec![7], vec![2, 7]] {
                    let m = SweepManifest {
                        name: "grid".to_owned(),
                        scale: downlake_synth::Scale::Tiny,
                        seeds: seeds.clone(),
                        sigmas: sigmas.clone(),
                        taus: taus.clone(),
                        months: months.clone(),
                        threads: 1,
                    };
                    m.validate().expect("grid manifests are valid");
                    for rotation in 0..KEYS.len() {
                        let mut order = KEYS.to_vec();
                        order.rotate_left(rotation);
                        check_plan(&m, &order);
                    }
                }
            }
        }
    }
}

/// Ids must stay collision-free across *distinct* manifests too: the
/// manifest hash separates the streams.
#[test]
fn ids_do_not_collide_across_manifests() {
    let mut all: Vec<u64> = Vec::new();
    for name in ["a", "b", "c"] {
        for seeds in [vec![42], vec![1, 2]] {
            let m = SweepManifest {
                name: name.to_owned(),
                scale: downlake_synth::Scale::Tiny,
                seeds,
                sigmas: vec![5, 20],
                taus: vec![0.0, 0.001],
                months: vec![7],
                threads: 1,
            };
            all.extend(plan(&m).iter().map(|s| s.id));
        }
    }
    let total = all.len();
    all.sort_unstable();
    all.dedup();
    assert_eq!(all.len(), total, "ids collided across manifests");
}
