//! Property tests for [`SweepReport`]'s commutative merge — the law
//! licensed by the `SweepReport` entry in `merge-contracts.json`.
//!
//! Cells are integer tallies keyed by (σ, τ): merging any partition of
//! a run list in any order must produce the same surface, because the
//! runner's pooled fan-out relies on exactly that to keep thread count
//! out of the output. Each `proptest!` property has a deterministic
//! grid mirror.

use downlake_obs::Registry;
use downlake_sweep::{SweepCell, SweepManifest, SweepReport};
use proptest::prelude::*;

fn manifest() -> SweepManifest {
    SweepManifest::parse(r#"{"name": "law", "sigmas": [5, 20, 60], "taus": [0.0, 0.001, 0.01]}"#)
        .expect("valid manifest")
}

/// σ/τ drawn from the manifest's own axes so keys collide often —
/// a merge law over disjoint keys only would prove nothing.
const SIGMAS: [u32; 3] = [5, 20, 60];
const TAUS: [f64; 3] = [0.0, 0.001, 0.01];

/// A strategy for one synthetic cell with small tallies.
fn cell_strategy() -> impl Strategy<Value = SweepCell> {
    (
        0usize..SIGMAS.len(),
        0usize..TAUS.len(),
        proptest::collection::vec(0usize..100, 8),
    )
        .prop_map(|(si, ti, t)| SweepCell {
            sigma: SIGMAS[si],
            tau: TAUS[ti],
            runs: 1,
            rounds: t[0],
            rules_total: t[1],
            rules_selected: t[2],
            true_positives: t[3],
            false_positives: t[4],
            unknown_total: t[5],
            unknown_matched: t[6],
            unknowns_labeled: t[7],
            ..SweepCell::default()
        })
}

/// An observation snapshot with overlapping keys across draws.
fn obs_parts(tallies: &[usize]) -> Registry {
    let registry = Registry::new();
    for (i, &n) in tallies.iter().enumerate() {
        // Two counter names shared across all generated snapshots.
        let name = if i % 2 == 0 { "sweep.a" } else { "sweep.b" };
        registry.counter_add(name, n as u64);
        registry.record("sweep.h", n as u64);
    }
    registry
}

/// The law: key-wise integer addition is commutative and associative,
/// so every merge order and every partition yields the same report.
fn check_merge_laws(cells: &[SweepCell], obs_tallies: &[usize], split: usize) {
    let m = manifest();
    let split = split % (cells.len() + 1);

    // Commutativity: a ⊕ b == b ⊕ a.
    let a = SweepReport::from_cells(&m, cells[..split].to_vec());
    let mut b = SweepReport::from_cells(&m, cells[split..].to_vec());
    b.absorb_obs(&obs_parts(obs_tallies).snapshot());
    let mut ab = a.clone();
    ab.merge(&b);
    let mut ba = b.clone();
    ba.merge(&a);
    assert_eq!(ab, ba, "merge must commute");
    assert_eq!(
        ab.manifest(&m).to_json(),
        ba.manifest(&m).to_json(),
        "rendered manifests must agree byte-for-byte"
    );

    // Associativity + identity: any partition folds to the sequential
    // result, and the empty report is a no-op.
    let sequential = SweepReport::from_cells(&m, cells.to_vec());
    let mut partitioned = SweepReport::empty(&m);
    partitioned.merge(&a);
    partitioned.merge(&SweepReport::from_cells(&m, cells[split..].to_vec()));
    assert_eq!(partitioned, sequential, "partitioning must not matter");
    let mut with_identity = sequential.clone();
    with_identity.merge(&SweepReport::empty(&m));
    assert_eq!(with_identity, sequential, "empty report must be identity");

    // Tally conservation: runs are never lost or double-counted.
    assert_eq!(ab.runs(), cells.len());
    let tp: usize = cells.iter().map(|c| c.true_positives).sum();
    assert_eq!(
        ab.cells().iter().map(|c| c.true_positives).sum::<usize>(),
        tp
    );

    // The surface stays sorted by (σ, τ).
    let keys: Vec<(u32, u64)> = ab.cells().iter().map(SweepCell::key).collect();
    let mut sorted = keys.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(keys, sorted, "cells must stay sorted and key-unique");
}

proptest! {
    #[test]
    fn sweep_report_merge_commutes(
        cells in proptest::collection::vec(cell_strategy(), 0..12),
        obs_tallies in proptest::collection::vec(0usize..50, 0..6),
        split in 0usize..16,
    ) {
        check_merge_laws(&cells, &obs_tallies, split);
    }
}

/// Deterministic mirror: a dense grid over every (σ, τ) pair and every
/// split point of a fixed 9-cell list.
#[test]
fn grid_mirror_merge_laws() {
    let mut cells = Vec::new();
    for (i, &sigma) in SIGMAS.iter().enumerate() {
        for (j, &tau) in TAUS.iter().enumerate() {
            cells.push(SweepCell {
                sigma,
                tau,
                runs: 1,
                rules_total: 10 * i + j,
                true_positives: 7 * j + i,
                unknown_total: 50,
                unknown_matched: 13 * i,
                ..SweepCell::default()
            });
        }
    }
    for split in 0..=cells.len() {
        check_merge_laws(&cells, &[3, 1, 4, 1, 5], split);
    }
}
