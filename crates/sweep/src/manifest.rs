//! The typed sweep manifest.
//!
//! A manifest is a small JSON document naming the axes of a sensitivity
//! sweep: which prevalence caps σ, rule-selection thresholds τ, world
//! seeds, and study-window lengths to cross. Parsing goes through
//! [`downlake_obs::json`] (the workspace's own total parser — no new
//! dependencies) and *keys are looked up by name*, so two spellings of
//! the same manifest with permuted keys are indistinguishable
//! downstream: the plan, the run ids, and the report are pure functions
//! of the manifest's *values*, never of its serialization order.

use downlake_exec::{mix, mix_str};
use downlake_obs::json::{self, Json};
use downlake_synth::Scale;
use downlake_types::Month;
use std::fmt;

/// Fixed initial state for [`SweepManifest::hash`], so manifest hashes
/// are stable across processes and sessions.
const HASH_STATE: u64 = 0x5EED_0000_5CA1_E000;

/// A validated sweep configuration.
///
/// The four `Vec` fields are the cell axes: the planner crosses every
/// seed with every σ, τ, and month count. `threads` is deliberately
/// *not* an axis and is excluded from [`hash`](Self::hash): it sizes
/// the worker pool that fans the runs out and may never influence a
/// byte of the deterministic output.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepManifest {
    /// Human-readable sweep name, echoed into the report.
    pub name: String,
    /// World scale every run is generated at.
    pub scale: Scale,
    /// World seeds to sweep (default: `[42]`).
    pub seeds: Vec<u64>,
    /// Collection-server prevalence caps σ to sweep (default: `[20]`,
    /// the paper's deployment value).
    pub sigmas: Vec<u32>,
    /// Rule-selection thresholds τ to sweep (default: `[0.0, 0.001]`,
    /// the paper's two settings).
    pub taus: Vec<f64>,
    /// Study-window lengths in months to sweep; each value `m` runs the
    /// rule experiments over the first `m` months (default: the full
    /// seven-month window).
    pub months: Vec<usize>,
    /// Worker threads for the sweep-level fan-out; `0` = one per core,
    /// `1` = the sequential oracle. Timing plane only.
    pub threads: usize,
}

/// Why a manifest failed to parse or validate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SweepError {
    /// The document is not valid JSON.
    Json(String),
    /// A required key is absent or has the wrong JSON type.
    Missing(&'static str),
    /// A key the manifest format does not define.
    UnknownKey(String),
    /// A value is out of range.
    Invalid(&'static str, String),
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::Json(msg) => write!(f, "manifest is not valid JSON: {msg}"),
            SweepError::Missing(key) => {
                write!(f, "manifest key {key:?} is missing or has the wrong type")
            }
            SweepError::UnknownKey(key) => write!(f, "unknown manifest key {key:?}"),
            SweepError::Invalid(key, why) => write!(f, "manifest key {key:?} invalid: {why}"),
        }
    }
}

impl std::error::Error for SweepError {}

/// Every key the manifest format defines.
const KNOWN_KEYS: [&str; 7] = [
    "name", "scale", "seeds", "sigmas", "taus", "months", "threads",
];

impl SweepManifest {
    /// Parses and validates a manifest document.
    ///
    /// Required: `name` (string). Optional with paper-faithful defaults:
    /// `scale` (string, default `"tiny"`), `seeds` (default `[42]`),
    /// `sigmas` (default `[20]`), `taus` (default `[0.0, 0.001]`),
    /// `months` (default the full window), `threads` (default `1`).
    /// Unknown keys are rejected so typos cannot silently drop an axis.
    pub fn parse(src: &str) -> Result<Self, SweepError> {
        let doc = json::parse(src).map_err(|e| SweepError::Json(e.to_string()))?;
        let Json::Obj(pairs) = &doc else {
            return Err(SweepError::Json("top level must be an object".to_owned()));
        };
        if let Some((key, _)) = pairs
            .iter()
            .find(|(k, _)| !KNOWN_KEYS.iter().any(|known| known == k))
        {
            return Err(SweepError::UnknownKey(key.clone()));
        }

        let name = doc
            .get("name")
            .and_then(Json::as_str)
            .ok_or(SweepError::Missing("name"))?
            .to_owned();
        let scale = match doc.get("scale") {
            None => Scale::Tiny,
            Some(value) => value
                .as_str()
                .and_then(parse_scale)
                .ok_or(SweepError::Missing("scale"))?,
        };
        let seeds = match doc.get("seeds") {
            None => vec![42],
            Some(value) => u64_axis(value, "seeds")?,
        };
        let sigmas = match doc.get("sigmas") {
            None => vec![20],
            Some(value) => u64_axis(value, "sigmas")?
                .into_iter()
                .map(|v| {
                    u32::try_from(v)
                        .map_err(|_| SweepError::Invalid("sigmas", format!("{v} exceeds u32")))
                })
                .collect::<Result<Vec<u32>, SweepError>>()?,
        };
        let taus = match doc.get("taus") {
            None => vec![0.0, 0.001],
            Some(value) => f64_axis(value, "taus")?,
        };
        let months = match doc.get("months") {
            None => vec![Month::ALL.len()],
            Some(value) => u64_axis(value, "months")?
                .into_iter()
                .map(|v| v as usize)
                .collect(),
        };
        let threads = match doc.get("threads") {
            None => 1,
            Some(value) => value.as_u64().ok_or(SweepError::Missing("threads"))? as usize,
        };

        let manifest = Self {
            name,
            scale,
            seeds,
            sigmas,
            taus,
            months,
            threads,
        };
        manifest.validate()?;
        Ok(manifest)
    }

    /// Checks every axis: non-empty, duplicate-free, in range. Called by
    /// [`parse`](Self::parse); exposed for programmatically built
    /// manifests.
    pub fn validate(&self) -> Result<(), SweepError> {
        if self.name.is_empty() {
            return Err(SweepError::Invalid("name", "must be non-empty".to_owned()));
        }
        non_empty_distinct("seeds", self.seeds.iter().copied())?;
        non_empty_distinct("sigmas", self.sigmas.iter().map(|&s| u64::from(s)))?;
        non_empty_distinct("taus", self.taus.iter().map(|t| t.to_bits()))?;
        non_empty_distinct("months", self.months.iter().map(|&m| m as u64))?;
        if let Some(&sigma) = self.sigmas.iter().find(|&&s| s == 0) {
            return Err(SweepError::Invalid(
                "sigmas",
                format!("σ = {sigma}: the prevalence cap must be at least 1"),
            ));
        }
        if let Some(&tau) = self
            .taus
            .iter()
            .find(|&&t| !t.is_finite() || !(0.0..=1.0).contains(&t))
        {
            return Err(SweepError::Invalid(
                "taus",
                format!("τ = {tau}: thresholds must be finite and within [0, 1]"),
            ));
        }
        if let Some(&m) = self.months.iter().find(|&&m| m < 2 || m > Month::ALL.len()) {
            return Err(SweepError::Invalid(
                "months",
                format!(
                    "{m}: window must span 2..={} months (a train/test pair needs two)",
                    Month::ALL.len()
                ),
            ));
        }
        Ok(())
    }

    /// Number of runs the planner will expand this manifest into.
    pub fn run_count(&self) -> usize {
        self.seeds.len() * self.sigmas.len() * self.taus.len() * self.months.len()
    }

    /// A stable 64-bit identity for this manifest: a
    /// [`downlake_exec::mix`]-fold over the *values* in fixed field
    /// order.
    ///
    /// Two manifests hash equal iff their semantic content is equal —
    /// JSON key order, whitespace, and the `threads` knob (timing plane)
    /// never participate. Run ids derive from this hash, so they are
    /// reproducible across processes and invariant to how the manifest
    /// was spelled.
    pub fn hash(&self) -> u64 {
        let h = mix_str(HASH_STATE, &self.name);
        let h = mix(h, self.scale.fraction().to_bits());
        let h = fold_axis(h, self.seeds.iter().copied());
        let h = fold_axis(h, self.sigmas.iter().map(|&s| u64::from(s)));
        let h = fold_axis(h, self.taus.iter().map(|t| t.to_bits()));
        fold_axis(h, self.months.iter().map(|&m| m as u64))
    }
}

/// Length-prefixed fold of one axis into the hash state, so axes of
/// different lengths cannot alias (`[1, 2] + []` vs `[1] + [2]`).
fn fold_axis(state: u64, values: impl Iterator<Item = u64>) -> u64 {
    let mut h = state;
    let mut len = 0u64;
    for value in values {
        h = mix(h, value);
        len += 1;
    }
    mix(h, len)
}

/// Rejects empty axes and duplicate values (a duplicate would run the
/// same configuration twice and silently double-weight its cell).
fn non_empty_distinct(
    key: &'static str,
    values: impl Iterator<Item = u64>,
) -> Result<(), SweepError> {
    let mut seen: Vec<u64> = Vec::new();
    for value in values {
        if seen.contains(&value) {
            return Err(SweepError::Invalid(key, "duplicate axis value".to_owned()));
        }
        seen.push(value);
    }
    if seen.is_empty() {
        return Err(SweepError::Invalid(
            key,
            "axis must be non-empty".to_owned(),
        ));
    }
    Ok(())
}

/// Same scale spellings the `downlake` CLI accepts.
fn parse_scale(arg: &str) -> Option<Scale> {
    match arg {
        "tiny" => Some(Scale::Tiny),
        "small" => Some(Scale::Small),
        "default" => Some(Scale::Default),
        "large" => Some(Scale::Large),
        "paper" => Some(Scale::Paper),
        _ => arg
            .parse::<f64>()
            .ok()
            .filter(|f| *f > 0.0)
            .map(Scale::Fraction),
    }
}

/// An all-`u64` JSON array.
fn u64_axis(value: &Json, key: &'static str) -> Result<Vec<u64>, SweepError> {
    value
        .as_arr()
        .ok_or(SweepError::Missing(key))?
        .iter()
        .map(|v| v.as_u64().ok_or(SweepError::Missing(key)))
        .collect()
}

/// An all-numeric JSON array read as `f64`.
fn f64_axis(value: &Json, key: &'static str) -> Result<Vec<f64>, SweepError> {
    value
        .as_arr()
        .ok_or(SweepError::Missing(key))?
        .iter()
        .map(|v| v.as_f64().ok_or(SweepError::Missing(key)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_2x2() -> &'static str {
        r#"{"name": "paper-2x2", "scale": "tiny", "sigmas": [5, 20], "taus": [0.0, 0.001]}"#
    }

    #[test]
    fn parses_with_defaults() {
        let m = SweepManifest::parse(paper_2x2()).expect("valid");
        assert_eq!(m.name, "paper-2x2");
        assert_eq!(m.scale, Scale::Tiny);
        assert_eq!(m.seeds, vec![42]);
        assert_eq!(m.sigmas, vec![5, 20]);
        assert_eq!(m.taus, vec![0.0, 0.001]);
        assert_eq!(m.months, vec![Month::ALL.len()]);
        assert_eq!(m.threads, 1);
        assert_eq!(m.run_count(), 4);
    }

    #[test]
    fn minimal_manifest_is_the_paper_configuration() {
        let m = SweepManifest::parse(r#"{"name": "paper"}"#).expect("valid");
        assert_eq!(m.sigmas, vec![20]);
        assert_eq!(m.taus, vec![0.0, 0.001]);
        assert_eq!(m.run_count(), 2);
    }

    #[test]
    fn key_order_does_not_change_the_hash() {
        let a = SweepManifest::parse(paper_2x2()).expect("valid");
        let b = SweepManifest::parse(
            r#"{"taus": [0.0, 0.001], "sigmas": [5, 20], "scale": "tiny", "name": "paper-2x2"}"#,
        )
        .expect("valid");
        assert_eq!(a, b);
        assert_eq!(a.hash(), b.hash());
    }

    #[test]
    fn threads_is_excluded_from_the_hash() {
        let a = SweepManifest::parse(paper_2x2()).expect("valid");
        let mut b = a.clone();
        b.threads = 8;
        assert_eq!(a.hash(), b.hash());
    }

    #[test]
    fn value_changes_move_the_hash() {
        let base = SweepManifest::parse(paper_2x2()).expect("valid");
        let mut renamed = base.clone();
        renamed.name = "other".to_owned();
        assert_ne!(base.hash(), renamed.hash());
        let mut reseeded = base.clone();
        reseeded.seeds = vec![43];
        assert_ne!(base.hash(), reseeded.hash());
        let mut retau = base;
        retau.taus = vec![0.0, 0.002];
        assert_ne!(
            retau.hash(),
            SweepManifest::parse(paper_2x2()).unwrap().hash()
        );
    }

    #[test]
    fn axis_shifts_cannot_alias() {
        // Moving a value between adjacent axes must change the hash:
        // the fold is length-prefixed per axis.
        let mut a = SweepManifest::parse(r#"{"name": "x"}"#).expect("valid");
        let mut b = a.clone();
        a.seeds = vec![1, 2];
        a.sigmas = vec![3];
        b.seeds = vec![1];
        b.sigmas = vec![2, 3];
        assert_ne!(a.hash(), b.hash());
    }

    #[test]
    fn rejects_bad_documents() {
        assert!(matches!(
            SweepManifest::parse("not json"),
            Err(SweepError::Json(_))
        ));
        assert!(matches!(
            SweepManifest::parse(r#"{"scale": "tiny"}"#),
            Err(SweepError::Missing("name"))
        ));
        assert!(matches!(
            SweepManifest::parse(r#"{"name": "x", "sigma": [20]}"#),
            Err(SweepError::UnknownKey(_))
        ));
        assert!(matches!(
            SweepManifest::parse(r#"{"name": "x", "sigmas": []}"#),
            Err(SweepError::Invalid("sigmas", _))
        ));
        assert!(matches!(
            SweepManifest::parse(r#"{"name": "x", "sigmas": [0]}"#),
            Err(SweepError::Invalid("sigmas", _))
        ));
        assert!(matches!(
            SweepManifest::parse(r#"{"name": "x", "taus": [1.5]}"#),
            Err(SweepError::Invalid("taus", _))
        ));
        assert!(matches!(
            SweepManifest::parse(r#"{"name": "x", "taus": [0.1, 0.1]}"#),
            Err(SweepError::Invalid("taus", _))
        ));
        assert!(matches!(
            SweepManifest::parse(r#"{"name": "x", "months": [1]}"#),
            Err(SweepError::Invalid("months", _))
        ));
        assert!(matches!(
            SweepManifest::parse(r#"{"name": "x", "months": [9]}"#),
            Err(SweepError::Invalid("months", _))
        ));
    }

    #[test]
    fn error_messages_render() {
        let err = SweepManifest::parse(r#"{"name": "x", "sigmas": [0]}"#).unwrap_err();
        assert!(err.to_string().contains("sigmas"));
    }
}
