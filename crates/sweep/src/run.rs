//! Fan-out execution of a planned sweep.
//!
//! Each planned run builds its own sequential study via
//! [`Study::run_observed`] and evaluates the rule experiments at its
//! single (τ, months) point; the sweep-level [`Pool`] is the only
//! parallelism. Per-run reports come back in plan order and fold into
//! one [`SweepReport`] through its commutative merge, so the surface is
//! a pure function of the manifest at every thread count.

use crate::manifest::SweepManifest;
use crate::plan::{plan, RunSpec};
use crate::report::SweepReport;
use downlake::experiments::rule_experiments_over;
use downlake::Study;
use downlake_exec::Pool;
use downlake_obs::{Clock, Registry};
use std::path::Path;

/// Runs the whole sweep: plan, fan out, merge.
///
/// The injected [`Clock`] feeds every per-run pipeline's timing plane;
/// pass a `TestClock` for fully deterministic manifests (timings
/// included) or a `RealClock` for wall-clock spans.
pub fn run_sweep(manifest: &SweepManifest, clock: &dyn Clock) -> SweepReport {
    run_sweep_impl(manifest, clock, None)
}

/// [`run_sweep`] backed by the seed-addressed event lake at
/// `lake_root`.
///
/// The world hash excludes the collection-time knobs a sweep varies
/// (σ, τ, months), so all permutations sharing a seed share one cached
/// segment build. Each distinct world is built **once, sequentially,
/// before the fan-out** — the pooled runs then all open warm and
/// read-only, which keeps the lake free of concurrent writers. The
/// report surface is byte-identical to [`run_sweep`]'s (pinned by
/// `tests/lake_equivalence.rs`); only the cache and the obs planes
/// differ.
pub fn run_sweep_with_lake(
    manifest: &SweepManifest,
    clock: &dyn Clock,
    lake_root: &Path,
) -> SweepReport {
    run_sweep_impl(manifest, clock, Some(lake_root))
}

fn run_sweep_impl(
    manifest: &SweepManifest,
    clock: &dyn Clock,
    lake_root: Option<&Path>,
) -> SweepReport {
    let specs = plan(manifest);
    let registry = Registry::new();
    registry.counter_add("sweep.runs_planned", specs.len() as u64);
    registry.counter_add(
        "sweep.cells",
        (manifest.sigmas.len() * manifest.taus.len()) as u64,
    );

    if let Some(root) = lake_root {
        // Pre-build every distinct world once on this thread; failures
        // are tolerated (each run falls back to in-RAM generation).
        let build_pool = Pool::sequential();
        let mut built: Vec<u64> = Vec::new();
        for spec in &specs {
            let config = spec.study_config(manifest.scale).with_lake(root);
            let hash = config.synth.world_hash();
            if built.contains(&hash) {
                continue;
            }
            built.push(hash);
            if downlake::lake::ensure_world(root, &config, &build_pool, &registry, clock).is_err() {
                registry.counter_add("sweep.lake_failures", 1);
            }
        }
        registry.counter_add("sweep.lake_worlds", built.len() as u64);
    }

    let pool = Pool::new(manifest.threads);
    let parts = pool.map(&specs, |_, spec| run_one(manifest, spec, clock, lake_root));

    let mut report = SweepReport::empty(manifest);
    for part in &parts {
        report.merge(part);
    }
    report.absorb_obs(&registry.snapshot());
    report
}

/// One planned run: sequential study + single-τ rule experiments.
fn run_one(
    manifest: &SweepManifest,
    spec: &RunSpec,
    clock: &dyn Clock,
    lake_root: Option<&Path>,
) -> SweepReport {
    let mut config = spec.study_config(manifest.scale);
    if let Some(root) = lake_root {
        config = config.with_lake(root);
    }
    let study = Study::run_observed(&config, clock);
    let outcome = rule_experiments_over(&study, &[spec.tau], spec.months);
    SweepReport::from_run(manifest, spec, &study, &outcome)
}
