//! Fan-out execution of a planned sweep.
//!
//! Each planned run builds its own sequential study via
//! [`Study::run_observed`] and evaluates the rule experiments at its
//! single (τ, months) point; the sweep-level [`Pool`] is the only
//! parallelism. Per-run reports come back in plan order and fold into
//! one [`SweepReport`] through its commutative merge, so the surface is
//! a pure function of the manifest at every thread count.

use crate::manifest::SweepManifest;
use crate::plan::{plan, RunSpec};
use crate::report::SweepReport;
use downlake::experiments::rule_experiments_over;
use downlake::Study;
use downlake_exec::Pool;
use downlake_obs::{Clock, Registry};

/// Runs the whole sweep: plan, fan out, merge.
///
/// The injected [`Clock`] feeds every per-run pipeline's timing plane;
/// pass a `TestClock` for fully deterministic manifests (timings
/// included) or a `RealClock` for wall-clock spans.
pub fn run_sweep(manifest: &SweepManifest, clock: &dyn Clock) -> SweepReport {
    let specs = plan(manifest);
    let registry = Registry::new();
    registry.counter_add("sweep.runs_planned", specs.len() as u64);
    registry.counter_add(
        "sweep.cells",
        (manifest.sigmas.len() * manifest.taus.len()) as u64,
    );

    let pool = Pool::new(manifest.threads);
    let parts = pool.map(&specs, |_, spec| run_one(manifest, spec, clock));

    let mut report = SweepReport::empty(manifest);
    for part in &parts {
        report.merge(part);
    }
    report.absorb_obs(&registry.snapshot());
    report
}

/// One planned run: sequential study + single-τ rule experiments.
fn run_one(manifest: &SweepManifest, spec: &RunSpec, clock: &dyn Clock) -> SweepReport {
    let study = Study::run_observed(&spec.study_config(manifest.scale), clock);
    let outcome = rule_experiments_over(&study, &[spec.tau], spec.months);
    SweepReport::from_run(manifest, spec, &study, &outcome)
}
