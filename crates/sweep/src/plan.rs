//! Deterministic expansion of a manifest into run specifications.
//!
//! [`plan`] crosses the manifest's axes in one fixed nesting order
//! (seeds → σ → τ → months) and stamps each cell of the cross-product
//! with a collision-free run id derived from the manifest hash through
//! [`downlake_exec::unit_seed`]. The resulting list is a pure function
//! of the manifest's values: re-planning the same manifest — in another
//! process, at another thread count, from a JSON spelling with permuted
//! keys — reproduces the identical list, ids included.

use crate::manifest::SweepManifest;
use downlake::StudyConfig;
use downlake_exec::unit_seed;
use downlake_synth::Scale;

/// Stage salt separating sweep run ids from every other
/// [`unit_seed`] stream in the workspace ("SWEEP" in ASCII).
pub const SWEEP_SALT: u64 = 0x0053_5745_4550_u64;

/// One planned run: a single point of the sweep's cross-product.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunSpec {
    /// Collision-free run id: `unit_seed(manifest.hash(), SWEEP_SALT,
    /// index)`.
    pub id: u64,
    /// Position in the planner's fixed expansion order.
    pub index: u64,
    /// World seed for this run.
    pub seed: u64,
    /// Collection-server prevalence cap σ for this run.
    pub sigma: u32,
    /// Rule-selection threshold τ for this run.
    pub tau: f64,
    /// Study-window length in months for this run.
    pub months: usize,
}

impl RunSpec {
    /// The study configuration this run executes.
    ///
    /// Per-run pipelines are pinned to the sequential oracle
    /// (`threads = 1`): parallelism lives one level up, in the sweep
    /// pool that fans runs out, so worker counts compose instead of
    /// multiplying.
    pub fn study_config(&self, scale: Scale) -> StudyConfig {
        StudyConfig::new(self.seed)
            .with_scale(scale)
            .with_sigma(self.sigma)
            .with_threads(1)
    }
}

/// Expands the manifest into its full run list, in the fixed
/// seeds → σ → τ → months nesting order.
pub fn plan(manifest: &SweepManifest) -> Vec<RunSpec> {
    let hash = manifest.hash();
    let mut specs = Vec::with_capacity(manifest.run_count());
    let mut index = 0u64;
    for &seed in &manifest.seeds {
        for &sigma in &manifest.sigmas {
            for &tau in &manifest.taus {
                for &months in &manifest.months {
                    specs.push(RunSpec {
                        id: unit_seed(hash, SWEEP_SALT, index),
                        index,
                        seed,
                        sigma,
                        tau,
                        months,
                    });
                    index += 1;
                }
            }
        }
    }
    specs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest() -> SweepManifest {
        SweepManifest::parse(
            r#"{"name": "grid", "seeds": [1, 2], "sigmas": [5, 20], "taus": [0.0, 0.001], "months": [3, 7]}"#,
        )
        .expect("valid")
    }

    #[test]
    fn expansion_covers_the_full_cross_product_in_order() {
        let m = manifest();
        let specs = plan(&m);
        assert_eq!(specs.len(), m.run_count());
        assert_eq!(specs.len(), 16);
        // Fixed nesting: months varies fastest, seeds slowest.
        assert_eq!(
            (specs[0].seed, specs[0].sigma, specs[0].tau, specs[0].months),
            (1, 5, 0.0, 3)
        );
        assert_eq!(
            (specs[1].seed, specs[1].sigma, specs[1].tau, specs[1].months),
            (1, 5, 0.0, 7)
        );
        assert_eq!((specs[2].tau, specs[2].months), (0.001, 3));
        assert_eq!(specs[8].seed, 2);
        assert!(specs.iter().enumerate().all(|(i, s)| s.index == i as u64));
    }

    #[test]
    fn run_ids_are_distinct_and_reproducible() {
        let m = manifest();
        let a = plan(&m);
        let b = plan(&m);
        assert_eq!(a, b);
        let mut ids: Vec<u64> = a.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), a.len(), "run ids must be collision-free");
    }

    #[test]
    fn ids_are_rooted_in_the_manifest_hash() {
        let m = manifest();
        let mut renamed = m.clone();
        renamed.name = "other-grid".to_owned();
        let a = plan(&m);
        let b = plan(&renamed);
        // Same grid, different manifest identity: every id moves.
        assert!(a.iter().zip(&b).all(|(x, y)| x.id != y.id));
    }

    #[test]
    fn study_config_carries_the_cell_and_pins_sequential() {
        let spec = plan(&manifest())[5];
        let config = spec.study_config(Scale::Tiny);
        assert_eq!(config.synth.seed, spec.seed);
        assert_eq!(config.synth.sigma, spec.sigma);
        assert_eq!(config.threads, 1);
    }
}
