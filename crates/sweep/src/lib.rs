//! `downlake-sweep` — the deterministic scenario-sweep harness.
//!
//! The paper reports one operating point: prevalence cap σ = 20 and
//! rule thresholds τ ∈ {0, 0.1%}. This crate maps the *neighbourhood*
//! of that point. A typed [`SweepManifest`] names the axes (σ values, τ
//! thresholds, world seeds, study-window lengths); [`plan()`] expands the
//! cross-product into a stable-ordered list of [`RunSpec`]s whose ids
//! derive from the manifest hash through [`downlake_exec::unit_seed`];
//! [`run_sweep`] fans the runs out over the workspace pool (each run a
//! sequential [`downlake::Study`]); and the per-run results fold into a
//! [`SweepReport`] — the sensitivity surface: rule counts, TP/FP, and
//! unknown-file coverage per (σ, τ) cell — through a commutative merge,
//! so the surface is byte-identical at every thread count.
//!
//! ```
//! use downlake_sweep::{plan, SweepManifest};
//!
//! let manifest = SweepManifest::parse(
//!     r#"{"name": "example", "scale": "tiny", "sigmas": [5, 20], "taus": [0.0, 0.001]}"#,
//! )
//! .expect("valid manifest");
//! let specs = plan(&manifest);
//! // 1 seed × 2 σ × 2 τ × 1 window = 4 runs, collision-free ids.
//! assert_eq!(specs.len(), 4);
//! assert_ne!(specs[0].id, specs[1].id);
//! // The plan is a pure function of the manifest's values: re-planning
//! // reproduces it exactly.
//! assert_eq!(specs, plan(&manifest));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod manifest;
pub mod plan;
pub mod report;
pub mod run;

pub use manifest::{SweepError, SweepManifest};
pub use plan::{plan, RunSpec, SWEEP_SALT};
pub use report::{SweepCell, SweepReport};
pub use run::{run_sweep, run_sweep_with_lake};
