//! The sensitivity surface: per-(σ, τ) cells and the commutative report.
//!
//! Each run contributes one [`SweepCell`] of pure integer tallies;
//! [`SweepReport::merge`] folds reports key-wise, so any partition of
//! the run list merged in any order yields the same surface — the
//! property that lets the runner fan runs out over a worker pool
//! without the pool's scheduling ever reaching the output. Derived
//! rates (TP/FP, coverage) are computed at render time from the merged
//! integers, never merged themselves.

use crate::manifest::SweepManifest;
use crate::plan::RunSpec;
use downlake::experiments::RuleExperimentOutcome;
use downlake::{Study, TextTable};
use downlake_obs::json::Json;
use downlake_obs::{ObsReport, RunManifest};

/// Aggregated tallies for one (σ, τ) cell of the surface.
///
/// Every field is a sum of non-negative integers, so cell merging is
/// commutative and associative by construction.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SweepCell {
    /// Prevalence cap σ of this cell.
    pub sigma: u32,
    /// Rule-selection threshold τ of this cell.
    pub tau: f64,
    /// Runs folded into this cell.
    pub runs: usize,
    /// Evaluation rounds (month pairs) across those runs.
    pub rounds: usize,
    /// Rules PART extracted before selection.
    pub rules_total: usize,
    /// Rules surviving τ-selection.
    pub rules_selected: usize,
    /// Selected rules concluding benign.
    pub benign_rules: usize,
    /// Selected rules concluding malicious.
    pub malicious_rules: usize,
    /// Labeled test files: malicious classified malicious.
    pub true_positives: usize,
    /// Labeled test files: malicious classified benign.
    pub false_negatives: usize,
    /// Labeled test files: benign classified malicious.
    pub false_positives: usize,
    /// Labeled test files: benign classified benign.
    pub true_negatives: usize,
    /// Distinct selected rules that produced at least one false
    /// positive.
    pub fp_rules: usize,
    /// Unknown files observed across test months.
    pub unknown_total: usize,
    /// Unknowns matching at least one rule.
    pub unknown_matched: usize,
    /// Unknowns labeled malicious.
    pub unknown_malicious: usize,
    /// Unknowns labeled benign.
    pub unknown_benign: usize,
    /// Unknowns rejected due to rule conflicts.
    pub unknown_rejected: usize,
    /// Distinct unknowns labeled across each run (summed over runs).
    pub unknowns_labeled: usize,
    /// Distinct unknowns observed across each run (summed over runs).
    pub total_unknowns: usize,
    /// Files with confident ground truth (summed over runs).
    pub ground_truth_files: usize,
}

impl SweepCell {
    /// Builds the cell one run contributes, summing the outcome's
    /// rounds (all at this run's single τ).
    pub fn from_outcome(sigma: u32, tau: f64, outcome: &RuleExperimentOutcome) -> Self {
        let mut cell = SweepCell {
            sigma,
            tau,
            runs: 1,
            unknowns_labeled: outcome.unknowns_labeled,
            total_unknowns: outcome.total_unknowns,
            ground_truth_files: outcome.ground_truth_files,
            ..SweepCell::default()
        };
        for round in &outcome.rounds {
            cell.rounds += 1;
            cell.rules_total += round.rules_total;
            cell.rules_selected += round.rules_selected;
            cell.benign_rules += round.benign_rules;
            cell.malicious_rules += round.malicious_rules;
            cell.true_positives += round.confusion.true_positives;
            cell.false_negatives += round.confusion.false_negatives;
            cell.false_positives += round.confusion.false_positives;
            cell.true_negatives += round.confusion.true_negatives;
            cell.fp_rules += round.fp_rules;
            cell.unknown_total += round.unknown_total;
            cell.unknown_matched += round.unknown_matched;
            cell.unknown_malicious += round.unknown_malicious;
            cell.unknown_benign += round.unknown_benign;
            cell.unknown_rejected += round.unknown_rejected;
        }
        cell
    }

    /// The (σ, τ-bits) key cells merge on and sort by.
    pub fn key(&self) -> (u32, u64) {
        (self.sigma, self.tau.to_bits())
    }

    /// Folds another cell with the same key into this one.
    pub fn absorb(&mut self, other: &SweepCell) {
        debug_assert_eq!(self.key(), other.key(), "cell keys must match");
        self.runs += other.runs;
        self.rounds += other.rounds;
        self.rules_total += other.rules_total;
        self.rules_selected += other.rules_selected;
        self.benign_rules += other.benign_rules;
        self.malicious_rules += other.malicious_rules;
        self.true_positives += other.true_positives;
        self.false_negatives += other.false_negatives;
        self.false_positives += other.false_positives;
        self.true_negatives += other.true_negatives;
        self.fp_rules += other.fp_rules;
        self.unknown_total += other.unknown_total;
        self.unknown_matched += other.unknown_matched;
        self.unknown_malicious += other.unknown_malicious;
        self.unknown_benign += other.unknown_benign;
        self.unknown_rejected += other.unknown_rejected;
        self.unknowns_labeled += other.unknowns_labeled;
        self.total_unknowns += other.total_unknowns;
        self.ground_truth_files += other.ground_truth_files;
    }

    /// True-positive rate over the labeled malicious test files, in
    /// percent.
    pub fn tp_rate_pct(&self) -> f64 {
        pct(
            self.true_positives,
            self.true_positives + self.false_negatives,
        )
    }

    /// False-positive rate over the labeled benign test files, in
    /// percent.
    pub fn fp_rate_pct(&self) -> f64 {
        pct(
            self.false_positives,
            self.false_positives + self.true_negatives,
        )
    }

    /// Share of unknown files the selected rules covered (matched), in
    /// percent.
    pub fn coverage_pct(&self) -> f64 {
        pct(self.unknown_matched, self.unknown_total)
    }
}

fn pct(part: usize, whole: usize) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

/// The merged sensitivity surface of one sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// Manifest name, echoed for identification.
    pub name: String,
    /// Manifest hash the run ids were derived from.
    pub manifest_hash: u64,
    /// Cells sorted by (σ, τ); one per distinct key seen so far.
    cells: Vec<SweepCell>,
    /// Aggregated pipeline observations across all merged runs.
    obs: ObsReport,
}

impl SweepReport {
    /// An empty report carrying the manifest's identity.
    pub fn empty(manifest: &SweepManifest) -> Self {
        Self {
            name: manifest.name.clone(),
            manifest_hash: manifest.hash(),
            cells: Vec::new(),
            obs: ObsReport::default(),
        }
    }

    /// A report carrying the given cells (key-duplicates folded
    /// through [`merge`](Self::merge)). Synthetic construction for
    /// property tests and tools; the runner builds reports via
    /// [`from_run`](Self::from_run).
    pub fn from_cells(
        manifest: &SweepManifest,
        cells: impl IntoIterator<Item = SweepCell>,
    ) -> Self {
        let mut report = Self::empty(manifest);
        for cell in cells {
            let mut part = Self::empty(manifest);
            part.cells.push(cell);
            report.merge(&part);
        }
        report
    }

    /// The single-run report for one planned cell: the run's rule
    /// tallies plus the study's deterministic observation planes.
    pub fn from_run(
        manifest: &SweepManifest,
        spec: &RunSpec,
        study: &Study,
        outcome: &RuleExperimentOutcome,
    ) -> Self {
        let mut report = Self::empty(manifest);
        report
            .cells
            .push(SweepCell::from_outcome(spec.sigma, spec.tau, outcome));
        report.obs.merge(study.obs());
        report
    }

    /// Folds another report of the same sweep into this one:
    /// key-matched cells absorb, new keys insert, the cell list re-sorts
    /// by (σ, τ), and the observation planes merge. Commutative — any
    /// merge order over any partition of the runs produces the same
    /// report (pinned by `sweep_report_merge_commutes`).
    pub fn merge(&mut self, other: &SweepReport) {
        debug_assert_eq!(self.manifest_hash, other.manifest_hash, "same sweep only");
        for cell in &other.cells {
            match self.cells.iter_mut().find(|c| c.key() == cell.key()) {
                Some(mine) => mine.absorb(cell),
                None => self.cells.push(cell.clone()),
            }
        }
        self.cells
            .sort_by(|a, b| a.sigma.cmp(&b.sigma).then(f64::total_cmp(&a.tau, &b.tau)));
        self.obs.merge(&other.obs);
    }

    /// The surface cells, sorted by (σ, τ).
    pub fn cells(&self) -> &[SweepCell] {
        &self.cells
    }

    /// Looks up one cell by its exact (σ, τ) coordinates.
    pub fn cell(&self, sigma: u32, tau: f64) -> Option<&SweepCell> {
        self.cells
            .iter()
            .find(|c| c.key() == (sigma, tau.to_bits()))
    }

    /// Total runs folded in so far.
    pub fn runs(&self) -> usize {
        self.cells.iter().map(|c| c.runs).sum()
    }

    /// The aggregated observation planes.
    pub fn obs(&self) -> &ObsReport {
        &self.obs
    }

    /// Folds an extra observation snapshot (e.g. the sweep harness's
    /// own counters) into the report's observation planes.
    pub fn absorb_obs(&mut self, obs: &ObsReport) {
        self.obs.merge(obs);
    }

    /// Renders the report as a [`RunManifest`] of kind `"sweep"`.
    ///
    /// The `run` section carries the sweep identity, the manifest axes,
    /// and the full cell surface; `threads` is quarantined under
    /// `timing`. [`RunManifest::to_json_stripped`] of the result is the
    /// byte-comparable artifact: identical at every thread count.
    pub fn manifest(&self, manifest: &SweepManifest) -> RunManifest {
        let mut out = RunManifest::new("sweep");
        out.set_run("name", self.name.as_str())
            .set_run("manifest_hash", hex16(self.manifest_hash))
            .set_run("scale", format!("{:?}", manifest.scale))
            .set_run("seeds", uint_arr(manifest.seeds.iter().copied()))
            .set_run(
                "sigmas",
                uint_arr(manifest.sigmas.iter().map(|&s| u64::from(s))),
            )
            .set_run(
                "taus",
                Json::Arr(manifest.taus.iter().map(|&t| Json::Float(t)).collect()),
            )
            .set_run(
                "months",
                uint_arr(manifest.months.iter().map(|&m| m as u64)),
            )
            .set_run("runs", self.runs())
            .set_run(
                "cells",
                Json::Arr(self.cells.iter().map(cell_json).collect()),
            )
            .set_timing("threads", manifest.threads as u64)
            .absorb(&self.obs);
        out
    }

    /// Renders the surface as a text table, one row per (σ, τ) cell.
    pub fn table(&self) -> TextTable {
        let mut table = TextTable::new(
            format!("Sensitivity surface — sweep {:?}", self.name),
            &[
                "σ", "τ", "runs", "rules", "selected", "TP", "FP", "TP rate", "FP rate",
                "unknowns", "coverage",
            ],
        );
        for cell in &self.cells {
            table.push_row(row_cells(cell));
        }
        table
    }
}

/// One table row; built out of line so the hot-loop above stays
/// allocation-annotation-free.
fn row_cells(cell: &SweepCell) -> Vec<String> {
    vec![
        cell.sigma.to_string(),
        format!("{:.2}%", cell.tau * 100.0),
        cell.runs.to_string(),
        cell.rules_total.to_string(),
        cell.rules_selected.to_string(),
        cell.true_positives.to_string(),
        cell.false_positives.to_string(),
        format!("{:.2}%", cell.tp_rate_pct()),
        format!("{:.2}%", cell.fp_rate_pct()),
        cell.unknown_total.to_string(),
        format!("{:.2}%", cell.coverage_pct()),
    ]
}

fn hex16(value: u64) -> String {
    format!("{value:016x}")
}

fn uint_arr(values: impl Iterator<Item = u64>) -> Json {
    Json::Arr(values.map(Json::UInt).collect())
}

/// A cell as an ordered JSON object: coordinates, raw tallies, then
/// derived rates.
fn cell_json(cell: &SweepCell) -> Json {
    let uint = |k: &str, v: usize| (k.to_owned(), Json::UInt(v as u64));
    Json::Obj(vec![
        ("sigma".to_owned(), Json::UInt(u64::from(cell.sigma))),
        ("tau".to_owned(), Json::Float(cell.tau)),
        uint("runs", cell.runs),
        uint("rounds", cell.rounds),
        uint("rules_total", cell.rules_total),
        uint("rules_selected", cell.rules_selected),
        uint("benign_rules", cell.benign_rules),
        uint("malicious_rules", cell.malicious_rules),
        uint("true_positives", cell.true_positives),
        uint("false_negatives", cell.false_negatives),
        uint("false_positives", cell.false_positives),
        uint("true_negatives", cell.true_negatives),
        uint("fp_rules", cell.fp_rules),
        uint("unknown_total", cell.unknown_total),
        uint("unknown_matched", cell.unknown_matched),
        uint("unknown_malicious", cell.unknown_malicious),
        uint("unknown_benign", cell.unknown_benign),
        uint("unknown_rejected", cell.unknown_rejected),
        uint("unknowns_labeled", cell.unknowns_labeled),
        uint("total_unknowns", cell.total_unknowns),
        uint("ground_truth_files", cell.ground_truth_files),
        ("tp_rate_pct".to_owned(), Json::Float(cell.tp_rate_pct())),
        ("fp_rate_pct".to_owned(), Json::Float(cell.fp_rate_pct())),
        ("coverage_pct".to_owned(), Json::Float(cell.coverage_pct())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest() -> SweepManifest {
        SweepManifest::parse(r#"{"name": "t", "sigmas": [5, 20], "taus": [0.0, 0.001]}"#)
            .expect("valid")
    }

    fn cell(sigma: u32, tau: f64, runs: usize, tp: usize) -> SweepCell {
        SweepCell {
            sigma,
            tau,
            runs,
            true_positives: tp,
            false_negatives: tp, // 50% TP rate
            unknown_total: 10,
            unknown_matched: 4,
            ..SweepCell::default()
        }
    }

    fn report_with(manifest: &SweepManifest, cells: Vec<SweepCell>) -> SweepReport {
        let mut r = SweepReport::empty(manifest);
        for c in cells {
            let mut part = SweepReport::empty(manifest);
            part.cells.push(c);
            r.merge(&part);
        }
        r
    }

    #[test]
    fn merge_matches_keys_and_sorts() {
        let m = manifest();
        let r = report_with(
            &m,
            vec![
                cell(20, 0.001, 1, 3),
                cell(5, 0.0, 1, 2),
                cell(20, 0.001, 1, 5),
            ],
        );
        assert_eq!(r.cells().len(), 2);
        assert_eq!(r.cells()[0].key(), (5, 0.0f64.to_bits()));
        let merged = r.cell(20, 0.001).expect("cell present");
        assert_eq!(merged.runs, 2);
        assert_eq!(merged.true_positives, 8);
        assert_eq!(r.runs(), 3);
    }

    #[test]
    fn derived_rates_come_from_the_integers() {
        let c = cell(20, 0.001, 1, 7);
        assert_eq!(c.tp_rate_pct(), 50.0);
        assert_eq!(c.coverage_pct(), 40.0);
        assert_eq!(SweepCell::default().fp_rate_pct(), 0.0);
    }

    #[test]
    fn rendered_manifest_has_the_surface_and_quarantined_threads() {
        use downlake_obs::json;
        let m = manifest();
        let r = report_with(&m, vec![cell(5, 0.0, 1, 2), cell(20, 0.001, 1, 3)]);
        let doc = json::parse(&r.manifest(&m).to_json()).expect("valid JSON");
        assert_eq!(doc.get("kind").and_then(Json::as_str), Some("sweep"));
        let run = doc.get("run").expect("run section");
        assert_eq!(run.get("name").and_then(Json::as_str), Some("t"));
        assert_eq!(run.get("runs").and_then(Json::as_u64), Some(2));
        let cells = run.get("cells").and_then(Json::as_arr).expect("cells");
        assert_eq!(cells.len(), 2);
        assert_eq!(
            cells
                .first()
                .and_then(|c| c.get("sigma"))
                .and_then(Json::as_u64),
            Some(5)
        );
        let timing = doc.get("timing").expect("timing section");
        assert_eq!(timing.get("threads").and_then(Json::as_u64), Some(1));
        // threads never reach the stripped artifact.
        let stripped = json::parse(&r.manifest(&m).to_json_stripped()).expect("valid");
        assert_eq!(stripped.get("timing"), None);
    }

    #[test]
    fn table_has_one_row_per_cell() {
        let m = manifest();
        let r = report_with(&m, vec![cell(5, 0.0, 1, 2), cell(20, 0.001, 1, 3)]);
        assert_eq!(r.table().rows.len(), 2);
    }
}
