//! Property-based tests of the world generator: structural invariants
//! that must hold for any seed and any (small) scale.

use downlake_synth::{FileDestiny, Scale, SynthConfig, World};
use downlake_types::{FileNature, Month, Timestamp};
use proptest::prelude::*;

fn tiny_config() -> impl Strategy<Value = SynthConfig> {
    (any::<u64>(), 1u32..=40).prop_map(|(seed, sigma)| {
        SynthConfig::new(seed)
            .with_scale(Scale::Fraction(1.0 / 1024.0))
            .with_sigma(sigma)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Structural invariants of a generated world.
    #[test]
    fn generated_world_is_well_formed(config in tiny_config()) {
        let generated = World::generate(&config);
        let world = &generated.world;
        prop_assert!(!generated.events.is_empty());

        let window_end = Timestamp::from_day(Month::July.end_day());
        let mut last = Timestamp::EPOCH;
        for event in &generated.events {
            // Time-ordered, inside the study window.
            prop_assert!(event.timestamp >= last);
            prop_assert!(event.timestamp >= Timestamp::EPOCH);
            prop_assert!(event.timestamp < window_end);
            last = event.timestamp;

            // Every referenced downloaded file has latent truth.
            let latent = world.latent(event.file);
            prop_assert!(latent.is_some(), "file without latent profile");
            let latent = latent.unwrap();
            prop_assert!((0.0..=1.0).contains(&latent.visibility));
            prop_assert!((0.0..=1.0).contains(&latent.detectability));

            // Destiny and latent nature are consistent.
            match world.destiny(event.file).unwrap() {
                FileDestiny::Benign | FileDestiny::LikelyBenign => {
                    prop_assert_eq!(latent.nature, FileNature::Benign);
                }
                FileDestiny::Malicious(ty) | FileDestiny::LikelyMalicious(ty) => {
                    prop_assert_eq!(latent.nature, FileNature::Malicious(ty));
                }
                FileDestiny::Unknown => {
                    prop_assert!(latent.visibility < 0.1, "unknowns must stay invisible");
                }
            }

            // URLs have a non-empty e2LD and an executable-ish path.
            prop_assert!(!event.url.e2ld().is_empty());
            prop_assert!(event.url.path().starts_with('/'));
        }
    }

    /// Same config → byte-identical stream; different seed → different.
    #[test]
    fn generation_determinism(seed in any::<u64>()) {
        let config = SynthConfig::new(seed).with_scale(Scale::Fraction(1.0 / 1024.0));
        let a = World::generate(&config);
        let b = World::generate(&config);
        prop_assert_eq!(a.events.len(), b.events.len());
        for (ea, eb) in a.events.iter().zip(&b.events) {
            prop_assert_eq!(ea, eb);
        }
        prop_assert_eq!(a.world.file_count(), b.world.file_count());
    }

    /// Destiny mix: unknown-destiny files dominate at any seed (the 83%
    /// long tail is structural, not a lucky seed).
    #[test]
    fn unknown_destiny_dominates(seed in any::<u64>()) {
        let config = SynthConfig::new(seed).with_scale(Scale::Fraction(1.0 / 1024.0));
        let generated = World::generate(&config);
        let total = generated.world.file_count();
        let unknown = generated
            .world
            .files()
            .filter(|f| f.destiny == FileDestiny::Unknown)
            .count();
        let share = unknown as f64 / total as f64;
        prop_assert!(share > 0.55, "unknown destiny share {share:.2}");
    }
}
