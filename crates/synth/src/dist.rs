//! Sampling primitives used by the generator.
//!
//! Only `rand`'s core RNG machinery is a dependency; the distributions the
//! generator needs (categorical tables, bounded Zipf, discrete power laws)
//! are implemented here to stay within the approved dependency set.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A categorical distribution over `0..n` sampled by inverse CDF.
///
/// Weights need not be normalised. Construction is `O(n)`, sampling is
/// `O(log n)`.
///
/// ```
/// use downlake_synth::Categorical;
/// use rand::SeedableRng;
/// let dist = Categorical::new(&[1.0, 0.0, 3.0]).unwrap();
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
/// let idx = dist.sample(&mut rng);
/// assert!(idx == 0 || idx == 2); // index 1 has zero weight
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Categorical {
    cumulative: Vec<f64>,
}

impl Categorical {
    /// Builds the distribution from non-negative weights.
    ///
    /// Returns `None` if `weights` is empty, contains a negative or
    /// non-finite value, or sums to zero.
    pub fn new(weights: &[f64]) -> Option<Self> {
        if weights.is_empty() {
            return None;
        }
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut total = 0.0;
        for &w in weights {
            if !w.is_finite() || w < 0.0 {
                return None;
            }
            total += w;
            cumulative.push(total);
        }
        if total <= 0.0 {
            return None;
        }
        Some(Self { cumulative })
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether the distribution has no categories (never true for a
    /// successfully constructed value).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Draws a category index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("non-empty by construction"); // downlake-lint: allow(P1) — Categorical::new rejects empty weight vectors
        let x = rng.gen_range(0.0..total);
        match self.cumulative.binary_search_by(|c| c.total_cmp(&x)) {
            Ok(i) | Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

/// Zipf distribution over ranks `1..=n` with exponent `s`, sampled by
/// inverse CDF over the precomputed harmonic weights.
///
/// Used for domain popularity ranks and family sizes. Construction is
/// `O(n)`; keep `n` modest (catalogs are thousands, not millions).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BoundedZipf {
    inner: Categorical,
}

impl BoundedZipf {
    /// Builds a Zipf over `1..=n` with exponent `s ≥ 0`.
    ///
    /// Returns `None` when `n == 0` or `s` is not finite.
    pub fn new(n: usize, s: f64) -> Option<Self> {
        if n == 0 || !s.is_finite() || s < 0.0 {
            return None;
        }
        let weights: Vec<f64> = (1..=n).map(|k| (k as f64).powf(-s)).collect();
        Categorical::new(&weights).map(|inner| Self { inner })
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the distribution has no ranks (never true: construction
    /// rejects `n == 0`).
    pub fn is_empty(&self) -> bool {
        self.inner.len() == 0
    }

    /// Draws a rank in `1..=n` (1 is the heaviest).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        self.inner.sample(rng) + 1
    }
}

/// Discrete power law over `1..=max` with exponent `alpha` and an extra
/// point mass at 1.
///
/// This is the prevalence model of Fig. 2: `P(1) = p1 + (1-p1)·z(1)`,
/// where `z` is Zipf(α) over `1..=max`. Setting `p1` high produces the
/// "almost 90% of files are downloaded by only one machine" head while the
/// Zipf component supplies the long tail.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DiscretePowerLaw {
    p1: f64,
    tail: BoundedZipf,
}

impl DiscretePowerLaw {
    /// Builds the distribution.
    ///
    /// Returns `None` if `max == 0`, `p1 ∉ [0, 1]`, or `alpha` is invalid.
    pub fn new(p1: f64, alpha: f64, max: usize) -> Option<Self> {
        if !(0.0..=1.0).contains(&p1) {
            return None;
        }
        BoundedZipf::new(max, alpha).map(|tail| Self { p1, tail })
    }

    /// Draws a value in `1..=max`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        if rng.gen_bool(self.p1) {
            1
        } else {
            self.tail.sample(rng)
        }
    }
}

/// Samples a log-normal-ish file size in bytes via Box–Muller, clamped to
/// `[16 KiB, 512 MiB]`. `mu`/`sigma` are in ln-space.
pub fn sample_file_size<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> u64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    let bytes = (mu + sigma * z).exp();
    bytes.clamp(16.0 * 1024.0, 512.0 * 1024.0 * 1024.0) as u64
}

/// Draws an exponentially distributed day delta with the given mean,
/// truncated to `max_days`. Used for escalation timing (Fig. 5).
pub fn sample_exp_days<R: Rng + ?Sized>(rng: &mut R, mean_days: f64, max_days: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    (-mean_days * u.ln()).min(max_days)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(0xD0_17)
    }

    #[test]
    fn categorical_rejects_bad_weights() {
        assert!(Categorical::new(&[]).is_none());
        assert!(Categorical::new(&[0.0, 0.0]).is_none());
        assert!(Categorical::new(&[1.0, -1.0]).is_none());
        assert!(Categorical::new(&[f64::NAN]).is_none());
        assert!(Categorical::new(&[f64::INFINITY]).is_none());
    }

    #[test]
    fn categorical_respects_weights() {
        let dist = Categorical::new(&[8.0, 0.0, 2.0]).unwrap();
        let mut rng = rng();
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[dist.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0);
        let share0 = counts[0] as f64 / 10_000.0;
        assert!((share0 - 0.8).abs() < 0.03, "share0 = {share0}");
    }

    #[test]
    fn single_category_always_sampled() {
        let dist = Categorical::new(&[5.0]).unwrap();
        let mut rng = rng();
        for _ in 0..100 {
            assert_eq!(dist.sample(&mut rng), 0);
        }
    }

    #[test]
    fn zipf_head_is_heaviest() {
        let zipf = BoundedZipf::new(100, 1.2).unwrap();
        let mut rng = rng();
        let mut counts = vec![0usize; 101];
        for _ in 0..20_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        assert!(counts[1] > counts[10]);
        assert!(counts[1] > counts[50]);
        assert_eq!(counts[0], 0, "rank 0 must never be drawn");
    }

    #[test]
    fn zipf_rejects_degenerate_params() {
        assert!(BoundedZipf::new(0, 1.0).is_none());
        assert!(BoundedZipf::new(10, f64::NAN).is_none());
        assert!(BoundedZipf::new(10, -1.0).is_none());
    }

    #[test]
    fn power_law_head_mass() {
        let p = DiscretePowerLaw::new(0.9, 2.0, 50).unwrap();
        let mut rng = rng();
        let mut ones = 0;
        let n = 20_000;
        for _ in 0..n {
            if p.sample(&mut rng) == 1 {
                ones += 1;
            }
        }
        let share = ones as f64 / n as f64;
        assert!(
            share > 0.9,
            "P(1) should exceed the point mass, got {share}"
        );
    }

    #[test]
    fn power_law_rejects_bad_p1() {
        assert!(DiscretePowerLaw::new(1.5, 2.0, 10).is_none());
        assert!(DiscretePowerLaw::new(-0.1, 2.0, 10).is_none());
    }

    #[test]
    fn file_sizes_stay_in_bounds() {
        let mut rng = rng();
        for _ in 0..1_000 {
            let s = sample_file_size(&mut rng, 13.0, 2.0);
            assert!((16 * 1024..=512 * 1024 * 1024).contains(&s));
        }
    }

    #[test]
    fn exp_days_truncates() {
        let mut rng = rng();
        for _ in 0..1_000 {
            let d = sample_exp_days(&mut rng, 3.0, 30.0);
            assert!((0.0..=30.0).contains(&d));
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let dist = Categorical::new(&[1.0, 2.0, 3.0]).unwrap();
        let a: Vec<usize> = {
            let mut r = SmallRng::seed_from_u64(9);
            (0..50).map(|_| dist.sample(&mut r)).collect()
        };
        let b: Vec<usize> = {
            let mut r = SmallRng::seed_from_u64(9);
            (0..50).map(|_| dist.sample(&mut r)).collect()
        };
        assert_eq!(a, b);
    }
}
