//! Calibrated synthetic world for `downlake`.
//!
//! The paper's dataset is proprietary Trend Micro telemetry. This crate is
//! the substitution mandated by the reproduction plan (see `DESIGN.md`): a
//! deterministic, seeded generative model of the download ecosystem —
//! machines, domains, code signers, packers, malware families and types,
//! downloading processes — sampled into a stream of
//! [`downlake_telemetry::RawEvent`]s whose *marginal statistics are
//! calibrated to the paper's published tables* (Table I monthly volumes and
//! label rates, Table II type mix, Table VI signing rates, Tables X–XII
//! process conditionals, Fig. 2 prevalence tail, Fig. 5 escalation
//! dynamics).
//!
//! Every generated file carries a hidden [`downlake_types::LatentProfile`];
//! the `downlake-groundtruth` oracle consumes those profiles to decide what
//! fraction of the world ever becomes *known*, which is how the 83%
//! unlabeled long tail arises mechanically rather than by fiat.
//!
//! # Example
//!
//! ```
//! use downlake_synth::{Scale, SynthConfig, World};
//!
//! let config = SynthConfig::new(42).with_scale(Scale::Tiny);
//! let generated = World::generate(&config);
//! assert!(!generated.events.is_empty());
//! // Latent truth is available for every file referenced by the stream.
//! let first = &generated.events[0];
//! assert!(generated.world.latent(first.file).is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod calibration;
mod catalogs;
mod config;
mod dist;
mod eventgen;
mod filegen;
mod world;
pub mod worldcodec;

pub use catalogs::domains::{DomainCatalog, DomainEntry, DomainKind};
pub use catalogs::families::FamilyCatalog;
pub use catalogs::packers::PackerCatalog;
pub use catalogs::processes::{BenignProcessInventory, ProcessImage};
pub use catalogs::signers::{SignerCatalog, SignerEntry, SignerScope};
pub use config::{Scale, SynthConfig, WORLD_HASH_VERSION};
pub use dist::{BoundedZipf, Categorical, DiscretePowerLaw};
pub use eventgen::Generated;
pub use filegen::{FileDestiny, FileFactory, GeneratedFile};
pub use world::World;
