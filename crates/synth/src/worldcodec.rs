//! Binary sidecar codec for a world's file table.
//!
//! A disk-resident lake persists the raw event stream as codec frames,
//! but studies also need the world's *latent truth* — the
//! [`GeneratedFile`] table that the ground-truth oracle and analysis
//! passes consume. Catalogs are pure functions of `(seed, scale)` and
//! are rebuilt by [`World::rebuild`]; the file table is the one piece
//! of generator state that accumulates during simulation, so it is the
//! one piece spilled here.
//!
//! The layout reuses the event codec's exact field encodings
//! ([`downlake_telemetry::codec::encode_file_meta`] for metadata,
//! `u32`-length-prefixed UTF-8 for strings, one-byte presence/variant
//! tags, `f64` as exact bit patterns) so the workspace has a single
//! wire grammar. Files are written in ascending hash order, making the
//! encoding a pure function of the world: equal worlds produce equal
//! bytes.

use crate::filegen::{FileDestiny, GeneratedFile};
use crate::world::World;
use downlake_telemetry::codec::{decode_file_meta, encode_file_meta, CodecError};
use downlake_types::{FileHash, FileNature, LatentProfile, MalwareType};
use std::collections::HashMap;

/// Encodes a world's file table into the sidecar byte layout.
///
/// Layout: `u64` file count, then per file (ascending hash order):
/// `u64` hash, the metadata in event-codec layout, a nature tag
/// (`0` benign / `1` malicious + type tag), an optional family string,
/// visibility and detectability as `f64` bit patterns, and a destiny
/// tag (`0`–`4`, the malicious variants followed by a type tag).
pub fn encode_world_files(world: &World) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(world.file_count() as u64).to_le_bytes());
    for file in world.files() {
        out.extend_from_slice(&file.hash.raw().to_le_bytes());
        encode_file_meta(&file.meta, &mut out);
        match file.latent.nature {
            FileNature::Benign => out.push(0),
            FileNature::Malicious(ty) => {
                out.push(1);
                out.push(type_tag(ty));
            }
        }
        match &file.latent.family {
            Some(family) => {
                out.push(1);
                put_str(&mut out, family);
            }
            None => out.push(0),
        }
        out.extend_from_slice(&file.latent.visibility.to_bits().to_le_bytes());
        out.extend_from_slice(&file.latent.detectability.to_bits().to_le_bytes());
        match file.destiny {
            FileDestiny::Benign => out.push(0),
            FileDestiny::LikelyBenign => out.push(1),
            FileDestiny::Malicious(ty) => {
                out.push(2);
                out.push(type_tag(ty));
            }
            FileDestiny::LikelyMalicious(ty) => {
                out.push(3);
                out.push(type_tag(ty));
            }
            FileDestiny::Unknown => out.push(4),
        }
    }
    out
}

/// Decodes a sidecar buffer back into a file table.
///
/// Inverse of [`encode_world_files`]; pair the result with
/// [`World::rebuild`] to reconstruct the full world.
///
/// # Errors
///
/// Returns a [`CodecError`] when the buffer is truncated, carries an
/// unknown tag, or holds trailing bytes past the declared file count.
pub fn decode_world_files(buf: &[u8]) -> Result<HashMap<FileHash, GeneratedFile>, CodecError> {
    let mut cursor = SidecarCursor { buf, pos: 0 };
    let count = cursor.take_u64("file count")?;
    let mut files = HashMap::with_capacity(count.min(1 << 24) as usize);
    for _ in 0..count {
        let hash = FileHash::from_raw(cursor.take_u64("file hash")?);
        let (meta, consumed) = decode_file_meta(cursor.rest())?;
        cursor.pos += consumed;
        let nature = match cursor.take_u8("nature tag")? {
            0 => FileNature::Benign,
            1 => FileNature::Malicious(cursor.take_type("nature type")?),
            tag => {
                return Err(CodecError::BadTag {
                    what: "nature tag",
                    tag,
                })
            }
        };
        let family = if cursor.take_bool("family presence")? {
            Some(cursor.take_str("family name")?)
        } else {
            None
        };
        let visibility = f64::from_bits(cursor.take_u64("visibility")?);
        let detectability = f64::from_bits(cursor.take_u64("detectability")?);
        let destiny = match cursor.take_u8("destiny tag")? {
            0 => FileDestiny::Benign,
            1 => FileDestiny::LikelyBenign,
            2 => FileDestiny::Malicious(cursor.take_type("destiny type")?),
            3 => FileDestiny::LikelyMalicious(cursor.take_type("destiny type")?),
            4 => FileDestiny::Unknown,
            tag => {
                return Err(CodecError::BadTag {
                    what: "destiny tag",
                    tag,
                })
            }
        };
        files.insert(
            hash,
            GeneratedFile {
                hash,
                meta,
                latent: LatentProfile {
                    nature,
                    family,
                    visibility,
                    detectability,
                },
                destiny,
            },
        );
    }
    if cursor.pos != buf.len() {
        return Err(CodecError::FrameSlack {
            declared: buf.len(),
            consumed: cursor.pos,
        });
    }
    Ok(files)
}

fn type_tag(ty: MalwareType) -> u8 {
    MalwareType::ALL
        .iter()
        .position(|&t| t == ty)
        .unwrap_or(MalwareType::ALL.len() - 1) as u8
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Panic-free forward reader over the sidecar buffer.
struct SidecarCursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SidecarCursor<'a> {
    fn rest(&self) -> &'a [u8] {
        let pos = self.pos.min(self.buf.len());
        &self.buf[pos..]
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], CodecError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let slice = &self.buf[self.pos..end];
                self.pos = end;
                Ok(slice)
            }
            None => Err(CodecError::Truncated {
                what,
                offset: self.pos,
            }),
        }
    }

    fn take_u8(&mut self, what: &'static str) -> Result<u8, CodecError> {
        match self.take(1, what)?.first().copied() {
            Some(b) => Ok(b),
            None => Err(CodecError::Truncated {
                what,
                offset: self.pos,
            }),
        }
    }

    fn take_bool(&mut self, what: &'static str) -> Result<bool, CodecError> {
        match self.take_u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(CodecError::BadTag { what, tag }),
        }
    }

    fn take_u64(&mut self, what: &'static str) -> Result<u64, CodecError> {
        let bytes = self.take(8, what)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(bytes);
        Ok(u64::from_le_bytes(arr))
    }

    fn take_str(&mut self, what: &'static str) -> Result<String, CodecError> {
        let len = self.take_u32(what)? as usize;
        let bytes = self.take(len, what)?;
        std::str::from_utf8(bytes)
            .map(str::to_owned)
            .map_err(|_| CodecError::BadUtf8 { what })
    }

    fn take_u32(&mut self, what: &'static str) -> Result<u32, CodecError> {
        let bytes = self.take(4, what)?;
        let mut arr = [0u8; 4];
        arr.copy_from_slice(bytes);
        Ok(u32::from_le_bytes(arr))
    }

    fn take_type(&mut self, what: &'static str) -> Result<MalwareType, CodecError> {
        let tag = self.take_u8(what)?;
        MalwareType::ALL
            .get(tag as usize)
            .copied()
            .ok_or(CodecError::BadTag { what, tag })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Scale, SynthConfig};

    #[test]
    fn world_files_round_trip_through_the_sidecar() {
        let config = SynthConfig::new(42).with_scale(Scale::Tiny);
        let generated = World::generate(&config);
        let bytes = encode_world_files(&generated.world);
        let files = decode_world_files(&bytes).expect("self-encoded sidecar must decode");
        assert_eq!(files.len(), generated.world.file_count());
        for file in generated.world.files() {
            assert_eq!(files.get(&file.hash), Some(file));
        }
        // Re-encoding the rebuilt world reproduces the bytes: the
        // sidecar is a pure function of the world.
        let rebuilt = World::rebuild(config, files);
        assert_eq!(encode_world_files(&rebuilt), bytes);
    }

    #[test]
    fn truncation_and_tag_flips_error_cleanly() {
        let config = SynthConfig::new(7).with_scale(Scale::Tiny);
        let generated = World::generate(&config);
        let bytes = encode_world_files(&generated.world);
        for cut in [0, 4, 8, 9, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                decode_world_files(&bytes[..cut]).is_err(),
                "cut at {cut} must not decode"
            );
        }
        // The first file's nature tag sits right after count, hash, and
        // metadata; flipping any tag byte to 0xff must error, so sweep a
        // few offsets and require that corruption never panics.
        for offset in 8..bytes.len().min(256) {
            let mut corrupt = bytes.clone();
            corrupt[offset] ^= 0xff;
            let _ = decode_world_files(&corrupt);
        }
        // Trailing garbage past the declared count is rejected.
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(matches!(
            decode_world_files(&padded),
            Err(CodecError::FrameSlack { .. })
        ));
    }

    #[test]
    fn every_type_and_destiny_tag_round_trips() {
        for (i, &ty) in MalwareType::ALL.iter().enumerate() {
            assert_eq!(type_tag(ty), i as u8);
        }
    }
}
