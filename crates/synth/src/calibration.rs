//! Calibration targets transcribed from the paper's tables.
//!
//! Every constant in this module is a number published in *Exploring the
//! Long Tail of (Malicious) Software Downloads* (DSN 2017). The generator
//! samples against these targets and the integration tests assert the
//! resulting *shape* (not exact values) against them.
//!
//! A few cells of Table VI are illegible in the available copy of the
//! paper (trojan signing rates, dropper from-browser rate, adware overall
//! rate); those are interpolated from the surrounding rows and the
//! paper's prose and are marked `// interpolated` below.

use downlake_types::{BrowserKind, MalwareType, Month};

/// Headline totals of §III.
pub mod totals {
    /// Machines monitored over the seven months.
    pub const MACHINES: u64 = 1_139_183;
    /// Software download events observed.
    pub const EVENTS: u64 = 3_073_863;
    /// Distinct downloaded files.
    pub const FILES: u64 = 1_791_803;
    /// Distinct downloading processes.
    pub const PROCESSES: u64 = 141_229;
    /// Distinct download URLs.
    pub const URLS: u64 = 1_629_336;
    /// Distinct domains.
    pub const DOMAINS: u64 = 96_862;
    /// Share of downloaded files with no ground truth.
    pub const UNKNOWN_FILE_SHARE: f64 = 0.83;
    /// Share of machines that downloaded at least one unknown file.
    pub const MACHINES_TOUCHING_UNKNOWN: f64 = 0.69;
    /// Share of files downloaded and executed by exactly one machine.
    pub const PREVALENCE_ONE_SHARE: f64 = 0.90;
    /// Share of files whose prevalence was capped by σ = 20.
    pub const CAPPED_SHARE: f64 = 0.0025;
}

/// Percentages of a population falling in each ground-truth class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LabelShares {
    /// % labeled benign.
    pub benign: f64,
    /// % labeled likely benign.
    pub likely_benign: f64,
    /// % labeled malicious.
    pub malicious: f64,
    /// % labeled likely malicious.
    pub likely_malicious: f64,
}

impl LabelShares {
    /// % that remains unknown.
    pub fn unknown(&self) -> f64 {
        100.0 - self.benign - self.likely_benign - self.malicious - self.likely_malicious
    }
}

/// One row of Table I.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonthRow {
    /// Calendar month.
    pub month: Month,
    /// Active machines.
    pub machines: u64,
    /// Download events.
    pub events: u64,
    /// Distinct downloading processes.
    pub processes: u64,
    /// Label shares of downloading processes.
    pub process_labels: LabelShares,
    /// Distinct downloaded files.
    pub files: u64,
    /// Label shares of downloaded files.
    pub file_labels: LabelShares,
    /// Distinct download URLs.
    pub urls: u64,
    /// % of URLs labeled benign.
    pub url_benign: f64,
    /// % of URLs labeled malicious.
    pub url_malicious: f64,
}

/// Table I, one row per study month.
pub const TABLE1: [MonthRow; 7] = [
    MonthRow {
        month: Month::January,
        machines: 292_516,
        events: 578_510,
        processes: 27_265,
        process_labels: LabelShares {
            benign: 15.8,
            likely_benign: 8.4,
            malicious: 16.2,
            likely_malicious: 4.8,
        },
        files: 366_981,
        file_labels: LabelShares {
            benign: 2.9,
            likely_benign: 2.8,
            malicious: 7.9,
            likely_malicious: 2.8,
        },
        urls: 318_834,
        url_benign: 30.2,
        url_malicious: 11.6,
    },
    MonthRow {
        month: Month::February,
        machines: 246_481,
        events: 470_291,
        processes: 25_001,
        process_labels: LabelShares {
            benign: 15.4,
            likely_benign: 8.2,
            malicious: 16.8,
            likely_malicious: 4.8,
        },
        files: 296_362,
        file_labels: LabelShares {
            benign: 3.1,
            likely_benign: 3.1,
            malicious: 8.9,
            likely_malicious: 3.1,
        },
        urls: 258_410,
        url_benign: 30.0,
        url_malicious: 12.2,
    },
    MonthRow {
        month: Month::March,
        machines: 248_568,
        events: 493_487,
        processes: 25_497,
        process_labels: LabelShares {
            benign: 15.7,
            likely_benign: 9.1,
            malicious: 16.2,
            likely_malicious: 4.6,
        },
        files: 312_662,
        file_labels: LabelShares {
            benign: 3.0,
            likely_benign: 3.1,
            malicious: 9.6,
            likely_malicious: 2.9,
        },
        urls: 282_179,
        url_benign: 33.0,
        url_malicious: 12.3,
    },
    MonthRow {
        month: Month::April,
        machines: 215_693,
        events: 427_110,
        processes: 23_078,
        process_labels: LabelShares {
            benign: 16.3,
            likely_benign: 9.3,
            malicious: 19.4,
            likely_malicious: 4.5,
        },
        files: 258_752,
        file_labels: LabelShares {
            benign: 3.6,
            likely_benign: 3.4,
            malicious: 12.6,
            likely_malicious: 3.2,
        },
        urls: 250_634,
        url_benign: 31.8,
        url_malicious: 11.3,
    },
    MonthRow {
        month: Month::May,
        machines: 180_947,
        events: 351_271,
        processes: 20_071,
        process_labels: LabelShares {
            benign: 17.3,
            likely_benign: 9.5,
            malicious: 19.3,
            likely_malicious: 4.7,
        },
        files: 218_156,
        file_labels: LabelShares {
            benign: 3.7,
            likely_benign: 3.5,
            malicious: 12.5,
            likely_malicious: 3.2,
        },
        urls: 206_095,
        url_benign: 29.9,
        url_malicious: 18.9,
    },
    MonthRow {
        month: Month::June,
        machines: 176_463,
        events: 351_509,
        processes: 23_799,
        process_labels: LabelShares {
            benign: 14.3,
            likely_benign: 8.1,
            malicious: 20.9,
            likely_malicious: 3.8,
        },
        files: 206_309,
        file_labels: LabelShares {
            benign: 3.8,
            likely_benign: 3.4,
            malicious: 14.0,
            likely_malicious: 3.5,
        },
        urls: 201_920,
        url_benign: 29.5,
        url_malicious: 23.0,
    },
    MonthRow {
        month: Month::July,
        machines: 157_457,
        events: 323_159,
        processes: 26_304,
        process_labels: LabelShares {
            benign: 12.2,
            likely_benign: 7.2,
            malicious: 16.6,
            likely_malicious: 3.3,
        },
        files: 188_564,
        file_labels: LabelShares {
            benign: 4.0,
            likely_benign: 3.7,
            malicious: 12.6,
            likely_malicious: 3.6,
        },
        urls: 187_315,
        url_benign: 29.3,
        url_malicious: 17.9,
    },
];

/// Table I "Overall" file label shares.
pub const OVERALL_FILE_LABELS: LabelShares = LabelShares {
    benign: 2.3,
    likely_benign: 2.5,
    malicious: 9.9,
    likely_malicious: 2.3,
};

/// Table II: share of malicious files per behaviour type (percent).
pub const TABLE2_TYPE_MIX: [(MalwareType, f64); 11] = [
    (MalwareType::Dropper, 22.7),
    (MalwareType::Pup, 16.8),
    (MalwareType::Adware, 15.4),
    (MalwareType::Trojan, 11.3),
    (MalwareType::Banker, 0.9),
    (MalwareType::Bot, 0.6),
    (MalwareType::FakeAv, 0.5),
    (MalwareType::Ransomware, 0.3),
    (MalwareType::Worm, 0.1),
    (MalwareType::Spyware, 0.04),
    (MalwareType::Undefined, 31.3),
];

/// Table VI: percentage of files carrying a valid signature, overall and
/// when downloaded via a browser, per file class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SigningRates {
    /// % signed, across all download vectors.
    pub overall: f64,
    /// % signed, among files downloaded by browsers.
    pub from_browsers: f64,
}

/// Signing rate for a malicious behaviour type (Table VI).
pub fn signing_rates(ty: MalwareType) -> SigningRates {
    let (overall, from_browsers) = match ty {
        MalwareType::Trojan => (30.0, 38.0),  // interpolated
        MalwareType::Dropper => (85.6, 89.0), // from-browser interpolated
        MalwareType::Ransomware => (44.4, 68.7),
        MalwareType::Bot => (1.5, 2.2),
        MalwareType::Worm => (5.5, 12.3),
        MalwareType::Spyware => (21.2, 25.0),
        MalwareType::Banker => (1.2, 1.8),
        MalwareType::FakeAv => (2.8, 4.5),
        MalwareType::Adware => (85.0, 91.8), // overall interpolated
        MalwareType::Pup => (76.0, 79.6),
        MalwareType::Undefined => (65.1, 71.3),
    };
    SigningRates {
        overall,
        from_browsers,
    }
}

/// Table VI signing rates for benign files.
pub const BENIGN_SIGNING: SigningRates = SigningRates {
    overall: 30.7,
    from_browsers: 32.1,
};
/// Table VI signing rates for unknown files.
pub const UNKNOWN_SIGNING: SigningRates = SigningRates {
    overall: 38.4,
    from_browsers: 42.1,
};
/// Table VI signing rates across all malicious files.
pub const MALICIOUS_SIGNING: SigningRates = SigningRates {
    overall: 66.0,
    from_browsers: 81.0,
};

/// §IV-C packer statistics.
pub mod packing {
    /// Share of benign files packed with a recognised packer.
    pub const BENIGN_PACKED: f64 = 0.54;
    /// Share of malicious files packed with a recognised packer.
    pub const MALICIOUS_PACKED: f64 = 0.58;
    /// Distinct packers observed.
    pub const TOTAL_PACKERS: usize = 69;
    /// Packers used by both benign and malicious files.
    pub const SHARED_PACKERS: usize = 35;
}

/// Downloaded-file class mix for a process population (Tables X–XII).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProcessRow {
    /// Distinct process versions (image hashes).
    pub processes: u64,
    /// Machines on which such processes initiated downloads.
    pub machines: u64,
    /// Downloaded files that remained unknown.
    pub unknown_files: u64,
    /// Downloaded files labeled benign.
    pub benign_files: u64,
    /// Downloaded files labeled malicious.
    pub malicious_files: u64,
    /// % of those machines that downloaded ≥1 malicious file.
    pub infected_pct: f64,
}

impl ProcessRow {
    /// Total downloaded files with any destiny.
    pub fn total_files(&self) -> u64 {
        self.unknown_files + self.benign_files + self.malicious_files
    }
}

/// A `(type, percent)` mix of malicious downloads. Entries absent from the
/// paper's row are zero.
pub type TypeMix = &'static [(MalwareType, f64)];

/// Table X: download behaviour of benign process categories.
/// Order: browsers, windows, java, acrobat, other.
pub const TABLE10: [(ProcessRow, TypeMix); 5] = [
    (
        ProcessRow {
            processes: 1_342,
            machines: 799_342,
            unknown_files: 1_120_855,
            benign_files: 28_265,
            malicious_files: 113_750,
            infected_pct: 24.44,
        },
        &[
            (MalwareType::Dropper, 28.05),
            (MalwareType::Pup, 18.55),
            (MalwareType::Trojan, 10.48),
            (MalwareType::Adware, 7.36),
            (MalwareType::FakeAv, 0.35),
            (MalwareType::Ransomware, 0.27),
            (MalwareType::Banker, 0.23),
            (MalwareType::Bot, 0.22),
            (MalwareType::Worm, 0.05),
            (MalwareType::Spyware, 0.03),
            (MalwareType::Undefined, 34.43),
        ],
    ),
    (
        ProcessRow {
            processes: 587,
            machines: 429_593,
            unknown_files: 368_925,
            benign_files: 23_059,
            malicious_files: 68_767,
            infected_pct: 27.71,
        },
        &[
            (MalwareType::Dropper, 25.42),
            (MalwareType::Pup, 17.75),
            (MalwareType::Trojan, 11.75),
            (MalwareType::Adware, 5.80),
            (MalwareType::Banker, 1.23),
            (MalwareType::Bot, 0.73),
            (MalwareType::Ransomware, 0.37),
            (MalwareType::FakeAv, 0.11),
            (MalwareType::Worm, 0.08),
            (MalwareType::Spyware, 0.06),
            (MalwareType::Undefined, 36.70),
        ],
    ),
    (
        ProcessRow {
            processes: 173,
            machines: 2_977,
            unknown_files: 227,
            benign_files: 25,
            malicious_files: 488,
            infected_pct: 33.36,
        },
        &[
            (MalwareType::Trojan, 45.29),
            (MalwareType::Bot, 15.78),
            (MalwareType::Dropper, 12.30),
            (MalwareType::Banker, 6.97),
            (MalwareType::Ransomware, 4.30),
            (MalwareType::Pup, 1.02),
            (MalwareType::Worm, 0.82),
            (MalwareType::Undefined, 12.54),
        ],
    ),
    (
        ProcessRow {
            processes: 9,
            machines: 1_080,
            unknown_files: 264,
            benign_files: 0,
            malicious_files: 696,
            infected_pct: 78.52,
        },
        &[
            (MalwareType::Trojan, 39.51),
            (MalwareType::Dropper, 23.71),
            (MalwareType::Banker, 15.80),
            (MalwareType::Bot, 8.19),
            (MalwareType::Ransomware, 3.74),
            (MalwareType::FakeAv, 1.44),
            (MalwareType::Spyware, 0.43),
            (MalwareType::Worm, 0.29),
            (MalwareType::Undefined, 6.89),
        ],
    ),
    (
        ProcessRow {
            processes: 8_714,
            machines: 112_681,
            unknown_files: 68_334,
            benign_files: 5_642,
            malicious_files: 15_440,
            infected_pct: 31.24,
        },
        &[
            (MalwareType::Pup, 22.57),
            (MalwareType::Dropper, 17.22),
            (MalwareType::Trojan, 11.34),
            (MalwareType::Adware, 8.38),
            (MalwareType::FakeAv, 5.03),
            (MalwareType::Banker, 1.20),
            (MalwareType::Bot, 0.79),
            (MalwareType::Ransomware, 0.44),
            (MalwareType::Worm, 0.30),
            (MalwareType::Spyware, 0.02),
            (MalwareType::Undefined, 32.71),
        ],
    ),
];

/// Table XI: per-browser download behaviour.
pub const TABLE11: [(BrowserKind, ProcessRow); 5] = [
    (
        BrowserKind::Firefox,
        ProcessRow {
            processes: 378,
            machines: 86_104,
            unknown_files: 104_237,
            benign_files: 7_411,
            malicious_files: 21_443,
            infected_pct: 26.00,
        },
    ),
    (
        BrowserKind::Chrome,
        ProcessRow {
            processes: 528,
            machines: 344_994,
            unknown_files: 460_214,
            benign_files: 17_623,
            malicious_files: 73_806,
            infected_pct: 31.92,
        },
    ),
    (
        BrowserKind::Opera,
        ProcessRow {
            processes: 91,
            machines: 4_337,
            unknown_files: 4_749,
            benign_files: 534,
            malicious_files: 1_567,
            infected_pct: 27.83,
        },
    ),
    (
        BrowserKind::Safari,
        ProcessRow {
            processes: 17,
            machines: 1_762,
            unknown_files: 2_579,
            benign_files: 117,
            malicious_files: 422,
            infected_pct: 18.56,
        },
    ),
    (
        BrowserKind::InternetExplorer,
        ProcessRow {
            processes: 307,
            machines: 411_138,
            unknown_files: 561_769,
            benign_files: 13_801,
            malicious_files: 48_206,
            infected_pct: 18.09,
        },
    ),
];

/// Table XII: download behaviour of malicious process types.
/// One entry per behaviour type, in [`MalwareType::ALL`] order minus the
/// absent rows (all types are present).
pub const TABLE12: [(MalwareType, ProcessRow, TypeMix); 11] = [
    (
        MalwareType::Trojan,
        ProcessRow {
            processes: 3_442,
            machines: 11_042,
            unknown_files: 1_265,
            benign_files: 73,
            malicious_files: 4_168,
            infected_pct: 100.0,
        },
        &[
            (MalwareType::Trojan, 51.90),
            (MalwareType::Adware, 11.80),
            (MalwareType::Dropper, 10.94),
            (MalwareType::Pup, 8.25),
            (MalwareType::Banker, 4.25),
            (MalwareType::Bot, 0.89),
            (MalwareType::Ransomware, 0.34),
            (MalwareType::FakeAv, 0.12),
            (MalwareType::Worm, 0.10),
            (MalwareType::Undefined, 11.42),
        ],
    ),
    (
        MalwareType::Dropper,
        ProcessRow {
            processes: 4_242,
            machines: 10_453,
            unknown_files: 1_565,
            benign_files: 267,
            malicious_files: 2_992,
            infected_pct: 100.0,
        },
        &[
            (MalwareType::Dropper, 39.10),
            (MalwareType::Trojan, 16.78),
            (MalwareType::Pup, 10.26),
            (MalwareType::Adware, 8.46),
            (MalwareType::Banker, 7.59),
            (MalwareType::Bot, 1.34),
            (MalwareType::Ransomware, 0.47),
            (MalwareType::Worm, 0.30),
            (MalwareType::FakeAv, 0.20),
            (MalwareType::Spyware, 0.07),
            (MalwareType::Undefined, 15.44),
        ],
    ),
    (
        MalwareType::Ransomware,
        ProcessRow {
            processes: 136,
            machines: 332,
            unknown_files: 7,
            benign_files: 0,
            malicious_files: 147,
            infected_pct: 100.0,
        },
        &[
            (MalwareType::Ransomware, 80.95),
            (MalwareType::Trojan, 9.52),
            (MalwareType::Dropper, 3.40),
            (MalwareType::Banker, 1.36),
            (MalwareType::Undefined, 4.76),
        ],
    ),
    (
        MalwareType::Bot,
        ProcessRow {
            processes: 323,
            machines: 689,
            unknown_files: 81,
            benign_files: 2,
            malicious_files: 394,
            infected_pct: 100.0,
        },
        &[
            (MalwareType::Bot, 64.72),
            (MalwareType::Trojan, 15.99),
            (MalwareType::Dropper, 4.57),
            (MalwareType::Banker, 4.31),
            (MalwareType::Pup, 2.54),
            (MalwareType::Ransomware, 1.27),
            (MalwareType::Worm, 0.51),
            (MalwareType::Adware, 0.25),
            (MalwareType::FakeAv, 0.25),
            (MalwareType::Undefined, 5.58),
        ],
    ),
    (
        MalwareType::Worm,
        ProcessRow {
            processes: 67,
            machines: 164,
            unknown_files: 4,
            benign_files: 0,
            malicious_files: 69,
            infected_pct: 100.0,
        },
        &[
            (MalwareType::Worm, 72.46),
            (MalwareType::Banker, 8.70),
            (MalwareType::Trojan, 4.35),
            (MalwareType::Dropper, 4.35),
            (MalwareType::Bot, 1.45),
            (MalwareType::Pup, 1.45),
            (MalwareType::Undefined, 7.25),
        ],
    ),
    (
        MalwareType::Spyware,
        ProcessRow {
            processes: 7,
            machines: 19,
            unknown_files: 2,
            benign_files: 1,
            malicious_files: 6,
            infected_pct: 100.0,
        },
        &[
            (MalwareType::Spyware, 66.67),
            (MalwareType::Trojan, 16.67),
            (MalwareType::Undefined, 16.67),
        ],
    ),
    (
        MalwareType::Banker,
        ProcessRow {
            processes: 484,
            machines: 1_146,
            unknown_files: 47,
            benign_files: 5,
            malicious_files: 525,
            infected_pct: 100.0,
        },
        &[
            (MalwareType::Banker, 76.00),
            (MalwareType::Trojan, 14.48),
            (MalwareType::Dropper, 4.00),
            (MalwareType::Worm, 0.57),
            (MalwareType::FakeAv, 0.38),
            (MalwareType::Ransomware, 0.19),
            (MalwareType::Bot, 0.19),
            (MalwareType::Adware, 0.19),
            (MalwareType::Undefined, 4.00),
        ],
    ),
    (
        MalwareType::FakeAv,
        ProcessRow {
            processes: 43,
            machines: 81,
            unknown_files: 1,
            benign_files: 0,
            malicious_files: 53,
            infected_pct: 100.0,
        },
        &[
            (MalwareType::FakeAv, 56.60),
            (MalwareType::Trojan, 22.64),
            (MalwareType::Banker, 9.43),
            (MalwareType::Dropper, 7.55),
            (MalwareType::Undefined, 3.77),
        ],
    ),
    (
        MalwareType::Adware,
        ProcessRow {
            processes: 2_862,
            machines: 16_509,
            unknown_files: 2_934,
            benign_files: 98,
            malicious_files: 6_078,
            infected_pct: 100.0,
        },
        &[
            (MalwareType::Adware, 66.24),
            (MalwareType::Pup, 9.97),
            (MalwareType::Trojan, 6.65),
            (MalwareType::Dropper, 2.91),
            (MalwareType::Banker, 0.13),
            (MalwareType::Bot, 0.03),
            (MalwareType::Undefined, 14.07),
        ],
    ),
    (
        MalwareType::Pup,
        ProcessRow {
            processes: 5_597,
            machines: 32_590,
            unknown_files: 6_757,
            benign_files: 199,
            malicious_files: 16_957,
            infected_pct: 100.0,
        },
        &[
            (MalwareType::Adware, 58.64),
            (MalwareType::Pup, 22.91),
            (MalwareType::Trojan, 6.30),
            (MalwareType::Dropper, 4.57),
            (MalwareType::Ransomware, 0.02),
            (MalwareType::Bot, 0.01),
            (MalwareType::Banker, 0.01),
            (MalwareType::FakeAv, 0.01),
            (MalwareType::Undefined, 7.54),
        ],
    ),
    (
        MalwareType::Undefined,
        ProcessRow {
            processes: 8_905,
            machines: 29_216,
            unknown_files: 6_343,
            benign_files: 499,
            malicious_files: 8_329,
            infected_pct: 100.0,
        },
        &[
            (MalwareType::Adware, 6.52),
            (MalwareType::Pup, 5.53),
            (MalwareType::Dropper, 3.77),
            (MalwareType::Trojan, 3.36),
            (MalwareType::Banker, 0.36),
            (MalwareType::Bot, 0.22),
            (MalwareType::Worm, 0.06),
            (MalwareType::Ransomware, 0.04),
            (MalwareType::Spyware, 0.04),
            (MalwareType::FakeAv, 0.01),
            (MalwareType::Undefined, 80.09),
        ],
    ),
];

/// Fig. 5 escalation dynamics: mean day delta between executing a file of
/// the given kind and the machine downloading a subsequent (non-adware,
/// non-PUP, non-undefined) malicious file. The paper reports >40% of
/// adware/PUP escalations on day 0, >55% within five days; droppers much
/// faster; benign baseline much slower.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EscalationTiming {
    /// Mean of the exponential day-delta for dropper-initiated chains.
    pub dropper_mean_days: f64,
    /// Mean for adware-initiated escalation.
    pub adware_mean_days: f64,
    /// Mean for PUP-initiated escalation.
    pub pup_mean_days: f64,
    /// Mean for the benign baseline (coincidental later infection).
    pub benign_mean_days: f64,
}

/// Default escalation timing calibrated to Fig. 5's reported quantiles.
pub const ESCALATION: EscalationTiming = EscalationTiming {
    dropper_mean_days: 1.2,
    adware_mean_days: 7.0,
    pup_mean_days: 8.0,
    benign_mean_days: 35.0,
};

/// §VI/§VII rule-system evaluation targets.
pub mod rules {
    /// Minimum true-positive rate at τ = 0.1%.
    pub const TP_TARGET: f64 = 0.95;
    /// Maximum false-positive rate at τ = 0.1%.
    pub const FP_CEILING: f64 = 0.0032;
    /// Share of unknown files the rules labeled (Feb–Aug).
    pub const UNKNOWN_MATCH_SHARE: f64 = 0.283;
    /// Expansion of labeled files relative to available ground truth.
    pub const LABEL_EXPANSION: f64 = 2.33;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_overall_sums_match_paper_totals() {
        let machines: u64 = TABLE1.iter().map(|r| r.machines).sum();
        let events: u64 = TABLE1.iter().map(|r| r.events).sum();
        // Monthly machine counts overlap (machines active in several
        // months), so their sum exceeds the distinct total.
        assert!(machines > totals::MACHINES);
        // Monthly event counts sum to within ~3% of the stated overall
        // (the paper's table rows don't add exactly to its Overall row).
        let ratio = events as f64 / totals::EVENTS as f64;
        assert!((0.97..=1.03).contains(&ratio), "ratio = {ratio}");
        let files: u64 = TABLE1.iter().map(|r| r.files).sum();
        // Files also overlap across months (re-downloads), sum ≥ distinct.
        assert!(files >= totals::FILES);
    }

    #[test]
    fn type_mix_sums_to_about_100() {
        let sum: f64 = TABLE2_TYPE_MIX.iter().map(|(_, p)| p).sum();
        assert!((sum - 100.0).abs() < 0.5, "sum = {sum}");
    }

    #[test]
    fn label_shares_unknown_is_complement() {
        let shares = OVERALL_FILE_LABELS;
        assert!((shares.unknown() - 83.0).abs() < 0.5);
    }

    #[test]
    fn table10_mixes_sum_to_about_100() {
        for (row, mix) in &TABLE10 {
            let sum: f64 = mix.iter().map(|(_, p)| p).sum();
            assert!((sum - 100.0).abs() < 2.0, "mix sums to {sum} for {row:?}");
        }
    }

    #[test]
    fn table12_covers_all_types() {
        assert_eq!(TABLE12.len(), MalwareType::ALL.len());
        for ty in MalwareType::ALL {
            assert!(TABLE12.iter().any(|(t, _, _)| *t == ty), "missing {ty}");
        }
    }

    #[test]
    fn browser_machines_ordering_matches_paper() {
        // IE > Chrome > Firefox > Opera > Safari by machine count.
        let by_kind = |k: BrowserKind| TABLE11.iter().find(|(b, _)| *b == k).unwrap().1.machines;
        assert!(by_kind(BrowserKind::InternetExplorer) > by_kind(BrowserKind::Chrome));
        assert!(by_kind(BrowserKind::Chrome) > by_kind(BrowserKind::Firefox));
        assert!(by_kind(BrowserKind::Firefox) > by_kind(BrowserKind::Opera));
        assert!(by_kind(BrowserKind::Opera) > by_kind(BrowserKind::Safari));
    }

    #[test]
    fn signing_rates_defined_for_all_types() {
        for ty in MalwareType::ALL {
            let r = signing_rates(ty);
            assert!((0.0..=100.0).contains(&r.overall));
            assert!((0.0..=100.0).contains(&r.from_browsers));
        }
        // Droppers and PUPs far more signed than bots and bankers (§IV-C).
        assert!(signing_rates(MalwareType::Dropper).overall > 80.0);
        assert!(signing_rates(MalwareType::Bot).overall < 5.0);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // sanity-checks the calibration table
    fn escalation_ordering() {
        assert!(ESCALATION.dropper_mean_days < ESCALATION.adware_mean_days);
        assert!(ESCALATION.adware_mean_days <= ESCALATION.pup_mean_days);
        assert!(ESCALATION.pup_mean_days < ESCALATION.benign_mean_days);
    }

    #[test]
    fn acrobat_row_has_no_benign_downloads() {
        let (acrobat, _) = &TABLE10[3];
        assert_eq!(acrobat.benign_files, 0);
        assert_eq!(acrobat.total_files(), 960);
    }
}
