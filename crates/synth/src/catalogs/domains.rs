//! The download-domain catalog.
//!
//! §IV-B's central finding is *mixed domain reputation*: the file-hosting
//! services at the top of the popularity tables (softonic.com,
//! mediafire.com, cloudfront.net, …) serve both benign and malicious
//! files, while some malware types use dedicated infrastructure (fakeAV
//! social-engineering domains, adware streaming portals, DGA-looking
//! malware sites). The catalog reproduces those strata with the real head
//! names of Tables III–V/XIII and a generated tail, and exposes
//! class-conditional sampling that recreates Fig. 3/Fig. 6's rank skews.

use super::names;
use crate::dist::{BoundedZipf, Categorical};
use downlake_types::{AlexaRank, MalwareType};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Stratum a domain belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DomainKind {
    /// Large mixed-reputation file-hosting / download-portal services.
    FileHosting,
    /// Content-delivery networks (also mixed: anyone can rent them).
    Cdn,
    /// Software portals and vendor download sites.
    DownloadPortal,
    /// Dedicated malware-distribution infrastructure.
    MalwareSite,
    /// Adware / free-live-streaming ecosystems (§IV-B, ref. \[13\]).
    AdwarePortal,
    /// FakeAV social-engineering domains (the name *is* the lure).
    FakeAvSite,
    /// Long-tail generic domains.
    Generic,
}

/// One domain of the synthetic web.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DomainEntry {
    /// e2LD of the domain.
    pub name: String,
    /// Alexa-style popularity rank.
    pub rank: AlexaRank,
    /// Stratum.
    pub kind: DomainKind,
    /// Member of the vendor's curated URL whitelist.
    pub curated_whitelist: bool,
    /// Listed by Google Safe Browsing.
    pub gsb_listed: bool,
    /// Member of the vendor's private URL blacklist.
    pub private_blacklist: bool,
}

fn head(name: &str, rank: Option<u32>, kind: DomainKind, wl: bool, bad: bool) -> DomainEntry {
    DomainEntry {
        name: name.to_owned(),
        rank: rank.map_or(AlexaRank::UNRANKED, AlexaRank::ranked),
        kind,
        curated_whitelist: wl,
        gsb_listed: bad,
        private_blacklist: bad,
    }
}

fn head_entries() -> Vec<DomainEntry> {
    use DomainKind::*;
    vec![
        // Mixed-reputation file hosting (Tables III/IV heads).
        head("softonic.com", Some(170), FileHosting, true, false),
        head("mediafire.com", Some(140), FileHosting, true, false),
        head("4shared.com", Some(180), FileHosting, true, false),
        head("uptodown.com", Some(900), FileHosting, true, false),
        head("soft32.com", Some(1_200), FileHosting, true, false),
        head("baixaki.com.br", Some(950), FileHosting, true, false),
        head("softonic.com.br", Some(2_100), FileHosting, false, false),
        head("softonic.fr", Some(3_500), FileHosting, false, false),
        head("softonic.jp", Some(4_200), FileHosting, false, false),
        head("filehippo.com", Some(600), FileHosting, true, false),
        head("nzs.com.br", Some(45_000), FileHosting, false, false),
        head("files-info.com", Some(90_000), FileHosting, false, false),
        head("ge.tt", Some(25_000), FileHosting, false, false),
        head("sharesend.com", Some(60_000), FileHosting, false, false),
        head("gulfup.com", Some(8_000), FileHosting, false, false),
        head("hinet.net", Some(700), FileHosting, false, false),
        head("naver.net", Some(400), FileHosting, true, false),
        head("co.vu", Some(150_000), FileHosting, false, false),
        // CDNs.
        head("cloudfront.net", Some(60), Cdn, true, false),
        head("amazonaws.com", Some(75), Cdn, true, false),
        head("rackcdn.com", Some(3_000), Cdn, true, false),
        head("cdn77.net", Some(9_000), Cdn, false, false),
        head("akamaihd.net", Some(90), Cdn, true, false),
        // Portals.
        head("inbox.com", Some(2_500), DownloadPortal, true, false),
        head(
            "driverupdate.net",
            Some(18_000),
            DownloadPortal,
            false,
            false,
        ),
        head(
            "arcadefrontier.com",
            Some(22_000),
            DownloadPortal,
            false,
            false,
        ),
        head("ziputil.net", Some(35_000), DownloadPortal, false, false),
        head("gamehouse.com", Some(5_200), DownloadPortal, true, false),
        head("coolrom.com", Some(6_100), DownloadPortal, false, false),
        head("updatestar.com", Some(4_000), DownloadPortal, false, false),
        head(
            "zilliontoolkitusa.info",
            Some(190_000),
            DownloadPortal,
            false,
            false,
        ),
        // Dedicated malware infrastructure.
        head("humipapp.com", Some(85_000), MalwareSite, false, true),
        head(
            "bestdownload-manager.com",
            Some(120_000),
            MalwareSite,
            false,
            true,
        ),
        head(
            "freepdf-converter.com",
            Some(95_000),
            MalwareSite,
            false,
            true,
        ),
        head(
            "free-fileopener.com",
            Some(110_000),
            MalwareSite,
            false,
            true,
        ),
        head("wipmsc.ru", None, MalwareSite, false, true),
        head("f-best.biz", None, MalwareSite, false, true),
        head("vitkvitk.com", None, MalwareSite, false, true),
        head("d0wnpzivrubajjui.com", None, MalwareSite, false, true),
        head("downloadnuchaik.com", None, MalwareSite, false, true),
        head("downloadaixeechahgho.com", None, MalwareSite, false, true),
        // Adware / streaming portals.
        head(
            "media-watch-app.com",
            Some(40_000),
            AdwarePortal,
            false,
            false,
        ),
        head(
            "trustmediaviewer.com",
            Some(55_000),
            AdwarePortal,
            false,
            false,
        ),
        head("media-view.net", Some(48_000), AdwarePortal, false, false),
        head("media-viewer.com", Some(52_000), AdwarePortal, false, false),
        head("media-buzz.org", Some(70_000), AdwarePortal, false, false),
        head("pinchfist.info", None, AdwarePortal, false, false),
        head("dl24x7.net", Some(65_000), AdwarePortal, false, false),
        head("zrich-media-view.com", None, AdwarePortal, false, false),
        head("vidply.net", Some(80_000), AdwarePortal, false, false),
        head("mediaply.net", Some(88_000), AdwarePortal, false, false),
        // FakeAV social-engineering domains (Table V).
        head("5k-stopadware2014.in", None, FakeAvSite, false, true),
        head("sncpwindefender2014.in", None, FakeAvSite, false, true),
        head("webantiviruspro-fr.pw", None, FakeAvSite, false, true),
        head("12e-stopadware2014.in", None, FakeAvSite, false, true),
        head("zeroantivirusprojectx.nl", None, FakeAvSite, false, true),
        head("wmicrodefender27.nl", None, FakeAvSite, false, true),
        head("qwindowsdefender.nl", None, FakeAvSite, false, true),
        head("alphavirusprotectz.pw", None, FakeAvSite, false, true),
    ]
}

/// The domain catalog: stratified entries with per-stratum Zipf sampling.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DomainCatalog {
    entries: Vec<DomainEntry>,
    by_kind: Vec<Vec<usize>>, // indexed by kind_index
    zipf_by_kind: Vec<BoundedZipf>,
}

const KINDS: [DomainKind; 7] = [
    DomainKind::FileHosting,
    DomainKind::Cdn,
    DomainKind::DownloadPortal,
    DomainKind::MalwareSite,
    DomainKind::AdwarePortal,
    DomainKind::FakeAvSite,
    DomainKind::Generic,
];

fn kind_index(kind: DomainKind) -> usize {
    KINDS.iter().position(|&k| k == kind).expect("kind listed") // downlake-lint: allow(P1) — every DomainKind variant appears in KINDS
}

impl DomainCatalog {
    /// Builds the catalog deterministically with `tail` generated generic
    /// domains plus smaller generated tails in each special stratum.
    pub fn generate(seed: u64, tail: usize) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xD0_4A13);
        let mut entries = head_entries();

        // Stratum tails (sizes relative to the generic tail).
        let specials: [(DomainKind, usize, bool); 5] = [
            (DomainKind::FileHosting, tail / 50, false),
            (DomainKind::DownloadPortal, tail / 30, false),
            (DomainKind::MalwareSite, tail / 12, true),
            (DomainKind::AdwarePortal, tail / 40, false),
            (DomainKind::FakeAvSite, tail / 80, true),
        ];
        for (kind, count, bad) in specials {
            for _ in 0..count {
                let rank = sample_rank_for(kind, &mut rng);
                // Established hosting services and portals are broadly
                // covered by the curated URL whitelist (which is how the
                // paper labels ~30% of URLs benign).
                let curated = matches!(kind, DomainKind::FileHosting | DomainKind::DownloadPortal)
                    && rank.in_top_million()
                    && rng.gen_bool(0.55);
                entries.push(DomainEntry {
                    name: names::domain(&mut rng),
                    rank,
                    kind,
                    curated_whitelist: curated,
                    gsb_listed: bad && rng.gen_bool(0.8),
                    private_blacklist: bad && rng.gen_bool(0.8),
                });
            }
        }
        for _ in 0..tail {
            let rank = sample_rank_for(DomainKind::Generic, &mut rng);
            let popular = matches!(rank.rank(), Some(r) if r < 200_000);
            entries.push(DomainEntry {
                name: names::domain(&mut rng),
                rank,
                kind: DomainKind::Generic,
                curated_whitelist: popular && rng.gen_bool(0.45),
                gsb_listed: false,
                private_blacklist: false,
            });
        }

        // Deduplicate generated names (head names are unique by
        // construction) by keeping first occurrence.
        let mut seen = std::collections::HashSet::new();
        entries.retain(|e| seen.insert(e.name.clone()));

        let mut by_kind: Vec<Vec<usize>> = vec![Vec::new(); KINDS.len()];
        for (i, e) in entries.iter().enumerate() {
            by_kind[kind_index(e.kind)].push(i);
        }
        let zipf_by_kind = by_kind
            .iter()
            .map(|pool| BoundedZipf::new(pool.len().max(1), 1.05).expect("nonempty")) // downlake-lint: allow(P1) — len().max(1) guarantees a non-empty support
            .collect();
        Self {
            entries,
            by_kind,
            zipf_by_kind,
        }
    }

    /// All domains.
    pub fn entries(&self) -> &[DomainEntry] {
        &self.entries
    }

    /// Looks a domain up by name.
    pub fn get(&self, name: &str) -> Option<&DomainEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    fn sample_kind<R: Rng + ?Sized>(&self, kind: DomainKind, rng: &mut R) -> &DomainEntry {
        let pool = &self.by_kind[kind_index(kind)];
        let zipf = &self.zipf_by_kind[kind_index(kind)];
        let idx = zipf.sample(rng) - 1;
        &self.entries[pool[idx.min(pool.len() - 1)]]
    }

    fn sample_mix<R: Rng + ?Sized>(&self, mix: &[(DomainKind, f64)], rng: &mut R) -> &DomainEntry {
        let weights: Vec<f64> = mix.iter().map(|&(_, w)| w).collect();
        let dist = Categorical::new(&weights).expect("valid mix"); // downlake-lint: allow(P1) — static stratum mixes have positive finite weights
        self.sample_kind(mix[dist.sample(rng)].0, rng)
    }

    /// Serving domain for a benign file.
    pub fn sample_benign<R: Rng + ?Sized>(&self, rng: &mut R) -> &DomainEntry {
        self.sample_mix(
            &[
                (DomainKind::FileHosting, 0.40),
                (DomainKind::Cdn, 0.22),
                (DomainKind::DownloadPortal, 0.23),
                (DomainKind::Generic, 0.15),
            ],
            rng,
        )
    }

    /// Serving domain for an unknown-destiny file: a blend of low-profile
    /// portals and generic tail, with some file hosting (Table XIII).
    pub fn sample_unknown<R: Rng + ?Sized>(&self, rng: &mut R) -> &DomainEntry {
        self.sample_mix(
            &[
                (DomainKind::DownloadPortal, 0.28),
                (DomainKind::FileHosting, 0.17),
                (DomainKind::MalwareSite, 0.15),
                (DomainKind::AdwarePortal, 0.08),
                (DomainKind::Generic, 0.32),
            ],
            rng,
        )
    }

    /// Serving domain for a malicious file of the given behaviour type
    /// (Table V's per-type strata).
    pub fn sample_malicious<R: Rng + ?Sized>(&self, ty: MalwareType, rng: &mut R) -> &DomainEntry {
        let mix: &[(DomainKind, f64)] = match ty {
            MalwareType::Dropper => &[
                (DomainKind::FileHosting, 0.48),
                (DomainKind::Cdn, 0.12),
                (DomainKind::MalwareSite, 0.22),
                (DomainKind::Generic, 0.18),
            ],
            MalwareType::Pup => &[
                (DomainKind::FileHosting, 0.42),
                (DomainKind::DownloadPortal, 0.20),
                (DomainKind::MalwareSite, 0.18),
                (DomainKind::Generic, 0.20),
            ],
            MalwareType::Adware => &[
                (DomainKind::AdwarePortal, 0.58),
                (DomainKind::FileHosting, 0.15),
                (DomainKind::Generic, 0.27),
            ],
            MalwareType::FakeAv => &[
                (DomainKind::FakeAvSite, 0.75),
                (DomainKind::MalwareSite, 0.15),
                (DomainKind::Generic, 0.10),
            ],
            MalwareType::Bot | MalwareType::Banker | MalwareType::Worm => &[
                (DomainKind::MalwareSite, 0.55),
                (DomainKind::Generic, 0.40),
                (DomainKind::FileHosting, 0.05),
            ],
            MalwareType::Ransomware | MalwareType::Spyware | MalwareType::Trojan => &[
                (DomainKind::MalwareSite, 0.45),
                (DomainKind::Generic, 0.30),
                (DomainKind::FileHosting, 0.25),
            ],
            MalwareType::Undefined => &[
                (DomainKind::FileHosting, 0.30),
                (DomainKind::MalwareSite, 0.30),
                (DomainKind::AdwarePortal, 0.10),
                (DomainKind::Generic, 0.30),
            ],
        };
        self.sample_mix(mix, rng)
    }
}

fn sample_rank_for<R: Rng + ?Sized>(kind: DomainKind, rng: &mut R) -> AlexaRank {
    let (lo, hi, unranked_prob) = match kind {
        DomainKind::Cdn => (20, 10_000, 0.0),
        DomainKind::FileHosting => (100, 60_000, 0.05),
        DomainKind::DownloadPortal => (1_000, 200_000, 0.10),
        DomainKind::AdwarePortal => (5_000, 400_000, 0.25),
        DomainKind::MalwareSite => (50_000, 1_000_000, 0.55),
        DomainKind::FakeAvSite => (200_000, 1_000_000, 0.85),
        DomainKind::Generic => (5_000, 1_000_000, 0.45),
    };
    if rng.gen_bool(unranked_prob) {
        AlexaRank::UNRANKED
    } else {
        // log-uniform between lo and hi.
        let (lo, hi) = (lo as f64, hi as f64);
        let x = (lo.ln() + rng.gen_range(0.0..1.0) * (hi.ln() - lo.ln())).exp();
        AlexaRank::ranked(x as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_names_present_and_unique() {
        let c = DomainCatalog::generate(1, 500);
        assert!(c.get("softonic.com").is_some());
        assert!(c.get("5k-stopadware2014.in").is_some());
        let mut names: Vec<_> = c.entries().iter().map(|e| &e.name).collect();
        let before = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate domain names");
    }

    #[test]
    fn deterministic_generation() {
        let a = DomainCatalog::generate(9, 300);
        let b = DomainCatalog::generate(9, 300);
        assert_eq!(a.entries(), b.entries());
    }

    #[test]
    fn fakeav_sampling_prefers_fakeav_sites() {
        let c = DomainCatalog::generate(2, 500);
        let mut rng = SmallRng::seed_from_u64(4);
        let mut fakeav_hits = 0;
        let n = 1000;
        for _ in 0..n {
            if c.sample_malicious(MalwareType::FakeAv, &mut rng).kind == DomainKind::FakeAvSite {
                fakeav_hits += 1;
            }
        }
        assert!(fakeav_hits as f64 / n as f64 > 0.6);
    }

    #[test]
    fn benign_sampling_avoids_dedicated_malware_infra() {
        let c = DomainCatalog::generate(3, 500);
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..1000 {
            let d = c.sample_benign(&mut rng);
            assert!(
                !matches!(d.kind, DomainKind::MalwareSite | DomainKind::FakeAvSite),
                "benign file from {}",
                d.name
            );
        }
    }

    #[test]
    fn dropper_and_benign_share_file_hosting() {
        // The mixed-reputation property: the same top hosting domain must
        // show up for both benign and dropper downloads.
        let c = DomainCatalog::generate(4, 500);
        let mut rng = SmallRng::seed_from_u64(6);
        use std::collections::HashSet;
        let benign: HashSet<String> = (0..2000)
            .map(|_| c.sample_benign(&mut rng).name.clone())
            .collect();
        let dropper: HashSet<String> = (0..2000)
            .map(|_| {
                c.sample_malicious(MalwareType::Dropper, &mut rng)
                    .name
                    .clone()
            })
            .collect();
        let common: Vec<_> = benign.intersection(&dropper).collect();
        assert!(
            !common.is_empty(),
            "no overlap between benign and dropper domains"
        );
    }

    #[test]
    fn malware_sites_skew_unranked_or_deep() {
        let c = DomainCatalog::generate(5, 2_000);
        let deep_or_unranked = c
            .entries()
            .iter()
            .filter(|e| e.kind == DomainKind::FakeAvSite)
            .filter(|e| e.rank.rank().is_none_or(|r| r > 100_000))
            .count();
        let total = c
            .entries()
            .iter()
            .filter(|e| e.kind == DomainKind::FakeAvSite)
            .count();
        assert!(deep_or_unranked as f64 / total as f64 > 0.8);
    }
}
