//! The packer catalog.
//!
//! §IV-C: 69 distinct packers; 35 are used by both benign and malicious
//! files (INNO, UPX, AutoIt, NSIS, …); some are malicious-exclusive
//! (Molebox, NSPack, Themida, …). Benign files are 54% packed, malicious
//! 58% — packing alone does not discriminate, but *which* packer does
//! carry some signal (e.g. the paper's learned rules mention NSIS and
//! ASPack conjunctions).

use crate::dist::BoundedZipf;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Packers used by both benign and malicious software (35 of 69).
const SHARED: &[&str] = &[
    "INNO",
    "UPX",
    "AutoIt",
    "NSIS",
    "ASPack",
    "PECompact",
    "Armadillo",
    "InstallShield",
    "WiseInstaller",
    "7zSFX",
    "WinRARSfx",
    "MPRESS",
    "FSG",
    "PEtite",
    "UPack",
    "ExePack",
    "kkrunchy",
    "Smart Install Maker",
    "Setup Factory",
    "InstallAnywhere",
    "Ghost Installer",
    "Astrum",
    "CreateInstall",
    "Excelsior",
    "InstallAware",
    "Tarma",
    "ZipSFX",
    "CabSFX",
    "MoleboxPro-Lite",
    "BoxedApp",
    "Enigma-Lite",
    "Xenocode",
    "Spoon Studio",
    "Cameyo",
    "AdvancedInstaller",
];

/// Malicious-exclusive packers (custom/hard-to-reverse protectors).
const MALICIOUS_ONLY: &[&str] = &[
    "Molebox",
    "NSPack",
    "Themida",
    "VMProtect",
    "ExeCryptor",
    "Obsidium",
    "PELock",
    "yoda-crypter",
    "MEW",
    "PESpin",
    "tElock",
    "PolyCrypt",
    "Morphine",
    "PEncrypt",
    "CrypKey",
    "EXEStealth",
    "Krypton",
    "SVKProtector",
    "PC-Guard",
    "ASProtect-Mod",
    "CustomCryptA",
    "CustomCryptB",
];

/// Benign-exclusive packers (commercial installer suites).
const BENIGN_ONLY: &[&str] = &[
    "MSI-Wrapped",
    "ClickOnce",
    "InstallMate",
    "Actual Installer",
    "InstallSimple",
    "WixBurn",
    "SetupBuilder",
    "InstallJammer",
    "BitRock",
    "IzPack",
    "Squirrel",
    "NSudo-Setup",
];

/// The full packer catalog.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PackerCatalog {
    shared_zipf: BoundedZipf,
    malicious_zipf: BoundedZipf,
    benign_zipf: BoundedZipf,
}

impl PackerCatalog {
    /// Builds the catalog (static pools; Zipf popularity over each pool).
    pub fn new() -> Self {
        Self {
            shared_zipf: BoundedZipf::new(SHARED.len(), 1.0).expect("nonempty"), // downlake-lint: allow(P1) — the static packer tables are non-empty
            malicious_zipf: BoundedZipf::new(MALICIOUS_ONLY.len(), 1.0).expect("nonempty"), // downlake-lint: allow(P1) — the static packer tables are non-empty
            benign_zipf: BoundedZipf::new(BENIGN_ONLY.len(), 1.0).expect("nonempty"), // downlake-lint: allow(P1) — the static packer tables are non-empty
        }
    }

    /// Total distinct packers (matches the paper's 69).
    pub fn total(&self) -> usize {
        SHARED.len() + MALICIOUS_ONLY.len() + BENIGN_ONLY.len()
    }

    /// Packers shared between benign and malicious files (35).
    pub fn shared(&self) -> &'static [&'static str] {
        SHARED
    }

    /// Malicious-exclusive packers.
    pub fn malicious_only(&self) -> &'static [&'static str] {
        MALICIOUS_ONLY
    }

    /// Benign-exclusive packers.
    pub fn benign_only(&self) -> &'static [&'static str] {
        BENIGN_ONLY
    }

    /// Picks a packer for a benign file (mostly shared pool).
    pub fn sample_benign<R: Rng + ?Sized>(&self, rng: &mut R) -> &'static str {
        if rng.gen_bool(0.75) {
            SHARED[self.shared_zipf.sample(rng) - 1]
        } else {
            BENIGN_ONLY[self.benign_zipf.sample(rng) - 1]
        }
    }

    /// Picks a packer for a malicious file (mostly shared pool; the
    /// malicious-exclusive protectors are the minority the rules exploit).
    pub fn sample_malicious<R: Rng + ?Sized>(&self, rng: &mut R) -> &'static str {
        if rng.gen_bool(0.7) {
            SHARED[self.shared_zipf.sample(rng) - 1]
        } else {
            MALICIOUS_ONLY[self.malicious_zipf.sample(rng) - 1]
        }
    }
}

impl Default for PackerCatalog {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn pool_sizes_match_paper() {
        let c = PackerCatalog::new();
        assert_eq!(c.total(), 69);
        assert_eq!(c.shared().len(), 35);
    }

    #[test]
    fn pools_are_disjoint() {
        use std::collections::HashSet;
        let all: Vec<&str> = SHARED
            .iter()
            .chain(MALICIOUS_ONLY)
            .chain(BENIGN_ONLY)
            .copied()
            .collect();
        let set: HashSet<&str> = all.iter().copied().collect();
        assert_eq!(set.len(), all.len(), "duplicate packer name across pools");
    }

    #[test]
    fn benign_sampling_avoids_malicious_exclusive() {
        let c = PackerCatalog::new();
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..2000 {
            let p = c.sample_benign(&mut rng);
            assert!(!MALICIOUS_ONLY.contains(&p), "benign file packed with {p}");
        }
    }

    #[test]
    fn malicious_sampling_uses_both_pools() {
        let c = PackerCatalog::new();
        let mut rng = SmallRng::seed_from_u64(6);
        let mut shared = 0;
        let mut exclusive = 0;
        for _ in 0..2000 {
            let p = c.sample_malicious(&mut rng);
            if SHARED.contains(&p) {
                shared += 1;
            } else if MALICIOUS_ONLY.contains(&p) {
                exclusive += 1;
            } else {
                panic!("malicious file packed with benign-only {p}");
            }
        }
        assert!(shared > 0 && exclusive > 0);
        assert!(shared > exclusive, "shared pool should dominate");
    }
}
