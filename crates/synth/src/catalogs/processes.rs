//! Benign downloading-process inventory.
//!
//! §V-A counts distinct process *versions* (image hashes) per category:
//! 1,342 browser builds across five browsers (Table XI), 587 Windows
//! system-process builds, 173 Java builds, 9 Acrobat Reader builds, and
//! 8,714 "other" processes. The inventory scales those counts and assigns
//! each image a vendor signature — the *process signer* is one of the
//! eight rule-learning features.

use crate::config::Scale;
use crate::dist::BoundedZipf;
use downlake_types::{BrowserKind, FileHash, FileMeta, ProcessCategory, SignerInfo};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One process image (a distinct build/version of an executable).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcessImage {
    /// Image hash.
    pub hash: FileHash,
    /// Observable metadata (disk name drives categorisation; the signer
    /// is the `process signer` feature).
    pub meta: FileMeta,
    /// Derived category.
    pub category: ProcessCategory,
}

/// Paper version counts per browser (Table XI).
const BROWSER_VERSIONS: [(BrowserKind, u64); 5] = [
    (BrowserKind::Firefox, 378),
    (BrowserKind::Chrome, 528),
    (BrowserKind::Opera, 91),
    (BrowserKind::Safari, 17),
    (BrowserKind::InternetExplorer, 307),
];

/// Paper machine counts per browser (Table XI) — used as machine browser
/// preference weights.
pub const BROWSER_MACHINE_WEIGHTS: [(BrowserKind, u64); 5] = [
    (BrowserKind::Firefox, 86_104),
    (BrowserKind::Chrome, 344_994),
    (BrowserKind::Opera, 4_337),
    (BrowserKind::Safari, 1_762),
    (BrowserKind::InternetExplorer, 411_138),
];

const WINDOWS_NAMES: &[&str] = &[
    "svchost.exe",
    "explorer.exe",
    "rundll32.exe",
    "services.exe",
    "wuauclt.exe",
    "taskhost.exe",
    "msiexec.exe",
    "dllhost.exe",
];

const JAVA_NAMES: &[&str] = &["java.exe", "javaw.exe", "javaws.exe", "jp2launcher.exe"];
const ACROBAT_NAMES: &[&str] = &["acrord32.exe", "acrobat.exe", "reader_sl.exe"];

const OTHER_NAMES: &[&str] = &[
    "utorrent.exe",
    "dropbox.exe",
    "skype.exe",
    "steam.exe",
    "winamp.exe",
    "vlc.exe",
    "notepadpp.exe",
    "ccleaner.exe",
    "teamviewer.exe",
    "download_manager.exe",
    "updater.exe",
    "helper.exe",
    "sync_agent.exe",
    "launcher.exe",
];

fn browser_signer(kind: BrowserKind) -> &'static str {
    match kind {
        BrowserKind::Firefox => "Mozilla Corporation",
        BrowserKind::Chrome => "Google Inc",
        BrowserKind::Opera => "Opera Software ASA",
        BrowserKind::Safari => "Apple Inc.",
        BrowserKind::InternetExplorer => "Microsoft Corporation",
    }
}

/// The benign process inventory, with per-category Zipf version sampling.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenignProcessInventory {
    browsers: Vec<Vec<ProcessImage>>, // indexed by BrowserKind position
    windows: Vec<ProcessImage>,
    java: Vec<ProcessImage>,
    acrobat: Vec<ProcessImage>,
    other: Vec<ProcessImage>,
    browser_zipfs: Vec<BoundedZipf>,
    windows_zipf: BoundedZipf,
    java_zipf: BoundedZipf,
    acrobat_zipf: BoundedZipf,
    other_zipf: BoundedZipf,
}

impl BenignProcessInventory {
    /// Builds the inventory at the given scale, allocating image hashes
    /// from `next_hash` (monotonically increasing).
    pub fn generate(seed: u64, scale: Scale, next_hash: &mut u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x9900_CE55);
        // Versions don't scale linearly with population: a quarter-scale
        // deployment still sees most browser builds. Use sqrt scaling
        // with small floors.
        let count = |paper: u64| -> usize {
            ((paper as f64 * scale.fraction().sqrt()).ceil() as usize).max(3)
        };

        let mut make = |name: &str, signer: &str, rng: &mut SmallRng| -> ProcessImage {
            let hash = FileHash::from_raw(*next_hash);
            *next_hash += 1;
            let meta = FileMeta {
                size_bytes: rng.gen_range(200_000..80_000_000),
                disk_name: name.to_owned(),
                signer: Some(SignerInfo::valid(
                    signer,
                    "verisign class 3 code signing 2010 ca",
                )),
                packer: None,
            };
            ProcessImage {
                hash,
                category: ProcessCategory::from_executable_name(name),
                meta,
            }
        };

        let browsers: Vec<Vec<ProcessImage>> = BROWSER_VERSIONS
            .iter()
            .map(|&(kind, versions)| {
                (0..count(versions))
                    .map(|_| make(kind.executable(), browser_signer(kind), &mut rng))
                    .collect()
            })
            .collect();

        let windows: Vec<ProcessImage> = (0..count(587))
            .map(|i| {
                make(
                    WINDOWS_NAMES[i % WINDOWS_NAMES.len()],
                    "Microsoft Windows",
                    &mut rng,
                )
            })
            .collect();
        let java: Vec<ProcessImage> = (0..count(173))
            .map(|i| {
                make(
                    JAVA_NAMES[i % JAVA_NAMES.len()],
                    "Oracle America Inc.",
                    &mut rng,
                )
            })
            .collect();
        let acrobat: Vec<ProcessImage> = (0..count(9).min(9))
            .map(|i| {
                make(
                    ACROBAT_NAMES[i % ACROBAT_NAMES.len()],
                    "Adobe Systems Incorporated",
                    &mut rng,
                )
            })
            .collect();
        let other: Vec<ProcessImage> = (0..count(8_714))
            .map(|i| {
                let name = OTHER_NAMES[i % OTHER_NAMES.len()];
                let signer = if i % 3 == 0 {
                    "Microsoft Windows"
                } else {
                    "Rare Ideas"
                };
                make(name, signer, &mut rng)
            })
            .collect();

        let zipf = |n: usize| BoundedZipf::new(n.max(1), 0.9).expect("nonempty"); // downlake-lint: allow(P1) — n.max(1) guarantees a non-empty support
        Self {
            browser_zipfs: browsers.iter().map(|v| zipf(v.len())).collect(),
            windows_zipf: zipf(windows.len()),
            java_zipf: zipf(java.len()),
            acrobat_zipf: zipf(acrobat.len()),
            other_zipf: zipf(other.len()),
            browsers,
            windows,
            java,
            acrobat,
            other,
        }
    }

    /// Picks an image of the given browser.
    pub fn sample_browser<R: Rng + ?Sized>(&self, kind: BrowserKind, rng: &mut R) -> &ProcessImage {
        let idx = BrowserKind::ALL
            .iter()
            .position(|&k| k == kind)
            .expect("listed"); // downlake-lint: allow(P1) — every BrowserKind variant appears in the inventory
        let pool = &self.browsers[idx];
        &pool[self.browser_zipfs[idx].sample(rng) - 1]
    }

    /// Picks an image of the given non-browser category.
    ///
    /// # Panics
    ///
    /// Panics if called with `ProcessCategory::Browser` — use
    /// [`Self::sample_browser`].
    pub fn sample_category<R: Rng + ?Sized>(
        &self,
        category: ProcessCategory,
        rng: &mut R,
    ) -> &ProcessImage {
        let (pool, zipf) = match category {
            ProcessCategory::Windows => (&self.windows, &self.windows_zipf),
            ProcessCategory::Java => (&self.java, &self.java_zipf),
            ProcessCategory::AcrobatReader => (&self.acrobat, &self.acrobat_zipf),
            ProcessCategory::Other => (&self.other, &self.other_zipf),
            ProcessCategory::Browser(_) => panic!("use sample_browser for browsers"),
        };
        &pool[zipf.sample(rng) - 1]
    }

    /// All images, across categories.
    pub fn all(&self) -> impl Iterator<Item = &ProcessImage> {
        self.browsers
            .iter()
            .flatten()
            .chain(&self.windows)
            .chain(&self.java)
            .chain(&self.acrobat)
            .chain(&self.other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inventory_categories_are_consistent() {
        let mut next = 1;
        let inv = BenignProcessInventory::generate(1, Scale::Tiny, &mut next);
        for img in inv.all() {
            assert_eq!(
                img.category,
                ProcessCategory::from_executable_name(&img.meta.disk_name)
            );
            assert!(img.meta.signer.is_some());
        }
    }

    #[test]
    fn hashes_are_unique() {
        let mut next = 100;
        let inv = BenignProcessInventory::generate(2, Scale::Small, &mut next);
        let mut hashes: Vec<_> = inv.all().map(|p| p.hash).collect();
        let before = hashes.len();
        hashes.sort();
        hashes.dedup();
        assert_eq!(hashes.len(), before);
        assert!(next > 100);
    }

    #[test]
    fn acrobat_pool_stays_tiny() {
        let mut next = 0;
        let inv = BenignProcessInventory::generate(3, Scale::Paper, &mut next);
        assert!(inv.acrobat.len() <= 9);
    }

    #[test]
    fn browser_sampling_returns_right_kind() {
        let mut next = 0;
        let inv = BenignProcessInventory::generate(4, Scale::Tiny, &mut next);
        let mut rng = SmallRng::seed_from_u64(2);
        for kind in BrowserKind::ALL {
            let img = inv.sample_browser(kind, &mut rng);
            assert_eq!(img.category, ProcessCategory::Browser(kind));
        }
    }

    #[test]
    #[should_panic(expected = "sample_browser")]
    fn sample_category_rejects_browsers() {
        let mut next = 0;
        let inv = BenignProcessInventory::generate(5, Scale::Tiny, &mut next);
        let mut rng = SmallRng::seed_from_u64(2);
        inv.sample_category(ProcessCategory::Browser(BrowserKind::Chrome), &mut rng);
    }

    #[test]
    fn windows_images_signed_by_microsoft() {
        let mut next = 0;
        let inv = BenignProcessInventory::generate(6, Scale::Tiny, &mut next);
        let mut rng = SmallRng::seed_from_u64(3);
        let img = inv.sample_category(ProcessCategory::Windows, &mut rng);
        assert_eq!(
            img.meta.signer.as_ref().unwrap().subject,
            "Microsoft Windows"
        );
    }
}
