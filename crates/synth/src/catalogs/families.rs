//! The malware-family catalog.
//!
//! §III: AVclass derives 363 distinct families from the labeled malicious
//! files, with a heavily skewed distribution (Fig. 1 shows the top 25) and
//! 58% of samples whose family cannot be derived at all. Fig. 1's labels
//! are not legible in the available copy, so the head names here are
//! well-documented 2014-era families consistent with the paper's type mix
//! (PPI bundlers, droppers, Zbot-style bankers, …).

use super::names;
use crate::dist::BoundedZipf;
use downlake_types::MalwareType;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Head families with their dominant behaviour type.
const HEAD: &[(&str, MalwareType)] = &[
    ("firseria", MalwareType::Pup),
    ("installcore", MalwareType::Dropper),
    ("somoto", MalwareType::Dropper),
    ("outbrowse", MalwareType::Adware),
    ("opencandy", MalwareType::Pup),
    ("softpulse", MalwareType::Adware),
    ("amonetize", MalwareType::Pup),
    ("loadmoney", MalwareType::Dropper),
    ("zbot", MalwareType::Banker),
    ("sality", MalwareType::Worm),
    ("upatre", MalwareType::Dropper),
    ("zeroaccess", MalwareType::Bot),
    ("vobfus", MalwareType::Worm),
    ("gamarue", MalwareType::Bot),
    ("browsefox", MalwareType::Adware),
    ("multiplug", MalwareType::Adware),
    ("eorezo", MalwareType::Adware),
    ("crossrider", MalwareType::Adware),
    ("ibryte", MalwareType::Pup),
    ("conduit", MalwareType::Pup),
    ("domaiq", MalwareType::Dropper),
    ("solimba", MalwareType::Dropper),
    ("hotbar", MalwareType::Adware),
    ("bettersurf", MalwareType::Adware),
    ("fakerean", MalwareType::FakeAv),
    ("cryptolocker", MalwareType::Ransomware),
    ("urausy", MalwareType::Ransomware),
    ("fareit", MalwareType::Trojan),
    ("bancos", MalwareType::Banker),
    ("refog", MalwareType::Spyware),
];

/// Total distinct families (matches the paper's 363).
const TOTAL_FAMILIES: usize = 363;

/// One malware family.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FamilyEntry {
    /// Normalised family token (lowercase, as AVclass emits).
    pub name: String,
    /// Dominant behaviour type of the family's samples.
    pub dominant_type: MalwareType,
}

/// The family catalog with Zipf popularity and per-type pools.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FamilyCatalog {
    families: Vec<FamilyEntry>,
    by_type: Vec<Vec<usize>>,
    zipf: BoundedZipf,
}

impl FamilyCatalog {
    /// Builds the catalog deterministically.
    pub fn generate(seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xFA_417A);
        let mut families: Vec<FamilyEntry> = HEAD
            .iter()
            .map(|&(name, ty)| FamilyEntry {
                name: name.to_owned(),
                dominant_type: ty,
            })
            .collect();
        let mut seen: std::collections::HashSet<String> =
            families.iter().map(|f| f.name.clone()).collect();
        while families.len() < TOTAL_FAMILIES {
            let name = names::family(&mut rng);
            if !seen.insert(name.clone()) {
                continue;
            }
            let ty = MalwareType::ALL[rng.gen_range(0..MalwareType::ALL.len())];
            families.push(FamilyEntry {
                name,
                dominant_type: ty,
            });
        }

        let mut by_type = vec![Vec::new(); MalwareType::ALL.len()];
        for (i, fam) in families.iter().enumerate() {
            let idx = MalwareType::ALL
                .iter()
                .position(|&t| t == fam.dominant_type)
                .expect("listed type"); // downlake-lint: allow(P1) — every catalog family dominant type is in ALL
            by_type[idx].push(i);
        }
        let zipf = BoundedZipf::new(families.len(), 1.1).expect("nonempty"); // downlake-lint: allow(P1) — the static family catalog is non-empty
        Self {
            families,
            by_type,
            zipf,
        }
    }

    /// All families.
    pub fn families(&self) -> &[FamilyEntry] {
        &self.families
    }

    /// Picks a family for a malicious file of the given type: usually from
    /// the type's own pool (Zipf-headed), occasionally cross-type noise.
    pub fn sample<R: Rng + ?Sized>(&self, ty: MalwareType, rng: &mut R) -> &FamilyEntry {
        let idx = MalwareType::ALL
            .iter()
            .position(|&t| t == ty)
            .expect("listed type"); // downlake-lint: allow(P1) — every catalog family dominant type is in ALL
        let pool = &self.by_type[idx];
        if pool.is_empty() || rng.gen_bool(0.08) {
            let i = self.zipf.sample(rng) - 1;
            &self.families[i]
        } else {
            let u: f64 = rng.gen_range(0.0..1.0);
            let i = ((u * u) * pool.len() as f64) as usize;
            &self.families[pool[i.min(pool.len() - 1)]]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_matches_paper() {
        let c = FamilyCatalog::generate(1);
        assert_eq!(c.families().len(), 363);
    }

    #[test]
    fn names_are_unique() {
        let c = FamilyCatalog::generate(2);
        let mut names: Vec<_> = c.families().iter().map(|f| &f.name).collect();
        let before = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn banker_sampling_mostly_banker_families() {
        let c = FamilyCatalog::generate(3);
        let mut rng = SmallRng::seed_from_u64(8);
        let mut hits = 0;
        let n = 1000;
        for _ in 0..n {
            if c.sample(MalwareType::Banker, &mut rng).dominant_type == MalwareType::Banker {
                hits += 1;
            }
        }
        assert!(hits as f64 / n as f64 > 0.7, "{hits}/{n}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            FamilyCatalog::generate(4).families(),
            FamilyCatalog::generate(4).families()
        );
    }
}
