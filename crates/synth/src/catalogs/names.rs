//! Deterministic name generation for catalog tails.

use rand::Rng;

const COMPANY_HEADS: &[&str] = &[
    "Acme", "Nova", "Bright", "Quick", "Silver", "Golden", "Prime", "Hyper", "Micro", "Macro",
    "Blue", "Red", "Green", "Swift", "Rapid", "Smart", "Clever", "Solid", "Clear", "Deep", "True",
    "Pure", "Core", "Meta", "Ultra", "Giga", "Tera", "Astro", "Cosmo", "Pixel",
];

const COMPANY_TAILS: &[&str] = &[
    "Soft",
    "Ware",
    "Apps",
    "Media",
    "Systems",
    "Solutions",
    "Digital",
    "Labs",
    "Works",
    "Tech",
    "Net",
    "Data",
    "Code",
    "Logic",
    "Tools",
    "Install",
    "Download",
    "Bundle",
];

const COMPANY_SUFFIXES: &[&str] = &[
    "Ltd.",
    "LLC",
    "GmbH",
    "S.L.",
    "Inc.",
    "Corp.",
    "s.r.o.",
    "SARL",
    "Pty Ltd",
    "Oy",
    "AB",
    "BV",
    "SpA",
    "KK",
    "Sp. z o.o.",
];

const DOMAIN_WORDS: &[&str] = &[
    "file", "down", "load", "soft", "media", "app", "play", "view", "tube", "zip", "pack",
    "driver", "update", "free", "fast", "best", "top", "super", "mega", "ultra", "game", "tool",
    "kit", "box", "hub", "share", "send", "get", "grab", "fetch", "click", "win",
];

const TLDS: &[&str] = &[
    "com", "net", "org", "info", "biz", "ru", "in", "pw", "nl", "br", "fr", "jp", "co",
];

/// Generates a synthetic company/signer name, e.g. `"Rapid Media GmbH"`.
pub fn company<R: Rng + ?Sized>(rng: &mut R) -> String {
    let head = COMPANY_HEADS[rng.gen_range(0..COMPANY_HEADS.len())];
    let tail = COMPANY_TAILS[rng.gen_range(0..COMPANY_TAILS.len())];
    let suffix = COMPANY_SUFFIXES[rng.gen_range(0..COMPANY_SUFFIXES.len())];
    format!("{head} {tail} {suffix}")
}

/// Generates a synthetic domain, e.g. `"fastmediahub24.net"`.
pub fn domain<R: Rng + ?Sized>(rng: &mut R) -> String {
    let a = DOMAIN_WORDS[rng.gen_range(0..DOMAIN_WORDS.len())];
    let b = DOMAIN_WORDS[rng.gen_range(0..DOMAIN_WORDS.len())];
    let tld = TLDS[rng.gen_range(0..TLDS.len())];
    if rng.gen_bool(0.3) {
        let n: u32 = rng.gen_range(2..2015);
        format!("{a}{b}{n}.{tld}")
    } else {
        format!("{a}{b}.{tld}")
    }
}

/// Generates a synthetic malware family token, e.g. `"krendofax"`.
pub fn family<R: Rng + ?Sized>(rng: &mut R) -> String {
    const SYLLABLES: &[&str] = &[
        "kre", "zan", "vor", "mul", "tig", "bro", "fex", "dol", "wam", "sur", "pli", "gra", "nok",
        "ter", "vis", "hul", "bam", "cro", "dex", "fi",
    ];
    let n = rng.gen_range(2..4usize);
    let mut out = String::new();
    for _ in 0..n {
        out.push_str(SYLLABLES[rng.gen_range(0..SYLLABLES.len())]);
    }
    out
}

/// Generates an executable file name for a downloaded file, flavoured by
/// whether it pretends to be an installer, codec, update, etc.
pub fn executable<R: Rng + ?Sized>(rng: &mut R) -> String {
    const STEMS: &[&str] = &[
        "setup",
        "install",
        "update",
        "player",
        "codec",
        "viewer",
        "converter",
        "manager",
        "downloader",
        "toolbar",
        "plugin",
        "flash_update",
        "driver_pack",
        "game_loader",
        "pdf_tool",
        "video_fix",
        "archive",
        "launcher",
    ];
    let stem = STEMS[rng.gen_range(0..STEMS.len())];
    let v: u32 = rng.gen_range(1..9);
    match rng.gen_range(0..3u8) {
        0 => format!("{stem}.exe"),
        1 => format!("{stem}_v{v}.exe"),
        _ => format!("{stem}{v}.exe"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn generated_names_are_nonempty_and_plausible() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..200 {
            assert!(company(&mut rng).contains(' '));
            let d = domain(&mut rng);
            assert!(d.contains('.'), "domain {d} has no tld");
            assert!(!family(&mut rng).is_empty());
            assert!(executable(&mut rng).ends_with(".exe"));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(11);
        let mut b = SmallRng::seed_from_u64(11);
        for _ in 0..50 {
            assert_eq!(company(&mut a), company(&mut b));
            assert_eq!(domain(&mut a), domain(&mut b));
        }
    }
}
