//! The code-signer catalog.
//!
//! §IV-C finds 1,870 signers on malicious files of which 513 also sign
//! benign files, with droppers/PUPs heavily signed by PPI-style entities
//! (Somoto, Firseria, Amonetize, …) and benign software signed by vendors
//! (TeamViewer, Blizzard, Dell, …). The catalog reproduces this three-way
//! split — benign-exclusive, malicious-exclusive, shared — with the real
//! head names of Tables VIII/IX and a generated tail, and biases
//! per-malware-type signer choice so the rule learner has the signal the
//! paper's rules exploit (file signer appears in 75% of learned rules).

use super::names;
use crate::dist::BoundedZipf;
use downlake_types::MalwareType;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Which side(s) of the ecosystem a signer serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SignerScope {
    /// Signs only benign software.
    BenignOnly,
    /// Signs only malware.
    MaliciousOnly,
    /// Signs both (mixed-reputation PPI/bundler entities).
    Shared,
}

/// One signing entity.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SignerEntry {
    /// Subject name, e.g. `"Somoto Ltd."`.
    pub name: String,
    /// Certification authority used by this signer.
    pub ca: String,
    /// Ecosystem scope.
    pub scope: SignerScope,
    /// For malicious/shared signers: the behaviour type this signer's
    /// malware output concentrates on.
    pub affinity: Option<MalwareType>,
}

const CAS: &[&str] = &[
    "verisign class 3 code signing 2010 ca",
    "thawte code signing ca g2",
    "digicert assured id code signing ca-1",
    "comodo code signing ca 2",
    "globalsign codesigning ca g2",
    "go daddy secure certification authority",
    "symantec class 3 sha256 code signing ca",
    "startcom class 2 object ca",
];

/// Real benign-exclusive head signers (Table IX left column).
const BENIGN_HEAD: &[&str] = &[
    "TeamViewer",
    "Blizzard Entertainment",
    "Lespeed Technology Ltd.",
    "Hamrick Software",
    "Dell Inc.",
    "Google Inc",
    "NVIDIA Corporation",
    "Softland S.R.L.",
    "Adobe Systems Incorporated",
    "Recovery Toolbox",
    "Lenovo Information Products (Shenzhen) Co.",
    "MetaQuotes Software Corp.",
    "Rare Ideas",
];

/// Real malicious-exclusive head signers (Table IX right column), with
/// their dominant behaviour type per Table VIII.
const MALICIOUS_HEAD: &[(&str, MalwareType)] = &[
    ("Somoto Ltd.", MalwareType::Dropper),
    ("ISBRInstaller", MalwareType::Undefined),
    ("Somoto Israel", MalwareType::Undefined),
    ("Apps Installer SL", MalwareType::Adware),
    ("SecureInstall", MalwareType::Dropper),
    ("Firseria", MalwareType::Pup),
    ("Amonetize ltd.", MalwareType::Pup),
    ("JumpyApps", MalwareType::Undefined),
    ("ClientConnect LTD", MalwareType::Adware),
    ("Media Ingea SL", MalwareType::Adware),
    ("Tuto4PC.com", MalwareType::Adware),
    ("RAPIDDOWN", MalwareType::Trojan),
    ("Sevas-S LLC", MalwareType::Dropper),
    (
        "WEBPIC DESENVOLVIMENTO DE SOFTWARE LTDA",
        MalwareType::Banker,
    ),
    ("JDI BACKUP LIMITED", MalwareType::Banker),
    ("Wallinson", MalwareType::Banker),
    ("R-DATA Sp. z o.o.", MalwareType::Spyware),
    ("Mipko OOO", MalwareType::Spyware),
    ("Webcellence Ltd.", MalwareType::FakeAv),
    ("Shanghai Gaoxin Computer System Co.", MalwareType::Dropper),
];

/// Real shared (mixed-reputation) head signers (Tables VIII, Fig. 4).
const SHARED_HEAD: &[(&str, MalwareType)] = &[
    ("Binstall", MalwareType::Pup),
    ("SITE ON SPOT Ltd.", MalwareType::Pup),
    ("Perion Network Ltd.", MalwareType::Pup),
    ("UpdateStar GmbH", MalwareType::Dropper),
    ("BoomeranGO Inc.", MalwareType::Undefined),
    ("WorldSetup", MalwareType::Dropper),
    ("AppWork GmbH", MalwareType::Dropper),
    ("Softonic International", MalwareType::Dropper),
    ("AVG Technologies", MalwareType::Pup),
    ("BitTorrent", MalwareType::Pup),
    ("Open Source Developer", MalwareType::Banker),
    ("Refog Inc.", MalwareType::Spyware),
    ("JumpyApps Partner Network", MalwareType::Adware),
    ("The Nielsen Company", MalwareType::Dropper),
    ("mail.ru games", MalwareType::Adware),
];

/// Number of generated tail signers per scope at full (paper) scale.
/// Tails shrink with the world's scale (like process versions do) so
/// per-signer file support stays realistic at laptop scales.
const BENIGN_TAIL: usize = 140;
const MALICIOUS_TAIL: usize = 220;
const SHARED_TAIL: usize = 60;

fn scaled(tail: usize, tail_scale: f64) -> usize {
    ((tail as f64 * tail_scale.clamp(0.0, 1.0)).round() as usize).max(8)
}

/// The full signer catalog.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SignerCatalog {
    benign: Vec<SignerEntry>,
    malicious: Vec<SignerEntry>,
    shared: Vec<SignerEntry>,
    /// Indexes into `malicious` grouped by affinity type.
    by_type: Vec<Vec<usize>>,
    benign_zipf: BoundedZipf,
    malicious_zipf: BoundedZipf,
    shared_zipf: BoundedZipf,
}

impl SignerCatalog {
    /// Builds the catalog deterministically from a seed at full scale.
    pub fn generate(seed: u64) -> Self {
        Self::generate_scaled(seed, 1.0)
    }

    /// Builds the catalog with generated tails scaled by `tail_scale`
    /// (use the square root of the world's population fraction).
    pub fn generate_scaled(seed: u64, tail_scale: f64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x5167_4e45);
        let mut seen: std::collections::HashSet<String> = BENIGN_HEAD
            .iter()
            .map(|&n| n.to_owned())
            .chain(MALICIOUS_HEAD.iter().map(|&(n, _)| n.to_owned()))
            .chain(SHARED_HEAD.iter().map(|&(n, _)| n.to_owned()))
            .collect();
        let fresh_name = |rng: &mut SmallRng, seen: &mut std::collections::HashSet<String>| loop {
            let name = names::company(rng);
            if seen.insert(name.clone()) {
                return name;
            }
        };
        let mut benign: Vec<SignerEntry> = BENIGN_HEAD
            .iter()
            .map(|&name| SignerEntry {
                name: name.to_owned(),
                ca: pick_ca(&mut rng),
                scope: SignerScope::BenignOnly,
                affinity: None,
            })
            .collect();
        for _ in 0..scaled(BENIGN_TAIL, tail_scale) {
            benign.push(SignerEntry {
                name: fresh_name(&mut rng, &mut seen),
                ca: pick_ca(&mut rng),
                scope: SignerScope::BenignOnly,
                affinity: None,
            });
        }

        let mut malicious: Vec<SignerEntry> = MALICIOUS_HEAD
            .iter()
            .map(|&(name, ty)| SignerEntry {
                name: name.to_owned(),
                ca: pick_ca(&mut rng),
                scope: SignerScope::MaliciousOnly,
                affinity: Some(ty),
            })
            .collect();
        for _ in 0..scaled(MALICIOUS_TAIL, tail_scale) {
            malicious.push(SignerEntry {
                name: fresh_name(&mut rng, &mut seen),
                ca: pick_ca(&mut rng),
                scope: SignerScope::MaliciousOnly,
                affinity: Some(random_signed_type(&mut rng)),
            });
        }

        let mut shared: Vec<SignerEntry> = SHARED_HEAD
            .iter()
            .map(|&(name, ty)| SignerEntry {
                name: name.to_owned(),
                ca: pick_ca(&mut rng),
                scope: SignerScope::Shared,
                affinity: Some(ty),
            })
            .collect();
        for _ in 0..scaled(SHARED_TAIL, tail_scale) {
            shared.push(SignerEntry {
                name: fresh_name(&mut rng, &mut seen),
                ca: pick_ca(&mut rng),
                scope: SignerScope::Shared,
                affinity: Some(random_signed_type(&mut rng)),
            });
        }

        let mut by_type = vec![Vec::new(); MalwareType::ALL.len()];
        for (i, entry) in malicious.iter().enumerate() {
            if let Some(ty) = entry.affinity {
                by_type[type_index(ty)].push(i);
            }
        }

        let benign_zipf = BoundedZipf::new(benign.len(), 1.1).expect("nonempty"); // downlake-lint: allow(P1) — the static signer tables are non-empty
        let malicious_zipf = BoundedZipf::new(malicious.len(), 1.1).expect("nonempty"); // downlake-lint: allow(P1) — the static signer tables are non-empty
                                                                                        // Concentrated: the head shared signers (Binstall, Perion, …)
                                                                                        // must sign enough of *both* classes every month that the rule
                                                                                        // learner sees them as mixed (the paper's Fig. 4 heads).
        let shared_zipf = BoundedZipf::new(shared.len(), 1.5).expect("nonempty"); // downlake-lint: allow(P1) — the static signer tables are non-empty
        Self {
            benign,
            malicious,
            shared,
            by_type,
            benign_zipf,
            malicious_zipf,
            shared_zipf,
        }
    }

    /// Picks a signer for a benign file: mostly vendor signers, sometimes
    /// a mixed-reputation bundler (which is how shared signers arise).
    pub fn sample_benign<R: Rng + ?Sized>(&self, rng: &mut R) -> &SignerEntry {
        if rng.gen_bool(0.15) {
            let idx = self.shared_zipf.sample(rng) - 1;
            &self.shared[idx]
        } else {
            let idx = self.benign_zipf.sample(rng) - 1;
            &self.benign[idx]
        }
    }

    /// Picks a signer for a malicious file of the given behaviour type:
    /// usually a type-affiliated exclusive signer, sometimes a shared one.
    pub fn sample_malicious<R: Rng + ?Sized>(&self, ty: MalwareType, rng: &mut R) -> &SignerEntry {
        if rng.gen_bool(0.18) {
            let idx = self.shared_zipf.sample(rng) - 1;
            return &self.shared[idx];
        }
        let pool = &self.by_type[type_index(ty)];
        if pool.is_empty() || rng.gen_bool(0.10) {
            let idx = self.malicious_zipf.sample(rng) - 1;
            &self.malicious[idx]
        } else {
            // Zipf-ish over the affiliated pool: square the uniform draw
            // to favour the head.
            let u: f64 = rng.gen_range(0.0..1.0);
            let idx = ((u * u) * pool.len() as f64) as usize;
            &self.malicious[pool[idx.min(pool.len() - 1)]]
        }
    }

    /// All benign-exclusive signers.
    pub fn benign_signers(&self) -> &[SignerEntry] {
        &self.benign
    }

    /// All malicious-exclusive signers.
    pub fn malicious_signers(&self) -> &[SignerEntry] {
        &self.malicious
    }

    /// All shared signers.
    pub fn shared_signers(&self) -> &[SignerEntry] {
        &self.shared
    }
}

fn pick_ca<R: Rng + ?Sized>(rng: &mut R) -> String {
    CAS[rng.gen_range(0..CAS.len())].to_owned()
}

/// A behaviour type drawn proportionally to how *signed* that type's files
/// are in Table VI (heavily signed types get most of the tail signers).
fn random_signed_type<R: Rng + ?Sized>(rng: &mut R) -> MalwareType {
    const WEIGHTED: &[(MalwareType, u32)] = &[
        (MalwareType::Dropper, 30),
        (MalwareType::Pup, 25),
        (MalwareType::Adware, 20),
        (MalwareType::Undefined, 15),
        (MalwareType::Trojan, 6),
        (MalwareType::Spyware, 1),
        (MalwareType::Ransomware, 1),
        (MalwareType::FakeAv, 1),
        (MalwareType::Banker, 1),
    ];
    let total: u32 = WEIGHTED.iter().map(|(_, w)| w).sum();
    let mut x = rng.gen_range(0..total);
    for &(ty, w) in WEIGHTED {
        if x < w {
            return ty;
        }
        x -= w;
    }
    MalwareType::Dropper
}

fn type_index(ty: MalwareType) -> usize {
    MalwareType::ALL
        .iter()
        .position(|&t| t == ty)
        .expect("all types are in ALL") // downlake-lint: allow(P1) — every MalwareType variant appears in ALL
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_deterministic() {
        let a = SignerCatalog::generate(7);
        let b = SignerCatalog::generate(7);
        assert_eq!(a.benign_signers(), b.benign_signers());
        assert_eq!(a.malicious_signers(), b.malicious_signers());
    }

    #[test]
    fn head_names_present() {
        let c = SignerCatalog::generate(1);
        assert!(c.benign_signers().iter().any(|s| s.name == "TeamViewer"));
        assert!(c
            .malicious_signers()
            .iter()
            .any(|s| s.name == "Somoto Ltd."));
        assert!(c
            .shared_signers()
            .iter()
            .any(|s| s.name == "Softonic International"));
    }

    #[test]
    fn scopes_are_disjoint_by_name() {
        let c = SignerCatalog::generate(2);
        use std::collections::HashSet;
        let benign: HashSet<_> = c.benign_signers().iter().map(|s| &s.name).collect();
        for s in c.malicious_signers() {
            assert!(!benign.contains(&s.name), "{} in both pools", s.name);
        }
    }

    #[test]
    fn malicious_sampling_respects_affinity() {
        let c = SignerCatalog::generate(3);
        let mut rng = SmallRng::seed_from_u64(9);
        let mut affine = 0;
        let n = 2000;
        for _ in 0..n {
            let s = c.sample_malicious(MalwareType::Dropper, &mut rng);
            if s.affinity == Some(MalwareType::Dropper) {
                affine += 1;
            }
        }
        assert!(
            affine as f64 / n as f64 > 0.5,
            "dropper files should mostly use dropper-affiliated signers ({affine}/{n})"
        );
    }

    #[test]
    fn benign_sampling_never_returns_malicious_exclusive() {
        let c = SignerCatalog::generate(4);
        let mut rng = SmallRng::seed_from_u64(10);
        for _ in 0..2000 {
            let s = c.sample_benign(&mut rng);
            assert_ne!(s.scope, SignerScope::MaliciousOnly);
        }
    }
}
