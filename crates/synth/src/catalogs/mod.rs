//! Catalogs of the synthetic world's entities: code signers, packers,
//! domains, malware families, and benign process inventories.
//!
//! Catalog heads are seeded with the real names the paper's tables report
//! (softonic.com, Somoto Ltd., TeamViewer, UPX, …) so rendered experiment
//! tables read like the originals; tails are generated deterministically
//! from the configured seed.

pub mod domains;
pub mod families;
pub mod names;
pub mod packers;
pub mod processes;
pub mod signers;
