//! Generator configuration.

use downlake_exec::mix;
use serde::{Deserialize, Serialize};

/// Version of the world-hash derivation itself. Folded into
/// [`SynthConfig::world_hash`] so any change to the generation model
/// that keeps the config layout (new calibration, new unit schedule)
/// can retire every cached lake world by bumping one constant.
pub const WORLD_HASH_VERSION: u64 = 1;

/// How large a world to generate, as a fraction of the paper's population.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum Scale {
    /// 1/256 of the paper — a few thousand events; unit-test sized.
    Tiny,
    /// 1/64 of the paper — tens of thousands of events; CI sized.
    Small,
    /// 1/16 of the paper — ~190k events; the default for examples and
    /// experiment regeneration.
    #[default]
    Default,
    /// 1/4 of the paper — ~770k events.
    Large,
    /// Full paper scale (~3M events). Slow; minutes, not seconds.
    Paper,
    /// An arbitrary fraction of the paper's population.
    Fraction(f64),
}

impl Scale {
    /// The fraction of the paper's population this scale represents.
    pub fn fraction(self) -> f64 {
        match self {
            Scale::Tiny => 1.0 / 256.0,
            Scale::Small => 1.0 / 64.0,
            Scale::Default => 1.0 / 16.0,
            Scale::Large => 1.0 / 4.0,
            Scale::Paper => 1.0,
            Scale::Fraction(f) => f,
        }
    }

    /// Scales a paper-population count down to this scale (at least 1 if
    /// the input was nonzero).
    pub fn apply(self, paper_count: u64) -> u64 {
        if paper_count == 0 {
            return 0;
        }
        ((paper_count as f64 * self.fraction()).round() as u64).max(1)
    }
}

/// Full configuration of the synthetic world.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SynthConfig {
    /// RNG seed — the entire world is a deterministic function of this
    /// seed and the rest of the configuration.
    pub seed: u64,
    /// Population scale.
    pub scale: Scale,
    /// Collection-server prevalence threshold σ (paper: 20).
    pub sigma: u32,
    /// Point mass of prevalence 1 for unknown-destiny files (Fig. 2 head).
    pub unknown_singleton_mass: f64,
    /// Point mass of prevalence 1 for labeled files (flatter tail).
    pub labeled_singleton_mass: f64,
    /// Maximum prevalence any generated file may target (beyond σ so the
    /// cap mechanism is actually exercised).
    pub max_prevalence: usize,
    /// Share of raw events that are downloads never executed (exercises
    /// the reporting policy's executed-only filter).
    pub unexecuted_share: f64,
    /// Share of raw events pointed at whitelisted update hosts (exercises
    /// the URL whitelist filter).
    pub whitelisted_share: f64,
    /// Latent share of unknown-destiny files that are actually malicious.
    /// Not observable anywhere downstream; §VI argues many unknowns are
    /// likely malicious.
    pub unknown_latent_malicious: f64,
}

impl SynthConfig {
    /// Creates the default configuration with the given seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            scale: Scale::Default,
            sigma: 20,
            unknown_singleton_mass: 0.93,
            labeled_singleton_mass: 0.55,
            max_prevalence: 60,
            unexecuted_share: 0.08,
            whitelisted_share: 0.02,
            unknown_latent_malicious: 0.55,
        }
    }

    /// Sets the scale (builder-style).
    pub fn with_scale(mut self, scale: Scale) -> Self {
        self.scale = scale;
        self
    }

    /// Sets σ (builder-style).
    pub fn with_sigma(mut self, sigma: u32) -> Self {
        self.sigma = sigma;
        self
    }

    /// Content hash of the *generation-relevant* configuration: the
    /// identity of the raw event stream and latent world this config
    /// produces.
    ///
    /// Deliberately excludes `sigma` — the prevalence threshold is a
    /// collection-server knob applied downstream of generation, so every
    /// σ (and τ) permutation of a sensitivity sweep shares one world and
    /// therefore one cached lake build. Float fields are folded through
    /// their exact bit patterns; [`WORLD_HASH_VERSION`] is folded in so
    /// generation-model changes can invalidate cached worlds.
    pub fn world_hash(&self) -> u64 {
        let mut h = mix(0x444c_4b57_4f52_4c44, WORLD_HASH_VERSION); // "DLKWORLD"
        h = mix(h, self.seed);
        h = mix(h, self.scale.fraction().to_bits());
        h = mix(h, self.unknown_singleton_mass.to_bits());
        h = mix(h, self.labeled_singleton_mass.to_bits());
        h = mix(h, self.max_prevalence as u64);
        h = mix(h, self.unexecuted_share.to_bits());
        h = mix(h, self.whitelisted_share.to_bits());
        h = mix(h, self.unknown_latent_malicious.to_bits());
        h
    }
}

impl Default for SynthConfig {
    fn default() -> Self {
        Self::new(0xD014_1ABE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_fractions_are_monotone() {
        assert!(Scale::Tiny.fraction() < Scale::Small.fraction());
        assert!(Scale::Small.fraction() < Scale::Default.fraction());
        assert!(Scale::Default.fraction() < Scale::Large.fraction());
        assert!(Scale::Large.fraction() < Scale::Paper.fraction());
        assert_eq!(Scale::Paper.fraction(), 1.0);
    }

    #[test]
    fn apply_rounds_and_floors_at_one() {
        assert_eq!(Scale::Tiny.apply(0), 0);
        assert_eq!(Scale::Tiny.apply(1), 1);
        assert_eq!(Scale::Paper.apply(123), 123);
        assert_eq!(Scale::Fraction(0.5).apply(100), 50);
    }

    #[test]
    fn world_hash_ignores_sigma_but_tracks_generation_knobs() {
        let base = SynthConfig::new(42).with_scale(Scale::Tiny);
        assert_eq!(base.world_hash(), base.clone().with_sigma(5).world_hash());
        assert_eq!(base.world_hash(), base.clone().with_sigma(60).world_hash());
        assert_ne!(
            base.world_hash(),
            SynthConfig::new(43).with_scale(Scale::Tiny).world_hash()
        );
        assert_ne!(
            base.world_hash(),
            base.clone().with_scale(Scale::Small).world_hash()
        );
        let mut shifted = base.clone();
        shifted.unexecuted_share += 0.01;
        assert_ne!(base.world_hash(), shifted.world_hash());
    }

    #[test]
    fn builder_methods() {
        let c = SynthConfig::new(1).with_scale(Scale::Paper).with_sigma(5);
        assert_eq!(c.seed, 1);
        assert_eq!(c.sigma, 5);
        assert_eq!(c.scale, Scale::Paper);
    }
}
