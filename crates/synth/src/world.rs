//! The synthetic world: catalogs plus the latent truth of every file.

use crate::calibration;
use crate::catalogs::domains::DomainCatalog;
use crate::catalogs::families::FamilyCatalog;
use crate::catalogs::packers::PackerCatalog;
use crate::catalogs::processes::BenignProcessInventory;
use crate::catalogs::signers::SignerCatalog;
use crate::config::SynthConfig;
use crate::eventgen::{self, Generated};
use crate::filegen::{FileDestiny, GeneratedFile};
use downlake_exec::Pool;
use downlake_types::{FileHash, FileMeta, FileNature, LatentProfile};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The generated world: every entity catalog plus the ground truth that
/// only the simulation (and the ground-truth oracle, probabilistically)
/// can see.
#[derive(Debug, Serialize, Deserialize)]
pub struct World {
    pub(crate) config: SynthConfig,
    pub(crate) signers: SignerCatalog,
    pub(crate) packers: PackerCatalog,
    pub(crate) domains: DomainCatalog,
    pub(crate) families: FamilyCatalog,
    pub(crate) processes: BenignProcessInventory,
    pub(crate) files: HashMap<FileHash, GeneratedFile>,
}

impl World {
    /// Generates a world and its raw event stream from a configuration.
    /// Deterministic: equal configs produce equal outputs.
    pub fn generate(config: &SynthConfig) -> Generated {
        eventgen::generate(config)
    }

    /// Like [`World::generate`], but runs the generation work units in
    /// `shards` groups on `pool` (`shards == 0` → one shard per pool
    /// thread). Output is byte-identical to [`World::generate`] for
    /// every shard count and pool width.
    pub fn generate_with(config: &SynthConfig, shards: usize, pool: &Pool) -> Generated {
        eventgen::generate_with(config, shards, pool)
    }

    /// Like [`World::generate_with`], but records generation metrics
    /// into `registry`: unit/event/file counters and the per-unit event
    /// histogram in the deterministic plane (byte-identical at every
    /// shard and thread count), per-shard queue/exec durations read from
    /// `clock` in the timing plane. Output is byte-identical to the
    /// unobserved path.
    pub fn generate_observed(
        config: &SynthConfig,
        shards: usize,
        pool: &Pool,
        registry: &downlake_obs::Registry,
        clock: &dyn downlake_obs::Clock,
    ) -> Generated {
        eventgen::generate_observed(config, shards, pool, registry, clock)
    }

    /// Like [`World::generate_observed`], but returns the event stream
    /// in lake-spill form: one vector per shard, each stably time-sorted
    /// within the shard. Concatenating the vectors in shard order and
    /// stably sorting by timestamp — equivalently, k-way merging by
    /// `(timestamp, shard index)` with within-shard order preserved —
    /// reproduces [`World::generate`]'s stream exactly.
    ///
    /// `shards == 0` falls back to one shard, never the pool width: a
    /// spilled layout must not depend on the host's thread count.
    pub fn generate_sharded_observed(
        config: &SynthConfig,
        shards: usize,
        pool: &Pool,
        registry: &downlake_obs::Registry,
        clock: &dyn downlake_obs::Clock,
    ) -> (World, Vec<Vec<downlake_telemetry::RawEvent>>) {
        eventgen::generate_sharded_observed(config, shards, pool, registry, clock)
    }

    /// Reconstructs a world from its configuration and file table alone,
    /// with **zero event generation**.
    ///
    /// Every catalog is a pure function of `(seed, scale)` — the event
    /// simulation draws from them but never mutates them — so a spilled
    /// world needs to persist only the file table (the latent truth
    /// accumulated during generation); the catalogs are rebuilt here
    /// exactly as [`World::generate`] builds them. The construction
    /// order below mirrors the generator's and must stay in sync with
    /// it (pinned by `rebuild_matches_generated_world`).
    pub fn rebuild(config: SynthConfig, files: HashMap<FileHash, GeneratedFile>) -> World {
        let signers = SignerCatalog::generate_scaled(config.seed, config.scale.fraction().sqrt());
        let packers = PackerCatalog::new();
        let families = FamilyCatalog::generate(config.seed);
        let tail = (config.scale.apply(calibration::totals::DOMAINS) as usize).clamp(200, 40_000);
        let domains = DomainCatalog::generate(config.seed, tail);
        let mut next_hash = 0x0100_0000;
        let processes = BenignProcessInventory::generate(config.seed, config.scale, &mut next_hash);
        World {
            config,
            signers,
            packers,
            domains,
            families,
            processes,
            files,
        }
    }

    /// The configuration the world was generated from.
    pub fn config(&self) -> &SynthConfig {
        &self.config
    }

    /// The signer catalog.
    pub fn signers(&self) -> &SignerCatalog {
        &self.signers
    }

    /// The packer catalog.
    pub fn packers(&self) -> &PackerCatalog {
        &self.packers
    }

    /// The domain catalog.
    pub fn domains(&self) -> &DomainCatalog {
        &self.domains
    }

    /// The malware-family catalog.
    pub fn families(&self) -> &FamilyCatalog {
        &self.families
    }

    /// The benign process inventory.
    pub fn process_inventory(&self) -> &BenignProcessInventory {
        &self.processes
    }

    /// The hidden truth of a file, if the file exists in this world.
    pub fn latent(&self, file: FileHash) -> Option<&LatentProfile> {
        self.files.get(&file).map(|f| &f.latent)
    }

    /// A file's true nature (generator's ground truth, not the oracle's).
    pub fn nature(&self, file: FileHash) -> Option<FileNature> {
        self.latent(file).map(|l| l.nature)
    }

    /// Observable metadata of a generated file.
    pub fn meta(&self, file: FileHash) -> Option<&FileMeta> {
        self.files.get(&file).map(|f| &f.meta)
    }

    /// The labeling destiny a file was generated with.
    pub fn destiny(&self, file: FileHash) -> Option<FileDestiny> {
        self.files.get(&file).map(|f| f.destiny)
    }

    /// Iterates over all generated files in ascending hash order, so
    /// consumers see a deterministic sequence.
    pub fn files(&self) -> impl Iterator<Item = &GeneratedFile> {
        let mut rows: Vec<&GeneratedFile> = self.files.values().collect();
        rows.sort_by_key(|f| f.hash);
        rows.into_iter()
    }

    /// Number of generated files.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scale;

    #[test]
    fn generation_is_deterministic() {
        let config = SynthConfig::new(77).with_scale(Scale::Tiny);
        let a = World::generate(&config);
        let b = World::generate(&config);
        assert_eq!(a.events.len(), b.events.len());
        assert_eq!(a.world.file_count(), b.world.file_count());
        for (ea, eb) in a.events.iter().zip(&b.events) {
            assert_eq!(ea, eb);
        }
    }

    #[test]
    fn every_event_file_has_latent_truth() {
        let config = SynthConfig::new(5).with_scale(Scale::Tiny);
        let generated = World::generate(&config);
        for event in &generated.events {
            assert!(
                generated.world.latent(event.file).is_some(),
                "event file without latent profile"
            );
        }
    }

    #[test]
    fn rebuild_matches_generated_world() {
        let config = SynthConfig::new(42).with_scale(Scale::Tiny);
        let generated = World::generate(&config);
        let rebuilt = World::rebuild(config.clone(), generated.world.files.clone());
        assert_eq!(rebuilt.config(), generated.world.config());
        assert_eq!(rebuilt.file_count(), generated.world.file_count());
        // Catalogs are pure functions of (seed, scale): the rebuilt
        // domain catalog and process inventory must match entry for
        // entry, which is what the URL labeler and frame passes consume.
        assert_eq!(
            rebuilt.domains().entries(),
            generated.world.domains().entries()
        );
        let a: Vec<_> = rebuilt.process_inventory().all().collect();
        let b: Vec<_> = generated.world.process_inventory().all().collect();
        assert_eq!(a, b);
        // The latent truth rides in unchanged.
        for file in generated.world.files() {
            assert_eq!(rebuilt.destiny(file.hash), Some(file.destiny));
            assert_eq!(rebuilt.latent(file.hash), Some(&file.latent));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = World::generate(&SynthConfig::new(1).with_scale(Scale::Tiny));
        let b = World::generate(&SynthConfig::new(2).with_scale(Scale::Tiny));
        // File hash sequences are allocator-based and equal, but the
        // metadata/latent draws must differ somewhere.
        assert_ne!(
            a.events.iter().map(|e| e.machine).collect::<Vec<_>>(),
            b.events.iter().map(|e| e.machine).collect::<Vec<_>>(),
        );
    }
}
