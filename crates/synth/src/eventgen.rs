//! The download-event simulation.
//!
//! Generation happens in two phases:
//!
//! * **Phase A — primary downloads.** For each study month, a calibrated
//!   number of new files is born (Table I). Each file draws the benign
//!   process category that delivers it (Table X column totals), its
//!   labeling destiny (Table X class mix + Table I likely-rates), its
//!   prevalence (Fig. 2 head/tail), its serving domain (Table III–V
//!   strata), and the machines/times of its downloads.
//! * **Phase B — infection chains.** Files destined to be labeled
//!   malicious may become *downloaders*: every machine that executes them
//!   later pulls further files whose class mix follows that malware type's
//!   row of Table XII, after a delay drawn from the type's escalation
//!   profile (Fig. 5). Chains recurse to a bounded depth.
//!
//! A configurable fraction of noise events (never-executed downloads,
//! downloads from whitelisted update hosts) is woven in so the collection
//! server's reporting policy is exercised end to end.
//!
//! # Deterministic sharding
//!
//! The month volumes are cut into fixed-size **work units** (primary-file
//! batches and noise batches) whose composition depends only on the
//! config, never on shard or thread count. Each unit owns a private RNG
//! stream seeded by [`downlake_exec::unit_seed`]`(seed, salt, unit_id)`
//! and a disjoint [`FileHash`] range derived from its id, and infection
//! chains expand entirely inside the unit that seeded them. Shards are
//! just contiguous unit ranges handed to the worker pool; outputs are
//! concatenated in unit order and time-sorted (stably), so the event
//! stream is byte-identical for every shard count and thread count.

use crate::calibration::{self, ProcessRow, TABLE1, TABLE10, TABLE11, TABLE12};
use crate::catalogs::domains::{DomainCatalog, DomainEntry};
use crate::catalogs::families::FamilyCatalog;
use crate::catalogs::packers::PackerCatalog;
use crate::catalogs::processes::{BenignProcessInventory, BROWSER_MACHINE_WEIGHTS};
use crate::catalogs::signers::SignerCatalog;
use crate::config::SynthConfig;
use crate::dist::{sample_exp_days, Categorical, DiscretePowerLaw};
use crate::filegen::{FileDestiny, FileFactory, GeneratedFile};
use crate::world::World;
use downlake_exec::{partition, unit_seed, Pool};
use downlake_obs::{Clock, Registry};
use downlake_telemetry::RawEvent;
use downlake_types::{
    BrowserKind, Duration, FileHash, MachineId, MalwareType, Month, ProcessCategory, Timestamp,
    Url, SECONDS_PER_DAY,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Stage salt for the roster-construction RNG stream.
const ROSTER_SALT: u64 = 0x1bd1_1bda_a9fc_1a22;
/// Stage salt for per-work-unit event RNG streams.
const UNIT_SALT: u64 = 0x60be_e2be_e622_186b;
/// Primary-download files simulated per work unit.
const PRIMARY_BATCH: u64 = 512;
/// Noise events simulated per work unit.
const NOISE_BATCH: u64 = 4096;
/// First hash of unit 0's allocation range; inventory hashes (sequential
/// from `0x0100_0000`) stay far below this.
const UNIT_HASH_BASE: u64 = 1 << 40;
/// Size of each unit's private hash range.
const UNIT_HASH_SPAN: u64 = 1 << 24;

/// Output of [`World::generate`]: the world plus its raw event stream,
/// sorted by timestamp (the order the collection server would see).
#[derive(Debug)]
pub struct Generated {
    /// The generated world (catalogs + latent truth).
    pub world: World,
    /// The raw event stream, time-ordered.
    pub events: Vec<RawEvent>,
}

/// Per-machine attributes fixed at roster-build time.
#[derive(Debug, Clone, Copy)]
struct Machine {
    id: MachineId,
    browser: BrowserKind,
    first_month: usize,
    last_month: usize, // inclusive
    has_java: bool,
    has_acrobat: bool,
}

#[derive(Debug)]
struct Roster {
    machines: Vec<Machine>,
    by_month: Vec<Vec<u32>>,
    by_month_browser: Vec<Vec<Vec<u32>>>,
    java_by_month: Vec<Vec<u32>>,
    acrobat_by_month: Vec<Vec<u32>>,
}

impl Roster {
    fn build(config: &SynthConfig, rng: &mut SmallRng) -> Self {
        let total = config.scale.apply(calibration::totals::MACHINES) as usize;
        // Arrival weights proportional to each month's machine volume so
        // the monthly actives decline like Table I.
        let arrival =
            Categorical::new(&TABLE1.iter().map(|r| r.machines as f64).collect::<Vec<_>>())
                .expect("calibrated"); // downlake-lint: allow(P1) — Table 1 calibration weights are static and valid
        let browser_weights = Categorical::new(
            &BROWSER_MACHINE_WEIGHTS
                .iter()
                .map(|&(_, w)| w as f64)
                .collect::<Vec<_>>(),
        )
        .expect("calibrated"); // downlake-lint: allow(P1) — Table 1 calibration weights are static and valid

        let mut machines = Vec::with_capacity(total);
        for i in 0..total {
            let first_month = arrival.sample(rng);
            // Active-duration in months: mostly one, geometric tail, so
            // the sum of monthly actives lands near Table I's 1.33×.
            let mut duration = 1usize;
            while duration < Month::ALL.len() && rng.gen_bool(0.25) {
                duration += 1;
            }
            let last_month = (first_month + duration - 1).min(Month::ALL.len() - 1);
            let browser = BROWSER_MACHINE_WEIGHTS[browser_weights.sample(rng)].0;
            machines.push(Machine {
                id: MachineId::from_raw(i as u64 + 1),
                browser,
                first_month,
                last_month,
                has_java: rng.gen_bool(0.004),
                has_acrobat: rng.gen_bool(0.0015),
            });
        }

        let months = Month::ALL.len();
        let mut by_month = vec![Vec::new(); months];
        let mut by_month_browser = vec![vec![Vec::new(); BrowserKind::ALL.len()]; months];
        let mut java_by_month = vec![Vec::new(); months];
        let mut acrobat_by_month = vec![Vec::new(); months];
        for (i, m) in machines.iter().enumerate() {
            let bidx = BrowserKind::ALL
                .iter()
                .position(|&b| b == m.browser)
                .expect("listed"); // downlake-lint: allow(P1) — every roster browser is listed in BROWSERS
            for month in m.first_month..=m.last_month {
                by_month[month].push(i as u32);
                by_month_browser[month][bidx].push(i as u32);
                if m.has_java {
                    java_by_month[month].push(i as u32);
                }
                if m.has_acrobat {
                    acrobat_by_month[month].push(i as u32);
                }
            }
        }
        // Guarantee non-empty pools even at tiny scales.
        for month in 0..months {
            if by_month[month].is_empty() {
                by_month[month].push(0);
            }
            for pool in [&mut java_by_month[month], &mut acrobat_by_month[month]] {
                if pool.is_empty() {
                    pool.push(by_month[month][0]); // downlake-lint: allow(P1) — roster seeds every month with at least one machine
                }
            }
            let fallback = by_month[month][0]; // downlake-lint: allow(P1) — roster seeds every month with at least one machine
            for pool in &mut by_month_browser[month] {
                if pool.is_empty() {
                    pool.push(fallback);
                }
            }
        }
        Self {
            machines,
            by_month,
            by_month_browser,
            java_by_month,
            acrobat_by_month,
        }
    }
}

/// One pending chain expansion.
#[derive(Debug, Clone)]
struct ChainSeed {
    machine_idx: u32,
    time: Timestamp,
    downloader: FileHash,
    ty: MalwareType,
    depth: u8,
    /// Indirect (malvertising-style) escalation: the follow-up arrives
    /// via the machine's browser and is always a damaging malware type
    /// (§V-B's adware→malware discussion).
    indirect: bool,
}

/// Destiny-class weights for one process category.
#[derive(Debug)]
struct DestinyDist {
    dist: Categorical,
    type_mix: Categorical,
    types: Vec<MalwareType>,
}

/// Owned behaviour-type mix.
type TypeMixOwned = Vec<(MalwareType, f64)>;

impl DestinyDist {
    fn from_row(row: &ProcessRow, mix: &[(MalwareType, f64)], carve_likely: bool) -> Self {
        Self::from_row_owned(row, mix, carve_likely)
    }

    fn from_row_owned(row: &ProcessRow, mix: &[(MalwareType, f64)], carve_likely: bool) -> Self {
        let total = row.total_files() as f64;
        let benign = row.benign_files as f64 / total;
        let malicious = row.malicious_files as f64 / total;
        let unknown_raw = row.unknown_files as f64 / total;
        let (lb, lm) = if carve_likely {
            (
                (unknown_raw * 0.25).min(0.028),
                (unknown_raw * 0.25).min(0.026),
            )
        } else {
            (0.0, (unknown_raw * 0.10).min(0.02))
        };
        let unknown = (unknown_raw - lb - lm).max(0.0);
        // Order: benign, likely-benign, malicious, likely-malicious, unknown.
        let dist = Categorical::new(&[benign, lb, malicious, lm, unknown]).expect("valid row"); // downlake-lint: allow(P1) — row shares are clamped non-negative above
        let types: Vec<MalwareType> = mix.iter().map(|&(t, _)| t).collect();
        let type_mix =
            Categorical::new(&mix.iter().map(|&(_, p)| p).collect::<Vec<_>>()).expect("valid mix"); // downlake-lint: allow(P1) — Table 2 type-mix weights are static and valid
        Self {
            dist,
            type_mix,
            types,
        }
    }

    fn sample(&self, rng: &mut SmallRng) -> FileDestiny {
        match self.dist.sample(rng) {
            0 => FileDestiny::Benign,
            1 => FileDestiny::LikelyBenign,
            2 => FileDestiny::Malicious(self.sample_type(rng)),
            3 => FileDestiny::LikelyMalicious(self.sample_type(rng)),
            _ => FileDestiny::Unknown,
        }
    }

    fn sample_type(&self, rng: &mut SmallRng) -> MalwareType {
        self.types[self.type_mix.sample(rng)]
    }
}

/// One work unit of event generation. The unit list is a pure function
/// of the config, so unit ids — and with them every RNG stream and hash
/// range — are identical no matter how the units are later sharded.
#[derive(Debug, Clone, Copy)]
enum UnitSpec {
    /// A batch of up to [`PRIMARY_BATCH`] primary-download files born in
    /// `month`.
    Primary { month: Month, count: u64 },
    /// A batch of up to [`NOISE_BATCH`] noise events in `month`;
    /// `offset` is the batch's position in the month's noise sequence
    /// and `whitelisted` the month's total whitelisted-host quota (the
    /// first `whitelisted` noise events of the month use update hosts).
    Noise {
        month: Month,
        offset: u64,
        count: u64,
        whitelisted: u64,
    },
}

/// Cuts the configured month volumes into work units.
fn build_units(config: &SynthConfig) -> Vec<UnitSpec> {
    let mut units = Vec::new();
    for month in Month::ALL {
        let n_files = config.scale.apply(TABLE1[month.index()].files);
        let mut done = 0;
        while done < n_files {
            let count = (n_files - done).min(PRIMARY_BATCH);
            units.push(UnitSpec::Primary { month, count });
            done += count;
        }
        let month_events = config.scale.apply(TABLE1[month.index()].events);
        let unexecuted = (month_events as f64 * config.unexecuted_share) as u64;
        let whitelisted = (month_events as f64 * config.whitelisted_share) as u64;
        let total = unexecuted + whitelisted;
        let mut offset = 0;
        while offset < total {
            let count = (total - offset).min(NOISE_BATCH);
            units.push(UnitSpec::Noise {
                month,
                offset,
                count,
                whitelisted,
            });
            offset += count;
        }
    }
    units
}

/// Read-only generation state shared by every work unit: the machine
/// roster, catalogs, and all calibrated distributions. Nothing in here
/// is mutated after construction, so shards can sample it concurrently.
struct GenContext<'a> {
    config: &'a SynthConfig,
    roster: Roster,
    inventory: BenignProcessInventory,
    domains: DomainCatalog,
    category_dist: Categorical,
    destiny_dists: Vec<DestinyDist>, // per TABLE10 category
    chain_dists: HashMap<MalwareType, DestinyDist>, // per TABLE12 row
    browser_by_destiny: [Categorical; 3], // benign-ish, malicious-ish, unknown
    prevalence_unknown: DiscretePowerLaw,
    prevalence_labeled: DiscretePowerLaw,
    prevalence_exploit: DiscretePowerLaw,
}

impl<'a> GenContext<'a> {
    fn new(config: &'a SynthConfig) -> Self {
        let tail = (config.scale.apply(calibration::totals::DOMAINS) as usize).clamp(200, 40_000);
        let domains = DomainCatalog::generate(config.seed, tail);
        let mut next_hash = 0x0100_0000;
        let inventory = BenignProcessInventory::generate(config.seed, config.scale, &mut next_hash);
        let mut roster_rng = SmallRng::seed_from_u64(unit_seed(config.seed, ROSTER_SALT, 0));
        let roster = Roster::build(config, &mut roster_rng);

        // Per-category behaviour-type mixes are blended toward the overall
        // Table II mix: primary downloads alone under-represent types that
        // mostly arrive via infection chains (adware especially), and the
        // published per-category and overall mixes are reconciled this way.
        let blend_mix = |mix: TypeMixOwned, weight_cat: f64| -> Vec<(MalwareType, f64)> {
            let mut out: Vec<(MalwareType, f64)> = calibration::TABLE2_TYPE_MIX
                .iter()
                .map(|&(ty, p)| (ty, p * (1.0 - weight_cat)))
                .collect();
            for (ty, p) in mix {
                if let Some(entry) = out.iter_mut().find(|(t, _)| *t == ty) {
                    entry.1 += p * weight_cat;
                }
            }
            out
        };

        let category_files: Vec<f64> = TABLE10
            .iter()
            .map(|(row, _)| row.total_files() as f64)
            .collect();
        let category_dist = Categorical::new(&category_files).expect("calibrated"); // downlake-lint: allow(P1) — Table 10 calibration weights are static and valid
        let destiny_dists: Vec<DestinyDist> = TABLE10
            .iter()
            .enumerate()
            .map(|(i, (row, mix))| {
                let mix_owned: TypeMixOwned = mix.to_vec();
                // Java/Acrobat keep their distinctive exploit-payload
                // mixes; the broad categories blend toward Table II.
                let blended = if i == 2 || i == 3 {
                    mix_owned
                } else {
                    blend_mix(mix_owned, 0.55)
                };
                DestinyDist::from_row_owned(row, &blended, i != 2 && i != 3)
            })
            .collect();
        let chain_dists: HashMap<MalwareType, DestinyDist> = TABLE12
            .iter()
            .map(|(ty, row, mix)| (*ty, DestinyDist::from_row(row, mix, false)))
            .collect();

        let browser_weight = |f: fn(&ProcessRow) -> u64| {
            Categorical::new(
                &TABLE11
                    .iter()
                    .map(|(_, row)| f(row) as f64)
                    .collect::<Vec<_>>(),
            )
            .expect("calibrated") // downlake-lint: allow(P1) — Table 10 calibration weights are static and valid
        };
        let browser_by_destiny = [
            browser_weight(|r| r.benign_files),
            browser_weight(|r| r.malicious_files),
            browser_weight(|r| r.unknown_files),
        ];

        Self {
            config,
            roster,
            inventory,
            domains,
            category_dist,
            destiny_dists,
            chain_dists,
            browser_by_destiny,
            prevalence_unknown: DiscretePowerLaw::new(
                config.unknown_singleton_mass,
                2.2,
                config.max_prevalence,
            )
            .expect("valid config"), // downlake-lint: allow(P1) — power-law parameters are validated with the config
            prevalence_labeled: DiscretePowerLaw::new(
                config.labeled_singleton_mass,
                1.6,
                config.max_prevalence,
            )
            .expect("valid config"), // downlake-lint: allow(P1) — power-law parameters are validated with the config
            prevalence_exploit: DiscretePowerLaw::new(0.30, 1.2, 30).expect("static"), // downlake-lint: allow(P1) — static literal power-law parameters
        }
    }
}

/// What one work unit hands back: its files in allocation order and its
/// raw (not yet time-sorted) events in emission order.
struct UnitOutput {
    files: Vec<GeneratedFile>,
    events: Vec<RawEvent>,
}

/// Mutable state private to one work unit: its RNG stream, hash range,
/// created files, emitted events, and the infection chains it seeded.
struct UnitWorker<'a> {
    ctx: &'a GenContext<'a>,
    factory: &'a FileFactory<'a>,
    rng: SmallRng,
    next_hash: u64,
    hash_end: u64,
    files: Vec<GeneratedFile>,
    file_index: HashMap<FileHash, u32>,
    events: Vec<RawEvent>,
    chain_queue: Vec<ChainSeed>,
    // Campaign pools: recently created chain files per malware type.
    campaign_pools: HashMap<MalwareType, Vec<FileHash>>,
}

impl<'a> UnitWorker<'a> {
    fn new(ctx: &'a GenContext<'a>, factory: &'a FileFactory<'a>, unit_id: usize) -> Self {
        let base = UNIT_HASH_BASE + unit_id as u64 * UNIT_HASH_SPAN;
        Self {
            ctx,
            factory,
            rng: SmallRng::seed_from_u64(unit_seed(ctx.config.seed, UNIT_SALT, unit_id as u64)),
            next_hash: base,
            hash_end: base + UNIT_HASH_SPAN,
            files: Vec::new(),
            file_index: HashMap::new(),
            events: Vec::new(),
            chain_queue: Vec::new(),
            campaign_pools: HashMap::new(),
        }
    }

    fn run(mut self, spec: UnitSpec) -> UnitOutput {
        match spec {
            UnitSpec::Primary { month, count } => self.primary_downloads(month, count),
            UnitSpec::Noise {
                month,
                offset,
                count,
                whitelisted,
            } => self.noise_events(month, offset, count, whitelisted),
        }
        self.expand_chains();
        UnitOutput {
            files: self.files,
            events: self.events,
        }
    }

    fn alloc_hash(&mut self) -> FileHash {
        debug_assert!(self.next_hash < self.hash_end, "unit hash range exhausted");
        let h = FileHash::from_raw(self.next_hash);
        self.next_hash += 1;
        h
    }

    fn insert_file(&mut self, file: GeneratedFile) {
        self.file_index.insert(file.hash, self.files.len() as u32);
        self.files.push(file);
    }

    fn file(&self, hash: FileHash) -> &GeneratedFile {
        // Chains only reference files created by this same unit, so the
        // lookup cannot miss.
        &self.files[self.file_index[&hash] as usize]
    }

    /// Phase A for one work unit: `count` primary files born in `month`.
    fn primary_downloads(&mut self, month: Month, count: u64) {
        for _ in 0..count {
            let cat_idx = self.ctx.category_dist.sample(&mut self.rng);
            let destiny = self.ctx.destiny_dists[cat_idx].sample(&mut self.rng);
            let category = match cat_idx {
                0 => ProcessCategory::Browser(self.pick_browser(destiny)),
                1 => ProcessCategory::Windows,
                2 => ProcessCategory::Java,
                3 => ProcessCategory::AcrobatReader,
                _ => ProcessCategory::Other,
            };
            let hash = self.alloc_hash();
            let file = self
                .factory
                .make(hash, destiny, category.is_browser(), &mut self.rng);
            let prevalence = self.prevalence_for(destiny, category);
            let domain_name = self.domain_for(&file).name.clone();
            let url = make_url(&domain_name, &file.meta.disk_name, &mut self.rng);
            self.schedule_downloads(&file, category, month, prevalence, &url);
            self.insert_file(file);
        }
    }

    fn pick_browser(&mut self, destiny: FileDestiny) -> BrowserKind {
        let [benignish, maliciousish, unknownish] = &self.ctx.browser_by_destiny;
        let dist = match destiny {
            FileDestiny::Benign | FileDestiny::LikelyBenign => benignish,
            FileDestiny::Malicious(_) | FileDestiny::LikelyMalicious(_) => maliciousish,
            FileDestiny::Unknown => unknownish,
        };
        TABLE11[dist.sample(&mut self.rng)].0
    }

    fn prevalence_for(&mut self, destiny: FileDestiny, category: ProcessCategory) -> usize {
        // Exploit-delivered payloads (Java/Acrobat) hit many machines each
        // (Table X: 2,977 Java machines vs 740 Java-delivered files).
        if matches!(
            category,
            ProcessCategory::Java | ProcessCategory::AcrobatReader
        ) {
            return self.ctx.prevalence_exploit.sample(&mut self.rng);
        }
        match destiny {
            FileDestiny::Unknown => self.ctx.prevalence_unknown.sample(&mut self.rng),
            _ => self.ctx.prevalence_labeled.sample(&mut self.rng),
        }
    }

    fn domain_for(&mut self, file: &GeneratedFile) -> &'a DomainEntry {
        match file.destiny {
            FileDestiny::Benign | FileDestiny::LikelyBenign => {
                self.ctx.domains.sample_benign(&mut self.rng)
            }
            FileDestiny::Malicious(ty) | FileDestiny::LikelyMalicious(ty) => {
                self.ctx.domains.sample_malicious(ty, &mut self.rng)
            }
            FileDestiny::Unknown => self.ctx.domains.sample_unknown(&mut self.rng),
        }
    }

    /// Creates `prevalence` download events for a file, starting inside
    /// `month` and trailing into the following weeks.
    fn schedule_downloads(
        &mut self,
        file: &GeneratedFile,
        category: ProcessCategory,
        month: Month,
        prevalence: usize,
        url: &Url,
    ) {
        let first_day = self.rng.gen_range(month.start_day()..month.end_day());
        let window_end = Timestamp::from_day(Month::July.end_day()).seconds() - 1;
        for k in 0..prevalence {
            let day_offset = if k == 0 {
                0.0
            } else {
                sample_exp_days(&mut self.rng, 12.0, 120.0)
            };
            let secs = Timestamp::from_day(first_day).seconds()
                + (day_offset * SECONDS_PER_DAY as f64) as i64
                + self.rng.gen_range(0..SECONDS_PER_DAY);
            let t = Timestamp::from_seconds(secs.min(window_end));
            let event_month = t.month().index();
            let (machine_idx, process_image) = self.pick_initiator(category, event_month);
            let machine = self.ctx.roster.machines[machine_idx as usize].id;
            let (process, process_meta) = process_image;
            self.events.push(RawEvent {
                file: file.hash,
                file_meta: file.meta.clone(),
                machine,
                process,
                process_meta,
                url: url.clone(),
                timestamp: t,
                executed: true,
            });
            if let FileDestiny::Malicious(ty) = file.destiny {
                self.maybe_seed_chain(machine_idx, t, file.hash, ty, 0);
            }
        }
    }

    /// Picks (machine, process image) for a primary download.
    fn pick_initiator(
        &mut self,
        category: ProcessCategory,
        month: usize,
    ) -> (u32, (FileHash, downlake_types::FileMeta)) {
        match category {
            ProcessCategory::Browser(kind) => {
                let pool = {
                    let bidx = BrowserKind::ALL
                        .iter()
                        .position(|&b| b == kind)
                        .expect("listed"); // downlake-lint: allow(P1) — every roster browser is listed in BROWSERS
                    &self.ctx.roster.by_month_browser[month][bidx]
                };
                let idx = pool[self.rng.gen_range(0..pool.len())];
                let img = self.ctx.inventory.sample_browser(kind, &mut self.rng);
                (idx, (img.hash, img.meta.clone()))
            }
            ProcessCategory::Java => {
                let pool = &self.ctx.roster.java_by_month[month];
                let idx = pool[self.rng.gen_range(0..pool.len())];
                let img = self
                    .ctx
                    .inventory
                    .sample_category(ProcessCategory::Java, &mut self.rng);
                (idx, (img.hash, img.meta.clone()))
            }
            ProcessCategory::AcrobatReader => {
                let pool = &self.ctx.roster.acrobat_by_month[month];
                let idx = pool[self.rng.gen_range(0..pool.len())];
                let img = self
                    .ctx
                    .inventory
                    .sample_category(ProcessCategory::AcrobatReader, &mut self.rng);
                (idx, (img.hash, img.meta.clone()))
            }
            other => {
                let pool = &self.ctx.roster.by_month[month];
                let idx = pool[self.rng.gen_range(0..pool.len())];
                let img = self.ctx.inventory.sample_category(other, &mut self.rng);
                (idx, (img.hash, img.meta.clone()))
            }
        }
    }

    /// A freshly executed malicious file may become an active downloader.
    fn maybe_seed_chain(
        &mut self,
        machine_idx: u32,
        t: Timestamp,
        file: FileHash,
        ty: MalwareType,
        depth: u8,
    ) {
        if depth >= 2 {
            return;
        }
        let activation = match ty {
            MalwareType::Dropper => 0.45,
            MalwareType::Worm | MalwareType::Bot => 0.30,
            MalwareType::Banker | MalwareType::Ransomware => 0.25,
            MalwareType::Pup => 0.18,
            MalwareType::Trojan | MalwareType::Undefined => 0.15,
            MalwareType::Adware | MalwareType::Spyware => 0.12,
            MalwareType::FakeAv => 0.05,
        };
        if self.rng.gen_bool(activation) {
            self.chain_queue.push(ChainSeed {
                machine_idx,
                time: t,
                downloader: file,
                ty,
                depth,
                indirect: false,
            });
        }
        // Adware/PUP additionally expose the user to malvertising: with
        // some probability the machine later pulls damaging malware via
        // its browser (indirect infection, §V-B).
        if matches!(ty, MalwareType::Adware | MalwareType::Pup) && self.rng.gen_bool(0.30) {
            self.chain_queue.push(ChainSeed {
                machine_idx,
                time: t,
                downloader: file,
                ty,
                depth,
                indirect: true,
            });
        }
    }

    /// Phase B: expand all chain seeds (including recursively created
    /// ones) until the queue drains. Chains stay inside the work unit
    /// that seeded them, so no cross-unit state is needed.
    fn expand_chains(&mut self) {
        let mut cursor = 0;
        while cursor < self.chain_queue.len() {
            let seed = self.chain_queue[cursor].clone();
            cursor += 1;
            if seed.indirect {
                self.indirect_download(&seed);
                continue;
            }
            // Number of follow-up downloads by this downloader instance.
            let mut k = 0;
            while k < 6 && self.rng.gen_bool(0.45) {
                k += 1;
            }
            for _ in 0..k {
                self.chain_download(&seed);
            }
        }
    }

    /// Day delta for a chain/indirect download: a same-day point mass
    /// plus an exponential tail (matching Fig. 5's ~40% day-0 shares).
    fn escalation_delay_days(&mut self, ty: MalwareType) -> f64 {
        let (same_day, mean_days) = match ty {
            MalwareType::Dropper => (0.55, calibration::ESCALATION.dropper_mean_days),
            MalwareType::Adware => (0.42, calibration::ESCALATION.adware_mean_days),
            MalwareType::Pup => (0.40, calibration::ESCALATION.pup_mean_days),
            _ => (0.35, 2.0),
        };
        if self.rng.gen_bool(same_day) {
            self.rng.gen_range(0.0..0.8)
        } else {
            sample_exp_days(&mut self.rng, mean_days, 90.0)
        }
    }

    /// Indirect (browser-mediated) escalation after adware/PUP: one
    /// damaging malware download via the machine's primary browser.
    fn indirect_download(&mut self, seed: &ChainSeed) {
        let ty = {
            const QUALIFYING: &[(MalwareType, f64)] = &[
                (MalwareType::Trojan, 0.45),
                (MalwareType::Dropper, 0.30),
                (MalwareType::Banker, 0.12),
                (MalwareType::Ransomware, 0.05),
                (MalwareType::Bot, 0.05),
                (MalwareType::FakeAv, 0.03),
            ];
            let dist = Categorical::new(&QUALIFYING.iter().map(|&(_, w)| w).collect::<Vec<_>>())
                .expect("static weights"); // downlake-lint: allow(P1) — static literal qualifying-weights table
            QUALIFYING[dist.sample(&mut self.rng)].0
        };
        let delay_days = self.escalation_delay_days(seed.ty);
        let window_end = Timestamp::from_day(Month::July.end_day()).seconds() - 1;
        let t = Timestamp::from_seconds(
            (seed.time.seconds()
                + (delay_days * SECONDS_PER_DAY as f64) as i64
                + self.rng.gen_range(60..3_600))
            .min(window_end),
        );
        // Malvertising campaigns push the same payload to many victims:
        // reuse a recent campaign file half the time.
        let reuse = if self.rng.gen_bool(0.5) {
            self.campaign_pools.get(&ty).and_then(|pool| {
                if pool.is_empty() {
                    None
                } else {
                    let start = pool.len().saturating_sub(32);
                    Some(pool[self.rng.gen_range(start..pool.len())])
                }
            })
        } else {
            None
        };
        let (hash, file_meta) = match reuse {
            Some(hash) => (hash, self.file(hash).meta.clone()),
            None => {
                let hash = self.alloc_hash();
                let file = self
                    .factory
                    .make(hash, FileDestiny::Malicious(ty), true, &mut self.rng);
                let meta = file.meta.clone();
                self.campaign_pools.entry(ty).or_default().push(hash);
                self.insert_file(file);
                (hash, meta)
            }
        };
        let domain_name = self
            .ctx
            .domains
            .sample_malicious(ty, &mut self.rng)
            .name
            .clone();
        let url = make_url(&domain_name, &file_meta.disk_name, &mut self.rng);
        let machine = self.ctx.roster.machines[seed.machine_idx as usize];
        let browser = machine.browser;
        let img = self.ctx.inventory.sample_browser(browser, &mut self.rng);
        let (process, process_meta) = (img.hash, img.meta.clone());
        self.events.push(RawEvent {
            file: hash,
            file_meta,
            machine: machine.id,
            process,
            process_meta,
            url,
            timestamp: t,
            executed: true,
        });
        self.maybe_seed_chain(seed.machine_idx, t, hash, ty, seed.depth + 1);
    }

    fn chain_download(&mut self, seed: &ChainSeed) {
        let delay_days = self.escalation_delay_days(seed.ty);
        let t = seed.time
            + Duration::from_seconds(
                (delay_days * SECONDS_PER_DAY as f64) as i64 + self.rng.gen_range(60..3_600),
            );
        let window_end = Timestamp::from_day(Month::July.end_day()).seconds() - 1;
        let t = Timestamp::from_seconds(t.seconds().min(window_end));

        let destiny = self.ctx.chain_dists[&seed.ty].sample(&mut self.rng);

        // Reuse a recent campaign file of the same destiny type half the
        // time so chain files develop prevalence > 1.
        let reuse = if let FileDestiny::Malicious(ty) = destiny {
            if self.rng.gen_bool(0.5) {
                self.campaign_pools.get(&ty).and_then(|pool| {
                    if pool.is_empty() {
                        None
                    } else {
                        let start = pool.len().saturating_sub(32);
                        Some(pool[self.rng.gen_range(start..pool.len())])
                    }
                })
            } else {
                None
            }
        } else {
            None
        };

        let (file_hash, file_meta, file_destiny) = match reuse {
            Some(hash) => {
                let f = self.file(hash);
                (hash, f.meta.clone(), f.destiny)
            }
            None => {
                let hash = self.alloc_hash();
                let file = self.factory.make(hash, destiny, false, &mut self.rng);
                if let FileDestiny::Malicious(ty) = destiny {
                    self.campaign_pools.entry(ty).or_default().push(hash);
                }
                let meta = file.meta.clone();
                self.insert_file(file);
                (hash, meta, destiny)
            }
        };

        let domain_name = match file_destiny {
            FileDestiny::Benign | FileDestiny::LikelyBenign => {
                self.ctx.domains.sample_benign(&mut self.rng).name.clone()
            }
            FileDestiny::Malicious(ty) | FileDestiny::LikelyMalicious(ty) => self
                .ctx
                .domains
                .sample_malicious(ty, &mut self.rng)
                .name
                .clone(),
            FileDestiny::Unknown => self.ctx.domains.sample_unknown(&mut self.rng).name.clone(),
        };
        let url = make_url(&domain_name, &file_meta.disk_name, &mut self.rng);

        let downloader_meta = self.file(seed.downloader).meta.clone();
        let machine = self.ctx.roster.machines[seed.machine_idx as usize].id;
        self.events.push(RawEvent {
            file: file_hash,
            file_meta,
            machine,
            process: seed.downloader,
            process_meta: downloader_meta,
            url,
            timestamp: t,
            executed: true,
        });
        if let FileDestiny::Malicious(ty) = file_destiny {
            self.maybe_seed_chain(seed.machine_idx, t, file_hash, ty, seed.depth + 1);
        }
    }

    /// Noise events: never-executed downloads and whitelisted update-host
    /// downloads, both of which the collection server must drop. `offset`
    /// positions this unit inside the month's noise sequence so the
    /// whitelisted/unexecuted split is independent of batching.
    fn noise_events(&mut self, month: Month, offset: u64, count: u64, whitelisted: u64) {
        for i in offset..offset + count {
            let hash = self.alloc_hash();
            let file = self
                .factory
                .make(hash, FileDestiny::Unknown, true, &mut self.rng);
            let day = self.rng.gen_range(month.start_day()..month.end_day());
            let t = Timestamp::from_seconds(
                Timestamp::from_day(day).seconds() + self.rng.gen_range(0..SECONDS_PER_DAY),
            );
            let month_idx = month.index();
            let (machine_idx, (process, process_meta)) =
                self.pick_initiator(ProcessCategory::Browser(BrowserKind::Chrome), month_idx);
            // First `whitelisted` events of the month: executed, but
            // served from a whitelisted update host. The rest: ordinary
            // URL, never executed. Both must be suppressed by the server.
            let (url, executed) = if i < whitelisted {
                (
                    make_url("microsoft.com", &file.meta.disk_name, &mut self.rng),
                    true,
                )
            } else {
                (
                    make_url("filehub-generic.com", &file.meta.disk_name, &mut self.rng),
                    false,
                )
            };
            let machine = self.ctx.roster.machines[machine_idx as usize].id;
            self.events.push(RawEvent {
                file: file.hash,
                file_meta: file.meta.clone(),
                machine,
                process,
                process_meta,
                url,
                timestamp: t,
                executed,
            });
            self.insert_file(file);
        }
    }
}

fn make_url(domain: &str, file_name: &str, rng: &mut SmallRng) -> Url {
    let host = if rng.gen_bool(0.4) {
        format!("dl{}.{domain}", rng.gen_range(1..9))
    } else {
        domain.to_owned()
    };
    let dir = ["files", "get", "d", "download", "pkg"][rng.gen_range(0..5)];
    Url::from_parts("http", &host, &format!("/{dir}/{file_name}"))
        .expect("generated hosts are valid") // downlake-lint: allow(P1) — scheme and generated host are always URL-valid
}

/// Generates a world and its time-ordered raw event stream sequentially.
///
/// Exactly [`generate_with`] at one shard on the inline pool; kept as the
/// single-threaded oracle path.
pub(crate) fn generate(config: &SynthConfig) -> Generated {
    generate_with(config, 1, &Pool::sequential())
}

/// Generates a world and its time-ordered raw event stream, running the
/// work units in `shards` contiguous groups on `pool`.
///
/// `shards == 0` means one shard per pool thread. The output is
/// byte-identical for every shard count and pool width: unit RNG streams
/// and hash ranges are derived from unit ids, and shard outputs are
/// reassembled in unit order before the final stable time sort.
pub(crate) fn generate_with(config: &SynthConfig, shards: usize, pool: &Pool) -> Generated {
    generate_impl(config, shards, pool, None)
}

/// [`generate_with`] plus metric observation.
///
/// Deterministic-plane metrics (unit/event/file counters, the per-unit
/// event histogram) are pure functions of the config — byte-identical at
/// every shard and thread count — because units are observed on the
/// caller thread in unit order after the pool returns. Per-shard
/// queue/exec durations read from `clock` land in the registry's timing
/// plane.
pub(crate) fn generate_observed(
    config: &SynthConfig,
    shards: usize,
    pool: &Pool,
    registry: &Registry,
    clock: &dyn Clock,
) -> Generated {
    generate_impl(config, shards, pool, Some((registry, clock)))
}

/// [`generate_with`]'s output in lake-spill form: the world plus one
/// event vector per shard, each stably time-sorted *within the shard*.
///
/// Concatenating the shard vectors in shard order and stably sorting by
/// timestamp reproduces [`generate_with`]'s stream exactly — which is
/// also what a k-way merge by `(timestamp, shard index)` that preserves
/// within-shard order computes, so a segment store can persist the
/// shards independently and still replay the canonical stream.
///
/// `shards == 0` falls back to one shard (never the pool width: a
/// spilled layout must not depend on the host's thread count).
pub(crate) fn generate_sharded_observed(
    config: &SynthConfig,
    shards: usize,
    pool: &Pool,
    registry: &Registry,
    clock: &dyn Clock,
) -> (World, Vec<Vec<RawEvent>>) {
    let shard_count = shards.max(1);
    let (world, mut shard_events) =
        generate_parts(config, shard_count, pool, Some((registry, clock)));
    for shard in &mut shard_events {
        shard.sort_by_key(|e| e.timestamp);
    }
    (world, shard_events)
}

fn generate_impl(
    config: &SynthConfig,
    shards: usize,
    pool: &Pool,
    obs: Option<(&Registry, &dyn Clock)>,
) -> Generated {
    let shard_count = if shards == 0 { pool.threads() } else { shards };
    let (world, shard_events) = generate_parts(config, shard_count, pool, obs);
    let mut events: Vec<RawEvent> = shard_events.into_iter().flatten().collect();
    // Stable by-timestamp sort: ties keep unit order, which is fixed by
    // the config alone.
    events.sort_by_key(|e| e.timestamp);
    Generated { world, events }
}

/// Shared generation core: runs the work units in `shard_count`
/// contiguous groups on `pool` and returns the world plus the raw
/// per-shard event vectors in unit emission order (not yet
/// time-sorted).
fn generate_parts(
    config: &SynthConfig,
    shard_count: usize,
    pool: &Pool,
    obs: Option<(&Registry, &dyn Clock)>,
) -> (World, Vec<Vec<RawEvent>>) {
    let signers = SignerCatalog::generate_scaled(config.seed, config.scale.fraction().sqrt());
    let packers = PackerCatalog::new();
    let families = FamilyCatalog::generate(config.seed);
    let factory_signers = signers.clone();
    let factory_packers = packers.clone();
    let factory_families = families.clone();
    let factory = FileFactory::new(
        config,
        &factory_signers,
        &factory_packers,
        &factory_families,
    );

    let ctx = GenContext::new(config);
    let units = build_units(config);
    let ranges = partition(units.len(), shard_count);
    // One pool job per shard; each runs its unit range in order. The
    // merge below visits shard outputs in shard order, which for
    // contiguous ranges is exactly unit order.
    let run_shard = |_: usize, range: &std::ops::Range<usize>| {
        let mut outputs = Vec::with_capacity(range.len());
        for unit_id in range.clone() {
            let worker = UnitWorker::new(&ctx, &factory, unit_id);
            outputs.push(worker.run(units[unit_id]));
        }
        outputs
    };
    let (shard_outputs, shard_timings) = match obs {
        Some((_, clock)) => pool.map_timed(&ranges, clock, run_shard),
        None => (pool.map(&ranges, run_shard), Vec::new()),
    };

    if let Some((registry, _)) = obs {
        // Observed on the caller thread in unit order: the unit list and
        // every unit's output are pure functions of the config, so these
        // metrics are identical at any shard/thread count.
        registry.counter_add("synth.units", units.len() as u64);
        let mut primary = 0u64;
        let mut noise = 0u64;
        for unit in &units {
            match *unit {
                UnitSpec::Primary { count, .. } => primary += count,
                UnitSpec::Noise { count, .. } => noise += count,
            }
        }
        registry.counter_add("synth.primary_files", primary);
        registry.counter_add("synth.noise_events", noise);
        for output in shard_outputs.iter().flatten() {
            registry.record("synth.unit_events", output.events.len() as u64);
            registry.record("synth.unit_files", output.files.len() as u64);
        }
        // Shard timings are scheduling-dependent → timing plane only.
        for t in &shard_timings {
            registry.record_nanos("synth.shard.queue", t.queue_nanos);
            registry.record_nanos("synth.shard.exec", t.exec_nanos);
        }
    }

    let mut files: HashMap<FileHash, GeneratedFile> = HashMap::new();
    let mut shard_events: Vec<Vec<RawEvent>> = Vec::with_capacity(shard_outputs.len());
    for outputs in shard_outputs {
        let mut events = Vec::new();
        for output in outputs {
            for file in output.files {
                files.insert(file.hash, file);
            }
            events.extend(output.events);
        }
        shard_events.push(events);
    }

    if let Some((registry, _)) = obs {
        let total: usize = shard_events.iter().map(Vec::len).sum();
        registry.counter_add("synth.events", total as u64);
        registry.counter_add("synth.generated_files", files.len() as u64);
    }

    let domains = ctx.domains.clone();
    let inventory = ctx.inventory.clone();

    // The benign process-inventory images are part of the world too:
    // ground truth is collected over downloading processes as well
    // (Table I's process label shares). Browsers and system software are
    // universally catalogued; the long tail of "other" processes mostly
    // is not — which is how the paper ends up with the majority of
    // downloading processes unknown.
    let mut proc_rng = SmallRng::seed_from_u64(config.seed ^ 0x9a0c_0de5);
    for img in inventory.all() {
        let (visibility, destiny) = if img.category == ProcessCategory::Other {
            let roll: f64 = proc_rng.gen_range(0.0..1.0);
            if roll < 0.25 {
                (0.95, FileDestiny::Benign)
            } else if roll < 0.40 {
                (0.65, FileDestiny::LikelyBenign)
            } else {
                (0.02, FileDestiny::Unknown)
            }
        } else {
            (0.97, FileDestiny::Benign)
        };
        files.entry(img.hash).or_insert_with(|| GeneratedFile {
            hash: img.hash,
            meta: img.meta.clone(),
            latent: downlake_types::LatentProfile::benign(visibility),
            destiny,
        });
    }

    if let Some((registry, _)) = obs {
        registry.counter_add("synth.world_files", files.len() as u64);
    }

    let world = World {
        config: config.clone(),
        signers,
        packers,
        domains,
        families,
        processes: inventory,
        files,
    };
    (world, shard_events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scale;

    fn tiny() -> Generated {
        generate(&SynthConfig::new(42).with_scale(Scale::Tiny))
    }

    #[test]
    fn stream_is_time_ordered() {
        let g = tiny();
        for pair in g.events.windows(2) {
            assert!(pair[0].timestamp <= pair[1].timestamp);
        }
    }

    #[test]
    fn volumes_scale_with_config() {
        let g = tiny();
        let expected = Scale::Tiny.apply(calibration::totals::EVENTS);
        let ratio = g.events.len() as f64 / expected as f64;
        assert!(
            (0.5..2.0).contains(&ratio),
            "events {} vs expected {expected}",
            g.events.len()
        );
    }

    #[test]
    fn noise_events_present() {
        let g = tiny();
        let unexecuted = g.events.iter().filter(|e| !e.executed).count();
        assert!(unexecuted > 0, "generator must emit unexecuted noise");
        let whitelisted = g
            .events
            .iter()
            .filter(|e| e.url.e2ld() == "microsoft.com")
            .count();
        assert!(
            whitelisted > 0,
            "generator must emit whitelisted-host noise"
        );
    }

    #[test]
    fn unknown_destiny_dominates() {
        let g = tiny();
        let unknown = g
            .world
            .files()
            .filter(|f| f.destiny == FileDestiny::Unknown)
            .count();
        let share = unknown as f64 / g.world.file_count() as f64;
        assert!(share > 0.70, "unknown share {share}");
    }

    #[test]
    fn chains_reuse_downloader_as_process() {
        let g = tiny();
        // At least one event must be initiated by a process that is
        // itself a generated (downloaded) file.
        let chained = g
            .events
            .iter()
            .filter(|e| g.world.latent(e.process).is_some())
            .count();
        assert!(chained > 0, "no chain downloads generated");
    }

    #[test]
    fn timestamps_fit_study_window() {
        let g = tiny();
        for e in &g.events {
            assert!(e.timestamp.in_study_window(), "event at {}", e.timestamp);
        }
    }

    #[test]
    fn unit_list_depends_only_on_config() {
        let config = SynthConfig::new(42).with_scale(Scale::Tiny);
        let a = build_units(&config);
        let b = build_units(&config);
        assert_eq!(a.len(), b.len());
        // Unit volumes must tile the configured month totals exactly.
        let mut primary = 0u64;
        let mut noise = 0u64;
        for unit in &a {
            match *unit {
                UnitSpec::Primary { count, .. } => primary += count,
                UnitSpec::Noise { count, .. } => noise += count,
            }
        }
        let expected_primary: u64 = Month::ALL
            .iter()
            .map(|m| config.scale.apply(TABLE1[m.index()].files))
            .sum();
        assert_eq!(primary, expected_primary);
        assert!(noise > 0);
    }

    #[test]
    fn observed_generation_is_metric_identical_across_threads() {
        use downlake_obs::TestClock;
        let config = SynthConfig::new(42).with_scale(Scale::Tiny);
        let observe = |shards: usize, threads: usize| {
            let registry = Registry::new();
            let clock = TestClock::new();
            let g = generate_observed(&config, shards, &Pool::new(threads), &registry, &clock);
            (g, registry.snapshot())
        };
        let (g1, r1) = observe(1, 1);
        let (g4, r4) = observe(4, 4);
        assert_eq!(g1.events, g4.events, "observation must not perturb output");
        // Deterministic plane: identical. Timing plane: shard counts differ.
        assert_eq!(r1.counters, r4.counters);
        assert_eq!(r1.gauges, r4.gauges);
        assert_eq!(r1.values, r4.values);
        assert_eq!(r1.counters["synth.events"], g1.events.len() as u64);
        assert!(r1.values["synth.unit_events"].count() > 0);
        // And identical to the unobserved oracle.
        let oracle = generate(&config);
        assert_eq!(g1.events, oracle.events);
    }

    #[test]
    fn sharded_spill_form_reassembles_the_canonical_stream() {
        use downlake_obs::TestClock;
        let config = SynthConfig::new(42).with_scale(Scale::Tiny);
        let oracle = generate(&config);
        for shards in [1usize, 3, 8] {
            let registry = Registry::new();
            let clock = TestClock::new();
            let (world, shard_events) =
                generate_sharded_observed(&config, shards, &Pool::new(2), &registry, &clock);
            assert_eq!(shard_events.len(), shards, "one vector per shard");
            for shard in &shard_events {
                assert!(
                    shard.windows(2).all(|w| w[0].timestamp <= w[1].timestamp),
                    "each shard must be time-sorted"
                );
            }
            let mut merged: Vec<RawEvent> = shard_events.into_iter().flatten().collect();
            merged.sort_by_key(|e| e.timestamp);
            assert_eq!(merged, oracle.events, "shards={shards}");
            assert_eq!(world.file_count(), oracle.world.file_count());
            // The deterministic observation plane matches the in-RAM
            // observed path: spilling is invisible to the metrics.
            let snap = registry.snapshot();
            assert_eq!(snap.counters["synth.events"], oracle.events.len() as u64);
        }
    }

    #[test]
    fn sharded_generation_matches_sequential() {
        let config = SynthConfig::new(42).with_scale(Scale::Tiny);
        let oracle = generate(&config);
        for (shards, threads) in [(4, 1), (7, 2), (3, 8)] {
            let g = generate_with(&config, shards, &Pool::new(threads));
            assert_eq!(
                g.events.len(),
                oracle.events.len(),
                "shards={shards} threads={threads}"
            );
            assert_eq!(g.events, oracle.events, "shards={shards} threads={threads}");
            assert_eq!(g.world.file_count(), oracle.world.file_count());
        }
    }
}
