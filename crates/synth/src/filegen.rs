//! File synthesis: latent nature, metadata, and labeling destiny.
//!
//! Every file is created with a [`FileDestiny`] — which ground-truth class
//! it will eventually land in once the oracle runs. The destiny is encoded
//! into the file's [`LatentProfile`] *only* through the semantically
//! meaningful knobs `visibility` (will labeling sources ever see it?) and
//! `detectability` (will engines that see it flag it?), so the
//! ground-truth crate can implement the paper's actual decision procedure
//! instead of reading the answer off a field.

use crate::calibration::{self, packing};
use crate::catalogs::families::FamilyCatalog;
use crate::catalogs::names;
use crate::catalogs::packers::PackerCatalog;
use crate::catalogs::signers::SignerCatalog;
use crate::config::SynthConfig;
use crate::dist::{sample_file_size, Categorical};
use downlake_types::{
    FileHash, FileMeta, FileNature, LatentProfile, MalwareType, PackerInfo, SignerInfo,
};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The ground-truth class a file is destined for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FileDestiny {
    /// Will be labeled benign.
    Benign,
    /// Will be labeled likely benign (short scan span).
    LikelyBenign,
    /// Will be labeled malicious (trusted-engine detection).
    Malicious(MalwareType),
    /// Will be labeled likely malicious (untrusted-engine detection only).
    LikelyMalicious(MalwareType),
    /// Will never gain ground truth.
    Unknown,
}

impl FileDestiny {
    /// Whether the destiny is one of the confidently labeled classes.
    pub fn is_labeled(self) -> bool {
        !matches!(self, FileDestiny::Unknown)
    }
}

/// A fully synthesised file: identity, observable metadata, hidden truth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneratedFile {
    /// The file hash.
    pub hash: FileHash,
    /// Observable metadata.
    pub meta: FileMeta,
    /// Hidden truth.
    pub latent: LatentProfile,
    /// Generator-internal destiny (used for routing; the ground-truth
    /// oracle never reads this).
    pub destiny: FileDestiny,
}

/// Synthesises files against the calibrated marginals.
#[derive(Debug)]
pub struct FileFactory<'a> {
    signers: &'a SignerCatalog,
    packers: &'a PackerCatalog,
    families: &'a FamilyCatalog,
    unknown_latent_malicious: f64,
    type_mix: Categorical,
}

impl<'a> FileFactory<'a> {
    /// Creates a factory over the given catalogs.
    pub fn new(
        config: &SynthConfig,
        signers: &'a SignerCatalog,
        packers: &'a PackerCatalog,
        families: &'a FamilyCatalog,
    ) -> Self {
        let weights: Vec<f64> = calibration::TABLE2_TYPE_MIX
            .iter()
            .map(|&(_, p)| p)
            .collect();
        Self {
            signers,
            packers,
            families,
            unknown_latent_malicious: config.unknown_latent_malicious,
            type_mix: Categorical::new(&weights).expect("calibrated mix is valid"), // downlake-lint: allow(P1) — calibrated Table 2 weights are positive and finite
        }
    }

    /// Draws a behaviour type from the Table II mix.
    pub fn sample_type<R: Rng + ?Sized>(&self, rng: &mut R) -> MalwareType {
        calibration::TABLE2_TYPE_MIX[self.type_mix.sample(rng)].0
    }

    /// Synthesises one file.
    ///
    /// `via_browser` marks whether the file's *first* download was
    /// browser-initiated — browser-delivered files are signed more often
    /// (Table VI "From Browsers" column).
    pub fn make<R: Rng + ?Sized>(
        &self,
        hash: FileHash,
        destiny: FileDestiny,
        via_browser: bool,
        rng: &mut R,
    ) -> GeneratedFile {
        let nature = self.latent_nature(destiny, rng);
        // The unlabeled long tail skews unsigned even when latent-
        // malicious: obscure one-off builds rarely carry a certificate
        // (Table VI: unknowns 38.4% signed vs 66% for known malware).
        let signing_scale = if destiny == FileDestiny::Unknown {
            0.72
        } else {
            1.0
        };
        let meta = self.make_meta(nature, via_browser, signing_scale, rng);
        let family = match nature {
            FileNature::Malicious(ty) => {
                // 58% of samples have no AVclass-derivable family (§III).
                if rng.gen_bool(0.58) {
                    None
                } else {
                    Some(self.families.sample(ty, rng).name.clone())
                }
            }
            FileNature::Benign => None,
        };
        let (visibility, detectability) = destiny_propensities(destiny, rng);
        GeneratedFile {
            hash,
            meta,
            latent: LatentProfile {
                nature,
                family,
                visibility,
                detectability,
            },
            destiny,
        }
    }

    fn latent_nature<R: Rng + ?Sized>(&self, destiny: FileDestiny, rng: &mut R) -> FileNature {
        match destiny {
            FileDestiny::Benign | FileDestiny::LikelyBenign => FileNature::Benign,
            FileDestiny::Malicious(ty) | FileDestiny::LikelyMalicious(ty) => {
                FileNature::Malicious(ty)
            }
            FileDestiny::Unknown => {
                if rng.gen_bool(self.unknown_latent_malicious) {
                    FileNature::Malicious(self.sample_type(rng))
                } else {
                    FileNature::Benign
                }
            }
        }
    }

    fn make_meta<R: Rng + ?Sized>(
        &self,
        nature: FileNature,
        via_browser: bool,
        signing_scale: f64,
        rng: &mut R,
    ) -> FileMeta {
        let (signed_prob, packed_prob) = match nature {
            FileNature::Benign => {
                let r = calibration::BENIGN_SIGNING;
                (
                    if via_browser {
                        r.from_browsers
                    } else {
                        r.overall
                    } / 100.0,
                    packing::BENIGN_PACKED,
                )
            }
            FileNature::Malicious(ty) => {
                let r = calibration::signing_rates(ty);
                (
                    if via_browser {
                        r.from_browsers
                    } else {
                        r.overall
                    } / 100.0,
                    packing::MALICIOUS_PACKED,
                )
            }
        };
        let signer = if rng.gen_bool((signed_prob * signing_scale).clamp(0.0, 1.0)) {
            let entry = match nature {
                FileNature::Benign => self.signers.sample_benign(rng),
                FileNature::Malicious(ty) => self.signers.sample_malicious(ty, rng),
            };
            Some(SignerInfo::valid(entry.name.clone(), entry.ca.clone()))
        } else {
            None
        };
        let packer = if rng.gen_bool(packed_prob) {
            let name = match nature {
                FileNature::Benign => self.packers.sample_benign(rng),
                FileNature::Malicious(_) => self.packers.sample_malicious(rng),
            };
            Some(PackerInfo::new(name))
        } else {
            None
        };
        FileMeta {
            size_bytes: sample_file_size(rng, 13.5, 1.8),
            disk_name: names::executable(rng),
            signer,
            packer,
        }
    }
}

/// Maps a destiny to `(visibility, detectability)` propensities.
///
/// * Labeled destinies are highly visible; *likely benign* files are
///   mid-visibility (they surface late, so their scan span is short).
/// * Malicious vs likely-malicious differ in detectability: high enough
///   for a trusted engine vs only the long tail of lax engines.
/// * Unknown files are almost never seen by any labeling source.
fn destiny_propensities<R: Rng + ?Sized>(destiny: FileDestiny, rng: &mut R) -> (f64, f64) {
    match destiny {
        FileDestiny::Benign => (rng.gen_range(0.90..1.0), 0.0),
        FileDestiny::LikelyBenign => (rng.gen_range(0.55..0.75), 0.0),
        FileDestiny::Malicious(_) => (rng.gen_range(0.90..1.0), rng.gen_range(0.80..1.0)),
        FileDestiny::LikelyMalicious(_) => (rng.gen_range(0.90..1.0), rng.gen_range(0.30..0.55)),
        FileDestiny::Unknown => (rng.gen_range(0.0..0.05), rng.gen_range(0.3..0.8)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SynthConfig;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    struct Fixture {
        signers: SignerCatalog,
        packers: PackerCatalog,
        families: FamilyCatalog,
        config: SynthConfig,
    }

    impl Fixture {
        fn new() -> Self {
            Self {
                signers: SignerCatalog::generate(1),
                packers: PackerCatalog::new(),
                families: FamilyCatalog::generate(1),
                config: SynthConfig::new(1),
            }
        }

        fn factory(&self) -> FileFactory<'_> {
            FileFactory::new(&self.config, &self.signers, &self.packers, &self.families)
        }
    }

    #[test]
    fn destinies_map_to_consistent_natures() {
        let fx = Fixture::new();
        let f = fx.factory();
        let mut rng = SmallRng::seed_from_u64(2);
        let benign = f.make(FileHash::from_raw(1), FileDestiny::Benign, true, &mut rng);
        assert_eq!(benign.latent.nature, FileNature::Benign);
        let mal = f.make(
            FileHash::from_raw(2),
            FileDestiny::Malicious(MalwareType::Bot),
            false,
            &mut rng,
        );
        assert_eq!(mal.latent.nature, FileNature::Malicious(MalwareType::Bot));
    }

    #[test]
    fn droppers_are_mostly_signed_bots_mostly_not() {
        let fx = Fixture::new();
        let f = fx.factory();
        let mut rng = SmallRng::seed_from_u64(3);
        let signed = |ty: MalwareType, rng: &mut SmallRng| {
            let n = 600;
            let mut count = 0;
            for i in 0..n {
                let file = f.make(FileHash::from_raw(i), FileDestiny::Malicious(ty), true, rng);
                if file.meta.is_validly_signed() {
                    count += 1;
                }
            }
            count as f64 / n as f64
        };
        assert!(signed(MalwareType::Dropper, &mut rng) > 0.75);
        assert!(signed(MalwareType::Bot, &mut rng) < 0.10);
    }

    #[test]
    fn unknown_latent_mix_respects_config() {
        let fx = Fixture::new();
        let f = fx.factory();
        let mut rng = SmallRng::seed_from_u64(4);
        let n = 3000;
        let mut malicious = 0;
        for i in 0..n {
            let file = f.make(FileHash::from_raw(i), FileDestiny::Unknown, false, &mut rng);
            if file.latent.nature.is_malicious() {
                malicious += 1;
            }
            assert!(file.latent.visibility < 0.05);
        }
        let share = malicious as f64 / n as f64;
        assert!(
            (share - fx.config.unknown_latent_malicious).abs() < 0.05,
            "latent malicious share {share}"
        );
    }

    #[test]
    fn visibility_separates_destinies() {
        let fx = Fixture::new();
        let f = fx.factory();
        let mut rng = SmallRng::seed_from_u64(5);
        let b = f.make(FileHash::from_raw(1), FileDestiny::Benign, true, &mut rng);
        let lb = f.make(
            FileHash::from_raw(2),
            FileDestiny::LikelyBenign,
            true,
            &mut rng,
        );
        let u = f.make(FileHash::from_raw(3), FileDestiny::Unknown, true, &mut rng);
        assert!(b.latent.visibility > lb.latent.visibility);
        assert!(lb.latent.visibility > u.latent.visibility);
    }

    #[test]
    fn malicious_files_sometimes_carry_families() {
        let fx = Fixture::new();
        let f = fx.factory();
        let mut rng = SmallRng::seed_from_u64(6);
        let mut named = 0;
        let n = 500;
        for i in 0..n {
            let file = f.make(
                FileHash::from_raw(i),
                FileDestiny::Malicious(MalwareType::Banker),
                false,
                &mut rng,
            );
            if file.latent.family.is_some() {
                named += 1;
            }
        }
        let share = named as f64 / n as f64;
        assert!((share - 0.42).abs() < 0.08, "named share {share}");
    }

    #[test]
    fn type_mix_is_table2_shaped() {
        let fx = Fixture::new();
        let f = fx.factory();
        let mut rng = SmallRng::seed_from_u64(7);
        let mut droppers = 0;
        let mut spyware = 0;
        let n = 5000;
        for _ in 0..n {
            match f.sample_type(&mut rng) {
                MalwareType::Dropper => droppers += 1,
                MalwareType::Spyware => spyware += 1,
                _ => {}
            }
        }
        assert!(
            droppers > spyware * 20,
            "droppers {droppers}, spyware {spyware}"
        );
    }
}
