//! AV label tokenization.

/// Splits an AV label into lowercase alphanumeric tokens.
///
/// Separators are everything non-alphanumeric (`.`, `:`, `/`, `-`, `_`,
/// `!`, whitespace). Tokens keep digits (family names like `win32` or
/// hex-ish variant ids are filtered later, where the filtering criteria
/// belong).
///
/// ```
/// use downlake_avtype::tokenize;
/// assert_eq!(
///     tokenize("Trojan-Spy.Win32.Zbot.ruxa"),
///     vec!["trojan", "spy", "win32", "zbot", "ruxa"],
/// );
/// ```
pub fn tokenize(label: &str) -> Vec<String> {
    label
        .split(|c: char| !c.is_ascii_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(str::to_ascii_lowercase)
        .collect()
}

/// Whether a token looks like a hex / serial-number fragment rather than a
/// word (e.g. `6c7411d1c043`, `smu1`, `heqj` stays since it's alphabetic).
pub(crate) fn looks_like_serial(token: &str) -> bool {
    let digits = token.bytes().filter(u8::is_ascii_digit).count();
    if digits * 2 >= token.len() {
        return true;
    }
    // Long all-hex tokens are serials even without digits dominating.
    token.len() >= 8 && token.bytes().all(|b| b.is_ascii_hexdigit())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_splits_on_all_separators() {
        assert_eq!(tokenize("PWS:Win32/Zbot"), vec!["pws", "win32", "zbot"]);
        assert_eq!(
            tokenize("Downloader-FYH!6C7411D1C043"),
            vec!["downloader", "fyh", "6c7411d1c043"]
        );
        assert_eq!(tokenize("TROJ_FAKEAV.SMU1"), vec!["troj", "fakeav", "smu1"]);
    }

    #[test]
    fn tokenize_handles_empty_and_degenerate_input() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("!!..//--").is_empty());
    }

    #[test]
    fn serial_detection() {
        assert!(looks_like_serial("6c7411d1c043"));
        assert!(!looks_like_serial("smu1")); // mostly alphabetic, short
        assert!(!looks_like_serial("zbot"));
        assert!(!looks_like_serial("fakeav"));
        assert!(looks_like_serial("deadbeef"));
    }
}
