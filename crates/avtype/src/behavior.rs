//! The AVType conflict-resolution algorithm (§II-C).

use crate::map::LabelInterpretationMap;
use downlake_types::MalwareType;
use serde::{Deserialize, Serialize};

/// How a file's final behaviour type was arrived at.
///
/// The paper reports 44% of files resolving with full agreement, 28% by
/// voting, 23% by specificity, and 5% manually.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Resolution {
    /// Every contributing label mapped to the same type.
    NoConflict,
    /// A strict plurality of label votes decided.
    Voting,
    /// A vote tie was broken by type specificity.
    Specificity,
    /// Even specificity tied; the manual-analysis fallback decided.
    Manual,
}

/// The outcome of behaviour-type extraction for one file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TypeVerdict {
    /// The assigned behaviour type.
    pub ty: MalwareType,
    /// Which rule decided it.
    pub resolution: Resolution,
}

/// Running tally of resolution kinds across a corpus.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResolutionStats {
    /// Files with full agreement.
    pub no_conflict: usize,
    /// Files resolved by voting.
    pub voting: usize,
    /// Files resolved by specificity.
    pub specificity: usize,
    /// Files resolved manually.
    pub manual: usize,
}

impl ResolutionStats {
    /// Records one verdict.
    pub fn record(&mut self, resolution: Resolution) {
        match resolution {
            Resolution::NoConflict => self.no_conflict += 1,
            Resolution::Voting => self.voting += 1,
            Resolution::Specificity => self.specificity += 1,
            Resolution::Manual => self.manual += 1,
        }
    }

    /// Total recorded verdicts.
    pub fn total(&self) -> usize {
        self.no_conflict + self.voting + self.specificity + self.manual
    }

    /// Folds another stats block into this one. Counts are commutative,
    /// so merging per-chunk partials in any order equals recording the
    /// verdicts sequentially.
    pub fn merge(&mut self, other: ResolutionStats) {
        self.no_conflict += other.no_conflict;
        self.voting += other.voting;
        self.specificity += other.specificity;
        self.manual += other.manual;
    }
}

/// The AVType behaviour-type extractor.
#[derive(Debug, Clone, Default)]
pub struct BehaviorExtractor {
    map: LabelInterpretationMap,
}

impl BehaviorExtractor {
    /// Creates an extractor with the default interpretation map.
    pub fn new() -> Self {
        Self {
            map: LabelInterpretationMap::new(),
        }
    }

    /// Creates an extractor with a custom map.
    pub fn with_map(map: LabelInterpretationMap) -> Self {
        Self { map }
    }

    /// The interpretation map in use.
    pub fn map(&self) -> &LabelInterpretationMap {
        &self.map
    }

    /// Extracts the behaviour type from `(engine, label)` pairs — the
    /// labels of the five leading engines that detected the file.
    ///
    /// Returns `Undefined`/`NoConflict` when no labels are supplied.
    pub fn extract(&self, labels: &[(&str, &str)]) -> TypeVerdict {
        let types: Vec<MalwareType> = labels.iter().map(|&(_, l)| self.map.interpret(l)).collect();
        let Some((&first, rest)) = types.split_first() else {
            return TypeVerdict {
                ty: MalwareType::Undefined,
                resolution: Resolution::NoConflict,
            };
        };

        // Rule 0: full agreement.
        if rest.iter().all(|&t| t == first) {
            return TypeVerdict {
                ty: first,
                resolution: Resolution::NoConflict,
            };
        }

        // Rule 1: voting.
        let mut counts: Vec<(MalwareType, usize)> = Vec::new();
        for &ty in &types {
            match counts.iter_mut().find(|(t, _)| *t == ty) {
                Some((_, c)) => *c += 1,
                None => counts.push((ty, 1)),
            }
        }
        let max_votes = counts.iter().map(|&(_, c)| c).fold(0, usize::max);
        let tied: Vec<MalwareType> = counts
            .iter()
            .filter(|&&(_, c)| c == max_votes)
            .map(|&(t, _)| t)
            .collect();
        if let &[only] = tied.as_slice() {
            return TypeVerdict {
                ty: only,
                resolution: Resolution::Voting,
            };
        }

        // Rule 2: specificity among the vote-tied types.
        let max_spec = tied.iter().map(|t| t.specificity()).fold(0u8, u8::max);
        let most_specific: Vec<MalwareType> = tied
            .iter()
            .copied()
            .filter(|t| t.specificity() == max_spec)
            .collect();
        if let &[only] = most_specific.as_slice() {
            return TypeVerdict {
                ty: only,
                resolution: Resolution::Specificity,
            };
        }

        // Rule 3: manual analysis. Deterministic stand-in: the canonical
        // (Table II) ordering decides, which is what a tie between e.g.
        // banker and bot would get from an analyst triaging by prevalence.
        let ty = MalwareType::ALL
            .into_iter()
            .find(|t| most_specific.contains(t))
            .unwrap_or(first);
        TypeVerdict {
            ty,
            resolution: Resolution::Manual,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn extract(labels: &[(&str, &str)]) -> TypeVerdict {
        BehaviorExtractor::new().extract(labels)
    }

    #[test]
    fn paper_voting_example() {
        // §II-C: 3 banker-ish Zbot labels vs one dropper label → banker.
        let v = extract(&[
            ("Symantec", "Trojan.Zbot"),
            ("McAfee", "Downloader-FYH!6C7411D1C043"),
            ("Kaspersky", "Trojan-Spy.Win32.Zbot.ruxa"),
            ("Microsoft", "PWS:Win32/Zbot"),
        ]);
        assert_eq!(v.ty, MalwareType::Banker);
        assert_eq!(v.resolution, Resolution::Voting);
    }

    #[test]
    fn paper_specificity_example() {
        // §II-C: Kaspersky dropper label vs McAfee generic → dropper.
        let v = extract(&[
            ("Kaspersky", "Trojan-Downloader.Win32.Agent.heqj"),
            ("McAfee", "Artemis!DEC3771868CB"),
        ]);
        assert_eq!(v.ty, MalwareType::Dropper);
        assert_eq!(v.resolution, Resolution::Specificity);
    }

    #[test]
    fn full_agreement() {
        let v = extract(&[
            ("Microsoft", "Ransom:Win32/Urausy"),
            ("TrendMicro", "RANSOM.ABC"),
        ]);
        assert_eq!(v.ty, MalwareType::Ransomware);
        assert_eq!(v.resolution, Resolution::NoConflict);
    }

    #[test]
    fn single_label_is_no_conflict() {
        let v = extract(&[("Microsoft", "Worm:Win32/Vobfus")]);
        assert_eq!(v.ty, MalwareType::Worm);
        assert_eq!(v.resolution, Resolution::NoConflict);
    }

    #[test]
    fn empty_labels_are_undefined() {
        let v = extract(&[]);
        assert_eq!(v.ty, MalwareType::Undefined);
    }

    #[test]
    fn manual_fallback_on_equal_specificity_tie() {
        // banker vs bot: one vote each, equal specificity → manual.
        let v = extract(&[
            ("Microsoft", "PWS:Win32/Other"),
            ("Kaspersky", "Backdoor.Win32.Other.abcd"),
        ]);
        assert_eq!(v.resolution, Resolution::Manual);
        // Canonical order puts banker before bot.
        assert_eq!(v.ty, MalwareType::Banker);
    }

    #[test]
    fn stats_tally() {
        let mut stats = ResolutionStats::default();
        stats.record(Resolution::NoConflict);
        stats.record(Resolution::Voting);
        stats.record(Resolution::Voting);
        stats.record(Resolution::Manual);
        assert_eq!(stats.total(), 4);
        assert_eq!(stats.voting, 2);
    }

    #[test]
    fn trojan_loses_to_specific_type_on_tie() {
        let v = extract(&[
            ("Symantec", "Trojan.Gen.abc"),
            ("Kaspersky", "Trojan-Ransom.Win32.Foo.a"),
        ]);
        assert_eq!(v.ty, MalwareType::Ransomware);
        assert_eq!(v.resolution, Resolution::Specificity);
    }
}
