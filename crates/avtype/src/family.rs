//! AVclass-style malware-family extraction (Sebastián et al. 2016).
//!
//! A deliberately faithful *simplification* of AVclass: normalise every
//! label into tokens, drop generic/vendor/platform tokens and
//! serial-number fragments, apply an alias map, and take the plurality
//! token across engines (each engine votes once per token). Families
//! backed by fewer than two engines are rejected — which is how 58% of
//! the paper's samples end up without a family.

use crate::parse::{looks_like_serial, tokenize};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Tokens that can never be family names: platform tags, behaviour-type
/// keywords, vendor boilerplate, heuristic markers.
pub const GENERIC_TOKENS: &[&str] = &[
    "win32",
    "win64",
    "w32",
    "w64",
    "msil",
    "android",
    "linux",
    "html",
    "js",
    "vbs",
    "trojan",
    "troj",
    "virus",
    "malware",
    "worm",
    "backdoor",
    "bkdr",
    "bot",
    "downloader",
    "dloadr",
    "dldr",
    "dropper",
    "spy",
    "spyware",
    "tspy",
    "pws",
    "banker",
    "infostealer",
    "ransom",
    "ransomlock",
    "cryptor",
    "rogue",
    "fakeav",
    "fakealert",
    "adware",
    "adw",
    "adload",
    "pua",
    "pup",
    "unwanted",
    "webtoolbar",
    "bundler",
    "softwarebundler",
    "generic",
    "artemis",
    "heuristic",
    "heur",
    "suspicious",
    "cloud",
    "variant",
    "gen",
    "agent",
    "kryptik",
    "krypt",
    "packed",
    "obfuscated",
    "injector",
    "starter",
    "small",
    "not",
    "a",
    "application",
    "program",
    "riskware",
    "tool",
    "unsafe",
    "behaveslike",
    "lookslike",
    "based",
    "possible",
    "probably",
    "malicious",
    "deepscan",
    "graftor",
];

/// Alias normalisation: vendor-specific family spellings → canonical.
const ALIASES: &[(&str, &str)] = &[
    ("zeus", "zbot"),
    ("zeusbot", "zbot"),
    ("wsnpoem", "zbot"),
    ("sirefef", "zeroaccess"),
    ("andromeda", "gamarue"),
    ("barys", "firseria"),
    ("firser", "firseria"),
    ("somotoinstaller", "somoto"),
    ("bettersurf", "bsurf"),
];

/// The family extractor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FamilyExtractor {
    generic: HashSet<String>,
    aliases: HashMap<String, String>,
    /// Minimum engines that must agree on the token (AVclass default: 2).
    min_engines: usize,
}

impl FamilyExtractor {
    /// Creates the extractor with default token lists and threshold 2.
    pub fn new() -> Self {
        Self {
            generic: GENERIC_TOKENS.iter().map(|&s| s.to_owned()).collect(),
            aliases: ALIASES
                .iter()
                .map(|&(a, b)| (a.to_owned(), b.to_owned()))
                .collect(),
            min_engines: 2,
        }
    }

    /// Overrides the plurality threshold.
    pub fn with_min_engines(mut self, min_engines: usize) -> Self {
        self.min_engines = min_engines.max(1);
        self
    }

    /// Registers an extra generic token.
    pub fn add_generic(&mut self, token: impl Into<String>) {
        self.generic.insert(token.into());
    }

    /// Extracts the family from `(engine, label)` pairs, or `None` if no
    /// candidate token reaches the engine threshold.
    pub fn extract(&self, labels: &[(&str, &str)]) -> Option<String> {
        let mut votes: HashMap<String, usize> = HashMap::new();
        for &(_, label) in labels {
            let mut seen_this_engine: HashSet<String> = HashSet::new();
            for token in tokenize(label) {
                if token.len() < 4 || self.generic.contains(&token) || looks_like_serial(&token) {
                    continue;
                }
                let canonical = self.aliases.get(&token).cloned().unwrap_or(token);
                if seen_this_engine.insert(canonical.clone()) {
                    *votes.entry(canonical).or_insert(0) += 1;
                }
            }
        }
        votes
            .into_iter()
            .filter(|&(_, v)| v >= self.min_engines)
            // Plurality; deterministic lexicographic tie-break.
            .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(&a.0)))
            .map(|(token, _)| token)
    }
}

impl Default for FamilyExtractor {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plurality_across_engines() {
        let ex = FamilyExtractor::new();
        let fam = ex.extract(&[
            ("Symantec", "Trojan.Zbot"),
            ("Kaspersky", "Trojan-Spy.Win32.Zbot.ruxa"),
            ("Microsoft", "PWS:Win32/Zbot"),
            ("McAfee", "Artemis!ABC123"),
        ]);
        assert_eq!(fam.as_deref(), Some("zbot"));
    }

    #[test]
    fn aliases_unify_spellings() {
        let ex = FamilyExtractor::new();
        let fam = ex.extract(&[
            ("Symantec", "Trojan.Zeus"),
            ("Kaspersky", "Trojan-Spy.Win32.Zbot.a"),
        ]);
        assert_eq!(fam.as_deref(), Some("zbot"));
    }

    #[test]
    fn generic_only_labels_yield_none() {
        let ex = FamilyExtractor::new();
        let fam = ex.extract(&[
            ("McAfee", "Artemis!DEADBEEF01"),
            ("Generic1", "Gen:Variant.Kryptik.12"),
            ("Generic2", "Suspicious.Cloud"),
        ]);
        assert_eq!(fam, None);
    }

    #[test]
    fn single_engine_is_not_enough() {
        let ex = FamilyExtractor::new();
        let fam = ex.extract(&[("Kaspersky", "Trojan.Win32.Fareit.x")]);
        assert_eq!(fam, None);
        let relaxed = FamilyExtractor::new().with_min_engines(1);
        assert_eq!(
            relaxed
                .extract(&[("Kaspersky", "Trojan.Win32.Fareit.x")])
                .as_deref(),
            Some("fareit")
        );
    }

    #[test]
    fn same_engine_does_not_double_vote() {
        let ex = FamilyExtractor::new();
        // One engine mentioning the token twice is still one vote.
        let fam = ex.extract(&[("X", "Sality.Win32.Sality.q")]);
        assert_eq!(fam, None);
    }

    #[test]
    fn serial_fragments_ignored() {
        let ex = FamilyExtractor::new().with_min_engines(1);
        let fam = ex.extract(&[("McAfee", "Downloader-FYH!6C7411D1C043")]);
        assert_eq!(fam, None, "hex serials and short tokens are not families");
    }

    #[test]
    fn deterministic_tie_break() {
        let ex = FamilyExtractor::new();
        let labels = [
            ("A", "Trojan.Alpha"),
            ("B", "Trojan.Alphabeta"),
            ("C", "Win32.Alpha.x"),
            ("D", "Win32.Alphabeta.y"),
        ];
        let a = ex.extract(&labels);
        let b = ex.extract(&labels);
        assert_eq!(a, b);
        assert!(a.is_some());
    }
}
