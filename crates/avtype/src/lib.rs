//! AV-label interpretation for `downlake`: the paper's **AVType** tool
//! (behaviour-type extraction, §II-C) and an **AVclass**-style family
//! extractor (Sebastián et al., used in §III).
//!
//! AVType resolves the behaviour type of a malicious file from the labels
//! assigned by five leading AV engines using a vendor-specific *label
//! interpretation map* and three conflict-resolution rules:
//!
//! 1. **Voting** — each label maps to a type; the type with the most
//!    votes wins.
//! 2. **Specificity** — on a tie, the most behaviour-specific type wins
//!    (`banker` beats `trojan`; `dropper` beats a generic `Artemis`).
//! 3. **Manual** — rare residual ties go to an analyst callback.
//!
//! # Example
//!
//! The paper's own worked example (§II-C):
//!
//! ```
//! use downlake_avtype::{BehaviorExtractor, Resolution};
//! use downlake_types::MalwareType;
//!
//! let extractor = BehaviorExtractor::new();
//! let verdict = extractor.extract(&[
//!     ("Symantec", "Trojan.Zbot"),
//!     ("McAfee", "Downloader-FYH!6C7411D1C043"),
//!     ("Kaspersky", "Trojan-Spy.Win32.Zbot.ruxa"),
//!     ("Microsoft", "PWS:Win32/Zbot"),
//! ]);
//! assert_eq!(verdict.ty, MalwareType::Banker);
//! assert_eq!(verdict.resolution, Resolution::Voting);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod behavior;
mod family;
mod map;
mod parse;

pub use behavior::{BehaviorExtractor, Resolution, ResolutionStats, TypeVerdict};
pub use family::{FamilyExtractor, GENERIC_TOKENS};
pub use map::{label_type, LabelInterpretationMap};
pub use parse::tokenize;
