//! The label interpretation map (§II-C).
//!
//! Two layers of keyword knowledge, mirroring how Trend Micro's map plus
//! analyst experience work in the paper:
//!
//! * **family keywords** — family names whose behaviour is established
//!   (Zbot is a banker regardless of the surrounding label text); these
//!   take precedence;
//! * **type keywords** — vendor label components (`pws`, `dloadr`,
//!   `bkdr`, `rogue`, …); when several match, the most *specific* type is
//!   taken for that label (a `Trojan-Downloader` label is a dropper
//!   label, not a trojan label).

use crate::parse::tokenize;
use downlake_types::MalwareType;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Family names with established behaviour (take precedence over type
/// keywords within one label).
const FAMILY_KEYWORDS: &[(&str, MalwareType)] = &[
    ("zbot", MalwareType::Banker),
    ("zeus", MalwareType::Banker),
    ("bancos", MalwareType::Banker),
    ("banload", MalwareType::Banker),
    ("cryptolocker", MalwareType::Ransomware),
    ("urausy", MalwareType::Ransomware),
    ("reveton", MalwareType::Ransomware),
    ("zeroaccess", MalwareType::Bot),
    ("gamarue", MalwareType::Bot),
    ("sality", MalwareType::Worm),
    ("vobfus", MalwareType::Worm),
    ("fakerean", MalwareType::FakeAv),
    ("refog", MalwareType::Spyware),
];

/// Vendor-label type keywords.
const TYPE_KEYWORDS: &[(&str, MalwareType)] = &[
    // droppers / downloaders
    ("downloader", MalwareType::Dropper),
    ("trojandownloader", MalwareType::Dropper),
    ("dloadr", MalwareType::Dropper),
    ("dropper", MalwareType::Dropper),
    ("dldr", MalwareType::Dropper),
    // bankers / credential stealers
    ("pws", MalwareType::Banker),
    ("banker", MalwareType::Banker),
    ("infostealer", MalwareType::Banker),
    ("banking", MalwareType::Banker),
    // bots
    ("backdoor", MalwareType::Bot),
    ("bkdr", MalwareType::Bot),
    ("bot", MalwareType::Bot),
    ("ircbot", MalwareType::Bot),
    // fake AVs
    ("fakeav", MalwareType::FakeAv),
    ("rogue", MalwareType::FakeAv),
    ("fakealert", MalwareType::FakeAv),
    ("fraudtool", MalwareType::FakeAv),
    // ransomware
    ("ransom", MalwareType::Ransomware),
    ("ransomlock", MalwareType::Ransomware),
    ("cryptor", MalwareType::Ransomware),
    // worms
    ("worm", MalwareType::Worm),
    // spyware
    ("spy", MalwareType::Spyware),
    ("spyware", MalwareType::Spyware),
    ("trojanspy", MalwareType::Spyware),
    ("tspy", MalwareType::Spyware),
    ("keylogger", MalwareType::Spyware),
    // adware
    ("adware", MalwareType::Adware),
    ("adw", MalwareType::Adware),
    ("adload", MalwareType::Adware),
    // PUPs
    ("pua", MalwareType::Pup),
    ("pup", MalwareType::Pup),
    ("unwanted", MalwareType::Pup),
    ("webtoolbar", MalwareType::Pup),
    ("bundler", MalwareType::Pup),
    ("softwarebundler", MalwareType::Pup),
    // generic trojan tier
    ("trojan", MalwareType::Trojan),
    ("troj", MalwareType::Trojan),
    // explicit generics
    ("artemis", MalwareType::Undefined),
    ("generic", MalwareType::Undefined),
    ("heuristic", MalwareType::Undefined),
    ("suspicious", MalwareType::Undefined),
    ("kryptik", MalwareType::Undefined),
];

/// The assembled keyword map.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LabelInterpretationMap {
    family: HashMap<String, MalwareType>,
    types: HashMap<String, MalwareType>,
}

impl LabelInterpretationMap {
    /// Builds the default map (Trend Micro–style keywords for the five
    /// leading vendors plus common third-tier grammar).
    pub fn new() -> Self {
        Self {
            family: FAMILY_KEYWORDS
                .iter()
                .map(|&(k, v)| (k.to_owned(), v))
                .collect(),
            types: TYPE_KEYWORDS
                .iter()
                .map(|&(k, v)| (k.to_owned(), v))
                .collect(),
        }
    }

    /// Adds/overrides a family keyword.
    pub fn insert_family(&mut self, keyword: impl Into<String>, ty: MalwareType) {
        self.family.insert(keyword.into(), ty);
    }

    /// Adds/overrides a type keyword.
    pub fn insert_type(&mut self, keyword: impl Into<String>, ty: MalwareType) {
        self.types.insert(keyword.into(), ty);
    }

    /// Interprets a single AV label into a behaviour type.
    ///
    /// Family keywords win outright; otherwise the most specific matching
    /// type keyword wins; labels matching nothing are `Undefined`.
    pub fn interpret(&self, label: &str) -> MalwareType {
        let tokens = tokenize(label);
        for t in &tokens {
            if let Some(&ty) = self.family.get(t.as_str()) {
                return ty;
            }
        }
        let mut best: Option<MalwareType> = None;
        for t in &tokens {
            if let Some(&ty) = self.types.get(t.as_str()) {
                // Ties go to the later keyword: vendor grammars put the
                // refining component after the coarse one (TSPY_BANKER
                // should read as banker, not spyware).
                best = Some(match best {
                    Some(prev) if prev.specificity() > ty.specificity() => prev,
                    _ => ty,
                });
            }
        }
        best.unwrap_or(MalwareType::Undefined)
    }
}

impl Default for LabelInterpretationMap {
    fn default() -> Self {
        Self::new()
    }
}

/// Interprets a label with the default map (convenience for one-offs).
pub fn label_type(label: &str) -> MalwareType {
    LabelInterpretationMap::new().interpret(label)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_label_examples() {
        let map = LabelInterpretationMap::new();
        assert_eq!(map.interpret("TROJ_FAKEAV.SMU1"), MalwareType::FakeAv);
        assert_eq!(map.interpret("Trojan.Zbot"), MalwareType::Banker);
        assert_eq!(
            map.interpret("Downloader-FYH!6C7411D1C043"),
            MalwareType::Dropper
        );
        assert_eq!(
            map.interpret("Trojan-Spy.Win32.Zbot.ruxa"),
            MalwareType::Banker
        );
        assert_eq!(map.interpret("PWS:Win32/Zbot"), MalwareType::Banker);
        assert_eq!(
            map.interpret("Trojan-Downloader.Win32.Agent.heqj"),
            MalwareType::Dropper
        );
        assert_eq!(
            map.interpret("Artemis!DEC3771868CB"),
            MalwareType::Undefined
        );
    }

    #[test]
    fn specificity_within_one_label() {
        let map = LabelInterpretationMap::new();
        // trojan + downloader → dropper beats trojan.
        assert_eq!(
            map.interpret("Trojan-Downloader.Win32.Small"),
            MalwareType::Dropper
        );
        // trojan alone stays trojan.
        assert_eq!(map.interpret("Trojan.Win32.Agent"), MalwareType::Trojan);
    }

    #[test]
    fn unmatched_labels_are_undefined() {
        let map = LabelInterpretationMap::new();
        assert_eq!(map.interpret("W32/Blarg.x"), MalwareType::Undefined);
        assert_eq!(map.interpret(""), MalwareType::Undefined);
    }

    #[test]
    fn custom_keywords_override() {
        let mut map = LabelInterpretationMap::new();
        map.insert_family("blarg", MalwareType::Ransomware);
        assert_eq!(map.interpret("W32/Blarg.x"), MalwareType::Ransomware);
        map.insert_type("w32", MalwareType::Worm);
        assert_eq!(map.interpret("W32/Other.x"), MalwareType::Worm);
    }

    #[test]
    fn not_a_virus_labels() {
        let map = LabelInterpretationMap::new();
        assert_eq!(
            map.interpret("not-a-virus:AdWare.Win32.Eorezo.abcd"),
            MalwareType::Adware
        );
        assert_eq!(
            map.interpret("not-a-virus:WebToolbar.Win32.Conduit.x"),
            MalwareType::Pup
        );
    }
}
