// The doc example below shows real tab-separated output.
#![allow(clippy::tabs_in_doc_comments)]

//! `avtype` — command-line behaviour-type and family extraction from AV
//! labels, mirroring the open-source tool the paper publishes
//! (gitlab.com/pub-open/AVType).
//!
//! One *sample* per line on stdin; each line holds comma-separated
//! `Engine=Label` pairs:
//!
//! ```text
//! $ echo 'Symantec=Trojan.Zbot,McAfee=Downloader-FYH!6C7411D1C043,Kaspersky=Trojan-Spy.Win32.Zbot.ruxa,Microsoft=PWS:Win32/Zbot' | avtype
//! banker	voting	zbot
//! ```
//!
//! Output columns (tab-separated): behaviour type, resolution rule that
//! decided it, extracted family (`-` if none).
//!
//! Pass `Engine=Label` pairs as CLI arguments to classify one sample
//! without stdin. `--stats` appends a resolution-statistics summary.

use downlake_avtype::{BehaviorExtractor, FamilyExtractor, Resolution, ResolutionStats};
use std::io::{self, BufRead, Write};

fn parse_pairs(line: &str) -> Vec<(String, String)> {
    line.split(',')
        .filter_map(|pair| {
            let (engine, label) = pair.split_once('=')?;
            let engine = engine.trim();
            let label = label.trim();
            if engine.is_empty() || label.is_empty() {
                None
            } else {
                Some((engine.to_owned(), label.to_owned()))
            }
        })
        .collect()
}

fn resolution_name(r: Resolution) -> &'static str {
    match r {
        Resolution::NoConflict => "no-conflict",
        Resolution::Voting => "voting",
        Resolution::Specificity => "specificity",
        Resolution::Manual => "manual",
    }
}

fn classify_line(
    behavior: &BehaviorExtractor,
    families: &FamilyExtractor,
    stats: &mut ResolutionStats,
    line: &str,
) -> Option<String> {
    let pairs = parse_pairs(line);
    if pairs.is_empty() {
        return None;
    }
    let refs: Vec<(&str, &str)> = pairs
        .iter()
        .map(|(e, l)| (e.as_str(), l.as_str()))
        .collect();
    let verdict = behavior.extract(&refs);
    stats.record(verdict.resolution);
    let family = families.extract(&refs).unwrap_or_else(|| "-".to_owned());
    Some(format!(
        "{}\t{}\t{}",
        verdict.ty,
        resolution_name(verdict.resolution),
        family
    ))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want_stats = args.iter().any(|a| a == "--stats");
    let inline: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();

    let behavior = BehaviorExtractor::new();
    let families = FamilyExtractor::new();
    let mut stats = ResolutionStats::default();
    let stdout = io::stdout();
    let mut out = stdout.lock();

    if !inline.is_empty() {
        let line = inline
            .iter()
            .map(|s| s.as_str())
            .collect::<Vec<_>>()
            .join(",");
        if let Some(result) = classify_line(&behavior, &families, &mut stats, &line) {
            let _ = writeln!(out, "{result}");
        } else {
            eprintln!("avtype: no Engine=Label pairs found in arguments");
            std::process::exit(2);
        }
    } else {
        let stdin = io::stdin();
        for line in stdin.lock().lines() {
            let Ok(line) = line else { break };
            if line.trim().is_empty() {
                continue;
            }
            match classify_line(&behavior, &families, &mut stats, &line) {
                Some(result) => {
                    let _ = writeln!(out, "{result}");
                }
                None => {
                    let _ = writeln!(out, "undefined\tno-labels\t-");
                }
            }
        }
    }

    if want_stats {
        let total = stats.total().max(1) as f64;
        eprintln!(
            "# resolution: no-conflict {:.1}%, voting {:.1}%, specificity {:.1}%, manual {:.1}%",
            100.0 * stats.no_conflict as f64 / total,
            100.0 * stats.voting as f64 / total,
            100.0 * stats.specificity as f64 / total,
            100.0 * stats.manual as f64 / total,
        );
    }
}
