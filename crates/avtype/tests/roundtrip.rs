//! Round-trip tests: labels emitted by the ground-truth oracle's vendor
//! grammars must be interpretable by the AVType reimplementation.

use downlake_avtype::{BehaviorExtractor, FamilyExtractor, Resolution, ResolutionStats};
use downlake_groundtruth::{engine_roster, EngineTier};
use downlake_types::MalwareType;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Types whose informative vendor labels should round-trip exactly.
const ROUNDTRIP_TYPES: [MalwareType; 9] = [
    MalwareType::Dropper,
    MalwareType::Banker,
    MalwareType::Bot,
    MalwareType::FakeAv,
    MalwareType::Ransomware,
    MalwareType::Worm,
    MalwareType::Spyware,
    MalwareType::Adware,
    MalwareType::Pup,
];

#[test]
fn informative_labels_round_trip_per_engine() {
    let roster = engine_roster();
    let extractor = BehaviorExtractor::new();
    let mut rng = SmallRng::seed_from_u64(101);
    for engine in roster.iter().filter(|e| e.tier == EngineTier::Trusted) {
        for ty in ROUNDTRIP_TYPES {
            let label = engine.render_label(ty, Some("testfam"), true, &mut rng);
            let verdict = extractor.extract(&[(engine.name, label.as_str())]);
            assert_eq!(
                verdict.ty, ty,
                "{}: label {label} interpreted as {} instead of {ty}",
                engine.name, verdict.ty
            );
        }
    }
}

#[test]
fn uninformative_labels_degrade_to_generic_tier() {
    let roster = engine_roster();
    let extractor = BehaviorExtractor::new();
    let mut rng = SmallRng::seed_from_u64(102);
    for engine in &roster {
        let label = engine.render_label(MalwareType::Ransomware, None, false, &mut rng);
        let verdict = extractor.extract(&[(engine.name, label.as_str())]);
        assert!(
            !verdict.ty.is_specific(),
            "{}: generic label {label} produced specific type {}",
            engine.name,
            verdict.ty
        );
    }
}

#[test]
fn family_round_trips_when_two_engines_name_it() {
    let roster = engine_roster();
    let families = FamilyExtractor::new();
    let mut rng = SmallRng::seed_from_u64(103);
    let ms = roster.iter().find(|e| e.name == "Microsoft").unwrap();
    let kasp = roster.iter().find(|e| e.name == "Kaspersky").unwrap();
    let l1 = ms.render_label(MalwareType::Banker, Some("krendol"), true, &mut rng);
    let l2 = kasp.render_label(MalwareType::Banker, Some("krendol"), true, &mut rng);
    let fam = families.extract(&[("Microsoft", l1.as_str()), ("Kaspersky", l2.as_str())]);
    assert_eq!(fam.as_deref(), Some("krendol"));
}

#[test]
fn mixed_corpus_resolution_stats_have_paper_shape() {
    // Build a corpus of synthetic multi-engine label sets and check that
    // the no-conflict + voting + specificity buckets dominate and manual
    // is rare (paper: 44% / 28% / 23% / 5%).
    let roster = engine_roster();
    let leading: Vec<_> = roster
        .iter()
        .filter(|e| downlake_groundtruth::LEADING_ENGINES.contains(&e.name))
        .collect();
    let extractor = BehaviorExtractor::new();
    let mut rng = SmallRng::seed_from_u64(104);
    let mut stats = ResolutionStats::default();
    use rand::Rng;
    for i in 0..600 {
        let ty = ROUNDTRIP_TYPES[i % ROUNDTRIP_TYPES.len()];
        let mut labels: Vec<(String, String)> = Vec::new();
        for e in &leading {
            if !rng.gen_bool(0.8) {
                continue;
            }
            let informative = rng.gen_bool(0.7);
            labels.push((
                e.name.to_string(),
                e.render_label(ty, Some("famtok"), informative, &mut rng),
            ));
        }
        if labels.is_empty() {
            continue;
        }
        let refs: Vec<(&str, &str)> = labels
            .iter()
            .map(|(n, l)| (n.as_str(), l.as_str()))
            .collect();
        stats.record(extractor.extract(&refs).resolution);
    }
    let total = stats.total() as f64;
    assert!(stats.no_conflict as f64 / total > 0.15, "{stats:?}");
    assert!(stats.manual as f64 / total < 0.15, "{stats:?}");
    assert!(
        (stats.voting + stats.specificity) as f64 / total > 0.2,
        "{stats:?}"
    );
}

#[test]
fn resolution_example_from_paper_worked_end_to_end() {
    let extractor = BehaviorExtractor::new();
    let verdict = extractor.extract(&[
        ("Symantec", "Trojan.Zbot"),
        ("McAfee", "Downloader-FYH!6C7411D1C043"),
        ("Kaspersky", "Trojan-Spy.Win32.Zbot.ruxa"),
        ("Microsoft", "PWS:Win32/Zbot"),
    ]);
    assert_eq!(verdict.ty, MalwareType::Banker);
    assert_eq!(verdict.resolution, Resolution::Voting);
}
