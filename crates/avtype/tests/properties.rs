//! Property-based tests: the extractors must be total and deterministic
//! on arbitrary label strings, and never emit nonsense.

use downlake_avtype::{tokenize, BehaviorExtractor, FamilyExtractor, GENERIC_TOKENS};
use proptest::prelude::*;

fn arbitrary_label() -> impl Strategy<Value = String> {
    // A mix of realistic label shapes and raw noise.
    prop_oneof![
        "[A-Za-z]{2,12}([.:/_-][A-Za-z0-9]{1,10}){0,4}",
        "[ -~]{0,40}",
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Tokenisation is total, lowercase, and free of separators.
    #[test]
    fn tokenize_is_clean(label in arbitrary_label()) {
        for token in tokenize(&label) {
            prop_assert!(!token.is_empty());
            prop_assert!(token.chars().all(|c| c.is_ascii_alphanumeric()));
            prop_assert_eq!(token.to_ascii_lowercase(), token.clone());
            prop_assert!(label.to_ascii_lowercase().contains(&token));
        }
    }

    /// Behaviour extraction never panics and is deterministic, whatever
    /// the engines emit.
    #[test]
    fn behavior_extraction_is_total(
        labels in proptest::collection::vec(arbitrary_label(), 0..6),
    ) {
        let extractor = BehaviorExtractor::new();
        let pairs: Vec<(&str, &str)> = labels.iter().map(|l| ("X", l.as_str())).collect();
        let a = extractor.extract(&pairs);
        let b = extractor.extract(&pairs);
        prop_assert_eq!(a, b);
    }

    /// Family extraction never returns a generic/platform token, a
    /// too-short token, or a serial fragment.
    #[test]
    fn family_is_never_generic(
        labels in proptest::collection::vec(arbitrary_label(), 0..6),
    ) {
        let extractor = FamilyExtractor::new();
        let pairs: Vec<(&str, &str)> = labels
            .iter()
            .enumerate()
            .map(|(i, l)| (["A", "B", "C", "D", "E", "F"][i], l.as_str()))
            .collect();
        if let Some(family) = extractor.extract(&pairs) {
            prop_assert!(family.len() >= 4, "family {family} too short");
            prop_assert!(
                !GENERIC_TOKENS.contains(&family.as_str()),
                "generic token {family} leaked"
            );
            let digits = family.bytes().filter(u8::is_ascii_digit).count();
            prop_assert!(digits * 2 < family.len(), "serial-like family {family}");
        }
    }

    /// A single engine can never establish a family (threshold 2).
    #[test]
    fn single_engine_never_names_family(label in arbitrary_label()) {
        let extractor = FamilyExtractor::new();
        prop_assert_eq!(extractor.extract(&[("Solo", label.as_str())]), None);
    }
}
