//! Property-based tests: the extractors must be total and deterministic
//! on arbitrary label strings, and never emit nonsense.

use downlake_avtype::{
    tokenize, BehaviorExtractor, FamilyExtractor, Resolution, ResolutionStats, GENERIC_TOKENS,
};
use proptest::prelude::*;

fn arbitrary_label() -> impl Strategy<Value = String> {
    // A mix of realistic label shapes and raw noise.
    prop_oneof![
        "[A-Za-z]{2,12}([.:/_-][A-Za-z0-9]{1,10}){0,4}",
        "[ -~]{0,40}",
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Tokenisation is total, lowercase, and free of separators.
    #[test]
    fn tokenize_is_clean(label in arbitrary_label()) {
        for token in tokenize(&label) {
            prop_assert!(!token.is_empty());
            prop_assert!(token.chars().all(|c| c.is_ascii_alphanumeric()));
            prop_assert_eq!(token.to_ascii_lowercase(), token.clone());
            prop_assert!(label.to_ascii_lowercase().contains(&token));
        }
    }

    /// Behaviour extraction never panics and is deterministic, whatever
    /// the engines emit.
    #[test]
    fn behavior_extraction_is_total(
        labels in proptest::collection::vec(arbitrary_label(), 0..6),
    ) {
        let extractor = BehaviorExtractor::new();
        let pairs: Vec<(&str, &str)> = labels.iter().map(|l| ("X", l.as_str())).collect();
        let a = extractor.extract(&pairs);
        let b = extractor.extract(&pairs);
        prop_assert_eq!(a, b);
    }

    /// Family extraction never returns a generic/platform token, a
    /// too-short token, or a serial fragment.
    #[test]
    fn family_is_never_generic(
        labels in proptest::collection::vec(arbitrary_label(), 0..6),
    ) {
        let extractor = FamilyExtractor::new();
        let pairs: Vec<(&str, &str)> = labels
            .iter()
            .enumerate()
            .map(|(i, l)| (["A", "B", "C", "D", "E", "F"][i], l.as_str()))
            .collect();
        if let Some(family) = extractor.extract(&pairs) {
            prop_assert!(family.len() >= 4, "family {family} too short");
            prop_assert!(
                !GENERIC_TOKENS.contains(&family.as_str()),
                "generic token {family} leaked"
            );
            let digits = family.bytes().filter(u8::is_ascii_digit).count();
            prop_assert!(digits * 2 < family.len(), "serial-like family {family}");
        }
    }

    /// A single engine can never establish a family (threshold 2).
    #[test]
    fn single_engine_never_names_family(label in arbitrary_label()) {
        let extractor = FamilyExtractor::new();
        prop_assert_eq!(extractor.extract(&[("Solo", label.as_str())]), None);
    }

    /// `ResolutionStats::merge` is commutative: per-chunk partials
    /// merged in either order equal the sequential tally. This is the
    /// law cited by the `ResolutionStats` entry in
    /// `merge-contracts.json`, which licenses the pooled reduction in
    /// `downlake::pipeline` that `downlake-lint` rule M1 guards.
    #[test]
    fn resolution_stats_merge_commutes(
        verdicts in proptest::collection::vec(0u8..4, 0..64),
        cut in 0usize..64,
    ) {
        let cut = cut.min(verdicts.len());
        let verdict_of = |v: u8| match v {
            0 => Resolution::NoConflict,
            1 => Resolution::Voting,
            2 => Resolution::Specificity,
            _ => Resolution::Manual,
        };
        let tally = |slice: &[u8]| {
            let mut stats = ResolutionStats::default();
            for &v in slice {
                stats.record(verdict_of(v));
            }
            stats
        };
        let mut sequential = ResolutionStats::default();
        for &v in &verdicts {
            sequential.record(verdict_of(v));
        }
        let mut ab = tally(&verdicts[..cut]);
        ab.merge(tally(&verdicts[cut..]));
        let mut ba = tally(&verdicts[cut..]);
        ba.merge(tally(&verdicts[..cut]));
        prop_assert_eq!(ab, ba);
        prop_assert_eq!(ab, sequential);
    }
}
