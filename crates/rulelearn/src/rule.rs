//! Individual classification rules.

use crate::data::Schema;
use serde::{Deserialize, Serialize};

/// One `attribute = value` test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Condition {
    /// Attribute index into the schema.
    pub attr: usize,
    /// Required value id.
    pub value: u32,
}

/// A conjunctive classification rule extracted by PART.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rule {
    /// The conjunction of conditions (empty = catch-all default rule).
    pub conditions: Vec<Condition>,
    /// Predicted class id.
    pub class: u8,
    /// Training instances the rule covered when extracted.
    pub covered: usize,
    /// Of those, how many it misclassified.
    pub errors: usize,
}

impl Rule {
    /// Training error rate (`errors / covered`; 0 for zero coverage).
    pub fn error_rate(&self) -> f64 {
        if self.covered == 0 {
            0.0
        } else {
            self.errors as f64 / self.covered as f64
        }
    }

    /// Whether the rule is the empty-antecedent default rule.
    pub fn is_default(&self) -> bool {
        self.conditions.is_empty()
    }

    /// Whether an encoded row satisfies every condition.
    pub fn matches(&self, values: &[Option<u32>]) -> bool {
        self.conditions
            .iter()
            .all(|c| values[c.attr] == Some(c.value))
    }

    /// Renders the rule in the paper's human-readable form:
    ///
    /// ```text
    /// IF (signer is "Somoto Ltd.") AND (packer is "NSIS") → malicious
    /// ```
    pub fn render(&self, schema: &Schema) -> String {
        let class = &schema.classes()[self.class as usize];
        if self.conditions.is_empty() {
            return format!(
                "IF (anything) → {class}  [covered={}, errors={}]",
                self.covered, self.errors
            );
        }
        let conds: Vec<String> = self
            .conditions
            .iter()
            .map(|c| {
                let attr = &schema.attrs()[c.attr];
                format!("({} is {:?})", attr.name(), attr.value(c.value))
            })
            .collect();
        format!(
            "IF {} → {class}  [covered={}, errors={}]",
            conds.join(" AND "),
            self.covered,
            self.errors
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::InstancesBuilder;

    fn schema() -> crate::data::Schema {
        let mut b = InstancesBuilder::new(&["signer", "packer"], &["benign", "malicious"]);
        b.push(&["Somoto Ltd.", "NSIS"], "malicious");
        b.push(&["TeamViewer", "INNO"], "benign");
        b.build().schema().clone()
    }

    #[test]
    fn matching_requires_all_conditions() {
        let rule = Rule {
            conditions: vec![
                Condition { attr: 0, value: 0 },
                Condition { attr: 1, value: 0 },
            ],
            class: 1,
            covered: 10,
            errors: 0,
        };
        assert!(rule.matches(&[Some(0), Some(0)]));
        assert!(!rule.matches(&[Some(0), Some(1)]));
        assert!(!rule.matches(&[None, Some(0)]));
    }

    #[test]
    fn default_rule_matches_everything() {
        let rule = Rule {
            conditions: vec![],
            class: 0,
            covered: 5,
            errors: 2,
        };
        assert!(rule.is_default());
        assert!(rule.matches(&[None, None]));
        assert!((rule.error_rate() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn render_matches_paper_style() {
        let schema = schema();
        let rule = Rule {
            conditions: vec![
                Condition { attr: 0, value: 0 },
                Condition { attr: 1, value: 0 },
            ],
            class: 1,
            covered: 52,
            errors: 0,
        };
        let text = rule.render(&schema);
        assert_eq!(
            text,
            "IF (signer is \"Somoto Ltd.\") AND (packer is \"NSIS\") → malicious  [covered=52, errors=0]"
        );
    }

    #[test]
    fn zero_coverage_error_rate_is_zero() {
        let rule = Rule {
            conditions: vec![],
            class: 0,
            covered: 0,
            errors: 0,
        };
        assert_eq!(rule.error_rate(), 0.0);
    }
}
