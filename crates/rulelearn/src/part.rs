//! The PART decision-list learner (Frank & Witten 1998).

use crate::data::Instances;
use crate::rule::{Condition, Rule};
use crate::ruleset::RuleSet;
use crate::tree::{DecisionTree, TreeConfig, TreeNode};
use serde::{Deserialize, Serialize};

/// PART configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PartLearner {
    /// Configuration of each round's tree.
    pub tree: TreeConfig,
    /// Upper bound on extracted rules (safety valve).
    pub max_rules: usize,
}

impl Default for PartLearner {
    fn default() -> Self {
        Self {
            tree: TreeConfig::default(),
            max_rules: 10_000,
        }
    }
}

impl PartLearner {
    /// Creates a learner with the given per-round tree configuration.
    pub fn new(tree: TreeConfig) -> Self {
        Self {
            tree,
            ..Self::default()
        }
    }

    /// Learns a rule set: repeatedly grow a pruned tree over the
    /// still-uncovered instances, extract the leaf with the largest
    /// coverage as a rule, remove what it covers, repeat.
    pub fn learn(&self, instances: &Instances) -> RuleSet {
        self.learn_impl(instances, None)
    }

    /// [`PartLearner::learn`] plus metric observation.
    ///
    /// Learning is single-threaded and deterministic, so everything
    /// recorded — training-iteration and rule counters, the per-rule
    /// coverage histogram — lands in `registry`'s deterministic plane.
    /// The whole call's duration (read from `clock`) is recorded as a
    /// `rulelearn.learn` span in the timing plane. The returned rule set
    /// is identical to the unobserved path.
    pub fn learn_observed(
        &self,
        instances: &Instances,
        registry: &downlake_obs::Registry,
        clock: &dyn downlake_obs::Clock,
    ) -> RuleSet {
        let set = {
            let _span = registry.span("rulelearn.learn", clock);
            self.learn_impl(instances, Some(registry))
        };
        registry.counter_add("rulelearn.instances", instances.len() as u64);
        registry.counter_add("rulelearn.rules", set.len() as u64);
        for rule in set.rules() {
            registry.record("rulelearn.rule_covered", rule.covered as u64);
        }
        set
    }

    fn learn_impl(&self, instances: &Instances, obs: Option<&downlake_obs::Registry>) -> RuleSet {
        let mut remaining: Vec<u32> = (0..instances.len() as u32).collect();
        let mut rules: Vec<Rule> = Vec::new();
        while !remaining.is_empty() && rules.len() < self.max_rules {
            if let Some(registry) = obs {
                registry.counter_add("rulelearn.iterations", 1);
            }
            let tree = DecisionTree::learn_subset(instances, &remaining, self.tree);
            let Some(best) = best_leaf(tree.root()) else {
                break;
            };
            let rule = Rule {
                conditions: best.path,
                class: best.class,
                covered: best.count,
                errors: best.errors,
            };
            if rule.is_default() {
                // The tree collapsed to a single leaf: one catch-all rule
                // covers the remainder; the list is complete.
                rules.push(rule);
                break;
            }
            let before = remaining.len();
            remaining.retain(|&i| !matches_row(instances, &rule, i));
            debug_assert!(remaining.len() < before, "rule must cover something");
            if remaining.len() == before {
                break; // defensive: avoid livelock on degenerate data
            }
            rules.push(rule);
        }
        RuleSet::new(instances.schema().clone(), rules)
    }
}

#[derive(Debug)]
struct BestLeaf {
    path: Vec<Condition>,
    class: u8,
    count: usize,
    errors: usize,
}

/// Finds the leaf with the largest training coverage, with its path.
fn best_leaf(root: &TreeNode) -> Option<BestLeaf> {
    let mut best: Option<BestLeaf> = None;
    let mut path: Vec<Condition> = Vec::new();
    walk(root, &mut path, &mut best);
    best
}

fn walk(node: &TreeNode, path: &mut Vec<Condition>, best: &mut Option<BestLeaf>) {
    match node {
        TreeNode::Leaf {
            class,
            count,
            errors,
        } => {
            if *count > 0 && best.as_ref().is_none_or(|b| *count > b.count) {
                *best = Some(BestLeaf {
                    path: path.clone(),
                    class: *class,
                    count: *count,
                    errors: *errors,
                });
            }
        }
        TreeNode::Split { attr, children, .. } => {
            for (value, child) in children.iter().enumerate() {
                path.push(Condition {
                    attr: *attr,
                    value: value as u32,
                });
                walk(child, path, best);
                path.pop();
            }
        }
    }
}

fn matches_row(instances: &Instances, rule: &Rule, row: u32) -> bool {
    let values = &instances.rows()[row as usize].values;
    rule.conditions.iter().all(|c| values[c.attr] == c.value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::InstancesBuilder;
    use crate::ruleset::{ConflictPolicy, Verdict};

    fn signer_world() -> Instances {
        let mut b =
            InstancesBuilder::new(&["file signer", "file packer"], &["benign", "malicious"]);
        for _ in 0..40 {
            b.push(&["Somoto Ltd.", "NSIS"], "malicious");
            b.push(&["SecureInstall", "UPX"], "malicious");
            b.push(&["TeamViewer", "INNO"], "benign");
            b.push(&["Dell Inc.", "(unpacked)"], "benign");
        }
        // Mixed-reputation signer: mostly benign with some malicious.
        for _ in 0..20 {
            b.push(&["Binstall", "INNO"], "benign");
        }
        for _ in 0..4 {
            b.push(&["Binstall", "NSIS"], "malicious");
        }
        b.build()
    }

    #[test]
    fn learns_signer_rules() {
        let inst = signer_world();
        // Deployment always goes through τ-selection (which drops the
        // catch-all default rule; the paper's §VI-C).
        let set = PartLearner::default().learn(&inst).select(0.01);
        assert!(!set.is_empty());
        // A clean signer rule must exist and classify correctly.
        let v = set.classify_values(&["Somoto Ltd.", "NSIS"], ConflictPolicy::Reject);
        assert_eq!(v.class_name(), Some("malicious"));
        let v = set.classify_values(&["TeamViewer", "INNO"], ConflictPolicy::Reject);
        assert_eq!(v.class_name(), Some("benign"));
    }

    #[test]
    fn rules_cover_all_training_instances() {
        let inst = signer_world();
        let set = PartLearner::default().learn(&inst);
        // Every training row must match at least one rule (the decision
        // list is complete, possibly via the default rule).
        for row in inst.rows() {
            let values: Vec<Option<u32>> = row.values.iter().map(|&v| Some(v)).collect();
            let matched = set.rules().iter().any(|r| r.matches(&values));
            assert!(matched, "uncovered row {row:?}");
        }
    }

    #[test]
    fn tau_selection_keeps_pure_rules_only() {
        let inst = signer_world();
        let set = PartLearner::default().learn(&inst);
        let strict = set.select(0.0);
        for rule in strict.rules() {
            assert_eq!(rule.errors, 0, "{}", rule.render(inst.schema()));
        }
        // Looser τ admits at least as many rules.
        assert!(set.select(0.05).len() >= strict.len());
    }

    #[test]
    fn extraction_makes_progress_and_terminates() {
        let inst = signer_world();
        let set = PartLearner::default().learn(&inst);
        assert!(
            set.len() < inst.len(),
            "one rule per instance means no generalisation"
        );
        // Coverage numbers are positive and sum to ≥ training size
        // (every instance covered by exactly the rule that removed it).
        let total: usize = set.rules().iter().map(|r| r.covered).sum();
        assert!(total >= inst.len() * 9 / 10);
    }

    #[test]
    fn pure_single_class_needs_no_conditions() {
        let mut b = InstancesBuilder::new(&["x"], &["a", "b"]);
        for _ in 0..10 {
            b.push(&["v"], "a");
        }
        let set = PartLearner::default().learn(&b.build());
        assert_eq!(set.len(), 1);
        assert!(set.rules()[0].is_default());
        // And select() drops it: a catch-all is not deployable alone.
        assert!(set.select(0.1).is_empty());
    }

    #[test]
    fn conflict_rejection_on_mixed_signer() {
        let inst = signer_world();
        let set = PartLearner::default().learn(&inst).select(0.1);
        // Binstall+NSIS sits between a benign-signer pattern and a
        // malicious-packer pattern; whatever the learned rules, the
        // classifier must answer deterministically and never panic.
        let v = set.classify_values(&["Binstall", "NSIS"], ConflictPolicy::Reject);
        match v.verdict() {
            Verdict::Class(_) | Verdict::Rejected | Verdict::NoMatch => {}
        }
    }

    #[test]
    fn deterministic_learning() {
        let inst = signer_world();
        let a = PartLearner::default().learn(&inst);
        let b = PartLearner::default().learn(&inst);
        assert_eq!(a.rules(), b.rules());
    }

    #[test]
    fn observed_learning_matches_and_counts_iterations() {
        use downlake_obs::{Registry, TestClock};
        let inst = signer_world();
        let plain = PartLearner::default().learn(&inst);
        let registry = Registry::new();
        let clock = TestClock::with_tick(1);
        let observed = PartLearner::default().learn_observed(&inst, &registry, &clock);
        assert_eq!(observed.rules(), plain.rules());
        let report = registry.snapshot();
        assert_eq!(report.counters["rulelearn.rules"], plain.len() as u64);
        assert!(report.counters["rulelearn.iterations"] >= plain.len() as u64);
        assert_eq!(
            report.values["rulelearn.rule_covered"].count(),
            plain.len() as u64
        );
        assert_eq!(report.timings["rulelearn.learn"].count(), 1);
        // Two observed runs agree byte-for-byte on the deterministic plane.
        let registry2 = Registry::new();
        PartLearner::default().learn_observed(&inst, &registry2, &TestClock::with_tick(1));
        let report2 = registry2.snapshot();
        assert_eq!(report.counters, report2.counters);
        assert_eq!(report.values, report2.values);
    }
}
