//! Categorical training data: attributes, value domains, instances.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// One categorical attribute and its value domain.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Attribute {
    name: String,
    values: Vec<String>,
    index: HashMap<String, u32>,
}

impl Attribute {
    fn new(name: &str) -> Self {
        Self {
            name: name.to_owned(),
            values: Vec::new(),
            index: HashMap::new(),
        }
    }

    /// Attribute name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of distinct values seen.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// The string for a value id.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this attribute.
    pub fn value(&self, id: u32) -> &str {
        &self.values[id as usize]
    }

    /// Looks up a value's id, if it has been seen.
    pub fn id_of(&self, value: &str) -> Option<u32> {
        self.index.get(value).copied()
    }

    fn intern(&mut self, value: &str) -> u32 {
        if let Some(&id) = self.index.get(value) {
            return id;
        }
        let id = u32::try_from(self.values.len()).expect("attribute domain too large"); // downlake-lint: allow(P1) — u32 overflow guard is the documented intern contract
        self.values.push(value.to_owned());
        self.index.insert(value.to_owned(), id);
        id
    }
}

/// The shape of a dataset: attribute domains plus class names. Shared by
/// [`Instances`], trees, and rule sets so rules can render themselves.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schema {
    attrs: Vec<Attribute>,
    classes: Vec<String>,
}

impl Schema {
    /// The attributes.
    pub fn attrs(&self) -> &[Attribute] {
        &self.attrs
    }

    /// The class names.
    pub fn classes(&self) -> &[String] {
        &self.classes
    }

    /// The id of a class name.
    pub fn class_id(&self, name: &str) -> Option<u8> {
        self.classes.iter().position(|c| c == name).map(|i| i as u8)
    }

    /// Encodes a row of attribute value strings into value ids; values
    /// never seen in training encode as `None` in that slot.
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the attribute count.
    pub fn encode(&self, values: &[&str]) -> Vec<Option<u32>> {
        assert_eq!(values.len(), self.attrs.len(), "row arity mismatch");
        values
            .iter()
            .zip(&self.attrs)
            .map(|(v, a)| a.id_of(v))
            .collect()
    }

    /// Builds a reusable [`InternedEncoder`] snapshotting this schema's
    /// per-attribute value tables. Build it once per ruleset, then encode
    /// every row through it instead of calling [`Self::encode`] per row.
    pub fn encoder(&self) -> InternedEncoder {
        InternedEncoder {
            tables: self.attrs.iter().map(|a| a.index.clone()).collect(),
        }
    }
}

/// Sentinel for "value never seen in training" in dense (non-`Option`)
/// encodings produced by [`InternedEncoder::encode_dense_into`]. Real
/// value ids are bounded by attribute arity and can never reach it.
pub const UNSEEN: u32 = u32::MAX;

/// A reusable row encoder, built once from a schema's attribute value
/// tables.
///
/// [`Schema::encode`] allocates a fresh output vector and re-walks the
/// schema on every call, which is fine for one-off lookups but wasteful
/// in classification loops that encode thousands of rows against the
/// same ruleset (the batch experiments, the compiled online engine).
/// An `InternedEncoder` snapshots the per-attribute value tables once
/// and then fills caller-owned buffers with no per-call setup.
#[derive(Debug, Clone)]
pub struct InternedEncoder {
    tables: Vec<HashMap<String, u32>>,
}

impl InternedEncoder {
    /// Number of attributes a row must carry.
    pub fn arity(&self) -> usize {
        self.tables.len()
    }

    /// Encodes a row into `out` (cleared first); values never seen in
    /// training encode as `None`, exactly like [`Schema::encode`].
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the attribute count.
    pub fn encode_into(&self, values: &[&str], out: &mut Vec<Option<u32>>) {
        assert_eq!(values.len(), self.tables.len(), "row arity mismatch");
        out.clear();
        out.extend(
            values
                .iter()
                .zip(&self.tables)
                .map(|(v, table)| table.get(*v).copied()),
        );
    }

    /// Allocating convenience form of [`Self::encode_into`].
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the attribute count.
    pub fn encode(&self, values: &[&str]) -> Vec<Option<u32>> {
        let mut out = Vec::with_capacity(self.tables.len());
        self.encode_into(values, &mut out);
        out
    }

    /// Encodes a row into a dense `u32` buffer (cleared first), mapping
    /// never-seen values to [`UNSEEN`]. This is the representation the
    /// compiled online rule engine evaluates: a plain equality compare
    /// per condition, no `Option` discriminant in the hot loop.
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the attribute count.
    pub fn encode_dense_into(&self, values: &[&str], out: &mut Vec<u32>) {
        assert_eq!(values.len(), self.tables.len(), "row arity mismatch");
        out.clear();
        out.extend(
            values
                .iter()
                .zip(&self.tables)
                .map(|(v, table)| table.get(*v).copied().unwrap_or(UNSEEN)),
        );
    }
}

/// One training instance: encoded attribute values plus a class id.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Row {
    /// Value id per attribute.
    pub values: Vec<u32>,
    /// Class id.
    pub class: u8,
}

/// An immutable categorical training set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Instances {
    schema: Schema,
    rows: Vec<Row>,
}

impl Instances {
    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// All rows.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of attributes.
    pub fn attr_count(&self) -> usize {
        self.schema.attrs.len()
    }

    /// Number of classes.
    pub fn class_count(&self) -> usize {
        self.schema.classes.len()
    }

    /// Class counts over a subset of row indices.
    pub fn class_counts(&self, indices: &[u32]) -> Vec<usize> {
        let mut counts = vec![0usize; self.class_count()];
        for &i in indices {
            counts[self.rows[i as usize].class as usize] += 1;
        }
        counts
    }
}

impl fmt::Display for Instances {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} instances × {} attributes, {} classes",
            self.rows.len(),
            self.schema.attrs.len(),
            self.schema.classes.len()
        )
    }
}

/// Builds an [`Instances`] by interning value strings.
#[derive(Debug, Clone)]
pub struct InstancesBuilder {
    schema: Schema,
    rows: Vec<Row>,
}

impl InstancesBuilder {
    /// Creates a builder with the given attribute and class names.
    ///
    /// # Panics
    ///
    /// Panics if `attrs` is empty, `classes` has fewer than two entries,
    /// or `classes` has more than 255 entries.
    pub fn new(attrs: &[&str], classes: &[&str]) -> Self {
        assert!(!attrs.is_empty(), "need at least one attribute");
        assert!(classes.len() >= 2, "need at least two classes");
        assert!(classes.len() <= 255, "too many classes");
        Self {
            schema: Schema {
                attrs: attrs.iter().map(|a| Attribute::new(a)).collect(),
                classes: classes.iter().map(|&c| c.to_owned()).collect(),
            },
            rows: Vec::new(),
        }
    }

    /// Adds one instance.
    ///
    /// # Panics
    ///
    /// Panics if the value count mismatches the attribute count or the
    /// class name is unknown.
    pub fn push(&mut self, values: &[&str], class: &str) {
        assert_eq!(values.len(), self.schema.attrs.len(), "row arity mismatch");
        let class = self
            .schema
            .class_id(class)
            .unwrap_or_else(|| panic!("unknown class {class:?}"));
        let values = values
            .iter()
            .zip(&mut self.schema.attrs)
            .map(|(v, a)| a.intern(v))
            .collect();
        self.rows.push(Row { values, class });
    }

    /// Number of rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Finishes the training set.
    pub fn build(self) -> Instances {
        Instances {
            schema: self.schema,
            rows: self.rows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Instances {
        let mut b = InstancesBuilder::new(&["color", "shape"], &["yes", "no"]);
        b.push(&["red", "round"], "yes");
        b.push(&["red", "square"], "yes");
        b.push(&["blue", "round"], "no");
        b.build()
    }

    #[test]
    fn interning_builds_domains() {
        let inst = sample();
        let color = &inst.schema().attrs()[0];
        assert_eq!(color.arity(), 2);
        assert_eq!(color.id_of("red"), Some(0));
        assert_eq!(color.id_of("blue"), Some(1));
        assert_eq!(color.value(1), "blue");
        assert_eq!(color.id_of("green"), None);
    }

    #[test]
    fn rows_encode_classes() {
        let inst = sample();
        assert_eq!(inst.len(), 3);
        assert_eq!(inst.rows()[0].class, 0);
        assert_eq!(inst.rows()[2].class, 1);
        assert_eq!(inst.class_counts(&[0, 1, 2]), vec![2, 1]);
    }

    #[test]
    fn schema_encode_handles_unseen_values() {
        let inst = sample();
        let encoded = inst.schema().encode(&["red", "hexagonal"]);
        assert_eq!(encoded, vec![Some(0), None]);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn push_rejects_wrong_arity() {
        let mut b = InstancesBuilder::new(&["a", "b"], &["x", "y"]);
        b.push(&["only-one"], "x");
    }

    #[test]
    #[should_panic(expected = "unknown class")]
    fn push_rejects_unknown_class() {
        let mut b = InstancesBuilder::new(&["a"], &["x", "y"]);
        b.push(&["v"], "z");
    }

    #[test]
    #[should_panic(expected = "two classes")]
    fn builder_requires_two_classes() {
        InstancesBuilder::new(&["a"], &["only"]);
    }

    #[test]
    fn display_summarises() {
        let inst = sample();
        assert_eq!(inst.to_string(), "3 instances × 2 attributes, 2 classes");
    }
}
