//! A C4.5-style decision tree over categorical attributes, with
//! pessimistic-error (confidence-factor) subtree-replacement pruning.
//!
//! This is both the tree PART repeatedly builds and the paper's "regular
//! decision tree" baseline (§VI-D argues PART's per-rule selection beats
//! deploying the whole tree).

use crate::data::{Instances, Schema};
use crate::entropy::gain_ratio;
use serde::{Deserialize, Serialize};

/// Tree-growing configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TreeConfig {
    /// Minimum instances a split branch must receive (C4.5's `-m`).
    pub min_leaf: usize,
    /// Confidence factor for pessimistic pruning (C4.5's `-c`, 0.25).
    pub cf: f64,
    /// Whether to prune at all.
    pub prune: bool,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self {
            min_leaf: 2,
            cf: 0.25,
            prune: true,
        }
    }
}

/// A node of the tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TreeNode {
    /// A terminal node predicting `class`.
    Leaf {
        /// Predicted class id.
        class: u8,
        /// Training instances that reached the leaf.
        count: usize,
        /// Of those, how many the prediction gets wrong.
        errors: usize,
    },
    /// A multiway split on a categorical attribute.
    Split {
        /// Attribute index split on.
        attr: usize,
        /// One child per attribute value id.
        children: Vec<TreeNode>,
        /// Majority class at this node (used for unseen values).
        majority: u8,
        /// Training instances that reached the node.
        count: usize,
    },
}

impl TreeNode {
    /// Training instances that reached this node.
    pub fn count(&self) -> usize {
        match self {
            TreeNode::Leaf { count, .. } | TreeNode::Split { count, .. } => *count,
        }
    }

    /// Training errors committed in this subtree.
    pub fn errors(&self) -> usize {
        match self {
            TreeNode::Leaf { errors, .. } => *errors,
            TreeNode::Split { children, .. } => children.iter().map(TreeNode::errors).sum(),
        }
    }

    /// Pessimistic (upper-bound) error estimate of the subtree.
    fn pessimistic_errors(&self, cf: f64) -> f64 {
        match self {
            TreeNode::Leaf { count, errors, .. } => {
                *errors as f64 + add_errs(*count as f64, *errors as f64, cf)
            }
            TreeNode::Split { children, .. } => children
                .iter()
                .filter(|c| c.count() > 0)
                .map(|c| c.pessimistic_errors(cf))
                .sum(),
        }
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        match self {
            TreeNode::Leaf { .. } => 1,
            TreeNode::Split { children, .. } => children.iter().map(TreeNode::leaf_count).sum(),
        }
    }

    /// Depth (a lone leaf has depth 1).
    pub fn depth(&self) -> usize {
        match self {
            TreeNode::Leaf { .. } => 1,
            TreeNode::Split { children, .. } => {
                1 + children.iter().map(TreeNode::depth).max().unwrap_or(0)
            }
        }
    }
}

/// A trained decision tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecisionTree {
    schema: Schema,
    root: TreeNode,
    config: TreeConfig,
}

impl DecisionTree {
    /// Grows (and, per config, prunes) a tree over the whole training set.
    pub fn learn(instances: &Instances, config: TreeConfig) -> Self {
        let indices: Vec<u32> = (0..instances.len() as u32).collect();
        Self::learn_subset(instances, &indices, config)
    }

    /// Grows a tree over a subset of row indices (PART's per-round call).
    pub fn learn_subset(instances: &Instances, indices: &[u32], config: TreeConfig) -> Self {
        let mut used = vec![false; instances.attr_count()];
        let mut root = build(instances, indices, &mut used, &config);
        if config.prune {
            prune(&mut root, config.cf);
        }
        Self {
            schema: instances.schema().clone(),
            root,
            config,
        }
    }

    /// The root node.
    pub fn root(&self) -> &TreeNode {
        &self.root
    }

    /// The schema the tree was trained against.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The configuration used.
    pub fn config(&self) -> TreeConfig {
        self.config
    }

    /// Classifies an encoded row (unseen values fall back to node
    /// majorities).
    pub fn classify(&self, values: &[Option<u32>]) -> u8 {
        let mut node = &self.root;
        loop {
            match node {
                TreeNode::Leaf { class, .. } => return *class,
                TreeNode::Split {
                    attr,
                    children,
                    majority,
                    ..
                } => match values[*attr] {
                    Some(v) if (v as usize) < children.len() => {
                        node = &children[v as usize];
                    }
                    _ => return *majority,
                },
            }
        }
    }

    /// Classifies a row of raw value strings, returning the class name.
    pub fn classify_values(&self, values: &[&str]) -> &str {
        let encoded = self.schema.encode(values);
        &self.schema.classes()[self.classify(&encoded) as usize]
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.root.leaf_count()
    }

    /// Tree depth.
    pub fn depth(&self) -> usize {
        self.root.depth()
    }
}

fn majority_class(counts: &[usize]) -> u8 {
    counts
        .iter()
        .enumerate()
        .max_by_key(|&(_, c)| *c)
        .map(|(i, _)| i as u8)
        .unwrap_or(0)
}

fn build(
    instances: &Instances,
    indices: &[u32],
    used: &mut [bool],
    config: &TreeConfig,
) -> TreeNode {
    let counts = instances.class_counts(indices);
    let total: usize = counts.iter().sum();
    let majority = majority_class(&counts);
    let errors = total - counts[majority as usize];
    let leaf = TreeNode::Leaf {
        class: majority,
        count: total,
        errors,
    };
    if errors == 0 || total < config.min_leaf * 2 {
        return leaf;
    }

    // Pick the unused attribute with the best gain ratio.
    let mut best: Option<(usize, f64)> = None;
    for attr in 0..instances.attr_count() {
        if used[attr] {
            continue;
        }
        let arity = instances.schema().attrs()[attr].arity();
        if arity < 2 {
            continue;
        }
        let mut children = vec![vec![0usize; instances.class_count()]; arity];
        for &i in indices {
            let row = &instances.rows()[i as usize];
            children[row.values[attr] as usize][row.class as usize] += 1;
        }
        // Require at least two populated branches.
        let populated = children
            .iter()
            .filter(|c| c.iter().sum::<usize>() > 0)
            .count();
        if populated < 2 {
            continue;
        }
        let ratio = gain_ratio(&counts, &children);
        if ratio > 1e-10 && best.is_none_or(|(_, b)| ratio > b) {
            best = Some((attr, ratio));
        }
    }
    let Some((attr, _)) = best else {
        return leaf;
    };

    let arity = instances.schema().attrs()[attr].arity();
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); arity];
    for &i in indices {
        buckets[instances.rows()[i as usize].values[attr] as usize].push(i);
    }
    used[attr] = true;
    let children = buckets
        .iter()
        .map(|bucket| {
            if bucket.is_empty() {
                // Empty branch: predict the parent majority.
                TreeNode::Leaf {
                    class: majority,
                    count: 0,
                    errors: 0,
                }
            } else {
                build(instances, bucket, used, config)
            }
        })
        .collect();
    used[attr] = false;

    TreeNode::Split {
        attr,
        children,
        majority,
        count: total,
    }
}

/// Bottom-up subtree-replacement pruning with C4.5's pessimistic error.
fn prune(node: &mut TreeNode, cf: f64) {
    let TreeNode::Split {
        children,
        majority,
        count,
        ..
    } = node
    else {
        return;
    };
    for child in children.iter_mut() {
        prune(child, cf);
    }
    let majority = *majority;
    let count = *count;
    let subtree_est = node.pessimistic_errors(cf);
    let leaf_errors = count - class_count_of(node, majority);
    let leaf_est = leaf_errors as f64 + add_errs(count as f64, leaf_errors as f64, cf);
    if leaf_est <= subtree_est + 0.1 {
        *node = TreeNode::Leaf {
            class: majority,
            count,
            errors: leaf_errors,
        };
    }
}

/// Training instances of class `class` under the node (count − errors for
/// leaves of that class; recomputed structurally for splits).
fn class_count_of(node: &TreeNode, class: u8) -> usize {
    match node {
        TreeNode::Leaf {
            class: c,
            count,
            errors,
        } => {
            if *c == class {
                count - errors
            } else {
                // The leaf's own class absorbed `count - errors`; the
                // remaining errors are spread over other classes. Without
                // per-class histograms we bound from below with 0, which
                // makes pruning slightly conservative for >2 classes and
                // exact for binary problems.
                *errors * usize::from(node_is_binary_complement(c, class))
            }
        }
        TreeNode::Split { children, .. } => children.iter().map(|c| class_count_of(c, class)).sum(),
    }
}

/// For binary problems the non-majority mass belongs to the other class.
fn node_is_binary_complement(leaf_class: &u8, query: u8) -> bool {
    // Only ever called with class ids 0/1 in the binary case; for
    // multi-class data this underestimates, which is safe (conservative).
    (*leaf_class == 0 && query == 1) || (*leaf_class == 1 && query == 0)
}

/// Weka's `Stats.addErrs`: the number of *extra* errors to add to `e`
/// observed errors out of `n`, at confidence `cf`.
fn add_errs(n: f64, e: f64, cf: f64) -> f64 {
    if n <= 0.0 {
        return 0.0;
    }
    if e < 1.0 {
        let base = n * (1.0 - cf.powf(1.0 / n));
        if e == 0.0 {
            return base;
        }
        return base + e * (add_errs(n, 1.0, cf) - base);
    }
    if e + 0.5 >= n {
        return (n - e).max(0.0);
    }
    let z = normal_inverse(1.0 - cf);
    let f = (e + 0.5) / n;
    let r = (f + z * z / (2.0 * n) + z * (f / n - f * f / n + z * z / (4.0 * n * n)).sqrt())
        / (1.0 + z * z / n);
    (r * n - e).max(0.0)
}

/// Acklam's rational approximation to the standard normal quantile.
fn normal_inverse(p: f64) -> f64 {
    debug_assert!((0.0..1.0).contains(&p) && p > 0.0);
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    // Horner evaluation: `fold` reproduces the nested
    // `(…(c₀·x + c₁)·x + …)·x + cₙ` form operation-for-operation (the
    // leading `0.0 * x + c₀` is exact), so results are bit-identical to
    // the expanded polynomial.
    fn horner(coeffs: &[f64], x: f64) -> f64 {
        coeffs.iter().fold(0.0, |acc, &c| acc * x + c)
    }
    let p_low = 0.02425;
    if p < p_low {
        let q = (-2.0 * p.ln()).sqrt();
        horner(&C, q) / (horner(&D, q) * q + 1.0)
    } else if p <= 1.0 - p_low {
        let q = p - 0.5;
        let r = q * q;
        horner(&A, r) * q / (horner(&B, r) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -horner(&C, q) / (horner(&D, q) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::InstancesBuilder;

    fn conjunction() -> Instances {
        // class = yes iff (red AND round): a greedy gain-based tree must
        // recover the conjunction exactly.
        let mut b = InstancesBuilder::new(&["color", "shape"], &["yes", "no"]);
        for _ in 0..10 {
            b.push(&["red", "round"], "yes");
            b.push(&["red", "square"], "no");
            b.push(&["blue", "round"], "no");
            b.push(&["blue", "square"], "no");
        }
        b.build()
    }

    #[test]
    fn learns_conjunction_exactly() {
        let inst = conjunction();
        let tree = DecisionTree::learn(&inst, TreeConfig::default());
        assert_eq!(tree.classify_values(&["red", "round"]), "yes");
        assert_eq!(tree.classify_values(&["red", "square"]), "no");
        assert_eq!(tree.classify_values(&["blue", "round"]), "no");
        assert_eq!(tree.classify_values(&["blue", "square"]), "no");
        assert_eq!(tree.root().errors(), 0);
        assert!(tree.depth() >= 2);
    }

    #[test]
    fn pure_data_yields_single_leaf() {
        let mut b = InstancesBuilder::new(&["x"], &["a", "b"]);
        for _ in 0..5 {
            b.push(&["v"], "a");
        }
        let tree = DecisionTree::learn(&b.build(), TreeConfig::default());
        assert_eq!(tree.leaf_count(), 1);
        assert_eq!(tree.depth(), 1);
    }

    #[test]
    fn unseen_values_fall_back_to_majority() {
        let inst = conjunction();
        let tree = DecisionTree::learn(&inst, TreeConfig::default());
        let encoded = inst.schema().encode(&["red", "hexagon"]);
        // Must not panic; falls back to some class.
        let class = tree.classify(&encoded);
        assert!(class < 2);
    }

    #[test]
    fn pruning_collapses_noise_splits() {
        // A strongly dominant class with sprinkled noise: the pruned tree
        // should be (near-)trivial while the unpruned tree overfits.
        let mut b = InstancesBuilder::new(&["a", "b"], &["yes", "no"]);
        let values_a = ["a0", "a1", "a2", "a3"];
        let values_b = ["b0", "b1", "b2", "b3"];
        let mut i = 0;
        for &va in &values_a {
            for &vb in &values_b {
                for _ in 0..6 {
                    b.push(&[va, vb], "yes");
                }
                // one noisy instance in some cells
                if i % 3 == 0 {
                    b.push(&[va, vb], "no");
                }
                i += 1;
            }
        }
        let inst = b.build();
        let unpruned = DecisionTree::learn(
            &inst,
            TreeConfig {
                prune: false,
                ..TreeConfig::default()
            },
        );
        let pruned = DecisionTree::learn(&inst, TreeConfig::default());
        assert!(pruned.leaf_count() <= unpruned.leaf_count());
        assert!(
            pruned.leaf_count() <= 4,
            "pruned to {}",
            pruned.leaf_count()
        );
    }

    #[test]
    fn add_errs_matches_weka_reference_points() {
        // Reference values computed from Weka's Stats.addErrs.
        assert!((add_errs(100.0, 0.0, 0.25) - 100.0 * (1.0 - 0.25f64.powf(0.01))).abs() < 1e-9);
        let v = add_errs(14.0, 1.0, 0.25);
        assert!(v > 0.5 && v < 3.0, "addErrs(14,1)={v}");
        assert!((add_errs(10.0, 9.9, 0.25) - 0.1).abs() < 1e-9);
    }

    #[test]
    fn normal_inverse_sanity() {
        assert!((normal_inverse(0.5)).abs() < 1e-9);
        assert!((normal_inverse(0.75) - 0.6744897501960817).abs() < 1e-6);
        assert!((normal_inverse(0.975) - 1.959963984540054).abs() < 1e-6);
        assert!((normal_inverse(0.025) + 1.959963984540054).abs() < 1e-6);
    }

    #[test]
    fn min_leaf_blocks_tiny_splits() {
        let mut b = InstancesBuilder::new(&["x"], &["a", "b"]);
        b.push(&["u"], "a");
        b.push(&["v"], "b");
        let tree = DecisionTree::learn(
            &b.build(),
            TreeConfig {
                min_leaf: 2,
                ..TreeConfig::default()
            },
        );
        // 2 instances < 2*min_leaf → single leaf.
        assert_eq!(tree.leaf_count(), 1);
    }
}
