//! Rule learning for `downlake`: a from-scratch implementation of the
//! **PART** algorithm (Frank & Witten, *Generating Accurate Rule Sets
//! Without Global Optimization*, ICML 1998) over categorical data, plus
//! the C4.5-style decision tree it is built from (which doubles as the
//! paper's "regular decision tree" baseline).
//!
//! PART builds a decision list by repeatedly growing a pruned C4.5 tree
//! over the instances not yet covered, extracting the single leaf with the
//! largest coverage as a rule, and discarding the instances it covers.
//! The result is a set of independent, *human-readable* rules:
//!
//! ```text
//! IF (file's signer is "SecureInstall") → file is malicious
//! ```
//!
//! On top of PART, this crate implements the DSN'17 paper's rule-selection
//! and deployment machinery (§VI-C/D): rules are filtered by a maximum
//! training-error threshold **τ**, and classification *rejects* files
//! matched by conflicting rules instead of guessing.
//!
//! (Implementation note: Frank & Witten's *partial* tree construction is
//! an efficiency device — expansion stops as soon as a stable subtree is
//! found. This implementation grows and prunes the full tree each round,
//! which yields the same decision-list semantics at slightly higher
//! training cost; training sets here are small enough not to care.)
//!
//! # Example
//!
//! ```
//! use downlake_rulelearn::{ConflictPolicy, InstancesBuilder, PartLearner};
//!
//! let mut b = InstancesBuilder::new(&["signer", "packer"], &["benign", "malicious"]);
//! for _ in 0..30 {
//!     b.push(&["Somoto Ltd.", "NSIS"], "malicious");
//!     b.push(&["TeamViewer", "INNO"], "benign");
//! }
//! let instances = b.build();
//! let ruleset = PartLearner::default().learn(&instances);
//! let selected = ruleset.select(0.001); // τ = 0.1%
//! let verdict = selected.classify_values(&["Somoto Ltd.", "NSIS"], ConflictPolicy::Reject);
//! assert_eq!(verdict.class_name(), Some("malicious"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod data;
mod entropy;
mod metrics;
mod part;
mod rule;
mod ruleset;
mod tree;

pub use data::{Attribute, Instances, InstancesBuilder, InternedEncoder, Schema, UNSEEN};
pub use entropy::{entropy, gain_ratio, info_gain};
pub use metrics::{BinaryEval, Confusion};
pub use part::PartLearner;
pub use rule::{Condition, Rule};
pub use ruleset::{ConflictPolicy, RuleSet, Verdict};
pub use tree::{DecisionTree, TreeConfig, TreeNode};
