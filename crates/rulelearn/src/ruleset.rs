//! Rule sets: τ-selection and conflict-aware classification (§VI-C/D).

use crate::data::{InternedEncoder, Schema};
use crate::rule::Rule;
use serde::{Deserialize, Serialize};

/// What to do when several matching rules disagree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum ConflictPolicy {
    /// Refuse to classify (the paper's choice — keeps FPs down).
    #[default]
    Reject,
    /// The class backed by the larger total coverage wins.
    MajorityVote,
    /// The earliest-extracted matching rule wins (decision-list order,
    /// what a plain PART decision list would do).
    FirstMatch,
}

/// Outcome of classifying one sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// The matched rules agreed on a class.
    Class(u8),
    /// Matching rules conflicted and the policy was [`ConflictPolicy::Reject`].
    Rejected,
    /// No rule matched.
    NoMatch,
}

impl Verdict {
    /// The class id, if one was assigned.
    pub fn class(self) -> Option<u8> {
        match self {
            Verdict::Class(c) => Some(c),
            _ => None,
        }
    }
}

/// An ordered set of rules sharing a schema.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RuleSet {
    schema: Schema,
    rules: Vec<Rule>,
}

/// A verdict plus access to the class name.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NamedVerdict<'a> {
    verdict: Verdict,
    schema: &'a Schema,
}

impl RuleSet {
    /// Creates a rule set.
    pub fn new(schema: Schema, rules: Vec<Rule>) -> Self {
        Self { schema, rules }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The rules, in extraction order.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Recomputes every rule's `covered`/`errors` against a full
    /// dataset, *independently of decision-list order*.
    ///
    /// PART extracts each rule against the instances not covered by
    /// earlier rules, so a late rule's recorded coverage says nothing
    /// about how broadly it matches. Deploying rules as an unordered set
    /// (as the DSN'17 system does) therefore re-scores each rule on the
    /// whole training set before τ-selection — the paper's own example
    /// ("learned from more than 50 instances … does not match any of the
    /// tens of thousands of benign downloads") is exactly this
    /// whole-set statistic.
    pub fn reevaluate(&self, instances: &crate::data::Instances) -> RuleSet {
        let rules = self
            .rules
            .iter()
            .map(|rule| {
                let mut covered = 0usize;
                let mut errors = 0usize;
                for row in instances.rows() {
                    let matches = rule
                        .conditions
                        .iter()
                        .all(|c| row.values[c.attr] == c.value);
                    if matches {
                        covered += 1;
                        if row.class != rule.class {
                            errors += 1;
                        }
                    }
                }
                Rule {
                    conditions: rule.conditions.clone(),
                    class: rule.class,
                    covered,
                    errors,
                }
            })
            .collect();
        RuleSet {
            schema: self.schema.clone(),
            rules,
        }
    }

    /// Greedily simplifies every rule against a training set: drop any
    /// condition whose removal does not increase the rule's error rate
    /// (re-scored on the full set), preferring the shortest rule.
    ///
    /// This is the deployment-side analogue of PART's rule pruning and is
    /// why the paper's rule lists read so cleanly — "simple rules
    /// containing one feature … composed 89% of rules" (§VII). Returns
    /// rules re-scored against `instances` (like [`Self::reevaluate`]).
    pub fn simplify(&self, instances: &crate::data::Instances) -> RuleSet {
        let score = |conditions: &[crate::rule::Condition], class: u8| -> (usize, usize) {
            let mut covered = 0usize;
            let mut errors = 0usize;
            for row in instances.rows() {
                if conditions.iter().all(|c| row.values[c.attr] == c.value) {
                    covered += 1;
                    if row.class != class {
                        errors += 1;
                    }
                }
            }
            (covered, errors)
        };
        let rules = self
            .rules
            .iter()
            .map(|rule| {
                let mut conditions = rule.conditions.clone();
                let (mut covered, mut errors) = score(&conditions, rule.class);
                let mut rate = if covered == 0 {
                    0.0
                } else {
                    errors as f64 / covered as f64
                };
                loop {
                    let mut best: Option<(usize, usize, usize, f64)> = None;
                    for drop in 0..conditions.len() {
                        let candidate: Vec<_> = conditions
                            .iter()
                            .enumerate()
                            .filter(|&(i, _)| i != drop)
                            .map(|(_, &c)| c)
                            .collect();
                        let (c, e) = score(&candidate, rule.class);
                        let r = if c == 0 { 0.0 } else { e as f64 / c as f64 };
                        if r <= rate + 1e-12 && best.is_none_or(|(_, _, bc, _)| c > bc) {
                            best = Some((drop, e, c, r));
                        }
                    }
                    match best {
                        Some((drop, e, c, r)) if !conditions.is_empty() => {
                            conditions.remove(drop);
                            covered = c;
                            errors = e;
                            rate = r;
                            if conditions.is_empty() {
                                break;
                            }
                        }
                        _ => break,
                    }
                }
                Rule {
                    conditions,
                    class: rule.class,
                    covered,
                    errors,
                }
            })
            .collect();
        RuleSet {
            schema: self.schema.clone(),
            rules: dedup_rules(rules),
        }
    }

    /// Keeps only rules with training error rate ≤ τ, dropping the
    /// default (catch-all) rule, which exists to complete the decision
    /// list, not to be deployed independently (§VI-C selects only
    /// high-accuracy rules).
    pub fn select(&self, tau: f64) -> RuleSet {
        self.select_with(tau, 0)
    }

    /// Like [`Self::select`], additionally requiring a minimum training
    /// coverage per rule. An error *rate* alone cannot distinguish a
    /// well-supported pure rule from one that was pure by accident on a
    /// handful of instances; the paper's deployable rules are backed by
    /// dozens of training files ("learned from more than 50 instances").
    pub fn select_with(&self, tau: f64, min_coverage: usize) -> RuleSet {
        RuleSet {
            schema: self.schema.clone(),
            rules: self
                .rules
                .iter()
                .filter(|r| {
                    !r.is_default() && r.covered >= min_coverage && r.error_rate() <= tau + 1e-12
                })
                .cloned()
                .collect(),
        }
    }

    /// Number of rules concluding each class.
    pub fn class_composition(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.schema.classes().len()];
        for rule in &self.rules {
            counts[rule.class as usize] += 1;
        }
        counts
    }

    /// Classifies an encoded row.
    pub fn classify(&self, values: &[Option<u32>], policy: ConflictPolicy) -> Verdict {
        let mut matched: Vec<&Rule> = Vec::new();
        for rule in &self.rules {
            if rule.matches(values) {
                if policy == ConflictPolicy::FirstMatch {
                    return Verdict::Class(rule.class);
                }
                matched.push(rule);
            }
        }
        let Some(first) = matched.first() else {
            return Verdict::NoMatch;
        };
        let first_class = first.class;
        if matched.iter().all(|r| r.class == first_class) {
            return Verdict::Class(first_class);
        }
        match policy {
            ConflictPolicy::Reject => Verdict::Rejected,
            ConflictPolicy::FirstMatch => unreachable!("handled above"),
            ConflictPolicy::MajorityVote => {
                let mut weight = vec![0usize; self.schema.classes().len()];
                for r in &matched {
                    weight[r.class as usize] += r.covered.max(1);
                }
                match weight
                    .iter()
                    .enumerate()
                    .max_by_key(|&(_, w)| *w)
                    .map(|(i, _)| i as u8)
                {
                    Some(best) => Verdict::Class(best),
                    // Unreachable: `matched` is non-empty, so at least
                    // one class accumulated weight.
                    None => Verdict::NoMatch,
                }
            }
        }
    }

    /// Builds a reusable row encoder snapshotting this ruleset's
    /// attribute value tables once. Classification loops should build
    /// this once per ruleset and feed [`Self::classify`] through it
    /// instead of calling [`Self::classify_values`] per row, which
    /// re-walks the schema's attribute tables on every call.
    pub fn encoder(&self) -> InternedEncoder {
        self.schema.encoder()
    }

    /// Classifies raw value strings; returns a verdict that can name its
    /// class.
    ///
    /// Convenience for one-off lookups: encoding walks the schema per
    /// call. Loops should hoist [`Self::encoder`] and a reusable buffer.
    pub fn classify_values(&self, values: &[&str], policy: ConflictPolicy) -> NamedVerdict<'_> {
        let encoded = self.schema.encode(values);
        NamedVerdict {
            verdict: self.classify(&encoded, policy),
            schema: &self.schema,
        }
    }

    /// Renders every rule, one per line.
    pub fn render(&self) -> String {
        self.rules
            .iter()
            .map(|r| r.render(&self.schema))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// Removes exact-duplicate rules (same conditions and class), keeping
/// the first occurrence.
fn dedup_rules(rules: Vec<Rule>) -> Vec<Rule> {
    let mut seen: std::collections::HashSet<(Vec<crate::rule::Condition>, u8)> =
        std::collections::HashSet::new();
    rules
        .into_iter()
        .filter(|r| seen.insert((r.conditions.clone(), r.class)))
        .collect()
}

impl<'a> NamedVerdict<'a> {
    /// The raw verdict.
    pub fn verdict(&self) -> Verdict {
        self.verdict
    }

    /// The class name, if a class was assigned.
    pub fn class_name(&self) -> Option<&'a str> {
        self.verdict
            .class()
            .map(|c| self.schema.classes()[c as usize].as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::InstancesBuilder;
    use crate::rule::Condition;

    fn schema() -> Schema {
        let mut b = InstancesBuilder::new(&["signer"], &["benign", "malicious"]);
        b.push(&["somoto"], "malicious");
        b.push(&["teamviewer"], "benign");
        b.push(&["binstall"], "benign");
        b.build().schema().clone()
    }

    fn rule(attr: usize, value: u32, class: u8, covered: usize, errors: usize) -> Rule {
        Rule {
            conditions: vec![Condition { attr, value }],
            class,
            covered,
            errors,
        }
    }

    #[test]
    fn select_filters_by_error_rate_and_drops_default() {
        let schema = schema();
        let rules = vec![
            rule(0, 0, 1, 100, 0),
            rule(0, 1, 0, 100, 1), // 1% error
            Rule {
                conditions: vec![],
                class: 0,
                covered: 50,
                errors: 0,
            },
        ];
        let set = RuleSet::new(schema, rules);
        assert_eq!(set.select(0.0).len(), 1);
        assert_eq!(set.select(0.01).len(), 2);
        assert_eq!(set.select(1.0).len(), 2, "default rule always dropped");
    }

    #[test]
    fn conflict_rejection() {
        let schema = schema();
        // Two rules match signer=somoto but disagree.
        let set = RuleSet::new(schema, vec![rule(0, 0, 1, 10, 0), rule(0, 0, 0, 3, 0)]);
        let v = set.classify_values(&["somoto"], ConflictPolicy::Reject);
        assert_eq!(v.verdict(), Verdict::Rejected);
        assert_eq!(v.class_name(), None);

        let v = set.classify_values(&["somoto"], ConflictPolicy::MajorityVote);
        assert_eq!(v.class_name(), Some("malicious"));

        let v = set.classify_values(&["somoto"], ConflictPolicy::FirstMatch);
        assert_eq!(v.class_name(), Some("malicious"));
    }

    #[test]
    fn agreeing_rules_classify() {
        let schema = schema();
        let set = RuleSet::new(schema, vec![rule(0, 0, 1, 10, 0), rule(0, 0, 1, 5, 0)]);
        let v = set.classify_values(&["somoto"], ConflictPolicy::Reject);
        assert_eq!(v.class_name(), Some("malicious"));
    }

    #[test]
    fn no_match_for_unseen_or_uncovered() {
        let schema = schema();
        let set = RuleSet::new(schema, vec![rule(0, 0, 1, 10, 0)]);
        assert_eq!(
            set.classify_values(&["teamviewer"], ConflictPolicy::Reject)
                .verdict(),
            Verdict::NoMatch
        );
        assert_eq!(
            set.classify_values(&["never-seen"], ConflictPolicy::Reject)
                .verdict(),
            Verdict::NoMatch
        );
    }

    #[test]
    fn composition_counts_rules_per_class() {
        let schema = schema();
        let set = RuleSet::new(
            schema,
            vec![
                rule(0, 0, 1, 1, 0),
                rule(0, 1, 0, 1, 0),
                rule(0, 2, 0, 1, 0),
            ],
        );
        assert_eq!(set.class_composition(), vec![2, 1]);
    }

    #[test]
    fn simplify_drops_redundant_conditions() {
        use crate::data::InstancesBuilder;
        // signer fully determines the class; packer is noise.
        let mut b = InstancesBuilder::new(&["signer", "packer"], &["benign", "malicious"]);
        for packer in ["NSIS", "UPX", "INNO"] {
            for _ in 0..5 {
                b.push(&["somoto", packer], "malicious");
                b.push(&["teamviewer", packer], "benign");
            }
        }
        let inst = b.build();
        let over_specific = Rule {
            conditions: vec![
                Condition { attr: 0, value: 0 }, // signer = somoto
                Condition { attr: 1, value: 0 }, // packer = NSIS (redundant)
            ],
            class: 1,
            covered: 5,
            errors: 0,
        };
        let set = RuleSet::new(inst.schema().clone(), vec![over_specific]);
        let simplified = set.simplify(&inst);
        assert_eq!(simplified.rules().len(), 1);
        let rule = &simplified.rules()[0];
        assert_eq!(rule.conditions.len(), 1, "{}", rule.render(inst.schema()));
        assert_eq!(
            rule.conditions[0].attr, 0,
            "the signer condition must survive"
        );
        assert_eq!(rule.covered, 15, "coverage grows to the whole signer");
        assert_eq!(rule.errors, 0);
    }

    #[test]
    fn simplify_keeps_needed_conjunctions() {
        use crate::data::InstancesBuilder;
        // Malicious only when BOTH conditions hold.
        let mut b = InstancesBuilder::new(&["signer", "packer"], &["benign", "malicious"]);
        for _ in 0..5 {
            b.push(&["somoto", "NSIS"], "malicious");
            b.push(&["somoto", "INNO"], "benign");
            b.push(&["teamviewer", "NSIS"], "benign");
        }
        let inst = b.build();
        let rule = Rule {
            conditions: vec![
                Condition { attr: 0, value: 0 },
                Condition { attr: 1, value: 0 },
            ],
            class: 1,
            covered: 5,
            errors: 0,
        };
        let set = RuleSet::new(inst.schema().clone(), vec![rule]);
        let simplified = set.simplify(&inst);
        assert_eq!(
            simplified.rules()[0].conditions.len(),
            2,
            "both conditions needed"
        );
    }

    #[test]
    fn simplify_dedups_collapsed_rules() {
        use crate::data::InstancesBuilder;
        let mut b = InstancesBuilder::new(&["signer", "packer"], &["benign", "malicious"]);
        for packer in ["NSIS", "UPX"] {
            for _ in 0..4 {
                b.push(&["somoto", packer], "malicious");
            }
        }
        b.push(&["teamviewer", "NSIS"], "benign");
        let inst = b.build();
        // Two over-specific rules that both collapse to signer=somoto.
        let r = |packer_value: u32| Rule {
            conditions: vec![
                Condition { attr: 0, value: 0 },
                Condition {
                    attr: 1,
                    value: packer_value,
                },
            ],
            class: 1,
            covered: 4,
            errors: 0,
        };
        let set = RuleSet::new(inst.schema().clone(), vec![r(0), r(1)]);
        let simplified = set.simplify(&inst);
        assert_eq!(
            simplified.rules().len(),
            1,
            "collapsed duplicates must merge"
        );
    }

    #[test]
    fn render_joins_rules() {
        let schema = schema();
        let set = RuleSet::new(schema, vec![rule(0, 0, 1, 7, 0), rule(0, 1, 0, 3, 0)]);
        let text = set.render();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("somoto"));
    }
}
