//! Evaluation metrics for deployed rule sets.
//!
//! Matching the paper's §VI-D methodology: TP and FP rates are computed
//! **only over samples that match at least one rule** and are not
//! rejected — a rule-based labeler that abstains is not wrong, it is
//! silent.

use crate::ruleset::Verdict;
use serde::{Deserialize, Serialize};

/// A binary confusion over the matched, non-rejected samples.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Confusion {
    /// Malicious samples classified malicious.
    pub true_positives: usize,
    /// Malicious samples classified benign.
    pub false_negatives: usize,
    /// Benign samples classified malicious.
    pub false_positives: usize,
    /// Benign samples classified benign.
    pub true_negatives: usize,
    /// Samples rejected due to rule conflicts.
    pub rejected: usize,
    /// Samples matching no rule.
    pub unmatched: usize,
}

impl Confusion {
    /// Records one sample. `positive_class` is the id of the "malicious"
    /// class; `truth` the sample's true class id.
    pub fn record(&mut self, verdict: Verdict, truth: u8, positive_class: u8) {
        match verdict {
            Verdict::NoMatch => self.unmatched += 1,
            Verdict::Rejected => self.rejected += 1,
            Verdict::Class(predicted) => {
                let truth_pos = truth == positive_class;
                let pred_pos = predicted == positive_class;
                match (truth_pos, pred_pos) {
                    (true, true) => self.true_positives += 1,
                    (true, false) => self.false_negatives += 1,
                    (false, true) => self.false_positives += 1,
                    (false, false) => self.true_negatives += 1,
                }
            }
        }
    }

    /// Matched-and-decided malicious samples.
    pub fn positives(&self) -> usize {
        self.true_positives + self.false_negatives
    }

    /// Matched-and-decided benign samples.
    pub fn negatives(&self) -> usize {
        self.false_positives + self.true_negatives
    }

    /// True-positive rate over decided malicious samples (0 if none).
    pub fn tp_rate(&self) -> f64 {
        let p = self.positives();
        if p == 0 {
            0.0
        } else {
            self.true_positives as f64 / p as f64
        }
    }

    /// False-positive rate over decided benign samples (0 if none).
    pub fn fp_rate(&self) -> f64 {
        let n = self.negatives();
        if n == 0 {
            0.0
        } else {
            self.false_positives as f64 / n as f64
        }
    }

    /// All decided samples.
    pub fn decided(&self) -> usize {
        self.positives() + self.negatives()
    }
}

/// Summary of a train/test evaluation round.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BinaryEval {
    /// The confusion over the test set.
    pub confusion: Confusion,
    /// Rules deployed.
    pub rules: usize,
}

impl BinaryEval {
    /// Convenience accessor.
    pub fn tp_rate(&self) -> f64 {
        self.confusion.tp_rate()
    }

    /// Convenience accessor.
    pub fn fp_rate(&self) -> f64 {
        self.confusion.fp_rate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_ignore_unmatched_and_rejected() {
        let mut c = Confusion::default();
        c.record(Verdict::Class(1), 1, 1); // TP
        c.record(Verdict::Class(1), 0, 1); // FP
        c.record(Verdict::Class(0), 0, 1); // TN
        c.record(Verdict::Class(0), 1, 1); // FN
        c.record(Verdict::Rejected, 1, 1);
        c.record(Verdict::NoMatch, 0, 1);
        assert_eq!(c.decided(), 4);
        assert_eq!(c.rejected, 1);
        assert_eq!(c.unmatched, 1);
        assert!((c.tp_rate() - 0.5).abs() < 1e-12);
        assert!((c.fp_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_confusion_rates_are_zero() {
        let c = Confusion::default();
        assert_eq!(c.tp_rate(), 0.0);
        assert_eq!(c.fp_rate(), 0.0);
        assert_eq!(c.decided(), 0);
    }

    #[test]
    fn perfect_classifier() {
        let mut c = Confusion::default();
        for _ in 0..10 {
            c.record(Verdict::Class(1), 1, 1);
            c.record(Verdict::Class(0), 0, 1);
        }
        assert_eq!(c.tp_rate(), 1.0);
        assert_eq!(c.fp_rate(), 0.0);
    }
}
