//! Information-theoretic split criteria (C4.5's gain ratio).

/// Shannon entropy (bits) of a class-count histogram.
///
/// ```
/// use downlake_rulelearn::entropy;
/// assert_eq!(entropy(&[8, 0]), 0.0);
/// assert!((entropy(&[4, 4]) - 1.0).abs() < 1e-12);
/// ```
pub fn entropy(counts: &[usize]) -> f64 {
    let total: usize = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let total = total as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / total;
            -p * p.log2()
        })
        .sum()
}

/// Information gain of a candidate split.
///
/// `parent` is the class histogram before the split, `children` the class
/// histogram of each branch.
pub fn info_gain(parent: &[usize], children: &[Vec<usize>]) -> f64 {
    let parent_total: usize = parent.iter().sum();
    if parent_total == 0 {
        return 0.0;
    }
    let mut remainder = 0.0;
    for child in children {
        let child_total: usize = child.iter().sum();
        if child_total == 0 {
            continue;
        }
        remainder += (child_total as f64 / parent_total as f64) * entropy(child);
    }
    (entropy(parent) - remainder).max(0.0)
}

/// C4.5 gain ratio: information gain normalised by the split's intrinsic
/// information, correcting the bias toward high-arity attributes.
///
/// Returns 0 when the split information is (near) zero — a split that
/// sends everything down one branch carries no usable information.
pub fn gain_ratio(parent: &[usize], children: &[Vec<usize>]) -> f64 {
    let gain = info_gain(parent, children);
    if gain <= 0.0 {
        return 0.0;
    }
    let branch_sizes: Vec<usize> = children.iter().map(|c| c.iter().sum()).collect();
    let split_info = entropy(&branch_sizes);
    if split_info < 1e-10 {
        0.0
    } else {
        gain / split_info
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_bounds() {
        assert_eq!(entropy(&[]), 0.0);
        assert_eq!(entropy(&[0, 0]), 0.0);
        assert_eq!(entropy(&[5]), 0.0);
        let e = entropy(&[1, 1, 1, 1]);
        assert!((e - 2.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_split_gains_full_entropy() {
        let parent = [4, 4];
        let children = vec![vec![4, 0], vec![0, 4]];
        assert!((info_gain(&parent, &children) - 1.0).abs() < 1e-12);
        assert!((gain_ratio(&parent, &children) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn useless_split_gains_nothing() {
        let parent = [4, 4];
        let children = vec![vec![2, 2], vec![2, 2]];
        assert!(info_gain(&parent, &children).abs() < 1e-12);
        assert_eq!(gain_ratio(&parent, &children), 0.0);
    }

    #[test]
    fn one_sided_split_has_zero_ratio() {
        // Everything in one branch: split info 0 → ratio forced to 0.
        let parent = [4, 4];
        let children = vec![vec![4, 4], vec![0, 0]];
        assert_eq!(gain_ratio(&parent, &children), 0.0);
    }

    #[test]
    fn gain_ratio_penalises_high_arity() {
        let parent = [4, 4];
        // A binary perfect split…
        let binary = vec![vec![4, 0], vec![0, 4]];
        // …vs an 8-way split that also separates classes perfectly.
        let eight: Vec<Vec<usize>> = (0..8)
            .map(|i| if i < 4 { vec![1, 0] } else { vec![0, 1] })
            .collect();
        assert!(gain_ratio(&parent, &binary) > gain_ratio(&parent, &eight));
        assert!(info_gain(&parent, &binary) <= info_gain(&parent, &eight) + 1e-12);
    }

    #[test]
    fn empty_children_are_ignored() {
        let parent = [3, 3];
        let children = vec![vec![3, 0], vec![0, 0], vec![0, 3]];
        assert!((info_gain(&parent, &children) - 1.0).abs() < 1e-12);
    }
}
