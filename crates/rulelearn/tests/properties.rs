//! Property-based tests of the learning stack: trees, PART, rule sets.

use downlake_rulelearn::{
    entropy, gain_ratio, ConflictPolicy, DecisionTree, Instances, InstancesBuilder, PartLearner,
    TreeConfig, Verdict,
};
use proptest::prelude::*;

/// A random categorical dataset: 2–4 attributes with small domains, two
/// classes, 10–200 rows.
fn dataset_strategy() -> impl Strategy<Value = Instances> {
    (2usize..=4, 2usize..=4, 10usize..=200).prop_flat_map(|(attrs, arity, rows)| {
        let row = proptest::collection::vec(0usize..arity, attrs);
        proptest::collection::vec((row, proptest::bool::ANY), rows).prop_map(move |data| {
            let attr_names: Vec<String> = (0..attrs).map(|i| format!("a{i}")).collect();
            let attr_refs: Vec<&str> = attr_names.iter().map(String::as_str).collect();
            let mut builder = InstancesBuilder::new(&attr_refs, &["no", "yes"]);
            for (values, class) in data {
                let value_names: Vec<String> = values.iter().map(|v| format!("v{v}")).collect();
                let value_refs: Vec<&str> = value_names.iter().map(String::as_str).collect();
                builder.push(&value_refs, if class { "yes" } else { "no" });
            }
            builder.build()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Entropy stays within [0, log2(k)]; gain ratio within [0, 1+ε].
    #[test]
    fn entropy_bounds(counts in proptest::collection::vec(0usize..50, 2..6)) {
        let e = entropy(&counts);
        prop_assert!(e >= 0.0);
        prop_assert!(e <= (counts.len() as f64).log2() + 1e-9);
    }

    /// Gain ratio of any two-way partition of the parent is in [0, 1].
    #[test]
    fn gain_ratio_bounds(
        left in proptest::collection::vec(0usize..30, 2),
        right in proptest::collection::vec(0usize..30, 2),
    ) {
        let parent = vec![left[0] + right[0], left[1] + right[1]];
        let ratio = gain_ratio(&parent, &[left, right]);
        prop_assert!(ratio >= 0.0);
        prop_assert!(ratio <= 1.0 + 1e-9, "ratio {ratio}");
    }

    /// Trees never panic, classify every training row to a valid class,
    /// and an unpruned tree never errs more than the majority baseline.
    #[test]
    fn tree_training_consistency(instances in dataset_strategy()) {
        let unpruned = DecisionTree::learn(
            &instances,
            TreeConfig { prune: false, min_leaf: 1, ..TreeConfig::default() },
        );
        let counts = instances.class_counts(
            &(0..instances.len() as u32).collect::<Vec<_>>(),
        );
        let majority_errors = instances.len() - counts.iter().max().copied().unwrap_or(0);
        prop_assert!(unpruned.root().errors() <= majority_errors);
        for row in instances.rows() {
            let values: Vec<Option<u32>> = row.values.iter().map(|&v| Some(v)).collect();
            let class = unpruned.classify(&values);
            prop_assert!((class as usize) < instances.class_count());
        }
        // Pruning never grows the tree.
        let pruned = DecisionTree::learn(&instances, TreeConfig::default());
        prop_assert!(pruned.leaf_count() <= unpruned.leaf_count());
    }

    /// PART rules cover every training instance (a complete decision list)
    /// and first-match classification never answers NoMatch on training
    /// rows.
    #[test]
    fn part_decision_list_is_complete(instances in dataset_strategy()) {
        let set = PartLearner::default().learn(&instances);
        for row in instances.rows() {
            let values: Vec<Option<u32>> = row.values.iter().map(|&v| Some(v)).collect();
            let verdict = set.classify(&values, ConflictPolicy::FirstMatch);
            prop_assert!(matches!(verdict, Verdict::Class(_)), "uncovered training row");
        }
    }

    /// τ-selection is monotone: a looser threshold keeps a superset.
    #[test]
    fn tau_selection_monotone(instances in dataset_strategy(), t1 in 0.0f64..0.5, t2 in 0.0f64..0.5) {
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        let set = PartLearner::default().learn(&instances).reevaluate(&instances);
        let strict = set.select(lo);
        let loose = set.select(hi);
        prop_assert!(strict.len() <= loose.len());
        // Every strictly-selected rule also appears in the loose set.
        for rule in strict.rules() {
            prop_assert!(loose.rules().contains(rule));
        }
    }

    /// Re-evaluation preserves the rule list (conditions and classes) and
    /// assigns every rule coverage ≥ what it covered during extraction is
    /// NOT guaranteed — but coverage must be ≥ 0 and errors ≤ covered.
    #[test]
    fn reevaluation_is_sound(instances in dataset_strategy()) {
        let set = PartLearner::default().learn(&instances);
        let rescored = set.reevaluate(&instances);
        prop_assert_eq!(set.len(), rescored.len());
        for (a, b) in set.rules().iter().zip(rescored.rules()) {
            prop_assert_eq!(&a.conditions, &b.conditions);
            prop_assert_eq!(a.class, b.class);
            prop_assert!(b.errors <= b.covered);
        }
        // Total coverage accounts for every training row at least once
        // across the (complete) list.
        let total: usize = rescored.rules().iter().map(|r| r.covered).sum();
        prop_assert!(total >= instances.len());
    }

    /// Learning is deterministic.
    #[test]
    fn learning_is_deterministic(instances in dataset_strategy()) {
        let a = PartLearner::default().learn(&instances);
        let b = PartLearner::default().learn(&instances);
        prop_assert_eq!(a.rules(), b.rules());
        let ta = DecisionTree::learn(&instances, TreeConfig::default());
        let tb = DecisionTree::learn(&instances, TreeConfig::default());
        prop_assert_eq!(ta.root(), tb.root());
    }

    /// Classification with any policy is total (never panics) even on
    /// rows full of unseen values.
    #[test]
    fn classification_is_total(instances in dataset_strategy()) {
        let set = PartLearner::default().learn(&instances).select(0.1);
        let unseen: Vec<Option<u32>> = vec![None; instances.attr_count()];
        for policy in [ConflictPolicy::Reject, ConflictPolicy::MajorityVote, ConflictPolicy::FirstMatch] {
            let _ = set.classify(&unseen, policy);
        }
        let tree = DecisionTree::learn(&instances, TreeConfig::default());
        let class = tree.classify(&unseen);
        prop_assert!((class as usize) < instances.class_count());
    }
}
