//! Smoke test: the hand-rolled SARIF emitter produces a document the
//! in-repo `downlake_obs::json` parser accepts, with the fields CI
//! dashboards key on — the same check `.github/lint-gate.sh` runs
//! against the real workspace scan.

use downlake_lint::sarif::to_sarif;
use downlake_lint::{Finding, RuleId};
use downlake_obs::json;

fn sample() -> Vec<Finding> {
    vec![
        Finding {
            file: "crates/a/src/lib.rs".into(),
            line: 3,
            rule: RuleId::S1,
            msg: "seed passed to `seed_from_u64` resolves to a literal".into(),
        },
        Finding {
            file: "crates/b/src/lib.rs".into(),
            line: 9,
            rule: RuleId::L1,
            msg: "`use downlake_analysis` from crate `stream` breaks the DAG — \"quoted\"".into(),
        },
    ]
}

#[test]
fn emitted_sarif_parses_with_the_obs_json_parser() {
    let doc = to_sarif(&sample());
    let parsed = json::parse(&doc).expect("SARIF must be valid JSON");

    assert_eq!(
        parsed.get("version").and_then(|v| v.as_str()),
        Some("2.1.0")
    );
    let runs = match parsed.get("runs") {
        Some(json::Json::Arr(runs)) => runs,
        other => panic!("runs must be an array, got {other:?}"),
    };
    assert_eq!(runs.len(), 1);
    let driver = runs[0]
        .get("tool")
        .and_then(|t| t.get("driver"))
        .expect("tool.driver");
    assert_eq!(
        driver.get("name").and_then(|n| n.as_str()),
        Some("downlake-lint")
    );
    let rules = match driver.get("rules") {
        Some(json::Json::Arr(rules)) => rules,
        other => panic!("rules must be an array, got {other:?}"),
    };
    assert_eq!(rules.len(), 9, "all nine rules are declared");

    let results = match runs[0].get("results") {
        Some(json::Json::Arr(results)) => results,
        other => panic!("results must be an array, got {other:?}"),
    };
    assert_eq!(results.len(), 2);
    let first = &results[0];
    assert_eq!(first.get("ruleId").and_then(|r| r.as_str()), Some("S1"));
    assert_eq!(first.get("level").and_then(|l| l.as_str()), Some("error"));
    let loc = first
        .get("locations")
        .and_then(|l| match l {
            json::Json::Arr(a) => a.first(),
            _ => None,
        })
        .and_then(|l| l.get("physicalLocation"))
        .expect("physicalLocation");
    assert_eq!(
        loc.get("artifactLocation")
            .and_then(|a| a.get("uri"))
            .and_then(|u| u.as_str()),
        Some("crates/a/src/lib.rs")
    );
    assert_eq!(
        loc.get("region")
            .and_then(|r| r.get("startLine"))
            .and_then(|l| l.as_u64()),
        Some(3)
    );

    // The embedded quote survives escaping and re-parsing.
    let msg = results[1]
        .get("message")
        .and_then(|m| m.get("text"))
        .and_then(|t| t.as_str())
        .expect("message text");
    assert!(msg.contains("\"quoted\""), "msg: {msg}");
}

#[test]
fn empty_scan_sarif_parses_too() {
    let parsed = json::parse(&to_sarif(&[])).expect("empty SARIF must parse");
    let runs = match parsed.get("runs") {
        Some(json::Json::Arr(runs)) => runs,
        other => panic!("runs must be an array, got {other:?}"),
    };
    assert!(matches!(
        runs[0].get("results"),
        Some(json::Json::Arr(r)) if r.is_empty()
    ));
}
