//! Property: rendering a random item-tree spec to source, lexing, and
//! parsing recovers the spec — names, kinds, params, fields, test
//! flags, nesting, loop counts — and every item's byte span slices back
//! to a brace-balanced snippet that starts at the recorded line.
//!
//! The generator is a pure function of a `u64` seed (a local
//! `splitmix64`, so the lint crate stays dependency-free), which lets
//! the `proptest!` property and its plain `#[test]` grid mirror
//! exercise identical code.

use downlake_lint::lexer::lex;
use downlake_lint::parse::{parse, Item, ItemKind};
use proptest::prelude::*;
use std::fmt::Write as _;

/// Local copy of the SplitMix64 mix (same constants as
/// `downlake_exec::splitmix64`); the lint crate must not depend on exec.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic generator state.
struct Gen {
    state: u64,
}

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen {
            state: splitmix64(seed),
        }
    }
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        splitmix64(self.state)
    }
    fn pick(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// What the generator decided to emit, i.e. what the parser must find.
enum Spec {
    Fn {
        name: String,
        params: Vec<String>,
        has_loop: bool,
        test: bool,
    },
    Struct {
        name: String,
        fields: Vec<(String, String)>,
    },
    Use {
        head: String,
    },
    Const {
        name: String,
        literal: bool,
    },
    Mod {
        name: String,
        test: bool,
        children: Vec<Spec>,
    },
}

fn gen_specs(g: &mut Gen, depth: usize) -> Vec<Spec> {
    let n = 1 + g.pick(4) as usize;
    let mut specs = Vec::new();
    for i in 0..n {
        let tag = format!("x{}_{}", depth, i);
        // Mods only at the top level so nesting stays one deep.
        let kinds = if depth == 0 { 5 } else { 4 };
        specs.push(match g.pick(kinds) {
            0 => Spec::Fn {
                name: format!("fn_{tag}"),
                params: (0..g.pick(3)).map(|p| format!("p{p}_{tag}")).collect(),
                has_loop: g.pick(2) == 0,
                test: g.pick(4) == 0,
            },
            1 => Spec::Struct {
                name: format!("St{tag}"),
                fields: (0..1 + g.pick(3))
                    .map(|f| (format!("field{f}_{tag}"), "u64".to_string()))
                    .collect(),
            },
            2 => Spec::Use {
                head: format!("crate_{tag}"),
            },
            3 => Spec::Const {
                name: format!("K{tag}").to_uppercase(),
                literal: g.pick(2) == 0,
            },
            _ => Spec::Mod {
                name: format!("mod_{tag}"),
                test: g.pick(3) == 0,
                children: gen_specs(g, depth + 1),
            },
        });
    }
    specs
}

/// Render specs to source. `lines` holds the 1-based line each item
/// starts on (attributes included, matching the parser's span rule).
fn render(specs: &[Spec], indent: &str, src: &mut String, line: &mut u32, lines: &mut Vec<u32>) {
    for spec in specs {
        lines.push(*line);
        match spec {
            Spec::Fn {
                name,
                params,
                has_loop,
                test,
            } => {
                if *test {
                    let _ = writeln!(src, "{indent}#[test]");
                    *line += 1;
                }
                let plist = params
                    .iter()
                    .map(|p| format!("{p}: u64"))
                    .collect::<Vec<_>>()
                    .join(", ");
                let _ = writeln!(src, "{indent}pub fn {name}({plist}) -> u64 {{");
                if *has_loop {
                    let _ = writeln!(src, "{indent}    let mut total = 0;");
                    let _ = writeln!(src, "{indent}    for v in 0..10 {{");
                    let _ = writeln!(src, "{indent}        total += v;");
                    let _ = writeln!(src, "{indent}    }}");
                    let _ = writeln!(src, "{indent}    total");
                    *line += 5;
                } else {
                    let _ = writeln!(src, "{indent}    7");
                    *line += 1;
                }
                let _ = writeln!(src, "{indent}}}");
                *line += 2;
            }
            Spec::Struct { name, fields } => {
                let _ = writeln!(src, "{indent}pub struct {name} {{");
                *line += 1;
                for (f, ty) in fields {
                    let _ = writeln!(src, "{indent}    pub {f}: {ty},");
                    *line += 1;
                }
                let _ = writeln!(src, "{indent}}}");
                *line += 1;
            }
            Spec::Use { head } => {
                let _ = writeln!(src, "{indent}use {head}::module::Thing;");
                *line += 1;
            }
            Spec::Const { name, literal } => {
                let init = if *literal { "42" } else { "derived()" };
                let _ = writeln!(src, "{indent}pub const {name}: u64 = {init};");
                *line += 1;
            }
            Spec::Mod {
                name,
                test,
                children,
            } => {
                if *test {
                    let _ = writeln!(src, "{indent}#[cfg(test)]");
                    *line += 1;
                }
                let _ = writeln!(src, "{indent}mod {name} {{");
                *line += 1;
                let inner = format!("{indent}    ");
                render(children, &inner, src, line, lines);
                let _ = writeln!(src, "{indent}}}");
                *line += 1;
            }
        }
        let _ = writeln!(src);
        *line += 1;
    }
}

/// Count the loops the rendered source should contain.
fn expected_loops(specs: &[Spec]) -> usize {
    specs
        .iter()
        .map(|s| match s {
            Spec::Fn { has_loop, .. } => usize::from(*has_loop),
            Spec::Mod { children, .. } => expected_loops(children),
            _ => 0,
        })
        .sum()
}

/// Assert one level of parsed items mirrors one level of specs.
/// `in_test_mod` models the parser's test-flag propagation into
/// `#[cfg(test)]` mod bodies.
fn assert_level(
    specs: &[Spec],
    items: &[Item],
    src: &str,
    lines: &mut std::slice::Iter<u32>,
    in_test_mod: bool,
) {
    assert_eq!(
        specs.len(),
        items.len(),
        "item count mismatch at one nesting level"
    );
    for (spec, item) in specs.iter().zip(items) {
        let start_line = *lines.next().expect("a recorded line per item");
        assert_eq!(item.span.line_start, start_line, "line of `{}`", item.name);
        let slice = &src[item.span.start as usize..item.span.end as usize];
        assert!(
            slice.contains(item.name.as_str()),
            "span of `{}` slices to `{slice}`",
            item.name
        );
        let opens = slice.matches('{').count();
        let closes = slice.matches('}').count();
        assert_eq!(opens, closes, "unbalanced span for `{}`", item.name);
        match spec {
            Spec::Fn {
                name, params, test, ..
            } => {
                assert_eq!(&item.name, name);
                assert_eq!(item.test, *test || in_test_mod, "test flag of `{name}`");
                match &item.kind {
                    ItemKind::Fn {
                        params: got, body, ..
                    } => {
                        assert_eq!(got, params, "params of `{name}`");
                        assert!(body.is_some(), "`{name}` has a body");
                    }
                    other => panic!("`{name}` parsed as {other:?}"),
                }
            }
            Spec::Struct { name, fields } => {
                assert_eq!(&item.name, name);
                match &item.kind {
                    ItemKind::Struct { fields: got } => {
                        assert_eq!(got, fields, "fields of `{name}`")
                    }
                    other => panic!("`{name}` parsed as {other:?}"),
                }
            }
            Spec::Use { head } => match &item.kind {
                ItemKind::Use { segments } => {
                    assert_eq!(segments.first(), Some(head), "use head")
                }
                other => panic!("use parsed as {other:?}"),
            },
            Spec::Const { name, literal } => {
                assert_eq!(&item.name, name);
                match &item.kind {
                    ItemKind::Const { literal_init } => {
                        assert_eq!(literal_init, literal, "literal_init of `{name}`")
                    }
                    other => panic!("`{name}` parsed as {other:?}"),
                }
            }
            Spec::Mod {
                name,
                test,
                children,
            } => {
                assert_eq!(&item.name, name);
                assert!(matches!(item.kind, ItemKind::Mod), "`{name}` is a mod");
                assert_level(children, &item.children, src, lines, in_test_mod || *test);
            }
        }
    }
}

fn check_roundtrip(seed: u64) {
    let mut g = Gen::new(seed);
    let specs = gen_specs(&mut g, 0);
    let mut src = String::new();
    let mut line = 1u32;
    let mut lines = Vec::new();
    render(&specs, "", &mut src, &mut line, &mut lines);

    let parsed = parse(&lex(&src));
    let mut line_iter = lines.iter();
    assert_level(&specs, &parsed.items, &src, &mut line_iter, false);
    assert_eq!(
        parsed.loops.len(),
        expected_loops(&specs),
        "loop count in:\n{src}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn parser_roundtrips_generated_trees(seed in any::<u64>()) {
        check_roundtrip(seed);
    }
}

#[test]
fn parser_roundtrip_grid_mirror() {
    for seed in [0u64, 1, 2, 42, 1234, 0xdead_beef, u64::MAX] {
        check_roundtrip(seed);
    }
}
