//! Each seeded-violation fixture must reproduce its rule's findings at the
//! exact expected lines — this pins both the detectors and the
//! allow-comment escape hatch.

use downlake_lint::{scan_file, FileCtx, RuleId};
use std::path::PathBuf;

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn ctx(name: &str, library: bool, hot_loop: bool) -> FileCtx {
    FileCtx {
        rel_path: format!("fixtures/{name}"),
        allow_time: false,
        allow_concurrency: false,
        library,
        hot_loop,
    }
}

/// `(rule, line)` pairs of a scan, in order.
fn findings(name: &str, library: bool, hot_loop: bool) -> Vec<(RuleId, u32)> {
    scan_file(&ctx(name, library, hot_loop), &fixture(name))
        .into_iter()
        .map(|f| (f.rule, f.line))
        .collect()
}

#[test]
fn d1_unordered_iter_fixture() {
    assert_eq!(
        findings("d1_unordered_iter.rs", true, false),
        vec![(RuleId::D1, 7), (RuleId::D1, 14), (RuleId::D1, 19)]
    );
}

#[test]
fn d2_ambient_fixture() {
    assert_eq!(
        findings("d2_ambient.rs", true, false),
        vec![
            (RuleId::D2, 5),
            (RuleId::D2, 9),
            (RuleId::D2, 13),
            (RuleId::D2, 14),
            (RuleId::D2, 20),
        ]
    );
}

#[test]
fn d2_time_is_allowed_in_bench() {
    let mut c = ctx("d2_ambient.rs", true, false);
    c.allow_time = true;
    let rng_only: Vec<(RuleId, u32)> = scan_file(&c, &fixture("d2_ambient.rs"))
        .into_iter()
        .map(|f| (f.rule, f.line))
        .collect();
    // Clock reads are exempt under `crates/bench`; RNG and env reads are not.
    assert_eq!(
        rng_only,
        vec![(RuleId::D2, 13), (RuleId::D2, 14), (RuleId::D2, 20)]
    );
}

#[test]
fn d3_float_fold_fixture() {
    assert_eq!(
        findings("d3_float_fold.rs", true, false),
        vec![(RuleId::D3, 5), (RuleId::D3, 9)]
    );
}

#[test]
fn d4_raw_thread_fixture() {
    assert_eq!(
        findings("d4_raw_thread.rs", true, false),
        vec![
            (RuleId::D4, 2),
            (RuleId::D4, 6),
            (RuleId::D4, 7),
            (RuleId::D4, 9),
            (RuleId::D4, 18),
        ]
    );
}

#[test]
fn d4_is_allowed_in_exec_crate() {
    let mut c = ctx("d4_raw_thread.rs", true, false);
    c.allow_concurrency = true;
    let leftovers: Vec<(RuleId, u32)> = scan_file(&c, &fixture("d4_raw_thread.rs"))
        .into_iter()
        .filter(|f| f.rule == RuleId::D4)
        .map(|f| (f.rule, f.line))
        .collect();
    assert_eq!(leftovers, vec![], "crates/exec owns its threading");
}

#[test]
fn p1_panic_fixture() {
    assert_eq!(
        findings("p1_panic.rs", true, false),
        vec![(RuleId::P1, 4), (RuleId::P1, 8), (RuleId::P1, 12)]
    );
    // Outside library code (binaries, examples) P1 does not apply.
    assert_eq!(findings("p1_panic.rs", false, false), vec![]);
}

#[test]
fn p2_hot_loop_fixture() {
    assert_eq!(
        findings("p2_hot_loop.rs", true, true),
        vec![
            (RuleId::P2, 7),
            (RuleId::P2, 8),
            (RuleId::P2, 9),
            (RuleId::P2, 32),
            (RuleId::P2, 33),
            (RuleId::P2, 34),
            (RuleId::P2, 57),
            (RuleId::P2, 58),
        ]
    );
    // Off the analysis hot path the same code is not flagged.
    assert_eq!(findings("p2_hot_loop.rs", true, false), vec![]);
}

#[test]
fn s1_seed_provenance_fixture() {
    assert_eq!(
        findings("s1_seed_provenance.rs", true, false),
        vec![
            (RuleId::S1, 7),
            (RuleId::S1, 11),
            (RuleId::S1, 15),
            (RuleId::S1, 21),
            (RuleId::S1, 25),
        ]
    );
}

#[test]
fn l1_layering_fixture() {
    // The same source is clean inside `crates/analysis` (self-use is
    // exempt; query/exec/types are declared edges) and flagged when
    // placed inside `crates/stream`.
    let analysis_ctx = FileCtx {
        rel_path: "crates/analysis/src/fixture.rs".into(),
        ..ctx("l1_layering.rs", true, false)
    };
    let src = fixture("l1_layering.rs");
    let clean: Vec<(RuleId, u32)> = scan_file(&analysis_ctx, &src)
        .into_iter()
        .filter(|f| f.rule == RuleId::L1)
        .map(|f| (f.rule, f.line))
        .collect();
    assert_eq!(clean, vec![]);

    let stream_ctx = FileCtx {
        rel_path: "crates/stream/src/fixture.rs".into(),
        ..analysis_ctx
    };
    let flagged: Vec<(RuleId, u32)> = scan_file(&stream_ctx, &src)
        .into_iter()
        .filter(|f| f.rule == RuleId::L1)
        .map(|f| (f.rule, f.line))
        .collect();
    assert_eq!(flagged, vec![(RuleId::L1, 5), (RuleId::L1, 6)]);
}

#[test]
fn m1_merge_contract_fixture() {
    use downlake_lint::baseline::MergeContract;
    use downlake_lint::modgraph::WorkspaceCtx;
    use downlake_lint::scan::scan_file_in;

    let src = fixture("m1_merge_contract.rs");
    let ws = WorkspaceCtx::from_sources(
        &[("crates/demo/src/lib.rs", src.as_str())],
        vec![MergeContract {
            type_name: "Tally".into(),
            test: "tally_merge_commutes".into(),
            law: "slot-wise addition".into(),
            line: 1,
        }],
    );
    let got: Vec<(RuleId, u32)> =
        scan_file_in(&ctx("m1_merge_contract.rs", true, false), &src, Some(&ws))
            .into_iter()
            .map(|f| (f.rule, f.line))
            .collect();
    assert_eq!(got, vec![(RuleId::M1, 26), (RuleId::M1, 35)]);

    // Without workspace context (single-file mode) M1 stays silent —
    // the rule needs the manifest to judge.
    assert_eq!(findings("m1_merge_contract.rs", true, false), vec![]);
}

#[test]
fn allow_comment_fixture() {
    // Justified allows (preceding line or same line) suppress; a
    // reasonless allow does not.
    assert_eq!(
        findings("allow_comment.rs", true, false),
        vec![(RuleId::D1, 20)]
    );
}

#[test]
fn fixture_messages_name_the_offender() {
    let fs = scan_file(
        &ctx("d1_unordered_iter.rs", true, false),
        &fixture("d1_unordered_iter.rs"),
    );
    assert!(fs[0].msg.contains("`counts`"), "msg: {}", fs[0].msg);
    assert!(fs[1].msg.contains("`seen`"), "msg: {}", fs[1].msg);
    assert!(fs[2].msg.contains("`index`"), "msg: {}", fs[2].msg);
}
