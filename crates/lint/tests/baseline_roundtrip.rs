//! The committed baseline must survive `--update-baseline` unchanged:
//! scan → serialize → parse → diff is a fixed point, and the real
//! `lint-baseline.json` at the workspace root parses and matches the
//! current tree.

use downlake_lint::{baseline, scan_workspace};
use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

#[test]
fn update_baseline_round_trips() {
    let root = workspace_root();
    let findings = scan_workspace(&root).expect("scan workspace");
    // Serialize exactly as --update-baseline writes it, then parse back.
    let doc = baseline::to_json(&findings);
    let parsed = baseline::parse(&doc).expect("parse regenerated baseline");
    assert_eq!(parsed, findings, "to_json ∘ parse must be the identity");
    // Writing it again yields byte-identical output (idempotent).
    assert_eq!(baseline::to_json(&parsed), doc);
}

#[test]
fn committed_baseline_is_current() {
    let root = workspace_root();
    let path = root.join("lint-baseline.json");
    let doc = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing committed baseline {}: {e}", path.display()));
    let committed = baseline::parse(&doc).expect("parse committed baseline");
    let current = scan_workspace(&root).expect("scan workspace");
    let diff = baseline::diff(&current, &committed);
    assert!(
        diff.is_clean(),
        "new findings vs. committed baseline:\n{}",
        baseline::rule_count_table(&current, &committed)
    );
}

#[test]
fn determinism_rules_are_clean_outside_legacy() {
    // The PR's burn-down guarantee: every D1/D2 finding lives in
    // crates/analysis/src/legacy.rs (the preserved pre-frame code paths).
    let root = workspace_root();
    let current = scan_workspace(&root).expect("scan workspace");
    let offenders: Vec<String> = current
        .iter()
        .filter(|f| {
            matches!(
                f.rule,
                downlake_lint::RuleId::D1 | downlake_lint::RuleId::D2
            ) && f.file != "crates/analysis/src/legacy.rs"
        })
        .map(|f| f.human())
        .collect();
    assert!(
        offenders.is_empty(),
        "determinism findings outside legacy.rs:\n{}",
        offenders.join("\n")
    );
}
