//! The committed baseline must survive `--update-baseline` unchanged:
//! scan → serialize → parse → diff is a fixed point, and the real
//! `lint-baseline.json` at the workspace root parses and matches the
//! current tree.

use downlake_lint::{baseline, scan_workspace};
use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

#[test]
fn update_baseline_round_trips() {
    let root = workspace_root();
    let findings = scan_workspace(&root).expect("scan workspace");
    // Serialize exactly as --update-baseline writes it, then parse back.
    let doc = baseline::to_json(&findings);
    let parsed = baseline::parse(&doc).expect("parse regenerated baseline");
    assert_eq!(parsed, findings, "to_json ∘ parse must be the identity");
    // Writing it again yields byte-identical output (idempotent).
    assert_eq!(baseline::to_json(&parsed), doc);
}

#[test]
fn committed_baseline_is_empty_and_tree_is_clean() {
    // The debt is fully burned down: the committed baseline lists zero
    // findings and the tree itself scans clean, which is exactly what
    // the `--check` gate now enforces (it fails on *any* finding).
    let root = workspace_root();
    let path = root.join("lint-baseline.json");
    let doc = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing committed baseline {}: {e}", path.display()));
    let committed = baseline::parse(&doc).expect("parse committed baseline");
    assert!(
        committed.is_empty(),
        "committed baseline must stay empty, found {} finding(s)",
        committed.len()
    );
    let current = scan_workspace(&root).expect("scan workspace");
    let offenders: Vec<String> = current.iter().map(|f| f.human()).collect();
    assert!(
        offenders.is_empty(),
        "tree must scan clean:\n{}",
        offenders.join("\n")
    );
}
