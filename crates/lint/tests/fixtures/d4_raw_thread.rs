//! Fixture: D4 `raw-concurrency` violations.
use std::sync::Mutex; // line 2: Mutex import
use std::thread;

pub fn fan_out(xs: Vec<u64>) -> u64 {
    let total = Mutex::new(0u64); // line 6: shared-state accumulator
    thread::scope(|s| { // line 7: raw scoped threads
        for x in xs {
            s.spawn(|| { // line 9: raw spawn handle
                *total.lock().unwrap_or_else(|e| e.into_inner()) += x;
            });
        }
    });
    total.into_inner().unwrap_or_else(|e| e.into_inner())
}

pub fn detached(x: u64) -> std::thread::JoinHandle<u64> {
    std::thread::spawn(move || x + 1) // line 18: detached raw thread
}

pub fn justified() -> u32 {
    // downlake-lint: allow(raw-concurrency) — single-threaded init cell, escape-hatch demo
    let cell = Mutex::new(7u32); // suppressed by the allow on the line above
    cell.into_inner().unwrap_or_else(|e| e.into_inner())
}
