//! Fixture: D2 `ambient-nondeterminism` violations.
use std::time::{Instant, SystemTime};

pub fn stamp() -> SystemTime {
    SystemTime::now() // line 5: ambient wall clock
}

pub fn elapsed_guess() -> Instant {
    Instant::now() // line 9: ambient monotonic clock
}

pub fn jitter() -> f64 {
    let mut rng = rand::thread_rng(); // line 13: OS-seeded RNG
    let x: f64 = rand::random(); // line 14: thread RNG draw
    let _ = &mut rng;
    x
}

pub fn tuning() -> Option<String> {
    std::env::var("DOWNLAKE_TUNING").ok() // line 20: env read in library code
}
