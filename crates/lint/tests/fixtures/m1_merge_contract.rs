//! Fixture: M1 `merge-commutativity` violations. Scanned with a workspace
//! context whose manifest covers `Tally` only; lines asserted by
//! `tests/fixture_findings.rs`.

pub struct Tally {
    pub hits: u64,
}

pub struct Gaps {
    pub holes: u64,
}

pub fn contracted(pool: &Pool, chunks: &[usize]) -> Tally {
    let partials = pool.map(chunks, |_, _| Tally { hits: 0 });
    let mut out = Tally { hits: 0 };
    for partial in partials {
        Tally::merge(&mut out, partial); // contracted type: no finding
    }
    out
}

pub fn uncontracted(pool: &Pool, chunks: &[usize]) -> Gaps {
    let partials = pool.map(chunks, |_, _| Gaps { holes: 0 });
    let mut out = Gaps { holes: 0 };
    for partial in partials {
        out.merge(partial); // line 26: `Gaps` has no manifest entry
    }
    out
}

pub fn unresolvable(pool: &Pool, chunks: &[usize]) -> u64 {
    let partials = pool.map(chunks, |_, _| 0u64);
    let mut acc = mystery();
    for partial in partials {
        acc.merge(partial); // line 35: accumulator type unresolvable
    }
    acc.hits
}
