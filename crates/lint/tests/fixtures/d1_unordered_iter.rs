//! Fixture: D1 `unordered-iter` violations. Line numbers are asserted by
//! `tests/fixture_findings.rs` — keep edits line-stable or update the test.
use std::collections::{HashMap, HashSet};

pub fn render(counts: &HashMap<String, u64>) -> Vec<String> {
    let mut out = Vec::new();
    for (name, n) in counts.iter() { // line 7: hash order leaks into `out`
        out.push(format!("{name}: {n}"));
    }
    out
}

pub fn first_seen(seen: &HashSet<u64>) -> Option<u64> {
    seen.iter().copied().take(1).next() // line 14: positional pick from a hash set
}

pub fn loop_over_map(index: &HashMap<u64, String>) -> usize {
    let mut total = 0;
    for v in index { // line 19: for-loop in hash order
        total += v.1.len();
    }
    total
}

pub fn ok_sorted(counts: &HashMap<String, u64>) -> Vec<(String, u64)> {
    let mut rows: Vec<(String, u64)> = counts.iter().map(|(k, &v)| (k.clone(), v)).collect();
    rows.sort_by(|a, b| a.0.cmp(&b.0)); // sorted right after collect: no finding
    rows
}

pub fn ok_count(seen: &HashSet<u64>) -> usize {
    seen.iter().count() // order-insensitive terminal: no finding
}
