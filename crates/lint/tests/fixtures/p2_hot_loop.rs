//! Fixture: P2 `hot-loop-alloc` violations (analysis hot-path context).

pub fn label_rows(rows: &[(String, u64)]) -> Vec<String> {
    let mut out = Vec::new();
    let prefix: String = String::from("row");
    for (name, n) in rows {
        out.push(format!("{name}={n}")); // line 7: format! per iteration
        let tag = n.to_string(); // line 8: to_string per iteration
        let p = prefix.clone(); // line 9: String clone per iteration
        let _ = (tag, p);
    }
    out
}

pub fn ok_hoisted(rows: &[(String, u64)]) -> String {
    let mut buf = String::new();
    for (name, _) in rows {
        buf.push_str(name); // reuses one buffer: no finding
    }
    buf
}
