//! Fixture: P2 `hot-loop-alloc` violations (analysis hot-path context).

pub fn label_rows(rows: &[(String, u64)]) -> Vec<String> {
    let mut out = Vec::new();
    let prefix: String = String::from("row");
    for (name, n) in rows {
        out.push(format!("{name}={n}")); // line 7: format! per iteration
        let tag = n.to_string(); // line 8: to_string per iteration
        let p = prefix.clone(); // line 9: String clone per iteration
        let _ = (tag, p);
    }
    out
}

pub fn ok_hoisted(rows: &[(String, u64)]) -> String {
    let mut buf = String::new();
    for (name, _) in rows {
        buf.push_str(name); // reuses one buffer: no finding
    }
    buf
}

/// A per-event record, as the streaming hot path sees it.
pub struct Event {
    pub name: String,
}

pub fn classify_events(events: &[Event]) -> usize {
    let label: String = String::from("event");
    let mut matched = 0;
    for event in events {
        let key = format!("{label}:{}", event.name); // line 32: format! per event
        let tag = event.name.to_string(); // line 33: to_string per event
        let l = label.clone(); // line 34: String clone per event
        if key.len() + tag.len() + l.len() > 3 {
            matched += 1;
        }
    }
    matched
}

pub fn classify_events_hoisted(events: &[Event], scratch: &mut String) -> usize {
    let mut matched = 0;
    for event in events {
        scratch.clear();
        scratch.push_str(&event.name); // reused scratch buffer: no finding
        matched += scratch.len();
    }
    matched
}

/// A dense group-by pass, shaped like the `crates/query` operators
/// (scan → group accumulate); the query crate is hot-loop classified.
pub fn group_labels(rows: &[(u32, String)], groups: usize) -> Vec<u64> {
    let mut counts = vec![0u64; groups];
    for (g, name) in rows {
        let key = name.clone(); // line 57: String clone per row
        let label = format!("g{g}"); // line 58: format! per row
        if key.len() + label.len() > 1 {
            counts[*g as usize] += 1;
        }
    }
    counts
}

pub fn group_counts_dense(rows: &[(u32, String)], groups: usize) -> Vec<u64> {
    let mut counts = vec![0u64; groups];
    for (g, _) in rows {
        counts[*g as usize] += 1; // dense accumulator, no per-row alloc: no finding
    }
    counts
}
