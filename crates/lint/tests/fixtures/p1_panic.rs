//! Fixture: P1 `panic-surface` violations (library-code context).

pub fn head(parts: &[String]) -> String {
    parts[0].clone() // line 4: literal index panics on empty input
}

pub fn parse_port(s: &str) -> u16 {
    s.parse().unwrap() // line 8: unwrap in library code
}

pub fn must_get(v: Option<u32>) -> u32 {
    v.expect("value must be present") // line 12: expect in library code
}

pub fn ok_get(parts: &[String]) -> Option<&String> {
    parts.first() // total accessor: no finding
}
