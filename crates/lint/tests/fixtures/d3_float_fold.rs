//! Fixture: D3 `unordered-float-fold` violations.
use std::collections::HashMap;

pub fn total_score(scores: &HashMap<u64, f64>) -> f64 {
    scores.values().sum::<f64>() // line 5: FP sum in hash order
}

pub fn folded(scores: &HashMap<u64, f64>) -> f64 {
    scores.values().fold(0.0, |acc, v| acc + v) // line 9: FP fold in hash order
}

pub fn ok_int_sum(counts: &HashMap<u64, u64>) -> u64 {
    counts.values().sum::<u64>() // integer sum is order-insensitive: no finding
}
