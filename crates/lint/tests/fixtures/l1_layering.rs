//! Fixture: L1 `crate-layering` violations. Scanned with a ctx that places
//! the file inside `crates/stream`, whose declared layer may not reach the
//! analysis or query crates. Lines asserted by `tests/fixture_findings.rs`.

use downlake_analysis::frame::Frame; // line 5: stream does not layer over analysis
use downlake_query::Dense; // line 6: stream does not layer over query
use downlake_exec::Pool; // declared edge: no finding
use downlake_types::EventKind; // declared edge: no finding
use std::collections::BTreeMap; // non-downlake: no finding

pub fn noop(_frame: &Frame, _dense: &Dense<u32, u64>, _pool: &Pool) {
    let _map: BTreeMap<u32, EventKind> = BTreeMap::new();
}

#[cfg(test)]
mod tests {
    use downlake_analysis::frame::Frame as TestFrame; // test item: dev-dep exempt

    #[test]
    fn layering_does_not_apply_here() {
        let _ = std::mem::size_of::<TestFrame>();
    }
}
