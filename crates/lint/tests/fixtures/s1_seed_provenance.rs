//! Fixture: S1 `seed-provenance` violations. Line numbers are asserted by
//! `tests/fixture_findings.rs` — keep edits line-stable or update the test.

const DEFAULT_SEED: u64 = 0xD0E5;

pub fn literal_seed() -> SmallRng {
    SmallRng::seed_from_u64(42) // line 7: raw literal seed
}

pub fn const_literal_seed() -> SmallRng {
    SmallRng::seed_from_u64(DEFAULT_SEED) // line 11: const bottoms out in a literal
}

pub fn entropy_seeded() -> SmallRng {
    SmallRng::from_entropy() // line 15: ambient entropy, unredeemable
}

pub fn literal_let_chain() -> SmallRng {
    let halved = 84 / 2;
    let seed = halved as u64;
    SmallRng::seed_from_u64(seed) // line 21: let chain bottoms out in literals
}

pub fn literal_unit_seed_fork() -> u64 {
    unit_seed(42, DEFAULT_SEED, 0) // line 25: forks an ambient seed tree
}

pub fn ok_param(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed) // parameter provenance: no finding
}

pub fn ok_unit_seed(seed: u64, index: u64) -> SmallRng {
    SmallRng::seed_from_u64(unit_seed(seed, SALT_DOWNLOADS, index)) // rooted: no finding
}

pub fn ok_let_chain(base: u64) -> SmallRng {
    let salted = base ^ 0x9e37_79b9;
    SmallRng::seed_from_u64(salted) // let chain roots at the parameter: no finding
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_pin_seeds() {
        let _ = SmallRng::seed_from_u64(7); // test code: exempt
    }
}
