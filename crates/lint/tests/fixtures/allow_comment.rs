//! Fixture: allow-comment handling. The justified sites are suppressed;
//! the unjustified ones still fire.
use std::collections::HashMap;

pub fn commutative_total(counts: &HashMap<u64, u64>) -> u64 {
    let mut total = 0;
    // downlake-lint: allow(unordered-iter) — commutative sum, order cannot leak
    for (_, n) in counts.iter() {
        total += n;
    }
    total
}

pub fn same_line_allow(counts: &HashMap<u64, u64>) -> Vec<u64> {
    counts.keys().copied().collect() // downlake-lint: allow(unordered-iter) — test helper, order irrelevant
}

pub fn reasonless_allow_still_fires(counts: &HashMap<u64, u64>) -> Vec<u64> {
    // downlake-lint: allow(unordered-iter)
    counts.keys().copied().collect() // line 20: allow without a reason is ignored
}
