//! Committed-manifest handling: the findings baseline
//! (`lint-baseline.json`), the allow-attrition ratchet
//! (`lint-allows.json`), and the merge-commutativity contract manifest
//! (`merge-contracts.json`), plus diffing current findings against the
//! baseline. The committed baseline is empty — the CI gate (`--check`)
//! fails on *any* finding — and rejects attempts to re-accept debt
//! through a non-empty baseline; the diff machinery is kept for the
//! informational rule-count table.
//!
//! The JSON reader/writer is hand-rolled for the three flat schemas used
//! here — the lint must stay dependency-free to run in hermetic CI.

use crate::rules::{Finding, RuleId, ALL_RULES};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Serialize findings as the canonical baseline document (sorted input
/// expected; the scanner already sorts).
pub fn to_json(findings: &[Finding]) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"version\": 1,\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            s,
            "{sep}\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"msg\": \"{}\"}}",
            f.rule.id(),
            escape(&f.file),
            f.line,
            escape(&f.msg)
        );
    }
    if findings.is_empty() {
        s.push_str("]\n}\n");
    } else {
        s.push_str("\n  ]\n}\n");
    }
    s
}

pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Parse a baseline document produced by [`to_json`] (tolerant of
/// whitespace differences). Returns an error string on malformed input.
pub fn parse(doc: &str) -> Result<Vec<Finding>, String> {
    let mut p = Parser::new(doc);
    p.skip_ws();
    p.expect_char('{')?;
    let mut findings = Vec::new();
    loop {
        p.skip_ws();
        if p.eat('}') {
            break;
        }
        let key = p.string()?;
        p.skip_ws();
        p.expect_char(':')?;
        p.skip_ws();
        match key.as_str() {
            "version" => {
                let _ = p.number()?;
            }
            "findings" => {
                p.expect_char('[')?;
                loop {
                    p.skip_ws();
                    if p.eat(']') {
                        break;
                    }
                    findings.push(p.finding()?);
                    p.skip_ws();
                    let _ = p.eat(',');
                }
            }
            other => return Err(format!("unexpected key `{other}` in baseline")),
        }
        p.skip_ws();
        let _ = p.eat(',');
    }
    findings.sort();
    Ok(findings)
}

pub(crate) struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    pub(crate) fn new(doc: &str) -> Parser {
        Parser {
            chars: doc.chars().collect(),
            pos: 0,
        }
    }
    /// 1-based line of the current position (for manifest findings).
    pub(crate) fn line(&self) -> u32 {
        1 + self.chars[..self.pos]
            .iter()
            .filter(|&&c| c == '\n')
            .count() as u32
    }
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }
    pub(crate) fn skip_ws(&mut self) {
        while self.peek().is_some_and(|c| c.is_whitespace()) {
            self.pos += 1;
        }
    }
    pub(crate) fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }
    pub(crate) fn expect_char(&mut self, c: char) -> Result<(), String> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(format!(
                "expected `{c}` at offset {} (found {:?})",
                self.pos,
                self.peek()
            ))
        }
    }
    pub(crate) fn string(&mut self) -> Result<String, String> {
        self.expect_char('"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string in baseline".into()),
                Some('"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some('\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some('n') => out.push('\n'),
                        Some('t') => out.push('\t'),
                        Some('r') => out.push('\r'),
                        Some('u') => {
                            let hex: String = self.chars
                                [self.pos + 1..(self.pos + 5).min(self.chars.len())]
                                .iter()
                                .collect();
                            let code = u32::from_str_radix(&hex, 16)
                                .map_err(|e| format!("bad \\u escape: {e}"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        Some(c) => out.push(c),
                        None => return Err("dangling escape in baseline".into()),
                    }
                    self.pos += 1;
                }
                Some(c) => {
                    out.push(c);
                    self.pos += 1;
                }
            }
        }
    }
    pub(crate) fn number(&mut self) -> Result<u32, String> {
        let start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        text.parse::<u32>().map_err(|e| format!("bad number: {e}"))
    }
    fn finding(&mut self) -> Result<Finding, String> {
        self.expect_char('{')?;
        let mut rule = None;
        let mut file = String::new();
        let mut line = 0u32;
        let mut msg = String::new();
        loop {
            self.skip_ws();
            if self.eat('}') {
                break;
            }
            let key = self.string()?;
            self.skip_ws();
            self.expect_char(':')?;
            self.skip_ws();
            match key.as_str() {
                "rule" => {
                    let id = self.string()?;
                    rule = RuleId::parse(&id);
                    if rule.is_none() {
                        return Err(format!("unknown rule id `{id}` in baseline"));
                    }
                }
                "file" => file = self.string()?,
                "line" => line = self.number()?,
                "msg" => msg = self.string()?,
                other => return Err(format!("unexpected finding key `{other}`")),
            }
            self.skip_ws();
            let _ = self.eat(',');
        }
        let rule = rule.ok_or_else(|| "finding missing `rule`".to_string())?;
        Ok(Finding {
            file,
            line,
            rule,
            msg,
        })
    }
}

// --- Allow-attrition ratchet (`lint-allows.json`) -----------------------

/// Serialize per-rule reasoned-allow counts as the attrition manifest.
/// Every rule id appears (zero included) so diffs stay one-line.
pub fn allows_to_json(counts: &BTreeMap<RuleId, usize>) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"version\": 1,\n  \"allows\": {");
    for (i, r) in ALL_RULES.into_iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let n = counts.get(&r).copied().unwrap_or(0);
        let _ = write!(s, "{sep}\n    \"{}\": {}", r.id(), n);
    }
    s.push_str("\n  }\n}\n");
    s
}

/// Parse the attrition manifest written by [`allows_to_json`].
pub fn parse_allows(doc: &str) -> Result<BTreeMap<RuleId, usize>, String> {
    let mut p = Parser::new(doc);
    let mut counts = BTreeMap::new();
    p.skip_ws();
    p.expect_char('{')?;
    loop {
        p.skip_ws();
        if p.eat('}') {
            break;
        }
        let key = p.string()?;
        p.skip_ws();
        p.expect_char(':')?;
        p.skip_ws();
        match key.as_str() {
            "version" => {
                let _ = p.number()?;
            }
            "allows" => {
                p.expect_char('{')?;
                loop {
                    p.skip_ws();
                    if p.eat('}') {
                        break;
                    }
                    let id = p.string()?;
                    let rule = RuleId::parse(&id)
                        .ok_or_else(|| format!("unknown rule id `{id}` in allows manifest"))?;
                    p.skip_ws();
                    p.expect_char(':')?;
                    p.skip_ws();
                    counts.insert(rule, p.number()? as usize);
                    p.skip_ws();
                    let _ = p.eat(',');
                }
            }
            other => return Err(format!("unexpected key `{other}` in allows manifest")),
        }
        p.skip_ws();
        let _ = p.eat(',');
    }
    Ok(counts)
}

// --- Merge-commutativity contracts (`merge-contracts.json`) -------------

/// One entry of the merge-contracts manifest: a type whose `merge` may
/// appear at reduction sites, the commutativity property test backing
/// it, and a one-line statement of the law.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeContract {
    /// Base type name whose `merge` is contracted (e.g. `Dense`).
    pub type_name: String,
    /// Name of the property test proving commutativity.
    pub test: String,
    /// One-line statement of the algebraic law.
    pub law: String,
    /// 1-based line of the entry in the manifest (for findings).
    pub line: u32,
}

/// Parse `merge-contracts.json`.
pub fn parse_contracts(doc: &str) -> Result<Vec<MergeContract>, String> {
    let mut p = Parser::new(doc);
    let mut contracts = Vec::new();
    p.skip_ws();
    p.expect_char('{')?;
    loop {
        p.skip_ws();
        if p.eat('}') {
            break;
        }
        let key = p.string()?;
        p.skip_ws();
        p.expect_char(':')?;
        p.skip_ws();
        match key.as_str() {
            "version" => {
                let _ = p.number()?;
            }
            "contracts" => {
                p.expect_char('[')?;
                loop {
                    p.skip_ws();
                    if p.eat(']') {
                        break;
                    }
                    let line = p.line();
                    p.expect_char('{')?;
                    let mut c = MergeContract {
                        type_name: String::new(),
                        test: String::new(),
                        law: String::new(),
                        line,
                    };
                    loop {
                        p.skip_ws();
                        if p.eat('}') {
                            break;
                        }
                        let k = p.string()?;
                        p.skip_ws();
                        p.expect_char(':')?;
                        p.skip_ws();
                        let v = p.string()?;
                        match k.as_str() {
                            "type" => c.type_name = v,
                            "test" => c.test = v,
                            "law" => c.law = v,
                            other => return Err(format!("unexpected contract key `{other}`")),
                        }
                        p.skip_ws();
                        let _ = p.eat(',');
                    }
                    if c.type_name.is_empty() || c.test.is_empty() {
                        return Err(format!(
                            "contract at line {line} needs both `type` and `test`"
                        ));
                    }
                    contracts.push(c);
                    p.skip_ws();
                    let _ = p.eat(',');
                }
            }
            other => return Err(format!("unexpected key `{other}` in contracts manifest")),
        }
        p.skip_ws();
        let _ = p.eat(',');
    }
    Ok(contracts)
}

/// Per-`(rule, file)` finding counts — line numbers drift as files are
/// edited, so the gate ratchets on counts instead of exact positions.
pub fn counts(findings: &[Finding]) -> BTreeMap<(RuleId, String), usize> {
    let mut map: BTreeMap<(RuleId, String), usize> = BTreeMap::new();
    for f in findings {
        *map.entry((f.rule, f.file.clone())).or_default() += 1;
    }
    map
}

/// Outcome of diffing current findings against the baseline.
#[derive(Debug)]
pub struct Diff {
    /// `(rule, file, current, baseline)` where current > baseline.
    pub regressions: Vec<(RuleId, String, usize, usize)>,
    /// `(rule, file, current, baseline)` where current < baseline.
    pub improvements: Vec<(RuleId, String, usize, usize)>,
}

impl Diff {
    /// True when nothing regressed against the baseline.
    pub fn is_clean(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Compare current findings with the baseline by `(rule, file)` counts.
pub fn diff(current: &[Finding], baseline: &[Finding]) -> Diff {
    let cur = counts(current);
    let base = counts(baseline);
    let mut regressions = Vec::new();
    let mut improvements = Vec::new();
    let mut keys: Vec<&(RuleId, String)> = cur.keys().chain(base.keys()).collect();
    keys.sort();
    keys.dedup();
    for key in keys {
        let c = cur.get(key).copied().unwrap_or(0);
        let b = base.get(key).copied().unwrap_or(0);
        if c > b {
            regressions.push((key.0, key.1.clone(), c, b));
        } else if c < b {
            improvements.push((key.0, key.1.clone(), c, b));
        }
    }
    Diff {
        regressions,
        improvements,
    }
}

/// Render the friendly per-rule count table the CI gate prints:
/// `rule  baseline  current  delta` for every rule id.
pub fn rule_count_table(current: &[Finding], baseline: &[Finding]) -> String {
    let mut by_rule_cur: BTreeMap<RuleId, usize> = BTreeMap::new();
    let mut by_rule_base: BTreeMap<RuleId, usize> = BTreeMap::new();
    for f in current {
        *by_rule_cur.entry(f.rule).or_default() += 1;
    }
    for f in baseline {
        *by_rule_base.entry(f.rule).or_default() += 1;
    }
    let mut s = String::from("rule  name                    baseline  current  delta\n");
    for r in ALL_RULES {
        let b = by_rule_base.get(&r).copied().unwrap_or(0);
        let c = by_rule_cur.get(&r).copied().unwrap_or(0);
        let delta = c as i64 - b as i64;
        let _ = writeln!(
            s,
            "{:<4}  {:<22}  {:>8}  {:>7}  {:>+5}",
            r.id(),
            r.name(),
            b,
            c,
            delta
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Finding> {
        vec![
            Finding {
                file: "crates/a/src/lib.rs".into(),
                line: 10,
                rule: RuleId::D1,
                msg: "iteration over `m` with \"quotes\" and \\ backslash".into(),
            },
            Finding {
                file: "crates/b/src/lib.rs".into(),
                line: 3,
                rule: RuleId::P2,
                msg: "format! in loop".into(),
            },
        ]
    }

    #[test]
    fn json_round_trip_preserves_findings() {
        let fs = sample();
        let doc = to_json(&fs);
        let back = parse(&doc).expect("parse back");
        let mut sorted = fs.clone();
        sorted.sort();
        assert_eq!(back, sorted);
    }

    #[test]
    fn empty_round_trip() {
        let doc = to_json(&[]);
        assert_eq!(parse(&doc).expect("parse empty"), vec![]);
    }

    #[test]
    fn diff_detects_new_and_fixed() {
        let base = sample();
        let mut cur = sample();
        cur.push(Finding {
            file: "crates/a/src/lib.rs".into(),
            line: 99,
            rule: RuleId::D1,
            msg: "another".into(),
        });
        cur.retain(|f| f.rule != RuleId::P2);
        let d = diff(&cur, &base);
        assert_eq!(d.regressions.len(), 1);
        assert_eq!(d.regressions[0].2, 2);
        assert_eq!(d.improvements.len(), 1);
        assert!(!d.is_clean());
        assert!(diff(&base, &base).is_clean());
    }
}
