//! `downlake-lint` — determinism & hot-path static analysis for the
//! downlake workspace.
//!
//! The reproduction's whole value is that Tables I–XVII and Figures 1–6
//! are byte-identical under a fixed seed. That invariant is enforced
//! dynamically by the report goldens and the query-operator property
//! tests in `crates/query/tests/query_props.rs`; this crate enforces it
//! *statically*, at CI time, before an unordered `HashMap` iteration or
//! an ambient clock read can corrupt a pinned table. Six rules:
//!
//! | id | name                   | what it catches |
//! |----|------------------------|-----------------|
//! | D1 | `unordered-iter`       | hash-order iteration leaking into output |
//! | D2 | `ambient-nondeterminism` | wall clocks, thread RNGs, env reads |
//! | D3 | `unordered-float-fold` | float `sum`/`fold` over unordered iterators |
//! | D4 | `raw-concurrency`      | `thread::spawn`/`Mutex` outside `crates/exec`'s pool |
//! | P1 | `panic-surface`        | `unwrap`/`expect`/literal indexing in library code |
//! | P2 | `hot-loop-alloc`       | per-iteration allocation on the analysis hot path |
//!
//! The committed `lint-baseline.json` is empty — the historical debt is
//! burned down — so the CI gate (`--check`) fails on *any* finding. A
//! site can opt out with an inline justification:
//!
//! ```text
//! // downlake-lint: allow(unordered-iter) — feeds a commutative count
//! ```
//!
//! The crate is dependency-free (hand-rolled lexer + JSON) so the gate
//! runs in hermetic CI containers with no registry access.
//!
//! The scanner is a plain function over source text, so a rule is easy
//! to demonstrate (and to pin in a test) without touching the disk:
//!
//! ```
//! use downlake_lint::{scan_file, FileCtx, RuleId};
//!
//! let ctx = FileCtx {
//!     rel_path: "crates/demo/src/lib.rs".into(),
//!     allow_time: false,
//!     allow_concurrency: false,
//!     library: true,
//!     hot_loop: false,
//! };
//! let src = "pub fn stamp() -> std::time::SystemTime { std::time::SystemTime::now() }\n";
//! let findings = scan_file(&ctx, src);
//! assert!(findings.iter().any(|f| f.rule == RuleId::D2));
//!
//! // The same read with an inline justification passes the gate.
//! let allowed = format!("// downlake-lint: allow(D2) — demo clock\n{src}");
//! assert!(scan_file(&ctx, &allowed).is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod baseline;
pub mod lexer;
pub mod rules;
pub mod scan;
pub mod walk;

pub use rules::{Finding, RuleId};
pub use scan::{scan_file, FileCtx};

use std::io;
use std::path::Path;

/// Lint every workspace file under `root`; findings come back sorted by
/// `(file, line, rule)`.
pub fn scan_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for (path, ctx) in walk::collect_files(root)? {
        let src = std::fs::read_to_string(&path)?;
        findings.extend(scan_file(&ctx, &src));
    }
    findings.sort();
    Ok(findings)
}
