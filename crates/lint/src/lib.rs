//! `downlake-lint` — determinism & hot-path static analysis for the
//! downlake workspace.
//!
//! The reproduction's whole value is that Tables I–XVII and Figures 1–6
//! are byte-identical under a fixed seed. That invariant is enforced
//! dynamically by the report goldens and the query-operator property
//! tests in `crates/query/tests/query_props.rs`; this crate enforces it
//! *statically*, at CI time, before an unordered `HashMap` iteration or
//! an ambient clock read can corrupt a pinned table. Nine rules:
//!
//! | id | name                   | what it catches |
//! |----|------------------------|-----------------|
//! | D1 | `unordered-iter`       | hash-order iteration leaking into output |
//! | D2 | `ambient-nondeterminism` | wall clocks, thread RNGs, env reads |
//! | D3 | `unordered-float-fold` | float `sum`/`fold` over unordered iterators |
//! | D4 | `raw-concurrency`      | `thread::spawn`/`Mutex` outside `crates/exec`'s pool |
//! | P1 | `panic-surface`        | `unwrap`/`expect`/literal indexing in library code |
//! | P2 | `hot-loop-alloc`       | per-iteration allocation on the analysis hot path |
//! | S1 | `seed-provenance`      | RNG/seed constructions not traceable to `exec::unit_seed` or a fn parameter |
//! | M1 | `merge-commutativity`  | pooled `merge` reductions whose type lacks a `merge-contracts.json` entry |
//! | L1 | `crate-layering`       | `use` paths that violate the declared crate-layering DAG |
//!
//! D/P rules read the raw token stream. The S/M/L families run on a
//! parsed item tree (`parse`): S1 is an intra-function dataflow pass
//! (`dataflow`), M1 resolves merged accumulator types against a
//! workspace-wide struct/test index plus the committed
//! `merge-contracts.json` manifest, and L1 checks every `use` head
//! against the layering DAG declared in `modgraph::LAYERS`.
//!
//! The committed `lint-baseline.json` is empty — the historical debt is
//! burned down — so the CI gate (`--check`) fails on *any* finding. A
//! site can opt out with an inline justification:
//!
//! ```text
//! // downlake-lint: allow(unordered-iter) — feeds a commutative count
//! ```
//!
//! Reasoned allows are themselves ratcheted: `lint-allows.json` pins the
//! per-rule count and `--check` fails when a rule's count grows.
//!
//! The crate is dependency-free (hand-rolled lexer + JSON) so the gate
//! runs in hermetic CI containers with no registry access.
//!
//! The scanner is a plain function over source text, so a rule is easy
//! to demonstrate (and to pin in a test) without touching the disk:
//!
//! ```
//! use downlake_lint::{scan_file, FileCtx, RuleId};
//!
//! let ctx = FileCtx {
//!     rel_path: "crates/demo/src/lib.rs".into(),
//!     allow_time: false,
//!     allow_concurrency: false,
//!     library: true,
//!     hot_loop: false,
//! };
//! let src = "pub fn stamp() -> std::time::SystemTime { std::time::SystemTime::now() }\n";
//! let findings = scan_file(&ctx, src);
//! assert!(findings.iter().any(|f| f.rule == RuleId::D2));
//!
//! // The same read with an inline justification passes the gate.
//! let allowed = format!("// downlake-lint: allow(D2) — demo clock\n{src}");
//! assert!(scan_file(&ctx, &allowed).is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod baseline;
pub mod dataflow;
pub mod lexer;
pub mod modgraph;
pub mod parse;
pub mod rules;
pub mod sarif;
pub mod scan;
pub mod walk;

pub use rules::{Finding, RuleId};
pub use scan::{scan_file, FileCtx};

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

/// Workspace-relative path of the merge-commutativity manifest.
pub const MERGE_CONTRACTS_FILE: &str = "merge-contracts.json";

/// Aggregated result of a workspace scan: the findings plus the
/// per-rule count of reasoned `allow` comments (the input to the
/// allow-attrition ratchet).
#[derive(Debug, Default)]
pub struct WorkspaceReport {
    /// Findings sorted by `(file, line, rule)`.
    pub findings: Vec<Finding>,
    /// Reasoned `// downlake-lint: allow(...)` comments per rule,
    /// summed over every linted file.
    pub allows: BTreeMap<RuleId, usize>,
}

/// Lint every workspace file under `root`; findings come back sorted by
/// `(file, line, rule)`.
pub fn scan_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    scan_workspace_report(root).map(|r| r.findings)
}

/// Two-pass workspace scan. Pass one parses *every* source — including
/// the integration tests and benches that are exempt from linting —
/// into a [`modgraph::WorkspaceCtx`] (struct fields, test-fn names) and
/// loads `merge-contracts.json` if committed. Pass two lints each
/// in-scope file with that cross-file context, which is what lets M1
/// resolve a merged accumulator's type and check its contract names a
/// real test. The manifest itself is validated last: entries citing
/// unknown test functions become M1 findings at the manifest line.
pub fn scan_workspace_report(root: &Path) -> io::Result<WorkspaceReport> {
    let contracts = match std::fs::read_to_string(root.join(MERGE_CONTRACTS_FILE)) {
        Ok(doc) => baseline::parse_contracts(&doc).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("malformed {MERGE_CONTRACTS_FILE}: {e}"),
            )
        })?,
        Err(_) => Vec::new(),
    };
    let mut ws = modgraph::WorkspaceCtx {
        contracts,
        ..modgraph::WorkspaceCtx::default()
    };
    for (path, rel) in walk::collect_all_sources(root)? {
        let src = std::fs::read_to_string(&path)?;
        let parsed = parse::parse(&lexer::lex(&src));
        ws.add_parsed(&rel, &parsed);
    }

    let mut findings = Vec::new();
    let mut allows: BTreeMap<RuleId, usize> = BTreeMap::new();
    for (path, ctx) in walk::collect_files(root)? {
        let src = std::fs::read_to_string(&path)?;
        findings.extend(scan::scan_file_in(&ctx, &src, Some(&ws)));
        for (rule, n) in scan::count_allows(&src) {
            *allows.entry(rule).or_insert(0) += n;
        }
    }
    findings.extend(ws.validate_contracts(MERGE_CONTRACTS_FILE));
    findings.sort();
    Ok(WorkspaceReport { findings, allows })
}
