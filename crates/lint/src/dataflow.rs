//! Intra-function dataflow rules over the parsed item tree: S1
//! seed-provenance and M1 merge-commutativity.
//!
//! Both rules follow the lint's standing bias: **prefer false negatives
//! over false positives**. An identifier the dataflow cannot resolve is
//! assumed rooted (S1) — the rule exists to catch the easy determinism
//! mistakes (a literal seed typed in a hurry, an entropy-seeded RNG, a
//! pooled merge nobody proved commutative), not to model Rust semantics.

use crate::lexer::{Tok, TokKind};
use crate::modgraph::WorkspaceCtx;
use crate::parse::{outer_type_name, Item, ItemKind, ParsedFile};
use crate::rules::{Finding, RuleId};
use crate::scan::FileCtx;
use std::collections::{BTreeMap, BTreeSet};

/// Seed-accepting RNG constructions: the argument expression must trace
/// to `exec::unit_seed` or a function parameter. `unit_seed` itself is
/// in the list — `unit_seed(42, SALT, i)` forks an ambient seed tree
/// just as surely as `seed_from_u64(42)`.
const SEED_SINKS: [&str; 5] = [
    "seed_from_u64",
    "from_seed",
    "seed_from",
    "with_seed",
    "unit_seed",
];

/// RNG constructions that are ambient by definition — no argument can
/// redeem them.
const AMBIENT_SINKS: [&str; 3] = ["from_entropy", "from_os_rng", "from_rng"];

/// Identifiers that carry no provenance: cast targets and primitive
/// type names appearing inside seed expressions (`x as u64`).
const NEUTRAL_IDENTS: [&str; 15] = [
    "as", "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
    "f32", "f64",
];

/// Where a seed expression bottoms out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Prov {
    /// Traces to `unit_seed`, a parameter, or something unresolvable
    /// (benefit of the doubt).
    Rooted,
    /// Every leaf is a literal or a literal-initialized const.
    Literal,
}

/// Rule S1 — seed provenance. For every seed-accepting RNG construction
/// outside test code, prove the seed expression reaches back to
/// `exec::unit_seed` or a parameter of the enclosing function; literal
/// and const-literal seeds are findings, as are entropy-seeded RNGs.
pub fn scan_s1(ctx: &FileCtx, toks: &[Tok], parsed: &ParsedFile) -> Vec<Finding> {
    let test_spans = parsed.test_spans();
    let in_test = |i: usize| test_spans.iter().any(|&(a, b)| i > a && i < b);
    let consts = literal_consts(parsed);
    let mut findings = Vec::new();
    for call in &parsed.calls {
        if in_test(call.name_idx) {
            continue;
        }
        if AMBIENT_SINKS.contains(&call.name.as_str()) {
            findings.push(Finding {
                file: ctx.rel_path.clone(),
                line: toks[call.name_idx].line,
                rule: RuleId::S1,
                msg: format!(
                    "`{}` constructs an entropy-seeded RNG — derive the seed from \
                     `exec::unit_seed(seed, salt, index)` instead",
                    call.name
                ),
            });
            continue;
        }
        if !SEED_SINKS.contains(&call.name.as_str()) {
            continue;
        }
        let Some(close) = parsed.close_of[call.args_open] else {
            continue;
        };
        let fn_item = parsed.enclosing_fn(call.name_idx);
        let params: BTreeSet<&str> = fn_item
            .map(|f| match &f.kind {
                ItemKind::Fn { params, .. } => params.iter().map(String::as_str).collect(),
                _ => BTreeSet::new(),
            })
            .unwrap_or_default();
        let lets = fn_item
            .and_then(|f| f.body_braces())
            .map(|(open, end)| let_bindings(toks, open + 1, end))
            .unwrap_or_default();
        let mut visited = BTreeSet::new();
        let prov = provenance(
            toks,
            call.args_open + 1,
            close,
            &params,
            &lets,
            &consts,
            &mut visited,
        );
        if prov == Prov::Literal {
            findings.push(Finding {
                file: ctx.rel_path.clone(),
                line: toks[call.name_idx].line,
                rule: RuleId::S1,
                msg: format!(
                    "seed passed to `{}` resolves to a literal — route it through \
                     `exec::unit_seed` or take it as a parameter",
                    call.name
                ),
            });
        }
    }
    findings
}

/// Names of consts in this file whose initializer is identifier-free —
/// the literal sources the S1 dataflow refuses to accept as seeds.
fn literal_consts(parsed: &ParsedFile) -> BTreeSet<String> {
    parsed
        .all_items()
        .into_iter()
        .filter(|i| matches!(i.kind, ItemKind::Const { literal_init: true }))
        .map(|i| i.name.clone())
        .collect()
}

/// `let [mut] name ... = init ;` bindings in a token range:
/// name → (init start, init end). Later bindings shadow earlier ones.
fn let_bindings(toks: &[Tok], from: usize, to: usize) -> BTreeMap<String, (usize, usize)> {
    let mut map = BTreeMap::new();
    let mut j = from;
    while j < to {
        if !toks[j].is_ident("let") {
            j += 1;
            continue;
        }
        let mut k = j + 1;
        if toks.get(k).is_some_and(|t| t.is_ident("mut")) {
            k += 1;
        }
        let Some(name_tok) = toks.get(k) else { break };
        if name_tok.kind != TokKind::Ident {
            j = k;
            continue;
        }
        let name = name_tok.text.clone();
        // Find `=` then the statement-ending `;` at bracket depth 0.
        let mut depth = 0i32;
        let mut eq = None;
        let mut m = k + 1;
        while m < to {
            let t = &toks[m];
            if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
                depth -= 1;
            } else if depth == 0 && eq.is_none() && t.is_punct("=") {
                // `==`, `<=`, `=>` are not assignment.
                let shifted = toks.get(m + 1).is_some_and(|x| x.is_punct("="))
                    || toks.get(m + 1).is_some_and(|x| x.is_punct(">"))
                    || m >= 1
                        && (toks[m - 1].is_punct("=")
                            || toks[m - 1].is_punct("<")
                            || toks[m - 1].is_punct(">")
                            || toks[m - 1].is_punct("!"));
                if !shifted {
                    eq = Some(m);
                }
            } else if depth <= 0 && t.is_punct(";") {
                break;
            }
            m += 1;
        }
        if let Some(eq) = eq {
            if eq + 1 < m {
                map.insert(name, (eq + 1, m));
            }
        }
        j = m + 1;
    }
    map
}

/// Classify the provenance of the expression in `toks[from..to)`.
#[allow(clippy::too_many_arguments)]
fn provenance(
    toks: &[Tok],
    from: usize,
    to: usize,
    params: &BTreeSet<&str>,
    lets: &BTreeMap<String, (usize, usize)>,
    consts: &BTreeSet<String>,
    visited: &mut BTreeSet<String>,
) -> Prov {
    if visited.len() > 16 {
        return Prov::Rooted; // depth cap: give up, benefit of the doubt
    }
    let mut saw_rooted = false;
    for k in from..to.min(toks.len()) {
        let t = &toks[k];
        if t.kind != TokKind::Ident {
            continue;
        }
        if t.text == "unit_seed" {
            return Prov::Rooted;
        }
        if NEUTRAL_IDENTS.contains(&t.text.as_str()) {
            continue;
        }
        // Field and method names carry the provenance of their root
        // (`config.seed` roots at `config`), so skip the `.`-suffixed
        // segments themselves.
        if k >= 1 && toks[k - 1].is_punct(".") {
            continue;
        }
        // Path heads (`SmallRng::`) are types, not values.
        if toks.get(k + 1).is_some_and(|x| x.is_punct(":"))
            && toks.get(k + 2).is_some_and(|x| x.is_punct(":"))
        {
            continue;
        }
        // Macro names (`env!`-style) are neutral; D2 owns env reads.
        if toks.get(k + 1).is_some_and(|x| x.is_punct("!")) {
            continue;
        }

        let name = t.text.as_str();
        if params.contains(name) {
            saw_rooted = true;
            continue;
        }
        if let Some(&(a, b)) = lets.get(name) {
            if visited.insert(name.to_string()) {
                match provenance(toks, a, b, params, lets, consts, visited) {
                    Prov::Rooted => saw_rooted = true,
                    Prov::Literal => {}
                }
                continue;
            }
            continue; // recursive shadowing: treat as literal-neutral
        }
        if consts.contains(name) {
            continue; // literal-initialized const: not rooted
        }
        // Unknown identifier (field of something out of scope, free fn
        // call, cross-module const): benefit of the doubt.
        saw_rooted = true;
    }
    // No identifiers at all means a pure literal; identifiers that all
    // bottomed out in literals mean the same thing.
    if saw_rooted {
        Prov::Rooted
    } else {
        Prov::Literal
    }
}

/// Calls that chunk work over the deterministic pool and merge partial
/// accumulators: CSR group folds and pool maps.
const FOLD_SITES: [&str; 2] = ["fold_groups_with", "fold_rows_with"];
const POOL_METHODS: [&str; 2] = ["map", "map_timed"];

/// Rule M1 — merge commutativity. Inside any function that drives a
/// reduction site, every `merge` call's target type must be declared in
/// the committed merge-contracts manifest (each entry names the
/// commutativity property test that licenses the merge).
pub fn scan_m1(
    ctx: &FileCtx,
    toks: &[Tok],
    parsed: &ParsedFile,
    ws: &WorkspaceCtx,
) -> Vec<Finding> {
    let test_spans = parsed.test_spans();
    let in_test = |i: usize| test_spans.iter().any(|&(a, b)| i > a && i < b);
    let mut findings = Vec::new();
    for fn_item in parsed.all_items() {
        let ItemKind::Fn {
            body: Some((open, close)),
            ..
        } = &fn_item.kind
        else {
            continue;
        };
        if fn_item.test {
            continue;
        }
        let in_body = |i: usize| i > *open && i < *close;
        // Reduction sites in this function, with their argument ranges.
        let reductions: Vec<(usize, usize)> = parsed
            .calls
            .iter()
            .filter(|c| in_body(c.name_idx))
            .filter(|c| {
                FOLD_SITES.contains(&c.name.as_str())
                    || (POOL_METHODS.contains(&c.name.as_str())
                        && (c.receiver.last().is_some_and(|r| r == "pool")
                            || c.path.last().is_some_and(|p| p == "Pool")))
            })
            .filter_map(|c| parsed.close_of[c.args_open].map(|e| (c.args_open, e)))
            .collect();
        if reductions.is_empty() {
            continue;
        }
        // A bare `merge(...)` call naming a parameter of this fn is the
        // generic combinator invoking its caller's closure — the
        // contract binds at each monomorphic instantiation site, where
        // the accumulator type is concrete, not here.
        let merge_is_param = matches!(&fn_item.kind, ItemKind::Fn { params, .. }
            if params.iter().any(|p| p == "merge"));
        for call in parsed.calls.iter().filter(|c| in_body(c.name_idx)) {
            if call.name != "merge" || in_test(call.name_idx) {
                continue;
            }
            if merge_is_param && call.path.is_empty() && call.receiver.is_empty() {
                continue;
            }
            let merged = resolve_merged_type(toks, parsed, ws, call, fn_item, &reductions);
            let line = toks[call.name_idx].line;
            match merged {
                Some(ty) if ws.has_contract(&ty) => {}
                Some(ty) => findings.push(Finding {
                    file: ctx.rel_path.clone(),
                    line,
                    rule: RuleId::M1,
                    msg: format!(
                        "`{ty}::merge` feeds a pooled reduction but `{ty}` has no \
                         merge-contracts.json entry naming its commutativity test"
                    ),
                }),
                None => findings.push(Finding {
                    file: ctx.rel_path.clone(),
                    line,
                    rule: RuleId::M1,
                    msg: "cannot resolve the type merged at this pooled reduction — \
                          annotate the accumulator binding or add a reasoned allow"
                        .to_string(),
                }),
            }
        }
    }
    findings
}

/// Resolve the base type whose `merge` a call invokes, using (in order)
/// the receiver's root binding, the reduction site's init-closure
/// accumulator type, and the unique-field-name shortcut.
fn resolve_merged_type(
    toks: &[Tok],
    parsed: &ParsedFile,
    ws: &WorkspaceCtx,
    call: &crate::parse::Call,
    fn_item: &Item,
    reductions: &[(usize, usize)],
) -> Option<String> {
    // `Dense::merge(a, b)` names the type outright.
    if call.receiver.is_empty() {
        return call
            .path
            .last()
            .filter(|p| p.chars().next().is_some_and(|c| c.is_uppercase()))
            .cloned();
    }
    let root_seg = call.receiver.first().map(String::as_str).unwrap_or("");
    let mut root_type: Option<String> = None;
    if root_seg == "self" {
        root_type = enclosing_impl_name(parsed, call.name_idx);
    }
    if root_type.is_none() {
        if let Some((open, close)) = fn_item.body_braces() {
            root_type = let_binding_type(toks, open + 1, close, root_seg);
        }
    }
    if root_type.is_none() {
        // Closure parameter of a reduction: the accumulator's type is
        // what the init closure constructs (`|| PopularityAcc::new(n)`).
        for &(a, b) in reductions {
            if call.name_idx > a && call.name_idx < b {
                root_type = init_closure_type(toks, a + 1, b);
                if root_type.is_some() {
                    break;
                }
            }
        }
    }
    // Walk the remaining `.field` segments through the type index
    // (`self`/local root alike: segment 0 is the root, the rest fields).
    let field_path = &call.receiver[1..];
    if let Some(mut ty) = root_type {
        let mut ok = true;
        for seg in field_path {
            match ws.types.field_type(&ty, seg) {
                Some(next) => ty = next.to_string(),
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            return Some(ty);
        }
    }
    // Fallback: the last field name is unambiguous workspace-wide.
    if call.receiver.len() >= 2 {
        if let Some(ty) = call
            .receiver
            .last()
            .and_then(|f| ws.types.unique_field_type(f))
        {
            return Some(ty.to_string());
        }
    }
    None
}

/// Name of the innermost `impl` block whose body contains token `idx`.
fn enclosing_impl_name(parsed: &ParsedFile, idx: usize) -> Option<String> {
    let mut best: Option<(&Item, usize)> = None;
    for item in parsed.all_items() {
        if !matches!(item.kind, ItemKind::Impl) {
            continue;
        }
        if let Some((open, close)) = item.body_braces() {
            if idx > open && idx < close && best.is_none_or(|(_, bo)| open > bo) {
                best = Some((item, open));
            }
        }
    }
    best.map(|(i, _)| i.name.clone()).filter(|n| !n.is_empty())
}

/// `let [mut] name : Type = ...` or `let [mut] name = Type::...` /
/// `= Type { ...` in a token range — the declared or constructed type of
/// a local binding.
fn let_binding_type(toks: &[Tok], from: usize, to: usize, name: &str) -> Option<String> {
    let mut j = from;
    let mut found = None;
    while j + 2 < to {
        if toks[j].is_ident("let") {
            let mut k = j + 1;
            if toks.get(k).is_some_and(|t| t.is_ident("mut")) {
                k += 1;
            }
            if toks.get(k).is_some_and(|t| t.is_ident(name)) {
                // Annotated: `: Type ... =`.
                if toks.get(k + 1).is_some_and(|t| t.is_punct(":"))
                    && !toks.get(k + 2).is_some_and(|t| t.is_punct(":"))
                {
                    if let Some(ty) = outer_type_name(&toks[k + 2..to.min(k + 16)]) {
                        found = Some(ty);
                    }
                } else if toks.get(k + 1).is_some_and(|t| t.is_punct("=")) {
                    // Constructed: `= Type::ctor(..)` or `= Type { .. }`.
                    let head = toks.get(k + 2)?;
                    let next = toks.get(k + 3);
                    let is_path = next.is_some_and(|t| t.is_punct(":"))
                        && toks.get(k + 4).is_some_and(|t| t.is_punct(":"));
                    let is_struct_lit = next.is_some_and(|t| t.is_punct("{"));
                    if head.kind == TokKind::Ident
                        && head.text.chars().next().is_some_and(|c| c.is_uppercase())
                        && (is_path || is_struct_lit)
                    {
                        found = Some(head.text.clone());
                    }
                }
            }
        }
        j += 1;
    }
    found
}

/// The accumulator type an init closure constructs inside a reduction
/// call's argument range: `|| Type::ctor(..)` or `|| Type { .. }`.
fn init_closure_type(toks: &[Tok], from: usize, to: usize) -> Option<String> {
    let mut j = from;
    while j + 2 < to {
        if toks[j].is_punct("|") && toks[j + 1].is_punct("|") {
            let head = &toks[j + 2];
            if head.kind == TokKind::Ident
                && head.text.chars().next().is_some_and(|c| c.is_uppercase())
            {
                let is_path = toks.get(j + 3).is_some_and(|t| t.is_punct(":"))
                    && toks.get(j + 4).is_some_and(|t| t.is_punct(":"));
                let is_struct_lit = toks.get(j + 3).is_some_and(|t| t.is_punct("{"));
                if is_path || is_struct_lit {
                    return Some(head.text.clone());
                }
            }
        }
        j += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::MergeContract;
    use crate::lexer::lex;
    use crate::parse::parse;

    fn ctx() -> FileCtx {
        FileCtx {
            rel_path: "crates/demo/src/lib.rs".into(),
            allow_time: false,
            allow_concurrency: false,
            library: true,
            hot_loop: false,
        }
    }

    fn s1(src: &str) -> Vec<Finding> {
        let lexed = lex(src);
        let parsed = parse(&lexed);
        scan_s1(&ctx(), &lexed.toks, &parsed)
    }

    #[test]
    fn literal_seed_is_a_finding_param_seed_is_not() {
        let f = s1("fn f() { let r = SmallRng::seed_from_u64(42); }");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, RuleId::S1);
        assert!(s1("fn f(seed: u64) { let r = SmallRng::seed_from_u64(seed); }").is_empty());
        assert!(
            s1("fn f(cfg: &Cfg) { let r = SmallRng::seed_from_u64(cfg.seed ^ 0x9e37); }")
                .is_empty()
        );
        assert!(s1("fn f(&self) { let r = SmallRng::seed_from_u64(self.seed); }").is_empty());
    }

    #[test]
    fn unit_seed_roots_and_literal_unit_seed_does_not() {
        assert!(s1(
            "fn f(seed: u64, i: u64) { let r = SmallRng::seed_from_u64(unit_seed(seed, SALT, i)); }"
        )
        .is_empty());
        let f = s1("const SALT: u64 = 0x1234;\nfn f() { let s = unit_seed(7, SALT, 0); }");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn let_chains_propagate_literalness() {
        let f = s1("fn f() { let a = 7u64; let b = a ^ 3; let r = Rng::seed_from_u64(b); }");
        assert_eq!(f.len(), 1, "literal through a let chain: {f:?}");
        assert!(
            s1("fn f(s: u64) { let b = s ^ 3; let r = Rng::seed_from_u64(b); }").is_empty(),
            "param through a let chain is rooted"
        );
    }

    #[test]
    fn entropy_rngs_and_test_code_handling() {
        let f = s1("fn f() { let r = SmallRng::from_entropy(); }");
        assert_eq!(f.len(), 1);
        assert!(f[0].msg.contains("entropy"));
        assert!(
            s1("#[cfg(test)]\nmod tests { fn t() { let r = SmallRng::seed_from_u64(42); } }")
                .is_empty()
        );
    }

    fn m1_ws() -> WorkspaceCtx {
        WorkspaceCtx::from_sources(
            &[(
                "crates/demo/src/lib.rs",
                "struct Acc { overall: Dense<K, u64>, n: usize }",
            )],
            vec![MergeContract {
                type_name: "Dense".into(),
                test: "dense_merge_commutes".into(),
                law: "slot-wise + commutes".into(),
                line: 3,
            }],
        )
    }

    fn m1(src: &str, ws: &WorkspaceCtx) -> Vec<Finding> {
        let lexed = lex(src);
        let parsed = parse(&lexed);
        scan_m1(&ctx(), &lexed.toks, &parsed, ws)
    }

    #[test]
    fn contracted_merge_at_reduction_site_passes() {
        let ws = m1_ws();
        let src = "fn run(adj: &Adj, pool: &Pool, n: usize) {\n\
                   let out = adj.fold_groups_with(pool, || Acc { overall: Dense::new(n), n },\n\
                   |acc, g, rows| acc.n += rows.len(),\n\
                   |acc, part| { acc.overall.merge(part.overall); });\n}";
        assert!(m1(src, &ws).is_empty(), "{:?}", m1(src, &ws));
    }

    #[test]
    fn uncontracted_merge_at_reduction_site_is_a_finding() {
        let ws = WorkspaceCtx::from_sources(
            &[(
                "crates/demo/src/lib.rs",
                "struct Acc { overall: Dense<K, u64> }",
            )],
            Vec::new(), // empty manifest
        );
        let src = "fn run(adj: &Adj, pool: &Pool) {\n\
                   let out = adj.fold_groups_with(pool, || Acc { overall: Dense::new(4) },\n\
                   |a, g, r| (),\n\
                   |acc, part| { acc.overall.merge(part.overall); });\n}";
        let f = m1(src, &ws);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, RuleId::M1);
        assert_eq!(f[0].line, 4);
        assert!(f[0].msg.contains("Dense"));
    }

    #[test]
    fn merge_without_a_reduction_site_is_ignored() {
        let ws = WorkspaceCtx::from_sources(&[], Vec::new());
        let src = "fn plain(a: &mut Hist, b: &Hist) { a.merge(b); }";
        assert!(m1(src, &ws).is_empty());
    }

    #[test]
    fn pool_map_with_let_bound_accumulator_resolves() {
        let ws = WorkspaceCtx::from_sources(
            &[(
                "crates/demo/src/lib.rs",
                "struct Out { resolution: ResolutionStats }",
            )],
            vec![MergeContract {
                type_name: "ResolutionStats".into(),
                test: "resolution_stats_merge_commutes".into(),
                law: "count sums commute".into(),
                line: 3,
            }],
        );
        let src = "fn phase(pool: &Pool, chunks: &[C]) {\n\
                   let mut out = Out { resolution: ResolutionStats::default() };\n\
                   let parts = pool.map(chunks, |c| work(c));\n\
                   for p in parts { out.resolution.merge(p); }\n}";
        assert!(m1(src, &ws).is_empty(), "{:?}", m1(src, &ws));
        // Same shape, empty manifest: finding at the merge line.
        let ws2 = WorkspaceCtx::from_sources(
            &[(
                "crates/demo/src/lib.rs",
                "struct Out { resolution: ResolutionStats }",
            )],
            Vec::new(),
        );
        let f = m1(src, &ws2);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 4);
        assert!(f[0].msg.contains("ResolutionStats"));
    }
}
