//! Recursive-descent parser over the lexed token stream.
//!
//! PR 2's rules matched flat token patterns; the dataflow rules added in
//! this revision (S1 seed-provenance, M1 merge-commutativity, L1
//! crate-layering) need structure: which function a call lives in, what
//! a function's parameters are, what fields a struct declares, which
//! crates a file imports. This module builds that structure — a
//! per-file item tree with byte spans plus flat loop and call indexes —
//! from the same dependency-free token stream, so the lint still runs in
//! hermetic CI with no registry access.
//!
//! The parser is deliberately *tolerant*: it never fails. Anything it
//! does not recognize (macro soup, mid-edit files, exotic syntax) is
//! skipped token by token, degrading to fewer recognized items rather
//! than an error — the rule passes prefer false negatives over false
//! positives, and the property tests in
//! `crates/lint/tests/parser_props.rs` pin the recognized subset.

use crate::lexer::{Lexed, Tok, TokKind};

/// Byte + line extent of one parsed node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Byte offset of the node's first token.
    pub start: u32,
    /// Byte offset one past the node's last token.
    pub end: u32,
    /// 1-based line of the first token.
    pub line_start: u32,
    /// 1-based line of the last token.
    pub line_end: u32,
}

/// What kind of item a tree node is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ItemKind {
    /// `fn name(params) { body }` — params are the bound names
    /// (`self` included); `body` is the token range of the braces,
    /// `None` for bodiless trait-method declarations.
    Fn {
        /// Parameter binding names, in order (`self` kept literal).
        params: Vec<String>,
        /// `(open brace idx, close brace idx)` of the body.
        body: Option<(usize, usize)>,
    },
    /// `impl [Trait for] Type { ... }` — `name` is the Self type.
    Impl,
    /// `use a::b::{c, d};` — `segments` is the path stem up to any
    /// group/glob, e.g. `["downlake_query", "Adjacency"]`.
    Use {
        /// Leading simple path segments of the import.
        segments: Vec<String>,
    },
    /// `struct Name { field: Type, ... }` — unit/tuple structs have no
    /// fields. Field types are reduced to their outermost type name
    /// (`Dense<K, V>` → `Dense`).
    Struct {
        /// `(field name, outermost type name)` pairs.
        fields: Vec<(String, String)>,
    },
    /// `enum Name { ... }`.
    Enum,
    /// `trait Name { ... }`.
    Trait,
    /// `mod name { ... }` or `mod name;`.
    Mod,
    /// `const NAME: T = expr;` — `literal_init` is true when the
    /// initializer contains no identifiers (a pure literal expression),
    /// which the seed-provenance dataflow treats as a literal source.
    Const {
        /// True when the initializer is identifier-free.
        literal_init: bool,
    },
    /// `static NAME: T = expr;`.
    Static,
    /// `type Alias = ...;`.
    TypeAlias,
    /// `extern crate name;`.
    ExternCrate,
    /// `name! { ... }` macro invocation at item position (items found
    /// inside its braces become children — `proptest!` bodies declare
    /// the property-test functions the merge-contracts manifest names).
    MacroInvocation,
}

/// One node of the item tree.
#[derive(Debug, Clone)]
pub struct Item {
    /// Item kind plus kind-specific payload.
    pub kind: ItemKind,
    /// Declared name (`""` for impls the parser cannot name, use-decls
    /// carry their stem in [`ItemKind::Use`] instead).
    pub name: String,
    /// Token index range `[first, last]` covered by the item,
    /// attributes included.
    pub toks: (usize, usize),
    /// Byte + line extent of the token range.
    pub span: Span,
    /// True when the item carries `#[test]` / `#[cfg(test)]` (directly
    /// or via an enclosing item).
    pub test: bool,
    /// Nested items (module bodies, impl bodies, fn bodies, macro
    /// braces).
    pub children: Vec<Item>,
    /// `{ ... }` token range for non-fn items with a braced body
    /// (mods, impls, traits, enums, macro invocations). Kept out of
    /// `ItemKind` so pattern matches stay small; read via
    /// [`Item::body_braces`].
    brace_body: Option<(usize, usize)>,
}

/// One `for` loop: index of the `for` keyword and its body brace range.
#[derive(Debug, Clone, Copy)]
pub struct Loop {
    /// Token index of the `for` keyword.
    pub head: usize,
    /// `(open brace idx, close brace idx)` of the loop body.
    pub body: (usize, usize),
}

/// One call site: `path::to::name(...)` or `recv.name(...)`.
#[derive(Debug, Clone)]
pub struct Call {
    /// Token index of the called name.
    pub name_idx: usize,
    /// The called name itself.
    pub name: String,
    /// Leading `::`-separated path segments before the name
    /// (`["SmallRng"]` for `SmallRng::seed_from_u64(...)`, empty for
    /// bare and method calls).
    pub path: Vec<String>,
    /// For method calls, the dotted receiver chain when it is a simple
    /// `a.b.c` path (`["acc", "overall"]` for `acc.overall.merge(..)`).
    pub receiver: Vec<String>,
    /// Token index of the argument list's `(`.
    pub args_open: usize,
}

/// Parse result for one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// Top-level item tree.
    pub items: Vec<Item>,
    /// Every `for` loop with a resolvable body, in token order.
    pub loops: Vec<Loop>,
    /// Every call site, in token order.
    pub calls: Vec<Call>,
    /// For every opening bracket token, the index of its matching
    /// closer (shared with the token-pattern rules in [`crate::scan`]).
    pub close_of: Vec<Option<usize>>,
}

impl ParsedFile {
    /// Token spans `(open, close)` of test-only code: bodies of items
    /// marked `#[test]` / `#[cfg(test)]`.
    pub fn test_spans(&self) -> Vec<(usize, usize)> {
        let mut spans = Vec::new();
        fn walk(items: &[Item], spans: &mut Vec<(usize, usize)>) {
            for item in items {
                if item.test {
                    if let Some(body) = item.body_braces() {
                        spans.push(body);
                    }
                }
                walk(&item.children, spans);
            }
        }
        walk(&self.items, &mut spans);
        spans.sort_unstable();
        spans
    }

    /// Depth-first iteration over every item in the tree.
    pub fn all_items(&self) -> Vec<&Item> {
        let mut out = Vec::new();
        fn walk<'a>(items: &'a [Item], out: &mut Vec<&'a Item>) {
            for item in items {
                out.push(item);
                walk(&item.children, out);
            }
        }
        walk(&self.items, &mut out);
        out
    }

    /// The innermost `fn` item whose body contains token `idx`.
    pub fn enclosing_fn(&self, idx: usize) -> Option<&Item> {
        let mut best: Option<&Item> = None;
        for item in self.all_items() {
            if let ItemKind::Fn {
                body: Some((open, close)),
                ..
            } = &item.kind
            {
                if idx > *open && idx < *close {
                    let tighter = best
                        .and_then(|b| b.body_braces())
                        .is_none_or(|(bo, _)| *open > bo);
                    if tighter {
                        best = Some(item);
                    }
                }
            }
        }
        best
    }
}

impl Item {
    /// The `{ ... }` token range of the item's body, when it has one.
    pub fn body_braces(&self) -> Option<(usize, usize)> {
        match &self.kind {
            ItemKind::Fn { body, .. } => *body,
            _ => self.brace_body,
        }
    }
}

/// Parse a lexed file into its item tree plus loop and call indexes.
pub fn parse(lexed: &Lexed) -> ParsedFile {
    let toks = &lexed.toks;
    let close_of = match_brackets(toks);
    let mut p = Parser {
        toks,
        close_of: &close_of,
    };
    let items = p.items_in(0, toks.len(), false);
    let loops = collect_loops(toks, &close_of);
    let calls = collect_calls(toks);
    ParsedFile {
        items,
        loops,
        calls,
        close_of,
    }
}

/// Compute, for every opening bracket token (`(`, `[`, `{`), the index
/// of its matching closer. Unbalanced input (mid-edit files) degrades to
/// `None` rather than panicking.
pub fn match_brackets(toks: &[Tok]) -> Vec<Option<usize>> {
    let mut close_of = vec![None; toks.len()];
    let mut paren: Vec<usize> = Vec::new();
    let mut square: Vec<usize> = Vec::new();
    let mut curly: Vec<usize> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "(" => paren.push(i),
            "[" => square.push(i),
            "{" => curly.push(i),
            ")" => {
                if let Some(o) = paren.pop() {
                    close_of[o] = Some(i);
                }
            }
            "]" => {
                if let Some(o) = square.pop() {
                    close_of[o] = Some(i);
                }
            }
            "}" => {
                if let Some(o) = curly.pop() {
                    close_of[o] = Some(i);
                }
            }
            _ => {}
        }
    }
    close_of
}

struct Parser<'a> {
    toks: &'a [Tok],
    close_of: &'a [Option<usize>],
}

/// Item-introducing keywords the parser recognizes after qualifiers.
const QUALIFIERS: [&str; 5] = ["pub", "default", "unsafe", "async", "extern"];

impl<'a> Parser<'a> {
    /// Parse items in the token range `[from, to)`. `in_test` marks the
    /// enclosing scope as test-only (propagated to children).
    fn items_in(&mut self, from: usize, to: usize, in_test: bool) -> Vec<Item> {
        let mut items = Vec::new();
        let mut i = from;
        while i < to {
            match self.item_at(i, to, in_test) {
                Some((item, next)) => {
                    i = next;
                    items.push(item);
                }
                None => {
                    // Not an item start: skip one token, descending past
                    // balanced brackets so statement braces in fn bodies
                    // are not mistaken for item scopes.
                    i += 1;
                }
            }
        }
        items
    }

    /// Try to parse one item starting at `i`; returns the item and the
    /// index just past it.
    fn item_at(&mut self, start: usize, limit: usize, in_test: bool) -> Option<(Item, usize)> {
        let toks = self.toks;
        let mut i = start;
        // Leading attributes: `# [ ... ]` (and inner `# ! [ ... ]`).
        let mut test_attr = false;
        while i + 1 < limit && toks[i].is_punct("#") {
            let open = if toks[i + 1].is_punct("[") {
                i + 1
            } else if i + 2 < limit && toks[i + 1].is_punct("!") && toks[i + 2].is_punct("[") {
                i + 2
            } else {
                break;
            };
            let close = self.close_of[open]?;
            test_attr |= attr_is_test(&toks[open + 1..close]);
            i = close + 1;
        }
        if i >= limit {
            return None;
        }
        // Qualifiers: `pub`, `pub(crate)`, `default`, `unsafe`,
        // `async`, `extern "C"`. `const` is special-cased below because
        // it introduces items too.
        let mut j = i;
        let mut saw_qualifier = false;
        loop {
            let t = toks.get(j)?;
            if t.kind == TokKind::Ident && QUALIFIERS.contains(&t.text.as_str()) {
                let is_extern = t.is_ident("extern");
                j += 1;
                saw_qualifier = true;
                if is_extern {
                    // `extern crate name;` is its own item kind.
                    if toks.get(j).is_some_and(|t| t.is_ident("crate")) {
                        let name = toks.get(j + 1)?.text.clone();
                        let end = self.seek_semi(j + 1, limit)?;
                        return Some((
                            self.mk(
                                ItemKind::ExternCrate,
                                name,
                                start,
                                end,
                                test_attr || in_test,
                            ),
                            end + 1,
                        ));
                    }
                    // `extern "C"`: skip the ABI string.
                    if toks.get(j).is_some_and(|t| t.kind == TokKind::Lit) {
                        j += 1;
                    }
                }
                // `pub ( crate )` visibility argument.
                if toks.get(j).is_some_and(|t| t.is_punct("(")) {
                    j = self.close_of[j]? + 1;
                }
            } else {
                break;
            }
        }
        let kw = toks.get(j)?;
        if kw.kind != TokKind::Ident {
            return None;
        }
        match kw.text.as_str() {
            "fn" => self.parse_fn(start, j, limit, test_attr || in_test),
            "struct" => self.parse_struct(start, j, limit, test_attr || in_test),
            "enum" | "trait" | "union" => {
                let name = toks.get(j + 1)?.text.clone();
                let kind = if kw.is_ident("enum") {
                    ItemKind::Enum
                } else {
                    ItemKind::Trait
                };
                let (body, end) = self.seek_body_or_semi(j + 1, limit)?;
                let mut item = self.mk(kind, name, start, end, test_attr || in_test);
                if let Some((open, close)) = body {
                    item.brace_body = Some((open, close));
                    if matches!(item.kind, ItemKind::Trait) {
                        item.children = self.items_in(open + 1, close, item.test);
                    }
                }
                Some((item, end + 1))
            }
            "mod" => {
                let name = toks.get(j + 1)?;
                if name.kind != TokKind::Ident {
                    return None;
                }
                let name = name.text.clone();
                let (body, end) = self.seek_body_or_semi(j + 1, limit)?;
                let mut item = self.mk(ItemKind::Mod, name, start, end, test_attr || in_test);
                if let Some((open, close)) = body {
                    item.brace_body = Some((open, close));
                    item.children = self.items_in(open + 1, close, item.test);
                }
                Some((item, end + 1))
            }
            "impl" => self.parse_impl(start, j, limit, test_attr || in_test),
            "use" => {
                let end = self.seek_semi(j, limit)?;
                let segments = use_stem(&toks[j + 1..end]);
                let name = segments.last().cloned().unwrap_or_default();
                Some((
                    self.mk(
                        ItemKind::Use { segments },
                        name,
                        start,
                        end,
                        test_attr || in_test,
                    ),
                    end + 1,
                ))
            }
            "const" | "static" => {
                // `const fn name(...)` is a function.
                if toks.get(j + 1).is_some_and(|t| t.is_ident("fn")) {
                    return self.parse_fn(start, j + 1, limit, test_attr || in_test);
                }
                // `const NAME : Type = init ;` — `const _` and
                // associated consts included.
                let name = toks.get(j + 1)?;
                if name.kind != TokKind::Ident {
                    return None;
                }
                let name = name.text.clone();
                let end = self.seek_semi(j + 1, limit)?;
                let kind = if kw.is_ident("static") {
                    ItemKind::Static
                } else {
                    let eq = (j + 2..end).find(|&k| {
                        toks[k].is_punct("=") && !toks.get(k + 1).is_some_and(|t| t.is_punct("="))
                    });
                    let literal_init = eq.is_some_and(|eq| {
                        toks[eq + 1..end].iter().all(|t| t.kind != TokKind::Ident) && eq + 1 < end
                    });
                    ItemKind::Const { literal_init }
                };
                Some((
                    self.mk(kind, name, start, end, test_attr || in_test),
                    end + 1,
                ))
            }
            "type" => {
                let name = toks.get(j + 1)?.text.clone();
                let end = self.seek_semi(j + 1, limit)?;
                Some((
                    self.mk(ItemKind::TypeAlias, name, start, end, test_attr || in_test),
                    end + 1,
                ))
            }
            _ => {
                if saw_qualifier {
                    return None;
                }
                // Macro invocation at item position: `name ! { ... }`.
                // `(`/`[` delimited invocations are expressions or
                // attribute-like items with no items inside; only brace
                // bodies are descended into (e.g. `proptest! { fn p(..) }`).
                if toks.get(j + 1).is_some_and(|t| t.is_punct("!"))
                    && toks.get(j + 2).is_some_and(|t| t.is_punct("{"))
                {
                    let open = j + 2;
                    let close = self.close_of[open]?;
                    let mut item = self.mk(
                        ItemKind::MacroInvocation,
                        kw.text.clone(),
                        start,
                        close,
                        test_attr || in_test,
                    );
                    item.brace_body = Some((open, close));
                    item.children = self.items_in(open + 1, close, item.test);
                    return Some((item, close + 1));
                }
                None
            }
        }
    }

    fn parse_fn(
        &mut self,
        start: usize,
        fn_kw: usize,
        limit: usize,
        test: bool,
    ) -> Option<(Item, usize)> {
        let toks = self.toks;
        let name = toks.get(fn_kw + 1)?;
        if name.kind != TokKind::Ident {
            return None;
        }
        let name = name.text.clone();
        let mut j = fn_kw + 2;
        // Generics.
        if toks.get(j).is_some_and(|t| t.is_punct("<")) {
            j = skip_angles(toks, j)?;
        }
        // Parameter list.
        if !toks.get(j).is_some_and(|t| t.is_punct("(")) {
            return None;
        }
        let params_open = j;
        let params_close = self.close_of[params_open]?;
        let params = param_names(&toks[params_open + 1..params_close]);
        // Return type / where clause, then body `{` or trait-decl `;`.
        let mut k = params_close + 1;
        let mut body = None;
        while k < limit {
            let t = &toks[k];
            if t.is_punct("{") {
                let close = self.close_of[k]?;
                body = Some((k, close));
                k = close;
                break;
            }
            if t.is_punct(";") {
                break;
            }
            if t.is_punct("<") {
                // Angle groups in the return type or where clause.
                match skip_angles(toks, k) {
                    Some(next) => {
                        k = next;
                        continue;
                    }
                    None => return None,
                }
            }
            if t.is_punct("(") || t.is_punct("[") {
                k = self.close_of[k]? + 1;
                continue;
            }
            k += 1;
        }
        let end = match body {
            Some((_, close)) => close,
            None => k.min(limit.saturating_sub(1)),
        };
        let mut item = self.mk(ItemKind::Fn { params, body }, name, start, end, test);
        if let Some((open, close)) = body {
            item.children = self.items_in(open + 1, close, test);
        }
        Some((item, end + 1))
    }

    fn parse_struct(
        &mut self,
        start: usize,
        kw: usize,
        limit: usize,
        test: bool,
    ) -> Option<(Item, usize)> {
        let toks = self.toks;
        let name = toks.get(kw + 1)?;
        if name.kind != TokKind::Ident {
            return None;
        }
        let name = name.text.clone();
        let mut j = kw + 2;
        if toks.get(j).is_some_and(|t| t.is_punct("<")) {
            j = skip_angles(toks, j)?;
        }
        // Tuple struct `( ... ) ;`, unit struct `;`, or braced fields.
        if toks.get(j).is_some_and(|t| t.is_punct("(")) {
            let close = self.close_of[j]?;
            let end = self.seek_semi(close, limit).unwrap_or(close);
            return Some((
                self.mk(
                    ItemKind::Struct { fields: Vec::new() },
                    name,
                    start,
                    end,
                    test,
                ),
                end + 1,
            ));
        }
        // `where` clause before the brace.
        while j < limit && !toks[j].is_punct("{") && !toks[j].is_punct(";") {
            if toks[j].is_punct("<") {
                j = skip_angles(toks, j)?;
            } else {
                j += 1;
            }
        }
        if toks.get(j).is_some_and(|t| t.is_punct(";")) {
            return Some((
                self.mk(
                    ItemKind::Struct { fields: Vec::new() },
                    name,
                    start,
                    j,
                    test,
                ),
                j + 1,
            ));
        }
        let open = j;
        let close = self.close_of.get(open).copied().flatten()?;
        let fields = struct_fields(toks, open + 1, close);
        Some((
            self.mk(ItemKind::Struct { fields }, name, start, close, test),
            close + 1,
        ))
    }

    fn parse_impl(
        &mut self,
        start: usize,
        kw: usize,
        limit: usize,
        test: bool,
    ) -> Option<(Item, usize)> {
        let toks = self.toks;
        let mut j = kw + 1;
        if toks.get(j).is_some_and(|t| t.is_punct("<")) {
            j = skip_angles(toks, j)?;
        }
        // Walk to the body `{`, remembering the last path-head ident at
        // angle depth 0 — for `impl Tr for Ty` that is `Ty`, for
        // `impl Ty` it is `Ty`.
        let mut name = String::new();
        while j < limit {
            let t = &toks[j];
            if t.is_punct("{") {
                let close = self.close_of[j]?;
                let mut item = self.mk(ItemKind::Impl, name, start, close, test);
                item.brace_body = Some((j, close));
                item.children = self.items_in(j + 1, close, test);
                return Some((item, close + 1));
            }
            if t.is_punct("<") {
                j = skip_angles(toks, j)?;
                continue;
            }
            if t.kind == TokKind::Ident && !t.is_ident("for") && !t.is_ident("where") {
                name = t.text.clone();
            }
            if t.is_punct(";") {
                return None;
            }
            j += 1;
        }
        None
    }

    /// Index of the next `;` at bracket depth 0 in `[from, limit)`.
    fn seek_semi(&self, from: usize, limit: usize) -> Option<usize> {
        let toks = self.toks;
        let mut j = from;
        while j < limit {
            let t = &toks[j];
            if t.is_punct(";") {
                return Some(j);
            }
            if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                j = self.close_of[j]? + 1;
                continue;
            }
            j += 1;
        }
        None
    }

    /// Walk to the item's `{ body }` or terminating `;`, whichever comes
    /// first. Returns `(Some(braces), close)` or `(None, semi)`.
    #[allow(clippy::type_complexity)]
    fn seek_body_or_semi(
        &self,
        from: usize,
        limit: usize,
    ) -> Option<(Option<(usize, usize)>, usize)> {
        let toks = self.toks;
        let mut j = from;
        while j < limit {
            let t = &toks[j];
            if t.is_punct("{") {
                let close = self.close_of[j]?;
                return Some((Some((j, close)), close));
            }
            if t.is_punct(";") {
                return Some((None, j));
            }
            if t.is_punct("<") {
                j = skip_angles(toks, j)?;
                continue;
            }
            if t.is_punct("(") || t.is_punct("[") {
                j = self.close_of[j]? + 1;
                continue;
            }
            j += 1;
        }
        None
    }

    fn mk(&self, kind: ItemKind, name: String, first: usize, last: usize, test: bool) -> Item {
        let toks = self.toks;
        let last = last.min(toks.len().saturating_sub(1));
        let span = Span {
            start: toks[first].start,
            end: toks[last].end,
            line_start: toks[first].line,
            line_end: toks[last].line,
        };
        Item {
            kind,
            name,
            toks: (first, last),
            span,
            test,
            children: Vec::new(),
            brace_body: None,
        }
    }
}

/// Skip a balanced `< ... >` group starting at `open`; returns the index
/// just past the matching `>`. Counts shifts conservatively (the lexer
/// emits `>` `>` as two puncts, so `Vec<Vec<u8>>` balances).
fn skip_angles(toks: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut j = open;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct("<") {
            depth += 1;
        } else if t.is_punct(">") {
            depth -= 1;
            if depth == 0 {
                return Some(j + 1);
            }
        } else if t.is_punct("(") || t.is_punct("{") || t.is_punct(";") {
            // Angle groups in type position never contain these at
            // depth ≥ 1 in the code this lint faces; treat as mismatch
            // (e.g. `a < b` comparison) and give up on the group.
            return Some(j);
        }
        j += 1;
    }
    None
}

/// Does an attribute token list mark test-only code? Matches `test`
/// (`#[test]`) and `cfg(test`/`cfg(all(test`/`cfg(any(test` heads.
fn attr_is_test(attr: &[Tok]) -> bool {
    if attr.len() == 1 && attr.first().is_some_and(|t| t.is_ident("test")) {
        return true;
    }
    if attr.first().is_some_and(|t| t.is_ident("cfg")) {
        return attr.iter().any(|t| t.is_ident("test"));
    }
    false
}

/// Extract the simple path stem of a use declaration's tokens (between
/// `use` and `;`): identifiers joined by `::`, stopping at `{`, `*`,
/// `as`, or anything else.
fn use_stem(toks: &[Tok]) -> Vec<String> {
    let mut segments = Vec::new();
    let mut j = 0usize;
    // Leading `::` (2015-style absolute paths).
    while j + 1 < toks.len() && toks[j].is_punct(":") && toks[j + 1].is_punct(":") {
        j += 2;
    }
    while j < toks.len() {
        let t = &toks[j];
        if t.kind != TokKind::Ident || t.is_ident("as") {
            break;
        }
        segments.push(t.text.clone());
        if toks.get(j + 1).is_some_and(|t| t.is_punct(":"))
            && toks.get(j + 2).is_some_and(|t| t.is_punct(":"))
        {
            j += 3;
        } else {
            break;
        }
    }
    segments
}

/// Parameter binding names from a parameter-list token range. `self`
/// (with any `&`/`mut`/lifetime qualifiers) comes out as `"self"`;
/// `name: Type` patterns yield `name`; destructuring patterns are
/// skipped (their bindings are not trackable by the dataflow anyway).
fn param_names(toks: &[Tok]) -> Vec<String> {
    let mut params = Vec::new();
    let mut depth = 0i32;
    let mut arg_start = 0usize;
    let mut j = 0usize;
    let flush = |params: &mut Vec<String>, arg: &[Tok]| {
        // `[&] [' a] [mut] self` or `ident :`.
        let mut k = 0usize;
        while k < arg.len()
            && (arg[k].is_punct("&") || arg[k].is_ident("mut") || arg[k].kind == TokKind::Lifetime)
        {
            k += 1;
        }
        if arg.get(k).is_some_and(|t| t.is_ident("self")) {
            params.push("self".to_string());
            return;
        }
        if arg.first().is_some_and(|t| t.is_ident("mut")) {
            // `mut name: Type`.
            if let Some(name) = arg.get(1).filter(|t| t.kind == TokKind::Ident) {
                if arg.get(2).is_some_and(|t| t.is_punct(":")) {
                    params.push(name.text.clone());
                }
            }
            return;
        }
        if let Some(name) = arg.first().filter(|t| t.kind == TokKind::Ident) {
            if arg.get(1).is_some_and(|t| t.is_punct(":")) {
                params.push(name.text.clone());
            }
        }
    };
    while j < toks.len() {
        let t = &toks[j];
        match t.text.as_str() {
            "(" | "[" | "{" | "<" if t.kind == TokKind::Punct => depth += 1,
            // `>` closes an angle group — unless it is the tail of a
            // `->` return arrow in a closure-typed param (`impl Fn() -> A`).
            ">" if t.kind == TokKind::Punct && j >= 1 && toks[j - 1].is_punct("-") => {}
            ")" | "]" | "}" | ">" if t.kind == TokKind::Punct => depth -= 1,
            "," if t.kind == TokKind::Punct && depth == 0 => {
                flush(&mut params, &toks[arg_start..j]);
                arg_start = j + 1;
            }
            _ => {}
        }
        j += 1;
    }
    if arg_start < toks.len() {
        flush(&mut params, &toks[arg_start..]);
    }
    params
}

/// Field `(name, outermost type)` pairs from a struct body token range.
fn struct_fields(toks: &[Tok], from: usize, to: usize) -> Vec<(String, String)> {
    let mut fields = Vec::new();
    let mut j = from;
    let mut depth = 0i32;
    while j < to {
        let t = &toks[j];
        if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") || t.is_punct("<") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") || t.is_punct(">") {
            depth -= 1;
        } else if depth == 0
            && t.kind == TokKind::Ident
            && toks.get(j + 1).is_some_and(|x| x.is_punct(":"))
            && !toks.get(j + 2).is_some_and(|x| x.is_punct(":"))
            && (j == from
                || toks[j - 1].is_punct(",")
                || toks[j - 1].is_punct("]")
                || toks[j - 1].is_ident("pub")
                || toks[j - 1].is_punct(")"))
        {
            let name = t.text.clone();
            if let Some(ty) = outer_type_name(&toks[j + 2..to]) {
                fields.push((name, ty));
            }
        }
        j += 1;
    }
    fields
}

/// The outermost type name of a type token sequence: skips `&`, `mut`,
/// lifetimes, `dyn`/`impl`, resolves leading paths to their last
/// segment (`std::collections::HashMap<..>` → `HashMap`).
pub fn outer_type_name(toks: &[Tok]) -> Option<String> {
    let mut k = 0usize;
    while k < toks.len()
        && (toks[k].is_punct("&")
            || toks[k].is_ident("mut")
            || toks[k].kind == TokKind::Lifetime
            || toks[k].is_ident("dyn")
            || toks[k].is_ident("impl"))
    {
        k += 1;
    }
    let mut name = None;
    while k < toks.len() && toks[k].kind == TokKind::Ident {
        name = Some(toks[k].text.clone());
        if toks.get(k + 1).is_some_and(|t| t.is_punct(":"))
            && toks.get(k + 2).is_some_and(|t| t.is_punct(":"))
        {
            k += 3;
        } else {
            break;
        }
    }
    name
}

/// All `for` loops with resolvable bodies, in token order.
fn collect_loops(toks: &[Tok], close_of: &[Option<usize>]) -> Vec<Loop> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("for") {
            continue;
        }
        if let Some((_, body_idx)) = for_in_and_body(toks, i) {
            if let Some(end) = close_of[body_idx] {
                out.push(Loop {
                    head: i,
                    body: (body_idx, end),
                });
            }
        }
    }
    out
}

/// For a `for` token, locate the `in` keyword and the body `{`, rejecting
/// `impl Trait for Type` (which has no `in` before its brace).
pub fn for_in_and_body(toks: &[Tok], for_idx: usize) -> Option<(usize, usize)> {
    let mut depth = 0i32;
    let mut in_idx = None;
    let mut j = for_idx + 1;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct("(") || t.is_punct("[") || t.is_punct("<") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") || t.is_punct(">") {
            depth -= 1;
        } else if depth <= 0 && t.is_punct("{") {
            return in_idx.map(|ii| (ii, j));
        } else if depth <= 0 && t.is_ident("in") && in_idx.is_none() {
            in_idx = Some(j);
        } else if t.is_punct(";") {
            return None;
        }
        j += 1;
    }
    None
}

/// Every call site in the token stream: `name (` preceded by either a
/// `::` path, a `.` receiver chain, or nothing.
fn collect_calls(toks: &[Tok]) -> Vec<Call> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || !toks.get(i + 1).is_some_and(|x| x.is_punct("(")) {
            continue;
        }
        // `fn name(` is a declaration, not a call; `for`/`if`/`while`/
        // `match` heads with parens are not calls either.
        if i >= 1 && (toks[i - 1].is_ident("fn") || toks[i - 1].is_punct("#")) {
            continue;
        }
        if matches!(t.text.as_str(), "if" | "while" | "for" | "match" | "return") {
            continue;
        }
        let mut path = Vec::new();
        let mut receiver = Vec::new();
        if i >= 2 && toks[i - 1].is_punct(":") && toks[i - 2].is_punct(":") {
            // Walk the `::` path backwards.
            let mut k = i;
            while k >= 3
                && toks[k - 1].is_punct(":")
                && toks[k - 2].is_punct(":")
                && toks[k - 3].kind == TokKind::Ident
            {
                path.push(toks[k - 3].text.clone());
                k -= 3;
            }
            path.reverse();
        } else if i >= 2 && toks[i - 1].is_punct(".") {
            // Walk the `.` receiver chain backwards while it stays a
            // simple `a.b.c` path (any call/index link breaks it).
            let mut k = i;
            while k >= 2 && toks[k - 1].is_punct(".") && toks[k - 2].kind == TokKind::Ident {
                receiver.push(toks[k - 2].text.clone());
                k -= 2;
            }
            // The chain must start the expression: reject `foo().b.c(`.
            if k >= 1 && (toks[k - 1].is_punct(")") || toks[k - 1].is_punct("]")) {
                receiver.clear();
            }
            receiver.reverse();
        }
        out.push(Call {
            name_idx: i,
            name: t.text.clone(),
            path,
            receiver,
            args_open: i + 1,
        });
    }
    out
}

// --- Item: the `brace_body` backing field -------------------------------

// (Declared down here to keep the public struct definition readable.)
impl Item {
    /// Internal constructor used by tests that build items directly.
    #[doc(hidden)]
    pub fn new_for_tests(kind: ItemKind, name: &str) -> Item {
        Item {
            kind,
            name: name.to_string(),
            toks: (0, 0),
            span: Span {
                start: 0,
                end: 0,
                line_start: 1,
                line_end: 1,
            },
            test: false,
            children: Vec::new(),
            brace_body: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> ParsedFile {
        parse(&lex(src))
    }

    #[test]
    fn fn_item_with_params_and_body() {
        let p = parse_src("pub fn f(a: u64, mut b: &str, self) -> u64 { a + 1 }");
        assert_eq!(p.items.len(), 1);
        let item = &p.items[0];
        assert_eq!(item.name, "f");
        match &item.kind {
            ItemKind::Fn { params, body } => {
                assert_eq!(params, &["a", "b", "self"]);
                assert!(body.is_some());
            }
            other => panic!("expected fn, got {other:?}"),
        }
    }

    #[test]
    fn struct_fields_resolve_outer_type_names() {
        let p = parse_src(
            "struct Acc { overall: Dense<E2ldId, u64>, s: crate::stamp::Stamp, n: usize }",
        );
        match &p.items[0].kind {
            ItemKind::Struct { fields } => {
                assert_eq!(
                    fields,
                    &[
                        ("overall".into(), "Dense".into()),
                        ("s".into(), "Stamp".into()),
                        ("n".into(), "usize".into())
                    ]
                );
            }
            other => panic!("expected struct, got {other:?}"),
        }
    }

    #[test]
    fn nested_mods_and_test_attr_propagate() {
        let p = parse_src(
            "mod outer { #[cfg(test)] mod tests { fn helper() { x.iter(); } } fn live() {} }",
        );
        let outer = &p.items[0];
        assert_eq!(outer.name, "outer");
        assert_eq!(outer.children.len(), 2);
        assert!(outer.children[0].test, "cfg(test) mod is test");
        assert!(outer.children[0].children[0].test, "fn inside inherits");
        assert!(!outer.children[1].test);
        // test_spans covers the helper's iter call.
        let spans = p.test_spans();
        assert!(!spans.is_empty());
    }

    #[test]
    fn use_decl_stems() {
        let p = parse_src("use downlake_query::{Adjacency, Dense};\nuse std::fmt::Write as _;");
        match &p.items[0].kind {
            ItemKind::Use { segments } => assert_eq!(segments, &["downlake_query"]),
            other => panic!("expected use, got {other:?}"),
        }
        match &p.items[1].kind {
            ItemKind::Use { segments } => assert_eq!(segments, &["std", "fmt", "Write"]),
            other => panic!("expected use, got {other:?}"),
        }
    }

    #[test]
    fn const_literal_init_detection() {
        let p = parse_src("const SALT: u64 = 0xfeed;\nconst DERIVED: u64 = BASE + 1;");
        match &p.items[0].kind {
            ItemKind::Const { literal_init } => assert!(literal_init),
            other => panic!("{other:?}"),
        }
        match &p.items[1].kind {
            ItemKind::Const { literal_init } => assert!(!literal_init),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn impl_names_the_self_type_and_nests_fns() {
        let p = parse_src("impl<K: Key> Frame<K> { fn rows(&self) -> usize { self.n } }");
        let item = &p.items[0];
        assert!(matches!(item.kind, ItemKind::Impl));
        assert_eq!(item.name, "Frame");
        assert_eq!(item.children.len(), 1);
        assert_eq!(item.children[0].name, "rows");
        let p2 = parse_src("impl fmt::Display for RuleId { fn fmt(&self) {} }");
        assert_eq!(p2.items[0].name, "RuleId");
    }

    #[test]
    fn macro_invocation_bodies_yield_fn_items() {
        let p = parse_src("proptest! { #![proptest_config(C)] fn prop_holds(x in any()) { } }");
        let mac = &p.items[0];
        assert!(matches!(mac.kind, ItemKind::MacroInvocation));
        assert_eq!(mac.children.len(), 1);
        assert_eq!(mac.children[0].name, "prop_holds");
    }

    #[test]
    fn calls_carry_paths_and_receivers() {
        let p = parse_src("fn f() { SmallRng::seed_from_u64(s); acc.overall.merge(x); g(); }");
        let calls: Vec<(&str, &[String], &[String])> = p
            .calls
            .iter()
            .map(|c| (c.name.as_str(), &c.path[..], &c.receiver[..]))
            .collect();
        assert_eq!(calls.len(), 3);
        assert_eq!(calls[0].0, "seed_from_u64");
        assert_eq!(calls[0].1, ["SmallRng".to_string()]);
        assert_eq!(calls[1].0, "merge");
        assert_eq!(calls[1].2, ["acc".to_string(), "overall".to_string()]);
        assert_eq!(calls[2].0, "g");
    }

    #[test]
    fn enclosing_fn_finds_the_innermost_body() {
        let src = "fn outer() { fn inner() { seed_from_u64(1); } }";
        let p = parse_src(src);
        let call = p.calls.iter().find(|c| c.name == "seed_from_u64").unwrap();
        let encl = p.enclosing_fn(call.name_idx).unwrap();
        assert_eq!(encl.name, "inner");
    }

    #[test]
    fn spans_slice_back_to_the_item() {
        let src = "mod a {}\n\npub fn addone(x: u64) -> u64 { x + 1 }\n";
        let p = parse_src(src);
        let f = &p.items[1];
        let sliced = &src[f.span.start as usize..f.span.end as usize];
        assert!(sliced.starts_with("pub fn addone"));
        assert!(sliced.ends_with('}'));
        assert_eq!(f.span.line_start, 3);
    }
}
