//! CLI for `downlake-lint`.
//!
//! ```text
//! downlake-lint                  # print all findings (informational)
//! downlake-lint --json           # findings as JSON on stdout
//! downlake-lint --check          # gate: fail on any finding or allow-count increase
//! downlake-lint --sarif <file>   # additionally write findings as SARIF 2.1.0
//! downlake-lint --update-baseline# rewrite lint-baseline.json from current state
//! downlake-lint --update-allows  # rewrite lint-allows.json (the attrition ratchet)
//! downlake-lint --root <dir>     # workspace root (default: discovered from cwd)
//! downlake-lint --baseline <file># baseline path (default: <root>/lint-baseline.json)
//! downlake-lint --allows <file>  # ratchet path (default: <root>/lint-allows.json)
//! ```

use downlake_lint::{baseline, sarif, scan_workspace_report};
use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

/// Writes bulk output to stdout, exiting quietly if the reader went away
/// (e.g. `downlake-lint --json | head`) instead of panicking on SIGPIPE.
fn emit(text: &str) -> Result<(), ExitCode> {
    match std::io::stdout().write_all(text.as_bytes()) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => Err(ExitCode::SUCCESS),
        Err(e) => {
            eprintln!("downlake-lint: cannot write to stdout: {e}");
            Err(ExitCode::from(2))
        }
    }
}

struct Opts {
    check: bool,
    json: bool,
    update_baseline: bool,
    update_allows: bool,
    quiet: bool,
    root: Option<PathBuf>,
    baseline_path: Option<PathBuf>,
    allows_path: Option<PathBuf>,
    sarif_path: Option<PathBuf>,
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        check: false,
        json: false,
        update_baseline: false,
        update_allows: false,
        quiet: false,
        root: None,
        baseline_path: None,
        allows_path: None,
        sarif_path: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--check" => opts.check = true,
            "--json" => opts.json = true,
            "--update-baseline" => opts.update_baseline = true,
            "--update-allows" => opts.update_allows = true,
            "-q" | "--quiet" => opts.quiet = true,
            "--root" => {
                opts.root = Some(PathBuf::from(
                    args.next().ok_or("--root needs a directory argument")?,
                ))
            }
            "--baseline" => {
                opts.baseline_path = Some(PathBuf::from(
                    args.next().ok_or("--baseline needs a file argument")?,
                ))
            }
            "--allows" => {
                opts.allows_path = Some(PathBuf::from(
                    args.next().ok_or("--allows needs a file argument")?,
                ))
            }
            "--sarif" => {
                opts.sarif_path = Some(PathBuf::from(
                    args.next().ok_or("--sarif needs a file argument")?,
                ))
            }
            "-h" | "--help" => {
                println!(
                    "downlake-lint [--check | --json | --update-baseline | --update-allows] \
                     [--sarif <file>] [--root <dir>] [--baseline <file>] [--allows <file>] [-q]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("downlake-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let root = match opts
        .root
        .clone()
        .or_else(|| downlake_lint::walk::find_workspace_root(&cwd))
    {
        Some(r) => r,
        None => {
            eprintln!(
                "downlake-lint: no workspace root found above {}",
                cwd.display()
            );
            return ExitCode::from(2);
        }
    };
    let baseline_path = opts
        .baseline_path
        .clone()
        .unwrap_or_else(|| root.join("lint-baseline.json"));
    let allows_path = opts
        .allows_path
        .clone()
        .unwrap_or_else(|| root.join("lint-allows.json"));

    let report = match scan_workspace_report(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("downlake-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };
    let findings = report.findings;

    if let Some(sarif_path) = &opts.sarif_path {
        let doc = sarif::to_sarif(&findings);
        if let Err(e) = std::fs::write(sarif_path, doc) {
            eprintln!("downlake-lint: cannot write {}: {e}", sarif_path.display());
            return ExitCode::from(2);
        }
        if !opts.quiet {
            println!(
                "downlake-lint: SARIF ({} result(s)) written to {}",
                findings.len(),
                sarif_path.display()
            );
        }
    }

    if opts.update_allows {
        let doc = baseline::allows_to_json(&report.allows);
        if let Err(e) = std::fs::write(&allows_path, doc) {
            eprintln!("downlake-lint: cannot write {}: {e}", allows_path.display());
            return ExitCode::from(2);
        }
        let total: usize = report.allows.values().sum();
        println!(
            "downlake-lint: allow ratchet updated — {} reasoned allow(s) recorded in {}",
            total,
            allows_path.display()
        );
        return ExitCode::SUCCESS;
    }

    if opts.update_baseline {
        let doc = baseline::to_json(&findings);
        if let Err(e) = std::fs::write(&baseline_path, doc) {
            eprintln!(
                "downlake-lint: cannot write {}: {e}",
                baseline_path.display()
            );
            return ExitCode::from(2);
        }
        println!(
            "downlake-lint: baseline updated — {} finding(s) recorded in {}",
            findings.len(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    if opts.json {
        let mut doc = baseline::to_json(&findings);
        doc.push('\n');
        if let Err(code) = emit(&doc) {
            return code;
        }
        return ExitCode::SUCCESS;
    }

    if opts.check {
        // The historical debt is burned down and the committed baseline
        // is empty, so the gate allows no findings at all. The baseline
        // is still parsed: a non-empty one means someone tried to
        // re-accept debt, which the gate rejects loudly.
        let base = match std::fs::read_to_string(&baseline_path) {
            Ok(doc) => match baseline::parse(&doc) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!(
                        "downlake-lint: malformed baseline {}: {e}",
                        baseline_path.display()
                    );
                    return ExitCode::from(2);
                }
            },
            Err(_) => Vec::new(), // no baseline file: nothing is accepted
        };
        if !base.is_empty() {
            eprintln!(
                "downlake-lint: baseline {} lists {} finding(s), but the gate \
                 accepts no debt — fix the findings and empty the baseline",
                baseline_path.display(),
                base.len()
            );
            return ExitCode::from(2);
        }
        if !opts.quiet {
            print!("{}", baseline::rule_count_table(&findings, &base));
        }
        if !findings.is_empty() {
            eprintln!(
                "\ndownlake-lint: {} finding(s) — the gate allows none:",
                findings.len()
            );
            for f in &findings {
                eprintln!("  {}", f.human());
            }
            eprintln!(
                "\nfix the findings, or justify unavoidable sites with \
                 `// downlake-lint: allow(<rule>) — <reason>`."
            );
            return ExitCode::FAILURE;
        }
        // Allow-attrition ratchet: the committed lint-allows.json pins
        // the per-rule count of reasoned allow comments. New allows fail
        // the gate; removing allows is flagged so the pin gets lowered.
        let pinned = match std::fs::read_to_string(&allows_path) {
            Ok(doc) => match baseline::parse_allows(&doc) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!(
                        "downlake-lint: malformed allow ratchet {}: {e}",
                        allows_path.display()
                    );
                    return ExitCode::from(2);
                }
            },
            Err(_) => Default::default(), // no ratchet file: zero allows accepted
        };
        let mut regressed = false;
        let mut slack = false;
        for rule in downlake_lint::rules::ALL_RULES {
            let now = report.allows.get(&rule).copied().unwrap_or(0);
            let cap = pinned.get(&rule).copied().unwrap_or(0);
            if now > cap {
                eprintln!(
                    "downlake-lint: {} allow({}) comment(s), ratchet caps {cap} — \
                     fix the new site(s) or raise the cap deliberately with --update-allows",
                    now,
                    rule.id()
                );
                regressed = true;
            } else if now < cap {
                slack = true;
            }
        }
        if regressed {
            return ExitCode::FAILURE;
        }
        if slack && !opts.quiet {
            println!(
                "downlake-lint: allow count dropped below the ratchet — run \
                 --update-allows to lock in the improvement"
            );
        }
        if !opts.quiet {
            println!("downlake-lint: clean — zero findings, allow ratchet holds");
        }
        return ExitCode::SUCCESS;
    }

    let mut listing = String::new();
    for f in &findings {
        listing.push_str(&f.human());
        listing.push('\n');
    }
    if !opts.quiet {
        listing.push_str(&format!("downlake-lint: {} finding(s)\n", findings.len()));
    }
    if let Err(code) = emit(&listing) {
        return code;
    }
    ExitCode::SUCCESS
}
