//! CLI for `downlake-lint`.
//!
//! ```text
//! downlake-lint                  # print all findings (informational)
//! downlake-lint --json           # findings as JSON on stdout
//! downlake-lint --check          # gate: fail on any finding
//! downlake-lint --update-baseline# rewrite lint-baseline.json from current state
//! downlake-lint --root <dir>     # workspace root (default: discovered from cwd)
//! downlake-lint --baseline <file># baseline path (default: <root>/lint-baseline.json)
//! ```

use downlake_lint::{baseline, scan_workspace};
use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

/// Writes bulk output to stdout, exiting quietly if the reader went away
/// (e.g. `downlake-lint --json | head`) instead of panicking on SIGPIPE.
fn emit(text: &str) -> Result<(), ExitCode> {
    match std::io::stdout().write_all(text.as_bytes()) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => Err(ExitCode::SUCCESS),
        Err(e) => {
            eprintln!("downlake-lint: cannot write to stdout: {e}");
            Err(ExitCode::from(2))
        }
    }
}

struct Opts {
    check: bool,
    json: bool,
    update_baseline: bool,
    quiet: bool,
    root: Option<PathBuf>,
    baseline_path: Option<PathBuf>,
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        check: false,
        json: false,
        update_baseline: false,
        quiet: false,
        root: None,
        baseline_path: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--check" => opts.check = true,
            "--json" => opts.json = true,
            "--update-baseline" => opts.update_baseline = true,
            "-q" | "--quiet" => opts.quiet = true,
            "--root" => {
                opts.root = Some(PathBuf::from(
                    args.next().ok_or("--root needs a directory argument")?,
                ))
            }
            "--baseline" => {
                opts.baseline_path = Some(PathBuf::from(
                    args.next().ok_or("--baseline needs a file argument")?,
                ))
            }
            "-h" | "--help" => {
                println!(
                    "downlake-lint [--check | --json | --update-baseline] \
                     [--root <dir>] [--baseline <file>] [-q]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("downlake-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let root = match opts
        .root
        .clone()
        .or_else(|| downlake_lint::walk::find_workspace_root(&cwd))
    {
        Some(r) => r,
        None => {
            eprintln!(
                "downlake-lint: no workspace root found above {}",
                cwd.display()
            );
            return ExitCode::from(2);
        }
    };
    let baseline_path = opts
        .baseline_path
        .clone()
        .unwrap_or_else(|| root.join("lint-baseline.json"));

    let findings = match scan_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("downlake-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    if opts.update_baseline {
        let doc = baseline::to_json(&findings);
        if let Err(e) = std::fs::write(&baseline_path, doc) {
            eprintln!(
                "downlake-lint: cannot write {}: {e}",
                baseline_path.display()
            );
            return ExitCode::from(2);
        }
        println!(
            "downlake-lint: baseline updated — {} finding(s) recorded in {}",
            findings.len(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    if opts.json {
        let mut doc = baseline::to_json(&findings);
        doc.push('\n');
        if let Err(code) = emit(&doc) {
            return code;
        }
        return ExitCode::SUCCESS;
    }

    if opts.check {
        // The historical debt is burned down and the committed baseline
        // is empty, so the gate allows no findings at all. The baseline
        // is still parsed: a non-empty one means someone tried to
        // re-accept debt, which the gate rejects loudly.
        let base = match std::fs::read_to_string(&baseline_path) {
            Ok(doc) => match baseline::parse(&doc) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!(
                        "downlake-lint: malformed baseline {}: {e}",
                        baseline_path.display()
                    );
                    return ExitCode::from(2);
                }
            },
            Err(_) => Vec::new(), // no baseline file: nothing is accepted
        };
        if !base.is_empty() {
            eprintln!(
                "downlake-lint: baseline {} lists {} finding(s), but the gate \
                 accepts no debt — fix the findings and empty the baseline",
                baseline_path.display(),
                base.len()
            );
            return ExitCode::from(2);
        }
        if !opts.quiet {
            print!("{}", baseline::rule_count_table(&findings, &base));
        }
        if !findings.is_empty() {
            eprintln!(
                "\ndownlake-lint: {} finding(s) — the gate allows none:",
                findings.len()
            );
            for f in &findings {
                eprintln!("  {}", f.human());
            }
            eprintln!(
                "\nfix the findings, or justify unavoidable sites with \
                 `// downlake-lint: allow(<rule>) — <reason>`."
            );
            return ExitCode::FAILURE;
        }
        if !opts.quiet {
            println!("downlake-lint: clean — zero findings");
        }
        return ExitCode::SUCCESS;
    }

    let mut listing = String::new();
    for f in &findings {
        listing.push_str(&f.human());
        listing.push('\n');
    }
    if !opts.quiet {
        listing.push_str(&format!("downlake-lint: {} finding(s)\n", findings.len()));
    }
    if let Err(code) = emit(&listing) {
        return code;
    }
    ExitCode::SUCCESS
}
