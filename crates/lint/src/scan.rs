//! Per-file scanner driving every downlake lint rule.
//!
//! The scanner lexes the file once ([`crate::lexer`]), parses the token
//! stream into an item tree once ([`crate::parse`]), then runs two
//! kinds of passes over the shared structures: the original
//! token-pattern rules (D1–D4, P1, P2) and the parser-based rules — S1
//! seed-provenance and M1 merge-commutativity in [`crate::dataflow`],
//! L1 crate-layering in [`crate::modgraph`]. M1 needs cross-file
//! context (struct field types, the contracts manifest), so it only
//! runs through [`scan_file_in`] when a [`WorkspaceCtx`] is supplied;
//! [`scan_file`] covers the per-file rules alone.
//!
//! The type knowledge is deliberately intra-file and heuristic: an
//! identifier counts as hash-typed when the file declares it with a
//! `HashMap`/`HashSet` annotation or constructs it via
//! `HashMap::new()`-style calls. Identifiers that *also* carry an
//! ordered-collection declaration somewhere in the file are treated as
//! ambiguous and never flagged — the lint prefers false negatives over
//! false positives, with `clippy.toml`'s `disallowed-methods` as the
//! coarse backstop.

use crate::dataflow::{scan_m1, scan_s1};
use crate::lexer::{lex, Tok, TokKind};
use crate::modgraph::{check_layering, WorkspaceCtx};
use crate::parse::{for_in_and_body, parse, ParsedFile};
use crate::rules::{Finding, RuleId};
use std::collections::{BTreeMap, BTreeSet};

/// How the workspace walker classified one file; controls which rules run.
#[derive(Debug, Clone)]
pub struct FileCtx {
    /// Workspace-relative path with `/` separators.
    pub rel_path: String,
    /// `crates/bench` may use `Instant::now`/`SystemTime::now` (D2 carve-out).
    pub allow_time: bool,
    /// `crates/exec` owns threading: raw concurrency primitives are legal
    /// there and only there (D4 carve-out).
    pub allow_concurrency: bool,
    /// Library (non-binary, non-test) code: P1 and the D2 env-read arm apply.
    pub library: bool,
    /// Analysis hot path (`crates/analysis/src`, `crates/query/src`,
    /// `crates/stream/src`): P2 applies.
    pub hot_loop: bool,
}

/// Methods that start an iteration over the receiver collection.
const ITER_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Chain terminals whose result does not depend on iteration order.
const ORDER_INSENSITIVE: [&str; 11] = [
    "count",
    "len",
    "any",
    "all",
    "max",
    "min",
    "max_by",
    "min_by",
    "max_by_key",
    "min_by_key",
    "is_empty",
];

/// Explicit in-chain sorting adapters (itertools-style).
const CHAIN_SORTERS: [&str; 4] = ["sorted", "sorted_by", "sorted_by_key", "sorted_unstable"];

/// Scan one file with the per-file rules only (D1–D4, P1, P2, S1, L1).
/// Findings come back sorted, deduplicated, allow-comments applied.
pub fn scan_file(ctx: &FileCtx, src: &str) -> Vec<Finding> {
    scan_file_in(ctx, src, None)
}

/// Scan one file with every rule. When `ws` is supplied, the
/// cross-file M1 merge-commutativity pass runs too.
pub fn scan_file_in(ctx: &FileCtx, src: &str, ws: Option<&WorkspaceCtx>) -> Vec<Finding> {
    let lexed = lex(src);
    let toks = &lexed.toks;
    let parsed = parse(&lexed);
    let close_of = &parsed.close_of;
    let test_spans = parsed.test_spans();
    let allow = allow_lines(&lexed.comments);

    let facts = TypeFacts::collect(toks);
    let mut out: Vec<Finding> = Vec::new();

    let in_test = |i: usize| test_spans.iter().any(|&(a, b)| i > a && i < b);

    scan_d1_d3(ctx, toks, close_of, &facts, &in_test, &mut out);
    scan_for_loops_d1(ctx, toks, &parsed, &facts, &in_test, &mut out);
    scan_d2(ctx, toks, &in_test, &mut out);
    if !ctx.allow_concurrency {
        scan_d4(ctx, toks, &in_test, &mut out);
    }
    if ctx.library {
        scan_p1(ctx, toks, close_of, &in_test, &mut out);
    }
    if ctx.hot_loop {
        scan_p2(ctx, toks, &parsed, &facts, &in_test, &mut out);
    }
    out.extend(scan_s1(ctx, toks, &parsed));
    out.extend(check_layering(ctx, &parsed));
    if let Some(ws) = ws {
        out.extend(scan_m1(ctx, toks, &parsed, ws));
    }

    out.retain(|f| {
        let allowed = |l: u32| allow.get(&l).is_some_and(|set| set.contains(&f.rule));
        !(allowed(f.line) || (f.line > 1 && allowed(f.line - 1)))
    });
    out.sort();
    out.dedup();
    out
}

/// Count the reasoned `// downlake-lint: allow(...)` directives in one
/// file, per rule — the quantity the attrition ratchet
/// (`lint-allows.json`) tracks. Each `(line, rule)` pair counts once;
/// reasonless directives are ignored, like everywhere else.
pub fn count_allows(src: &str) -> BTreeMap<RuleId, usize> {
    let lexed = lex(src);
    let mut counts: BTreeMap<RuleId, usize> = BTreeMap::new();
    for rules in allow_lines(&lexed.comments).values() {
        for &r in rules {
            *counts.entry(r).or_default() += 1;
        }
    }
    counts
}

/// Intra-file, heuristic knowledge about identifier types.
struct TypeFacts {
    /// Idents declared/constructed as `HashMap`/`HashSet`.
    hash_idents: BTreeSet<String>,
    /// Idents declared/constructed as ordered collections or scalars —
    /// used to veto ambiguous names shared with hash-typed declarations.
    ordered_idents: BTreeSet<String>,
    /// Idents declared/constructed as `String` (for the P2 clone arm).
    string_idents: BTreeSet<String>,
}

impl TypeFacts {
    fn collect(toks: &[Tok]) -> TypeFacts {
        let mut hash_idents = BTreeSet::new();
        let mut ordered_idents = BTreeSet::new();
        let mut string_idents = BTreeSet::new();
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokKind::Ident {
                continue;
            }
            let bucket: Option<&mut BTreeSet<String>> = match t.text.as_str() {
                "HashMap" | "HashSet" => Some(&mut hash_idents),
                "BTreeMap" | "BTreeSet" | "Vec" | "VecDeque" | "BinaryHeap" => {
                    Some(&mut ordered_idents)
                }
                "String" => Some(&mut string_idents),
                _ => None,
            };
            let Some(bucket) = bucket else { continue };
            if let Some(name) = declared_ident(toks, i) {
                bucket.insert(name);
            }
        }
        // `let s = format!(...)` / `let s = x.to_string()` bind Strings too.
        for i in 0..toks.len() {
            let is_fmt =
                toks[i].is_ident("format") && toks.get(i + 1).is_some_and(|t| t.is_punct("!"));
            let is_tos = toks[i].is_ident("to_string") && i >= 1 && toks[i - 1].is_punct(".");
            if (is_fmt || is_tos) && i >= 2 && toks[i - 1].is_punct("=") {
                if let Some(name) = ident_before_eq(toks, i - 1) {
                    string_idents.insert(name);
                }
            }
        }
        TypeFacts {
            hash_idents,
            ordered_idents,
            string_idents,
        }
    }

    /// Is `name` hash-typed and not also claimed by an ordered declaration?
    fn is_hash(&self, name: &str) -> bool {
        self.hash_idents.contains(name) && !self.ordered_idents.contains(name)
    }
}

/// Given the index of a type-name token (`HashMap`, `Vec`, `String`, ...),
/// walk backwards over path segments / `&` / `mut` and return the ident it
/// annotates (`x: HashMap<..>`) or is assigned to (`x = HashMap::new()`).
fn declared_ident(toks: &[Tok], idx: usize) -> Option<String> {
    let mut k = idx;
    // Skip a leading path: `std :: collections :: HashMap`.
    while k >= 3
        && toks[k - 1].is_punct(":")
        && toks[k - 2].is_punct(":")
        && toks[k - 3].kind == TokKind::Ident
    {
        k -= 3;
    }
    // Skip reference/mut qualifiers in annotations: `x: &mut HashMap`.
    while k >= 1 && (toks[k - 1].is_punct("&") || toks[k - 1].is_ident("mut")) {
        k -= 1;
    }
    if k >= 2 && toks[k - 1].is_punct(":") && !toks[k - 2].is_punct(":") {
        // Annotation form. The token before `:` must be the ident.
        if toks[k - 2].kind == TokKind::Ident {
            return Some(toks[k - 2].text.clone());
        }
        return None;
    }
    if k >= 1 && toks[k - 1].is_punct("=") {
        // Constructor form: require `Type :: new|default|with_capacity|from*`
        // right after the type name (or a `vec!`-less direct call).
        let ctor_ok = toks.get(idx + 1).is_some_and(|t| t.is_punct(":"))
            && toks.get(idx + 2).is_some_and(|t| t.is_punct(":"))
            && toks.get(idx + 3).is_some_and(|t| {
                matches!(
                    t.text.as_str(),
                    "new" | "default" | "with_capacity" | "from" | "from_iter"
                )
            });
        if ctor_ok {
            return ident_before_eq(toks, k - 1);
        }
    }
    None
}

/// For a `=` token at `eq`, return the ident directly before it, rejecting
/// compound operators (`==`, `!=`, `<=`, `>=`, `+=`, ...).
fn ident_before_eq(toks: &[Tok], eq: usize) -> Option<String> {
    if eq == 0 || !toks[eq].is_punct("=") {
        return None;
    }
    let prev = &toks[eq - 1];
    if prev.kind == TokKind::Ident && !prev.is_ident("mut") {
        // Reject `a == b` (the ident is before the *second* `=`).
        if toks.get(eq + 1).is_some_and(|t| t.is_punct("=")) {
            return None;
        }
        return Some(prev.text.clone());
    }
    None
}

/// Parse `// downlake-lint: allow(rule, ...) — reason` comments into a
/// line → allowed-rules map. A directive without a reason is ignored.
fn allow_lines(comments: &[crate::lexer::LineComment]) -> BTreeMap<u32, BTreeSet<RuleId>> {
    let mut map: BTreeMap<u32, BTreeSet<RuleId>> = BTreeMap::new();
    for c in comments {
        let text = c.text.trim();
        let Some(rest) = text.strip_prefix("downlake-lint:") else {
            continue;
        };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix("allow") else {
            continue;
        };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix('(') else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            continue;
        };
        let (rules_part, reason_part) = rest.split_at(close);
        let reason = reason_part[1..]
            .trim_start_matches([' ', '\t', '—', '-', '–', ':'])
            .trim();
        if reason.is_empty() {
            // An allow without a written justification does not count.
            continue;
        }
        let entry = map.entry(c.line).or_default();
        for r in rules_part.split(',') {
            if let Some(rule) = RuleId::parse(r) {
                entry.insert(rule);
            }
        }
    }
    map
}

/// One parsed link of a method chain: name plus raw turbofish text.
struct ChainLink {
    name: String,
    turbofish: String,
}

/// Walk a method chain starting from the closing paren of the origin call;
/// returns the subsequent `.method::<T>(...)` links in order.
fn walk_chain(toks: &[Tok], close_of: &[Option<usize>], origin_open: usize) -> Vec<ChainLink> {
    let mut links = Vec::new();
    let Some(mut j) = close_of[origin_open].map(|c| c + 1) else {
        return links;
    };
    loop {
        // Tolerate `?` between links.
        while j < toks.len() && toks[j].is_punct("?") {
            j += 1;
        }
        if j + 1 >= toks.len() || !toks[j].is_punct(".") || toks[j + 1].kind != TokKind::Ident {
            break;
        }
        let name = toks[j + 1].text.clone();
        j += 2;
        let mut turbofish = String::new();
        if j + 2 < toks.len()
            && toks[j].is_punct(":")
            && toks[j + 1].is_punct(":")
            && toks[j + 2].is_punct("<")
        {
            let mut depth = 0i32;
            let mut k = j + 2;
            while k < toks.len() {
                if toks[k].is_punct("<") {
                    depth += 1;
                } else if toks[k].is_punct(">") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else {
                    turbofish.push_str(&toks[k].text);
                    turbofish.push(' ');
                }
                k += 1;
            }
            j = (k + 1).min(toks.len());
        }
        if j < toks.len() && toks[j].is_punct("(") {
            match close_of[j] {
                Some(c) => j = c + 1,
                None => break,
            }
        } else if name != "await" {
            // Field access, not a call — stop walking.
            break;
        }
        links.push(ChainLink { name, turbofish });
    }
    links
}

/// Resolve the simple receiver of `recv.method(...)` given the index of the
/// method ident. Returns the receiver ident when it is `x` or `self.x`.
fn simple_receiver(toks: &[Tok], method_idx: usize) -> Option<String> {
    if method_idx < 2 || !toks[method_idx - 1].is_punct(".") {
        return None;
    }
    let r = &toks[method_idx - 2];
    if r.kind != TokKind::Ident {
        return None;
    }
    if r.is_ident("self") {
        return None; // bare `self.iter()` — receiver type unknown
    }
    // `self.field.iter()` and plain `x.iter()` both resolve to the ident.
    Some(r.text.clone())
}

/// Does the statement containing token `idx` start with `let [mut] name`,
/// and if so, what is the bound name and the annotation text before `=`?
fn let_binding(toks: &[Tok], idx: usize) -> Option<(String, String)> {
    let mut k = idx;
    while k > 0 {
        let t = &toks[k - 1];
        if t.is_punct(";") || t.is_punct("{") || t.is_punct("}") {
            break;
        }
        k -= 1;
    }
    if !toks.get(k)?.is_ident("let") {
        return None;
    }
    let mut j = k + 1;
    if toks.get(j)?.is_ident("mut") {
        j += 1;
    }
    if toks.get(j)?.kind != TokKind::Ident {
        return None;
    }
    let name = toks[j].text.clone();
    let mut annotation = String::new();
    let mut m = j + 1;
    while m < toks.len() && m < idx {
        if toks[m].is_punct("=") {
            break;
        }
        annotation.push_str(&toks[m].text);
        annotation.push(' ');
        m += 1;
    }
    Some((name, annotation))
}

/// After a chain ends in `.collect()`, is the binding sorted within the
/// next few lines (`v.sort*()`)?
fn sorted_later(toks: &[Tok], from_idx: usize, name: &str, within_lines: u32) -> bool {
    let start_line = toks.get(from_idx).map(|t| t.line).unwrap_or(0);
    let mut i = from_idx;
    while i + 2 < toks.len() {
        if toks[i].line > start_line.saturating_add(within_lines) {
            return false;
        }
        if toks[i].kind == TokKind::Ident
            && toks[i].text == name
            && toks[i + 1].is_punct(".")
            && toks[i + 2].text.starts_with("sort")
        {
            return true;
        }
        i += 1;
    }
    false
}

/// D1/D3: method-chain iteration over hash collections.
fn scan_d1_d3(
    ctx: &FileCtx,
    toks: &[Tok],
    close_of: &[Option<usize>],
    facts: &TypeFacts,
    in_test: &dyn Fn(usize) -> bool,
    out: &mut Vec<Finding>,
) {
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident
            || !ITER_METHODS.contains(&toks[i].text.as_str())
            || in_test(i)
        {
            continue;
        }
        // Must be a call: `recv . method (`.
        if !toks.get(i + 1).is_some_and(|t| t.is_punct("(")) {
            continue;
        }
        let Some(recv) = simple_receiver(toks, i) else {
            continue;
        };
        if !facts.is_hash(&recv) {
            continue;
        }
        let links = walk_chain(toks, close_of, i + 1);
        match classify_chain(toks, close_of, i, &links) {
            ChainVerdict::Ordered => {}
            ChainVerdict::FloatFold(what) => out.push(Finding {
                file: ctx.rel_path.clone(),
                line: toks[i].line,
                rule: RuleId::D3,
                msg: format!(
                    "float {what} over unordered iteration of `{recv}` — FP addition is order-dependent"
                ),
            }),
            ChainVerdict::Unordered => out.push(Finding {
                file: ctx.rel_path.clone(),
                line: toks[i].line,
                rule: RuleId::D1,
                msg: format!(
                    "iteration over hash collection `{recv}` via `.{}()` without order restoration",
                    toks[i].text
                ),
            }),
        }
    }
}

enum ChainVerdict {
    /// Order restored or irrelevant — no finding.
    Ordered,
    /// Chain feeds a float sum/fold — D3.
    FloatFold(&'static str),
    /// Order can leak — D1.
    Unordered,
}

/// Iterator adapters that preserve (lack of) ordering without consuming —
/// the verdict is decided further down the chain.
const ORDER_PRESERVING_ADAPTERS: [&str; 14] = [
    "map",
    "filter",
    "filter_map",
    "flat_map",
    "flatten",
    "inspect",
    "copied",
    "cloned",
    "enumerate",
    "zip",
    "chain",
    "peekable",
    "fuse",
    "by_ref",
];

/// Decide what a chain hanging off an unordered origin does with ordering.
/// Links are scanned in order; the first order-deciding link wins (anything
/// after `.max_by(...)` operates on a scalar/Option, not the iterator).
fn classify_chain(
    toks: &[Tok],
    close_of: &[Option<usize>],
    origin_idx: usize,
    links: &[ChainLink],
) -> ChainVerdict {
    for link in links {
        let name = link.name.as_str();
        if CHAIN_SORTERS.contains(&name) || ORDER_INSENSITIVE.contains(&name) {
            return ChainVerdict::Ordered;
        }
        if ORDER_PRESERVING_ADAPTERS.contains(&name) {
            continue;
        }
        return match name {
            "sum" | "product" => {
                if link.turbofish.contains("f64") || link.turbofish.contains("f32") {
                    return ChainVerdict::FloatFold("sum");
                }
                if !link.turbofish.is_empty() {
                    return ChainVerdict::Ordered; // integer accumulation
                }
                // No turbofish: consult the let-binding annotation if any.
                if let Some((_, ann)) = let_binding(toks, origin_idx) {
                    if ann.contains("f64") || ann.contains("f32") {
                        return ChainVerdict::FloatFold("sum");
                    }
                }
                ChainVerdict::Ordered
            }
            "fold" => {
                // Float seed ⇒ order-dependent accumulation.
                if fold_seed_is_float(toks, close_of, origin_idx, links) {
                    ChainVerdict::FloatFold("fold")
                } else {
                    ChainVerdict::Ordered
                }
            }
            "collect" | "extend" => {
                if link.turbofish.contains("BTreeMap")
                    || link.turbofish.contains("BTreeSet")
                    || link.turbofish.contains("HashMap")
                    || link.turbofish.contains("HashSet")
                    || link.turbofish.contains("BinaryHeap")
                {
                    // Collecting back into an order-free or self-ordering
                    // container erases iteration order.
                    return ChainVerdict::Ordered;
                }
                if let Some((name, ann)) = let_binding(toks, origin_idx) {
                    if ann.contains("BTreeMap")
                        || ann.contains("BTreeSet")
                        || ann.contains("HashMap")
                        || ann.contains("HashSet")
                    {
                        return ChainVerdict::Ordered;
                    }
                    if sorted_later(toks, origin_idx, &name, 8) {
                        return ChainVerdict::Ordered;
                    }
                }
                ChainVerdict::Unordered
            }
            // Positional selectors (`take`, `nth`, `find`, `last`, ...) and
            // unknown consumers (`for_each`, ...) leak hash order.
            _ => ChainVerdict::Unordered,
        };
    }
    // Adapter-only chain (or bare `m.iter()`) handed to an unknown consumer
    // — argument position, `for` expression, or a public return value.
    ChainVerdict::Unordered
}

/// Inspect the first argument of the chain's trailing `fold(seed, f)` call:
/// float literals or `f32`/`f64` mentions make it order-dependent.
fn fold_seed_is_float(
    toks: &[Tok],
    close_of: &[Option<usize>],
    origin_idx: usize,
    links: &[ChainLink],
) -> bool {
    // Re-walk to find the fold's opening paren (last link's call site).
    let mut j = match close_of.get(origin_idx + 1).and_then(|c| *c) {
        Some(c) => c + 1,
        None => return false,
    };
    let mut open = None;
    for link in links {
        while j < toks.len() && toks[j].is_punct("?") {
            j += 1;
        }
        if j + 1 >= toks.len() || !toks[j].is_punct(".") {
            break;
        }
        j += 2; // past `. name`
        if j + 2 < toks.len()
            && toks[j].is_punct(":")
            && toks[j + 1].is_punct(":")
            && toks[j + 2].is_punct("<")
        {
            let mut depth = 0i32;
            let mut k = j + 2;
            while k < toks.len() {
                if toks[k].is_punct("<") {
                    depth += 1;
                } else if toks[k].is_punct(">") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                k += 1;
            }
            j = (k + 1).min(toks.len());
        }
        if j < toks.len() && toks[j].is_punct("(") {
            if link.name == "fold" {
                open = Some(j);
            }
            match close_of[j] {
                Some(c) => j = c + 1,
                None => break,
            }
        }
    }
    let Some(open) = open else { return false };
    let end = close_of[open].unwrap_or(open);
    let mut depth = 0i32;
    for t in &toks[open + 1..end] {
        if t.is_punct("(") || t.is_punct("[") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") {
            depth -= 1;
        } else if depth == 0 && t.is_punct(",") {
            break; // end of the seed argument
        }
        if t.kind == TokKind::Lit && t.text.contains('.') {
            return true;
        }
        if t.is_ident("f64") || t.is_ident("f32") {
            return true;
        }
    }
    false
}

/// D1: `for x in &hash_map { ... }` loops with a bare collection expression.
fn scan_for_loops_d1(
    ctx: &FileCtx,
    toks: &[Tok],
    parsed: &ParsedFile,
    facts: &TypeFacts,
    in_test: &dyn Fn(usize) -> bool,
    out: &mut Vec<Finding>,
) {
    for lp in &parsed.loops {
        let i = lp.head;
        if in_test(i) {
            continue;
        }
        // Tokens between `in` and the body `{`.
        let Some((in_idx, body_idx)) = for_in_and_body(toks, i) else {
            continue;
        };
        let expr: Vec<&Tok> = toks[in_idx + 1..body_idx].iter().collect();
        // Match `[&] [mut] x` and `[&] self . x`.
        let mut e: &[&Tok] = &expr;
        while let Some(first) = e.first() {
            if first.is_punct("&") || first.is_ident("mut") {
                e = &e[1..];
            } else {
                break;
            }
        }
        let name = match e {
            [x] if x.kind == TokKind::Ident => Some(x.text.clone()),
            [s, dot, x] if s.is_ident("self") && dot.is_punct(".") && x.kind == TokKind::Ident => {
                Some(x.text.clone())
            }
            _ => None,
        };
        if let Some(name) = name {
            if facts.is_hash(&name) {
                out.push(Finding {
                    file: ctx.rel_path.clone(),
                    line: toks[i].line,
                    rule: RuleId::D1,
                    msg: format!("for-loop over hash collection `{name}` iterates in hash order"),
                });
            }
        }
    }
}

/// D2: ambient nondeterminism sources.
fn scan_d2(ctx: &FileCtx, toks: &[Tok], in_test: &dyn Fn(usize) -> bool, out: &mut Vec<Finding>) {
    let mut push = |line: u32, msg: String| {
        out.push(Finding {
            file: ctx.rel_path.clone(),
            line,
            rule: RuleId::D2,
            msg,
        })
    };
    for i in 0..toks.len() {
        if in_test(i) {
            continue;
        }
        let t = &toks[i];
        let path_call = |what: &str, method: &str| -> bool {
            t.is_ident(what)
                && toks.get(i + 1).is_some_and(|x| x.is_punct(":"))
                && toks.get(i + 2).is_some_and(|x| x.is_punct(":"))
                && toks.get(i + 3).is_some_and(|x| x.is_ident(method))
        };
        if (path_call("SystemTime", "now") || path_call("Instant", "now")) && !ctx.allow_time {
            push(
                t.line,
                format!(
                    "`{}::now()` reads the ambient clock (only `crates/bench` may)",
                    t.text
                ),
            );
        }
        if t.is_ident("thread_rng") {
            push(
                t.line,
                "`thread_rng()` is seeded from the OS — use the run's seeded SmallRng".into(),
            );
        }
        if path_call("rand", "random") {
            push(
                t.line,
                "`rand::random()` draws from the thread RNG — use the run's seeded SmallRng".into(),
            );
        }
        if ctx.library
            && (path_call("env", "var")
                || path_call("env", "vars")
                || path_call("env", "var_os")
                || path_call("env", "vars_os"))
        {
            push(
                t.line,
                "environment read in library code makes results host-dependent".into(),
            );
        }
    }
}

/// D4: raw concurrency primitives outside `crates/exec`.
///
/// The worker pool is the only sanctioned parallelism: its merge
/// discipline is what keeps output independent of scheduling. A stray
/// `thread::spawn` or shared-state `Mutex` anywhere else can reorder
/// writes by whichever thread wins the race, so every such site must
/// either move behind `Pool::map`-style plumbing in `crates/exec` or
/// carry a written justification.
fn scan_d4(ctx: &FileCtx, toks: &[Tok], in_test: &dyn Fn(usize) -> bool, out: &mut Vec<Finding>) {
    for i in 0..toks.len() {
        if in_test(i) {
            continue;
        }
        let t = &toks[i];
        let mut push = |line: u32, msg: String| {
            out.push(Finding {
                file: ctx.rel_path.clone(),
                line,
                rule: RuleId::D4,
                msg,
            })
        };
        // `thread :: spawn` / `thread :: scope` path calls
        // (covers `std::thread::spawn` too — the prefix lands earlier).
        if t.is_ident("thread")
            && toks.get(i + 1).is_some_and(|x| x.is_punct(":"))
            && toks.get(i + 2).is_some_and(|x| x.is_punct(":"))
            && toks
                .get(i + 3)
                .is_some_and(|x| x.is_ident("spawn") || x.is_ident("scope"))
        {
            push(
                t.line,
                format!(
                    "`thread::{}` outside `crates/exec` — route parallel work through the worker pool",
                    toks[i + 3].text
                ),
            );
        }
        // `.spawn(...)` method calls (scoped-spawn handles, builders).
        if t.is_ident("spawn")
            && i >= 1
            && toks[i - 1].is_punct(".")
            && toks.get(i + 1).is_some_and(|x| x.is_punct("("))
        {
            push(
                t.line,
                "`.spawn()` outside `crates/exec` — route parallel work through the worker pool"
                    .into(),
            );
        }
        // Blocking shared-state primitives.
        if t.is_ident("Mutex") || t.is_ident("RwLock") || t.is_ident("Condvar") {
            push(
                t.line,
                format!(
                    "`{}` outside `crates/exec` — share nothing; merge per-shard results instead",
                    t.text
                ),
            );
        }
    }
}

/// P1: panic surface in library code.
fn scan_p1(
    ctx: &FileCtx,
    toks: &[Tok],
    close_of: &[Option<usize>],
    in_test: &dyn Fn(usize) -> bool,
    out: &mut Vec<Finding>,
) {
    for i in 0..toks.len() {
        if in_test(i) {
            continue;
        }
        let t = &toks[i];
        if t.kind == TokKind::Ident
            && (t.text == "unwrap" || t.text == "expect")
            && i >= 1
            && toks[i - 1].is_punct(".")
            && toks.get(i + 1).is_some_and(|x| x.is_punct("("))
        {
            out.push(Finding {
                file: ctx.rel_path.clone(),
                line: t.line,
                rule: RuleId::P1,
                msg: format!(
                    "`.{}()` can panic in library code — return an error or use a total accessor",
                    t.text
                ),
            });
        }
        // Literal integer indexing: `xs[0]` after an ident or call/index.
        if t.is_punct("[")
            && i >= 1
            && (toks[i - 1].kind == TokKind::Ident
                || toks[i - 1].is_punct(")")
                || toks[i - 1].is_punct("]"))
            && close_of[i] == Some(i + 2)
            && toks[i + 1].kind == TokKind::Lit
            && toks[i + 1]
                .text
                .chars()
                .all(|c| c.is_ascii_digit() || c == '_')
        {
            out.push(Finding {
                file: ctx.rel_path.clone(),
                line: t.line,
                rule: RuleId::P1,
                msg: format!(
                    "literal index `[{}]` panics when the slice is short",
                    toks[i + 1].text
                ),
            });
        }
    }
}

/// P2: allocations inside `for` loops on the analysis hot path.
fn scan_p2(
    ctx: &FileCtx,
    toks: &[Tok],
    parsed: &ParsedFile,
    facts: &TypeFacts,
    in_test: &dyn Fn(usize) -> bool,
    out: &mut Vec<Finding>,
) {
    let in_loop = |i: usize| parsed.loops.iter().any(|lp| i > lp.body.0 && i < lp.body.1);
    for i in 0..toks.len() {
        if !in_loop(i) || in_test(i) {
            continue;
        }
        let t = &toks[i];
        let mut push = |msg: String| {
            out.push(Finding {
                file: ctx.rel_path.clone(),
                line: t.line,
                rule: RuleId::P2,
                msg,
            })
        };
        if t.is_ident("format") && toks.get(i + 1).is_some_and(|x| x.is_punct("!")) {
            push(
                "`format!` allocates on every loop iteration — hoist or write into a reused buffer"
                    .into(),
            );
        }
        if t.is_ident("to_string")
            && i >= 1
            && toks[i - 1].is_punct(".")
            && toks.get(i + 1).is_some_and(|x| x.is_punct("("))
        {
            push(
                "`.to_string()` allocates on every loop iteration — precompute outside the loop"
                    .into(),
            );
        }
        if t.is_ident("clone")
            && i >= 2
            && toks[i - 1].is_punct(".")
            && toks.get(i + 1).is_some_and(|x| x.is_punct("("))
            && toks[i - 2].kind == TokKind::Ident
            && facts.string_idents.contains(&toks[i - 2].text)
        {
            push(format!(
                "`{}.clone()` copies a String on every loop iteration — borrow or intern instead",
                toks[i - 2].text
            ));
        }
    }
}
