//! Workspace discovery: find every `.rs` file to lint and classify it so
//! the scanner knows which rules apply.

use crate::scan::FileCtx;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directories never descended into.
const SKIP_DIRS: [&str; 4] = ["target", ".git", "docs", "fixtures"];

/// Locate the workspace root: `start` itself or the nearest ancestor whose
/// `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start.to_path_buf());
    while let Some(dir) = cur {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        cur = dir.parent().map(Path::to_path_buf);
    }
    None
}

/// Collect every lintable `.rs` file under `root`, sorted by relative path
/// so the whole pass is deterministic.
pub fn collect_files(root: &Path) -> io::Result<Vec<(PathBuf, FileCtx)>> {
    let mut files = Vec::new();
    walk(root, root, &mut files)?;
    files.sort_by(|a, b| a.1.rel_path.cmp(&b.1.rel_path));
    Ok(files)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<(PathBuf, FileCtx)>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("")
            .to_string();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) || name.starts_with('.') {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = rel_path(root, &path);
            if let Some(ctx) = classify(&rel) {
                out.push((path, ctx));
            }
        }
    }
    Ok(())
}

/// Collect every `.rs` source under `root` — including the integration
/// tests and benches that `collect_files` exempts from linting — for the
/// workspace index pass (struct-field and test-name discovery). Fixture
/// trees stay excluded: they hold deliberate violations and fake types
/// that must not pollute the index.
pub fn collect_all_sources(root: &Path) -> io::Result<Vec<(PathBuf, String)>> {
    let mut files = Vec::new();
    walk_all(root, root, &mut files)?;
    files.sort_by(|a, b| a.1.cmp(&b.1));
    Ok(files)
}

fn walk_all(root: &Path, dir: &Path, out: &mut Vec<(PathBuf, String)>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("")
            .to_string();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) || name.starts_with('.') {
                continue;
            }
            walk_all(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = rel_path(root, &path);
            out.push((path, rel));
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Decide which rules apply to a workspace-relative path. `None` means the
/// file is not linted at all (integration tests, benches, fixtures).
pub fn classify(rel: &str) -> Option<FileCtx> {
    // Test-only trees are exempt from every rule; `#[cfg(test)]` modules in
    // linted files are handled by the scanner itself.
    if rel.starts_with("tests/")
        || rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.contains("/fixtures/")
    {
        return None;
    }
    let bench_crate = rel.starts_with("crates/bench/");
    // `crates/exec` is the one sanctioned home for threading primitives.
    let exec_crate = rel.starts_with("crates/exec/");
    // Binaries and examples own their process: CLI panics and env/arg
    // handling there are deliberate, so P1 does not apply.
    let binary = rel.contains("/bin/")
        || rel.ends_with("/main.rs")
        || rel.starts_with("examples/")
        || rel.starts_with("src/");
    let library = !binary && !bench_crate && rel.starts_with("crates/");
    // Hot paths held to the no-per-iteration-allocation rule: the
    // columnar analysis passes, the query operators they compose, the
    // per-event streaming subsystem, the sweep harness whose merge
    // loops fold every run of a fan-out, and the event lake's
    // per-event encode/scan paths.
    let hot_loop = rel.starts_with("crates/analysis/src/")
        || rel.starts_with("crates/query/src/")
        || rel.starts_with("crates/stream/src/")
        || rel.starts_with("crates/sweep/src/")
        || rel.starts_with("crates/lake/src/");
    Some(FileCtx {
        rel_path: rel.to_string(),
        allow_time: bench_crate,
        allow_concurrency: exec_crate,
        library,
        hot_loop,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matrix() {
        assert!(classify("tests/pipeline_invariants.rs").is_none());
        assert!(classify("crates/lint/tests/fixtures/d1.rs").is_none());
        assert!(classify("crates/bench/benches/tables.rs").is_none());

        let frame = classify("crates/analysis/src/frame.rs").expect("linted");
        assert!(frame.library && frame.hot_loop);

        // The query operators are the analysis passes' building blocks —
        // same hot-loop contract, no time or concurrency waivers.
        let query = classify("crates/query/src/lib.rs").expect("linted");
        assert!(query.library && query.hot_loop && !query.allow_time);
        assert!(!query.allow_concurrency);
        assert!(classify("crates/query/tests/query_props.rs").is_none());

        // The streaming subsystem's per-event path is hot-loop code too.
        let engine = classify("crates/stream/src/engine.rs").expect("linted");
        assert!(engine.library && engine.hot_loop && !engine.allow_time);
        assert!(classify("crates/stream/tests/zero_alloc.rs").is_none());

        // The sharded service and its snapshot codec sit on the same
        // per-event path: hot-loop library code, no waivers, and their
        // test suites are exempt like every other tests/ tree.
        let service = classify("crates/stream/src/service.rs").expect("linted");
        assert!(service.library && service.hot_loop && !service.allow_time);
        assert!(!service.allow_concurrency);
        let snapshot = classify("crates/stream/src/snapshot.rs").expect("linted");
        assert!(snapshot.library && snapshot.hot_loop && !snapshot.allow_time);
        assert!(classify("crates/stream/tests/snapshot_corruption.rs").is_none());
        assert!(classify("crates/stream/tests/service_report_props.rs").is_none());
        assert!(classify("tests/service_equivalence.rs").is_none());

        // The sweep harness merges every run of a fan-out: hot-loop
        // library code, with no time or concurrency waivers.
        let sweep = classify("crates/sweep/src/report.rs").expect("linted");
        assert!(sweep.library && sweep.hot_loop && !sweep.allow_time);
        assert!(!sweep.allow_concurrency);
        assert!(classify("crates/sweep/tests/plan_props.rs").is_none());

        // The event lake's segment encode/scan paths run per event:
        // hot-loop library code, no time or concurrency waivers.
        let lake = classify("crates/lake/src/segment.rs").expect("linted");
        assert!(lake.library && lake.hot_loop && !lake.allow_time);
        assert!(!lake.allow_concurrency);
        assert!(classify("crates/lake/tests/corruption.rs").is_none());

        let bench = classify("crates/bench/src/ablation.rs").expect("linted");
        assert!(bench.allow_time && !bench.library);

        let cli = classify("src/bin/downlake.rs").expect("linted");
        assert!(!cli.library && !cli.hot_loop);

        // The observability crate gets NO blanket time waiver: its one
        // sanctioned `Instant::now` (RealClock) must carry an inline
        // reasoned allow(D2), and everything else in the crate is held
        // to the same ambient-nondeterminism rule as the pipeline.
        let clock = classify("crates/obs/src/clock.rs").expect("linted");
        assert!(clock.library && !clock.allow_time && !clock.hot_loop);

        // The worker-pool crate alone may hold threading primitives; it
        // is still library code for every other rule.
        let pool = classify("crates/exec/src/pool.rs").expect("linted");
        assert!(pool.allow_concurrency && pool.library && !pool.allow_time);
        let frame2 = classify("crates/analysis/src/frame.rs").expect("linted");
        assert!(!frame2.allow_concurrency);
    }
}
