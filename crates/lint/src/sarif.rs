//! SARIF 2.1.0 emission — the interchange format CI dashboards and code
//! hosts ingest. The emitter is hand-rolled like every other byte of
//! this crate (no serde in hermetic CI) and writes the minimal valid
//! document: one run, one driver, a `rules` table carrying each rule's
//! name and help text, and one `result` per finding with a physical
//! location. `.github/lint-gate.sh` smoke-checks that the output parses
//! with the in-repo `downlake_obs::json` parser.

use crate::baseline::escape;
use crate::rules::{Finding, RuleId, ALL_RULES};
use std::fmt::Write as _;

/// One-line help text shown for a rule in SARIF viewers.
fn help_text(rule: RuleId) -> &'static str {
    match rule {
        RuleId::D1 => "Iteration over HashMap/HashSet without an order-restoring consumer",
        RuleId::D2 => "Ambient nondeterminism: wall clocks, thread RNGs, env reads",
        RuleId::D3 => "Floating-point fold over an unordered iterator",
        RuleId::D4 => "Raw concurrency primitives outside crates/exec",
        RuleId::P1 => "Panic surface in library code",
        RuleId::P2 => "Per-iteration allocation in a hot loop",
        RuleId::S1 => "Seed not derived from exec::unit_seed or a parameter",
        RuleId::M1 => "Pooled merge without a merge-contracts commutativity entry",
        RuleId::L1 => "use-path violating the declared crate-layering DAG",
    }
}

/// Render findings as a SARIF 2.1.0 document (trailing newline included).
pub fn to_sarif(findings: &[Finding]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(
        "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \
         \"version\": \"2.1.0\",\n  \"runs\": [\n    {\n      \"tool\": {\n        \
         \"driver\": {\n          \"name\": \"downlake-lint\",\n          \
         \"informationUri\": \"https://example.invalid/downlake-lint\",\n          \
         \"rules\": [",
    );
    for (i, r) in ALL_RULES.into_iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            s,
            "{sep}\n            {{\"id\": \"{}\", \"name\": \"{}\", \
             \"shortDescription\": {{\"text\": \"{}\"}}}}",
            r.id(),
            r.name(),
            escape(help_text(r))
        );
    }
    s.push_str("\n          ]\n        }\n      },\n      \"results\": [");
    for (i, f) in findings.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            s,
            "{sep}\n        {{\"ruleId\": \"{}\", \"level\": \"error\", \
             \"message\": {{\"text\": \"{}\"}}, \"locations\": [{{\
             \"physicalLocation\": {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \
             \"region\": {{\"startLine\": {}}}}}}}]}}",
            f.rule.id(),
            escape(&f.msg),
            escape(&f.file),
            f.line
        );
    }
    if findings.is_empty() {
        s.push_str("]\n    }\n  ]\n}\n");
    } else {
        s.push_str("\n      ]\n    }\n  ]\n}\n");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Finding> {
        vec![Finding {
            file: "crates/a/src/lib.rs".into(),
            line: 10,
            rule: RuleId::S1,
            msg: "seed with \"quotes\"".into(),
        }]
    }

    #[test]
    fn sarif_contains_schema_rules_and_results() {
        let doc = to_sarif(&sample());
        assert!(doc.contains("\"version\": \"2.1.0\""));
        assert!(doc.contains("\"name\": \"downlake-lint\""));
        assert!(doc.contains("\"id\": \"S1\""));
        assert!(doc.contains("\"startLine\": 10"));
        assert!(doc.contains("seed with \\\"quotes\\\""));
        // All nine rules are declared even when only one fires.
        for r in ALL_RULES {
            assert!(doc.contains(&format!("\"id\": \"{}\"", r.id())));
        }
    }

    #[test]
    fn empty_findings_still_render_a_valid_run() {
        let doc = to_sarif(&[]);
        assert!(doc.contains("\"results\": []"));
    }
}
