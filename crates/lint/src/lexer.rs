//! A minimal, comment- and string-aware Rust lexer.
//!
//! The lint deliberately ships its own tokenizer instead of depending on
//! `syn`: the pass has to run in hermetic CI containers with no registry
//! access, and the rules it enforces need token streams, brace structure,
//! and item trees, not full type-checked ASTs. The lexer understands
//! line/block comments (nested), string/char/byte/raw-string literals,
//! lifetimes, numeric literals, identifiers, and single-character
//! punctuation; that is enough to never mistake the inside of a string or
//! comment for code. Every token carries its 1-based line *and* its byte
//! span in the source, so the parser in [`crate::parse`] can hand out
//! item spans and the SARIF emitter can point at exact regions.

/// Kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`for`, `HashMap`, `iter`, ...).
    Ident,
    /// Single punctuation character (`.`, `:`, `(`, `!`, ...).
    Punct,
    /// String/char/byte/numeric literal. `text` keeps the raw spelling.
    Lit,
    /// Lifetime such as `'a` (kept distinct so `'a` is never a char literal).
    Lifetime,
}

/// One token with its 1-based source line and byte span.
#[derive(Debug, Clone)]
pub struct Tok {
    /// What class of token this is.
    pub kind: TokKind,
    /// The token's exact source text.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
    /// Byte offset of the token's first byte in the source.
    pub start: u32,
    /// Byte offset one past the token's last byte.
    pub end: u32,
}

impl Tok {
    /// True when the token is an identifier with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True when the token is punctuation with exactly this text.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// A `//` comment captured during lexing (block comments are discarded —
/// allow-directives must be line comments so they stay attached to a line).
#[derive(Debug, Clone)]
pub struct LineComment {
    /// 1-based line the comment sits on.
    pub line: u32,
    /// Comment text after the leading `//`.
    pub text: String,
}

/// Result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// The token stream, comments and whitespace removed.
    pub toks: Vec<Tok>,
    /// Line comments captured for allow-directive matching.
    pub comments: Vec<LineComment>,
}

/// Lex `src` into tokens plus captured line comments.
///
/// The lexer is lossy by design (multi-char operators come out as runs of
/// single puncts; numeric suffixes stay glued to the number) — rule
/// matching works on short token-sequence patterns, so that is enough.
pub fn lex(src: &str) -> Lexed {
    let bytes: Vec<char> = src.chars().collect();
    let n = bytes.len();
    // Byte offset of each char index (plus the end sentinel), so token
    // spans can be reported in bytes while the scanner works in chars.
    let mut byte_of: Vec<u32> = Vec::with_capacity(n + 1);
    let mut acc = 0u32;
    for &c in &bytes {
        byte_of.push(acc);
        acc += c.len_utf8() as u32;
    }
    byte_of.push(acc);
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut out = Lexed::default();

    macro_rules! bump_lines {
        ($s:expr) => {
            line += $s.iter().filter(|&&c| c == '\n').count() as u32
        };
    }
    macro_rules! push_tok {
        ($kind:expr, $text:expr, $line:expr, $from:expr, $to:expr) => {
            out.toks.push(Tok {
                kind: $kind,
                text: $text,
                line: $line,
                start: byte_of[$from],
                end: byte_of[$to],
            })
        };
    }

    while i < n {
        let c = bytes[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => {
                i += 1;
            }
            '/' if i + 1 < n && bytes[i + 1] == '/' => {
                let start = i + 2;
                let mut j = start;
                while j < n && bytes[j] != '\n' {
                    j += 1;
                }
                out.comments.push(LineComment {
                    line,
                    text: bytes[start..j].iter().collect(),
                });
                i = j;
            }
            '/' if i + 1 < n && bytes[i + 1] == '*' => {
                // Nested block comment.
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < n && depth > 0 {
                    if bytes[j] == '\n' {
                        line += 1;
                        j += 1;
                    } else if bytes[j] == '/' && j + 1 < n && bytes[j + 1] == '*' {
                        depth += 1;
                        j += 2;
                    } else if bytes[j] == '*' && j + 1 < n && bytes[j + 1] == '/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                i = j;
            }
            '"' => {
                let (j, consumed) = scan_string(&bytes, i);
                let tok_line = line;
                bump_lines!(&bytes[i..j]);
                push_tok!(TokKind::Lit, consumed, tok_line, i, j);
                i = j;
            }
            'r' | 'b' if starts_raw_or_byte_string(&bytes, i) => {
                let (j, consumed) = scan_raw_or_byte_string(&bytes, i);
                let tok_line = line;
                bump_lines!(&bytes[i..j]);
                push_tok!(TokKind::Lit, consumed, tok_line, i, j);
                i = j;
            }
            '\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                if i + 1 < n
                    && (bytes[i + 1].is_alphabetic() || bytes[i + 1] == '_')
                    && !(i + 2 < n && bytes[i + 2] == '\'')
                {
                    let mut j = i + 1;
                    while j < n && (bytes[j].is_alphanumeric() || bytes[j] == '_') {
                        j += 1;
                    }
                    push_tok!(TokKind::Lifetime, bytes[i..j].iter().collect(), line, i, j);
                    i = j;
                } else {
                    let mut j = i + 1;
                    while j < n && bytes[j] != '\'' {
                        if bytes[j] == '\\' {
                            j += 1;
                        }
                        j += 1;
                    }
                    j = (j + 1).min(n);
                    push_tok!(TokKind::Lit, bytes[i..j].iter().collect(), line, i, j);
                    i = j;
                }
            }
            c if c.is_ascii_digit() => {
                let mut j = i + 1;
                while j < n {
                    let d = bytes[j];
                    if d.is_alphanumeric() || d == '_' {
                        j += 1;
                    } else if d == '.'
                        && j + 1 < n
                        && bytes[j + 1].is_ascii_digit()
                        && !(j >= 1 && bytes[j - 1] == '.')
                    {
                        // `1.5` continues the number; `1..n` does not.
                        j += 1;
                    } else {
                        break;
                    }
                }
                push_tok!(TokKind::Lit, bytes[i..j].iter().collect(), line, i, j);
                i = j;
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut j = i + 1;
                while j < n && (bytes[j].is_alphanumeric() || bytes[j] == '_') {
                    j += 1;
                }
                push_tok!(TokKind::Ident, bytes[i..j].iter().collect(), line, i, j);
                i = j;
            }
            _ => {
                push_tok!(TokKind::Punct, c.to_string(), line, i, i + 1);
                i += 1;
            }
        }
    }
    out
}

/// Scan a plain `"..."` string starting at `i`; returns (end index, text).
fn scan_string(bytes: &[char], i: usize) -> (usize, String) {
    let n = bytes.len();
    let mut j = i + 1;
    while j < n && bytes[j] != '"' {
        if bytes[j] == '\\' {
            j += 1;
        }
        j += 1;
    }
    j = (j + 1).min(n);
    (j, bytes[i..j].iter().collect())
}

/// Does position `i` start `r"`, `r#"`, `b"`, `br"`, or `br#"`?
fn starts_raw_or_byte_string(bytes: &[char], i: usize) -> bool {
    let n = bytes.len();
    let mut j = i;
    if bytes[j] == 'b' {
        j += 1;
    }
    if j < n && bytes[j] == 'r' {
        j += 1;
        while j < n && bytes[j] == '#' {
            j += 1;
        }
        return j < n && bytes[j] == '"';
    }
    // `b"..."` byte string without `r`.
    bytes[i] == 'b' && j < n && bytes[j] == '"'
}

/// Scan a raw/byte string starting at `i`; returns (end index, text).
fn scan_raw_or_byte_string(bytes: &[char], i: usize) -> (usize, String) {
    let n = bytes.len();
    let mut j = i;
    if bytes[j] == 'b' {
        j += 1;
    }
    let raw = j < n && bytes[j] == 'r';
    if raw {
        j += 1;
    }
    let mut hashes = 0usize;
    while j < n && bytes[j] == '#' {
        hashes += 1;
        j += 1;
    }
    j += 1; // opening quote
    if raw {
        // Raw string: runs to `"` followed by `hashes` `#`s, no escapes.
        while j < n {
            if bytes[j] == '"' {
                let mut k = j + 1;
                let mut h = 0usize;
                while k < n && h < hashes && bytes[k] == '#' {
                    h += 1;
                    k += 1;
                }
                if h == hashes {
                    j = k;
                    return (j, bytes[i..j].iter().collect());
                }
            }
            j += 1;
        }
        (n, bytes[i..].iter().collect())
    } else {
        // Byte string with escapes.
        while j < n && bytes[j] != '"' {
            if bytes[j] == '\\' {
                j += 1;
            }
            j += 1;
        }
        j = (j + 1).min(n);
        (j, bytes[i..j].iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_do_not_leak_tokens() {
        let src = r##"
            // comment with HashMap.iter() inside
            let s = "for x in map.keys()"; /* block HashMap */
            let r = r#"SystemTime::now()"#;
        "##;
        let lexed = lex(src);
        assert!(!lexed.toks.iter().any(|t| t.is_ident("keys")));
        assert!(!lexed.toks.iter().any(|t| t.is_ident("SystemTime")));
        assert_eq!(lexed.comments.len(), 1);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes: Vec<_> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(lexed
            .toks
            .iter()
            .any(|t| t.kind == TokKind::Lit && t.text == "'x'"));
    }

    #[test]
    fn line_numbers_track_newlines() {
        let lexed = lex("a\nb\n\nc");
        let lines: Vec<u32> = lexed.toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn byte_spans_slice_back_to_token_text() {
        let src = "fn λ_name() { let s = \"héllo\"; x += 42; }";
        let lexed = lex(src);
        for t in &lexed.toks {
            assert_eq!(
                &src[t.start as usize..t.end as usize],
                t.text,
                "span of {:?} must slice back to its text",
                t
            );
        }
        // Spans are monotone and non-overlapping.
        for w in lexed.toks.windows(2) {
            assert!(w[0].end <= w[1].start);
        }
    }
}
