//! Rule registry and the `Finding` record every rule emits.

use std::fmt;

/// Identifier of one lint rule. Determinism rules are `D*`, hot-path /
/// panic rules are `P*`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// Iteration over `HashMap`/`HashSet` in non-test code without an
    /// order-restoring or order-insensitive consumer.
    D1,
    /// Ambient nondeterminism: wall clocks, thread-local RNGs, env reads.
    D2,
    /// Floating-point `sum`/`fold` over an unordered iterator (FP addition
    /// is not associative, so the result depends on hash order).
    D3,
    /// Raw concurrency primitives (`thread::spawn`, `Mutex`, `RwLock`,
    /// `Condvar`) outside `crates/exec` — ad-hoc threading reintroduces
    /// scheduling nondeterminism the worker pool exists to contain.
    D4,
    /// Panic surface in library code: `unwrap`/`expect`/literal indexing.
    P1,
    /// Allocation inside a `for` loop on the analysis hot path.
    P2,
    /// Seed provenance: an RNG/seed construction whose seed expression
    /// does not trace back (through local `let` chains) to
    /// `exec::unit_seed` or a function parameter — ambient or literal
    /// seeds silently fork the deterministic seed tree.
    S1,
    /// Merge commutativity: a `merge` reached from a `Pool::map` /
    /// `fold_groups_with` reduction site whose merged type is not
    /// declared (with a named commutativity property test) in the
    /// committed `merge-contracts.json` manifest.
    M1,
    /// Crate layering: a `use downlake_*` import that is not an edge of
    /// the declared layering DAG (e.g. `stream` importing `analysis`).
    L1,
}

/// Every rule the scanner knows, in report order.
pub const ALL_RULES: [RuleId; 9] = [
    RuleId::D1,
    RuleId::D2,
    RuleId::D3,
    RuleId::D4,
    RuleId::P1,
    RuleId::P2,
    RuleId::S1,
    RuleId::M1,
    RuleId::L1,
];

impl RuleId {
    /// Short id as it appears in output and the baseline (`"D1"`).
    pub fn id(self) -> &'static str {
        match self {
            RuleId::D1 => "D1",
            RuleId::D2 => "D2",
            RuleId::D3 => "D3",
            RuleId::D4 => "D4",
            RuleId::P1 => "P1",
            RuleId::P2 => "P2",
            RuleId::S1 => "S1",
            RuleId::M1 => "M1",
            RuleId::L1 => "L1",
        }
    }

    /// Human-readable rule name as used in allow-comments.
    pub fn name(self) -> &'static str {
        match self {
            RuleId::D1 => "unordered-iter",
            RuleId::D2 => "ambient-nondeterminism",
            RuleId::D3 => "unordered-float-fold",
            RuleId::D4 => "raw-concurrency",
            RuleId::P1 => "panic-surface",
            RuleId::P2 => "hot-loop-alloc",
            RuleId::S1 => "seed-provenance",
            RuleId::M1 => "merge-commutativity",
            RuleId::L1 => "crate-layering",
        }
    }

    /// Parse either the short id (`D1`, case-insensitive) or the rule
    /// name (`unordered-iter`) as written inside `allow(...)`.
    pub fn parse(s: &str) -> Option<RuleId> {
        let s = s.trim();
        ALL_RULES
            .into_iter()
            .find(|&r| s.eq_ignore_ascii_case(r.id()) || s == r.name())
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id())
    }
}

/// One lint finding, pointing at a workspace-relative `file:line`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path with `/` separators (stable across hosts).
    pub file: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// Which rule fired.
    pub rule: RuleId,
    /// Short explanation naming the offending expression.
    pub msg: String,
}

impl Finding {
    /// Render as the canonical single-line human form.
    pub fn human(&self) -> String {
        format!(
            "{} {:<22} {}:{} — {}",
            self.rule.id(),
            self.rule.name(),
            self.file,
            self.line,
            self.msg
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_ids_and_names() {
        assert_eq!(RuleId::parse("D1"), Some(RuleId::D1));
        assert_eq!(RuleId::parse("d3"), Some(RuleId::D3));
        assert_eq!(RuleId::parse("unordered-iter"), Some(RuleId::D1));
        assert_eq!(RuleId::parse("D4"), Some(RuleId::D4));
        assert_eq!(RuleId::parse("raw-concurrency"), Some(RuleId::D4));
        assert_eq!(RuleId::parse("hot-loop-alloc"), Some(RuleId::P2));
        assert_eq!(RuleId::parse("S1"), Some(RuleId::S1));
        assert_eq!(RuleId::parse("seed-provenance"), Some(RuleId::S1));
        assert_eq!(RuleId::parse("merge-commutativity"), Some(RuleId::M1));
        assert_eq!(RuleId::parse("l1"), Some(RuleId::L1));
        assert_eq!(RuleId::parse("crate-layering"), Some(RuleId::L1));
        assert_eq!(RuleId::parse("nope"), None);
    }
}
