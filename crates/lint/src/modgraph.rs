//! Cross-file module graph: the declared crate-layering DAG (rule L1)
//! and the workspace-wide indexes the dataflow rules consume — a struct
//! field→type index for resolving merged accumulator types (M1) and a
//! test-name index for validating that every merge contract names a
//! property test that actually exists.
//!
//! The layering DAG below is *declared*, not derived: it is the
//! architecture DESIGN.md and `docs/ARCHITECTURE.md` promise
//! (`analysis → query → exec`, `stream ↛ analysis`, ...), and L1 holds
//! `use` paths to it so the layering PRs 1–6 built stays load-bearing
//! even though Cargo would happily accept new edges.

use crate::parse::{parse, Item, ItemKind, ParsedFile};
use crate::rules::{Finding, RuleId};
use crate::scan::FileCtx;
use std::collections::{BTreeMap, BTreeSet};

/// The declared layering DAG: crate directory name → the `downlake*`
/// library idents its `src/` may import. Mirrors each crate's
/// `[dependencies]` table — dev-dependencies are *not* edges (test items
/// are exempt from L1), so a `use` that only a dev-dependency satisfies
/// is still a layering violation in production code.
pub const LAYERS: &[(&str, &[&str])] = &[
    ("types", &[]),
    ("obs", &[]),
    ("telemetry", &["downlake_types"]),
    ("exec", &["downlake_obs"]),
    ("query", &["downlake_types", "downlake_exec"]),
    (
        "synth",
        &[
            "downlake_types",
            "downlake_telemetry",
            "downlake_exec",
            "downlake_obs",
        ],
    ),
    ("groundtruth", &["downlake_types"]),
    ("avtype", &["downlake_types"]),
    ("rulelearn", &["downlake_obs"]),
    (
        "features",
        &[
            "downlake_types",
            "downlake_telemetry",
            "downlake_groundtruth",
            "downlake_rulelearn",
        ],
    ),
    (
        "analysis",
        &[
            "downlake_types",
            "downlake_telemetry",
            "downlake_exec",
            "downlake_query",
            "downlake_obs",
        ],
    ),
    (
        "stream",
        &[
            "downlake_types",
            "downlake_telemetry",
            "downlake_groundtruth",
            "downlake_features",
            "downlake_rulelearn",
            "downlake_exec",
            "downlake_obs",
        ],
    ),
    (
        "lake",
        &[
            "downlake_types",
            "downlake_telemetry",
            "downlake_exec",
            "downlake_obs",
        ],
    ),
    (
        "core",
        &[
            "downlake_types",
            "downlake_telemetry",
            "downlake_synth",
            "downlake_groundtruth",
            "downlake_avtype",
            "downlake_features",
            "downlake_rulelearn",
            "downlake_analysis",
            "downlake_exec",
            "downlake_stream",
            "downlake_lake",
            "downlake_obs",
        ],
    ),
    (
        "sweep",
        &[
            "downlake",
            "downlake_types",
            "downlake_synth",
            "downlake_exec",
            "downlake_obs",
        ],
    ),
    (
        "bench",
        &[
            "downlake",
            "downlake_types",
            "downlake_telemetry",
            "downlake_synth",
            "downlake_groundtruth",
            "downlake_avtype",
            "downlake_features",
            "downlake_rulelearn",
            "downlake_analysis",
            "downlake_sweep",
            "downlake_obs",
        ],
    ),
    ("lint", &[]),
];

/// The library ident a crate directory compiles to (`core` is special:
/// its lib is the workspace-named `downlake`).
pub fn lib_ident_of(crate_dir: &str) -> String {
    if crate_dir == "core" {
        "downlake".to_string()
    } else {
        format!("downlake_{crate_dir}")
    }
}

/// The crate directory a workspace-relative path belongs to
/// (`crates/analysis/src/frame.rs` → `analysis`). `None` for paths
/// outside `crates/` — the root package (CLI, examples, integration
/// tests) is the top of the stack and may import everything.
pub fn crate_dir_of(rel_path: &str) -> Option<&str> {
    let rest = rel_path.strip_prefix("crates/")?;
    let end = rest.find('/')?;
    Some(&rest[..end])
}

/// Rule L1 — crate layering. Every non-test `use downlake*` import in a
/// `crates/<dir>/src` file must be the importing crate itself or an edge
/// of [`LAYERS`].
pub fn check_layering(ctx: &FileCtx, parsed: &ParsedFile) -> Vec<Finding> {
    let Some(dir) = crate_dir_of(&ctx.rel_path) else {
        return Vec::new();
    };
    let own_lib = lib_ident_of(dir);
    let allowed: &[&str] = LAYERS
        .iter()
        .find(|(d, _)| *d == dir)
        .map(|(_, deps)| *deps)
        .unwrap_or(&[]);
    let mut findings = Vec::new();
    for item in parsed.all_items() {
        let ItemKind::Use { segments } = &item.kind else {
            continue;
        };
        // Test items may lean on dev-dependencies.
        if item.test {
            continue;
        }
        let Some(head) = segments.first() else {
            continue;
        };
        if head != "downlake" && !head.starts_with("downlake_") {
            continue;
        }
        if *head == own_lib {
            continue;
        }
        if !allowed.contains(&head.as_str()) {
            findings.push(Finding {
                file: ctx.rel_path.clone(),
                line: item.span.line_start,
                rule: RuleId::L1,
                msg: format!(
                    "`use {head}` from crate `{dir}` is not an edge of the declared \
                     layering DAG — see LAYERS in crates/lint/src/modgraph.rs"
                ),
            });
        }
    }
    findings
}

/// Workspace-wide struct-field index: resolves `acc.overall` to `Dense`
/// when `struct PopularityAcc { overall: Dense<..>, ... }` exists
/// anywhere in the workspace.
#[derive(Debug, Default)]
pub struct TypeIndex {
    /// `(struct name, field name)` → outermost field type name.
    fields: BTreeMap<(String, String), String>,
    /// field name → set of distinct types it has across all structs
    /// (the unique-field shortcut needs to know about collisions).
    by_field: BTreeMap<String, BTreeSet<String>>,
}

impl TypeIndex {
    /// Record every struct in a parsed file.
    pub fn add_file(&mut self, parsed: &ParsedFile) {
        for item in parsed.all_items() {
            let ItemKind::Struct { fields } = &item.kind else {
                continue;
            };
            for (fname, fty) in fields {
                self.fields
                    .insert((item.name.clone(), fname.clone()), fty.clone());
                self.by_field
                    .entry(fname.clone())
                    .or_default()
                    .insert(fty.clone());
            }
        }
    }

    /// Type of `struct_name.field`, when that struct is indexed.
    pub fn field_type(&self, struct_name: &str, field: &str) -> Option<&str> {
        self.fields
            .get(&(struct_name.to_string(), field.to_string()))
            .map(String::as_str)
    }

    /// If every struct in the workspace that has a field named `field`
    /// gives it the same outermost type, that type — the fallback when
    /// the receiver's root type cannot be resolved.
    pub fn unique_field_type(&self, field: &str) -> Option<&str> {
        let types = self.by_field.get(field)?;
        if types.len() == 1 {
            types.iter().next().map(String::as_str)
        } else {
            None
        }
    }
}

/// Workspace-wide index of test function names: `#[test]` /
/// `#[cfg(test)]` functions, functions in `tests/` trees, and functions
/// declared inside `proptest! { ... }` bodies.
#[derive(Debug, Default)]
pub struct TestIndex {
    names: BTreeSet<String>,
}

impl TestIndex {
    /// Record every test function in a parsed file. `in_tests_tree` is
    /// true for files under a `tests/` directory, where every fn is
    /// test code.
    pub fn add_file(&mut self, parsed: &ParsedFile, in_tests_tree: bool) {
        fn walk(items: &[Item], all_tests: bool, names: &mut BTreeSet<String>) {
            for item in items {
                let in_proptest =
                    matches!(item.kind, ItemKind::MacroInvocation) && item.name == "proptest";
                if let ItemKind::Fn { .. } = item.kind {
                    if all_tests || item.test {
                        names.insert(item.name.clone());
                    }
                }
                walk(&item.children, all_tests || item.test || in_proptest, names);
            }
        }
        walk(&parsed.items, in_tests_tree, &mut self.names);
    }

    /// Is `name` a known test function?
    pub fn contains(&self, name: &str) -> bool {
        self.names.contains(name)
    }

    /// Number of indexed test functions.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no test functions are indexed.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// Cross-file context for the workspace-aware rules: built in a first
/// pass over *every* source file (tests and benches included, so the
/// test index is complete), consumed by the per-file scan.
#[derive(Debug, Default)]
pub struct WorkspaceCtx {
    /// Struct field→type index.
    pub types: TypeIndex,
    /// Test function names.
    pub tests: TestIndex,
    /// Parsed `merge-contracts.json` entries.
    pub contracts: Vec<crate::baseline::MergeContract>,
}

impl WorkspaceCtx {
    /// Build a context from in-memory sources: `(rel_path, source)`
    /// pairs plus already-parsed contracts. Used by tests; the CLI path
    /// goes through [`crate::scan_workspace`].
    pub fn from_sources(
        sources: &[(&str, &str)],
        contracts: Vec<crate::baseline::MergeContract>,
    ) -> WorkspaceCtx {
        let mut ws = WorkspaceCtx {
            contracts,
            ..WorkspaceCtx::default()
        };
        for (rel, src) in sources {
            let parsed = parse(&crate::lexer::lex(src));
            ws.add_parsed(rel, &parsed);
        }
        ws
    }

    /// Index one parsed file.
    pub fn add_parsed(&mut self, rel_path: &str, parsed: &ParsedFile) {
        let in_tests_tree = rel_path.starts_with("tests/") || rel_path.contains("/tests/");
        self.types.add_file(parsed);
        self.tests.add_file(parsed, in_tests_tree);
    }

    /// Is `type_name` covered by a merge contract?
    pub fn has_contract(&self, type_name: &str) -> bool {
        self.contracts.iter().any(|c| c.type_name == type_name)
    }

    /// Validate the manifest itself: every contract must name a test
    /// function that exists somewhere in the workspace. Findings point
    /// at the manifest entry's line.
    pub fn validate_contracts(&self, manifest_rel_path: &str) -> Vec<Finding> {
        let mut findings = Vec::new();
        for c in &self.contracts {
            if !self.tests.contains(&c.test) {
                findings.push(Finding {
                    file: manifest_rel_path.to_string(),
                    line: c.line,
                    rule: RuleId::M1,
                    msg: format!(
                        "merge contract for `{}` names test `{}`, which does not \
                         exist in the workspace",
                        c.type_name, c.test
                    ),
                });
            }
        }
        findings
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::MergeContract;

    fn ctx_for(rel: &str) -> FileCtx {
        FileCtx {
            rel_path: rel.to_string(),
            allow_time: false,
            allow_concurrency: false,
            library: true,
            hot_loop: false,
        }
    }

    fn layering(rel: &str, src: &str) -> Vec<Finding> {
        let parsed = parse(&crate::lexer::lex(src));
        check_layering(&ctx_for(rel), &parsed)
    }

    #[test]
    fn declared_edges_pass_and_missing_edges_fail() {
        // analysis → query is a declared edge.
        assert!(layering(
            "crates/analysis/src/domains.rs",
            "use downlake_query::Adjacency;\n"
        )
        .is_empty());
        // stream → analysis is the canonical forbidden edge.
        let f = layering(
            "crates/stream/src/engine.rs",
            "use std::fmt;\nuse downlake_analysis::frame::AnalysisFrame;\n",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, RuleId::L1);
        assert_eq!(f[0].line, 2);
        // query → analysis would invert the stack.
        assert_eq!(
            layering(
                "crates/query/src/lib.rs",
                "use downlake_analysis::frame::AnalysisFrame;\n"
            )
            .len(),
            1
        );
    }

    #[test]
    fn self_use_test_items_and_root_package_are_exempt() {
        assert!(layering(
            "crates/stream/src/engine.rs",
            "use downlake_stream::session::StreamSession;\n"
        )
        .is_empty());
        assert!(layering(
            "crates/avtype/src/behavior.rs",
            "#[cfg(test)]\nmod tests { use downlake_groundtruth::Oracle; }\n"
        )
        .is_empty());
        assert!(layering("src/bin/downlake.rs", "use downlake_stream::X;\n").is_empty());
    }

    #[test]
    fn every_layer_entry_is_acyclic() {
        // The declared DAG must actually be a DAG: depth-first walk
        // from every node, following dir→lib-ident edges.
        fn dir_of_lib(lib: &str) -> &str {
            if lib == "downlake" {
                "core"
            } else {
                lib.strip_prefix("downlake_").unwrap_or(lib)
            }
        }
        fn visit(dir: &str, stack: &mut Vec<String>) {
            assert!(
                !stack.iter().any(|s| s == dir),
                "layering cycle through `{dir}`: {stack:?}"
            );
            stack.push(dir.to_string());
            let deps = LAYERS
                .iter()
                .find(|(d, _)| *d == dir)
                .map(|(_, deps)| *deps)
                .unwrap_or(&[]);
            for dep in deps {
                visit(dir_of_lib(dep), stack);
            }
            stack.pop();
        }
        for (dir, _) in LAYERS {
            visit(dir, &mut Vec::new());
        }
    }

    #[test]
    fn type_index_resolves_fields_and_detects_collisions() {
        let ws = WorkspaceCtx::from_sources(
            &[
                (
                    "crates/a/src/lib.rs",
                    "struct Acc { overall: Dense<K, u64>, n: usize }",
                ),
                ("crates/b/src/lib.rs", "struct Other { n: u32 }"),
            ],
            Vec::new(),
        );
        assert_eq!(ws.types.field_type("Acc", "overall"), Some("Dense"));
        assert_eq!(ws.types.unique_field_type("overall"), Some("Dense"));
        // `n` is usize in one struct and u32 in the other — not unique.
        assert_eq!(ws.types.unique_field_type("n"), None);
    }

    #[test]
    fn test_index_sees_cfg_test_tests_trees_and_proptest_bodies() {
        let ws = WorkspaceCtx::from_sources(
            &[
                (
                    "crates/a/src/lib.rs",
                    "fn live() {}\n#[cfg(test)]\nmod tests { #[test] fn unit_t() {} }",
                ),
                (
                    "crates/a/tests/props.rs",
                    "proptest! { fn prop_t(x in any()) {} }\nfn helper_t() {}",
                ),
            ],
            Vec::new(),
        );
        assert!(ws.tests.contains("unit_t"));
        assert!(ws.tests.contains("prop_t"));
        assert!(ws.tests.contains("helper_t"), "tests-tree fns count");
        assert!(!ws.tests.contains("live"));
    }

    #[test]
    fn contract_validation_flags_unknown_tests() {
        let ws = WorkspaceCtx::from_sources(
            &[(
                "crates/a/src/lib.rs",
                "#[cfg(test)]\nmod tests { #[test] fn merge_commutes() {} }",
            )],
            vec![
                MergeContract {
                    type_name: "Dense".into(),
                    test: "merge_commutes".into(),
                    law: "a+b == b+a".into(),
                    line: 3,
                },
                MergeContract {
                    type_name: "Ghost".into(),
                    test: "no_such_test".into(),
                    law: "".into(),
                    line: 4,
                },
            ],
        );
        let f = ws.validate_contracts("merge-contracts.json");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 4);
        assert!(f[0].msg.contains("Ghost"));
    }
}
