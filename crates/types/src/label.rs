//! Label taxonomies: ground-truth file labels, URL labels, malware
//! behaviour types, and the latent (hidden) nature of a file.

use crate::error::ParseLabelError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Ground-truth label assigned to a downloaded file or downloading process
/// by the labeling procedure of §II-B.
///
/// `LikelyBenign` / `LikelyMalicious` carry weaker evidence and — exactly
/// as in the paper — are *excluded* from the measurement analyses and from
/// rule training.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum FileLabel {
    /// Matches a whitelist, or clean on every AV engine two years on.
    Benign,
    /// Clean on VirusTotal but with under 14 days between first and last scan.
    LikelyBenign,
    /// Detected by at least one of the ten "trusted" AV engines.
    Malicious,
    /// Detected only by less-reliable engines.
    LikelyMalicious,
    /// No ground truth whatsoever — the 83% long tail.
    #[default]
    Unknown,
}

impl FileLabel {
    /// All labels, in display order.
    pub const ALL: [FileLabel; 5] = [
        FileLabel::Benign,
        FileLabel::LikelyBenign,
        FileLabel::Malicious,
        FileLabel::LikelyMalicious,
        FileLabel::Unknown,
    ];

    /// Whether the label is confident enough for measurement and training
    /// (`Benign` or `Malicious`).
    pub const fn is_confident(self) -> bool {
        matches!(self, FileLabel::Benign | FileLabel::Malicious)
    }

    /// Short lowercase name used in report tables.
    pub const fn name(self) -> &'static str {
        match self {
            FileLabel::Benign => "benign",
            FileLabel::LikelyBenign => "likely benign",
            FileLabel::Malicious => "malicious",
            FileLabel::LikelyMalicious => "likely malicious",
            FileLabel::Unknown => "unknown",
        }
    }
}

impl fmt::Display for FileLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Label assigned to a download URL (§II-B): benign requires Alexa-stable
/// e2LD *and* curated-whitelist membership; malicious requires both Google
/// Safe Browsing and the private blacklist.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum UrlLabel {
    /// On the stable-Alexa list and the curated whitelist.
    Benign,
    /// On Google Safe Browsing and the private blacklist.
    Malicious,
    /// Everything else.
    #[default]
    Unknown,
}

impl UrlLabel {
    /// Short lowercase name used in report tables.
    pub const fn name(self) -> &'static str {
        match self {
            UrlLabel::Benign => "benign",
            UrlLabel::Malicious => "malicious",
            UrlLabel::Unknown => "unknown",
        }
    }
}

impl fmt::Display for UrlLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Malware *behaviour type* (Table II), derived from AV labels by the
/// AVType procedure (§II-C).
///
/// Ordering of variants is the display order of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MalwareType {
    /// First-stage malware that downloads further malware.
    Dropper,
    /// Potentially unwanted program / application.
    Pup,
    /// Ad-injecting or ad-displaying unwanted software.
    Adware,
    /// Generic malware disguising as a benign application.
    Trojan,
    /// Banking-credential stealers (e.g. Zbot).
    Banker,
    /// Remotely controlled malware.
    Bot,
    /// Concealed fake anti-virus software.
    FakeAv,
    /// Endpoint/file lockers demanding payment.
    Ransomware,
    /// Self-replicating network propagators.
    Worm,
    /// User-activity monitors.
    Spyware,
    /// Generic or unclassified malicious software.
    Undefined,
}

impl MalwareType {
    /// All behaviour types, in Table II order.
    pub const ALL: [MalwareType; 11] = [
        MalwareType::Dropper,
        MalwareType::Pup,
        MalwareType::Adware,
        MalwareType::Trojan,
        MalwareType::Banker,
        MalwareType::Bot,
        MalwareType::FakeAv,
        MalwareType::Ransomware,
        MalwareType::Worm,
        MalwareType::Spyware,
        MalwareType::Undefined,
    ];

    /// Short lowercase name used in report tables and AV-label keyword maps.
    pub const fn name(self) -> &'static str {
        match self {
            MalwareType::Dropper => "dropper",
            MalwareType::Pup => "pup",
            MalwareType::Adware => "adware",
            MalwareType::Trojan => "trojan",
            MalwareType::Banker => "banker",
            MalwareType::Bot => "bot",
            MalwareType::FakeAv => "fakeav",
            MalwareType::Ransomware => "ransomware",
            MalwareType::Worm => "worm",
            MalwareType::Spyware => "spyware",
            MalwareType::Undefined => "undefined",
        }
    }

    /// *Specificity* rank used by AVType's tie-break rule (§II-C rule 2):
    /// higher means the keyword identifies a more specific behaviour.
    /// `trojan` and `undefined` are the generic catch-alls AV engines use
    /// when the true behaviour is unknown.
    pub const fn specificity(self) -> u8 {
        match self {
            MalwareType::Undefined => 0,
            MalwareType::Trojan => 1,
            MalwareType::Dropper => 2,
            MalwareType::Adware => 2,
            MalwareType::Pup => 2,
            MalwareType::Banker => 3,
            MalwareType::Bot => 3,
            MalwareType::FakeAv => 3,
            MalwareType::Ransomware => 3,
            MalwareType::Worm => 3,
            MalwareType::Spyware => 3,
        }
    }

    /// Whether the type identifies a concrete behaviour (everything above
    /// the generic `trojan`/`undefined` tier).
    pub const fn is_specific(self) -> bool {
        self.specificity() >= 2
    }
}

impl fmt::Display for MalwareType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for MalwareType {
    type Err = ParseLabelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lowered = s.to_ascii_lowercase();
        for ty in MalwareType::ALL {
            if ty.name() == lowered {
                return Ok(ty);
            }
        }
        match lowered.as_str() {
            "fake-av" | "fake_av" => Ok(MalwareType::FakeAv),
            "pua" => Ok(MalwareType::Pup),
            _ => Err(ParseLabelError::new(s, "malware type")),
        }
    }
}

/// The *latent* (ground) nature of a file — what the file actually is,
/// independent of whether any labeling source ever finds out.
///
/// The synthetic world assigns every file a latent nature; the ground-truth
/// oracle reveals only a fraction of them, which is precisely how the 83%
/// *unknown* long tail arises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FileNature {
    /// Legitimate software.
    Benign,
    /// Malware of the given behaviour type.
    Malicious(MalwareType),
}

impl FileNature {
    /// Whether the latent nature is malicious.
    pub const fn is_malicious(self) -> bool {
        matches!(self, FileNature::Malicious(_))
    }

    /// The behaviour type, if malicious.
    pub const fn malware_type(self) -> Option<MalwareType> {
        match self {
            FileNature::Benign => None,
            FileNature::Malicious(ty) => Some(ty),
        }
    }
}

impl fmt::Display for FileNature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FileNature::Benign => f.write_str("benign"),
            FileNature::Malicious(ty) => write!(f, "malicious({ty})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confident_labels() {
        assert!(FileLabel::Benign.is_confident());
        assert!(FileLabel::Malicious.is_confident());
        assert!(!FileLabel::LikelyBenign.is_confident());
        assert!(!FileLabel::LikelyMalicious.is_confident());
        assert!(!FileLabel::Unknown.is_confident());
    }

    #[test]
    fn default_label_is_unknown() {
        assert_eq!(FileLabel::default(), FileLabel::Unknown);
        assert_eq!(UrlLabel::default(), UrlLabel::Unknown);
    }

    #[test]
    fn malware_type_round_trips_through_name() {
        for ty in MalwareType::ALL {
            assert_eq!(ty.name().parse::<MalwareType>().unwrap(), ty);
        }
    }

    #[test]
    fn malware_type_aliases_parse() {
        assert_eq!(
            "fake-av".parse::<MalwareType>().unwrap(),
            MalwareType::FakeAv
        );
        assert_eq!("PUA".parse::<MalwareType>().unwrap(), MalwareType::Pup);
        assert!("keylogger9000".parse::<MalwareType>().is_err());
    }

    #[test]
    fn specificity_ordering_matches_paper_examples() {
        // §II-C: banker beats trojan; dropper beats a generic (Artemis) label.
        assert!(MalwareType::Banker.specificity() > MalwareType::Trojan.specificity());
        assert!(MalwareType::Dropper.specificity() > MalwareType::Undefined.specificity());
        assert!(!MalwareType::Trojan.is_specific());
        assert!(MalwareType::Ransomware.is_specific());
    }

    #[test]
    fn nature_accessors() {
        assert!(!FileNature::Benign.is_malicious());
        assert_eq!(FileNature::Benign.malware_type(), None);
        let n = FileNature::Malicious(MalwareType::Bot);
        assert!(n.is_malicious());
        assert_eq!(n.malware_type(), Some(MalwareType::Bot));
        assert_eq!(n.to_string(), "malicious(bot)");
    }
}
