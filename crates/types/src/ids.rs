//! Identifier newtypes for files, machines, and URLs.
//!
//! The real telemetry feed identifies downloaded files and downloading
//! processes by cryptographic file hash, and machines by an anonymised
//! global unique id generated at agent-install time (paper §II-A). In this
//! reproduction both are compact 64-bit values; [`FileHash`] renders as a
//! 16-digit hex digest to keep log output recognisable.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The hash digest identifying a software file (downloaded file or
/// downloading-process image). Two files are the same iff their hashes are
/// equal, exactly as in the paper's dataset.
///
/// ```
/// use downlake_types::FileHash;
/// let h = FileHash::from_raw(0xabc);
/// assert_eq!(h.to_string(), "0000000000000abc");
/// assert_eq!(h.raw(), 0xabc);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct FileHash(u64);

impl FileHash {
    /// Wraps a raw 64-bit digest.
    pub const fn from_raw(raw: u64) -> Self {
        Self(raw)
    }

    /// Returns the raw 64-bit digest.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for FileHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl From<u64> for FileHash {
    fn from(raw: u64) -> Self {
        Self(raw)
    }
}

/// Anonymised global unique machine identifier.
///
/// ```
/// use downlake_types::MachineId;
/// let m = MachineId::from_raw(7);
/// assert_eq!(m.to_string(), "M-0000007");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct MachineId(u64);

impl MachineId {
    /// Wraps a raw machine id.
    pub const fn from_raw(raw: u64) -> Self {
        Self(raw)
    }

    /// Returns the raw machine id.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for MachineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "M-{:07}", self.0)
    }
}

impl From<u64> for MachineId {
    fn from(raw: u64) -> Self {
        Self(raw)
    }
}

/// Index of a URL inside a dataset's URL table.
///
/// Datasets intern the 1.6M-scale distinct URL strings into a table and
/// events reference them by this compact id.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct UrlId(u32);

impl UrlId {
    /// Wraps a raw table index.
    pub const fn from_raw(raw: u32) -> Self {
        Self(raw)
    }

    /// Returns the raw table index.
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Returns the index as a `usize` for table lookups.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for UrlId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "U-{}", self.0)
    }
}

impl From<u32> for UrlId {
    fn from(raw: u32) -> Self {
        Self(raw)
    }
}

/// Macro defining a dense table-index newtype: a `u32` position inside a
/// per-dataset interning table, assigned in first-seen order.
macro_rules! dense_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug,
            Clone,
            Copy,
            PartialEq,
            Eq,
            PartialOrd,
            Ord,
            Hash,
            Serialize,
            Deserialize,
            Default,
        )]
        pub struct $name(u32);

        impl $name {
            /// Wraps a raw table index.
            pub const fn from_raw(raw: u32) -> Self {
                Self(raw)
            }

            /// Returns the raw table index.
            pub const fn raw(self) -> u32 {
                self.0
            }

            /// Returns the index as a `usize` for column lookups.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(raw: u32) -> Self {
                Self(raw)
            }
        }
    };
}

dense_id!(
    /// Dense index of a *downloaded file* inside a dataset's file table.
    ///
    /// Unlike [`FileHash`] (a sparse 64-bit digest), a `FileId` is a
    /// table position assigned at interning time, so per-file statistics
    /// can live in plain `Vec` columns instead of hash maps.
    FileId,
    "F-"
);

dense_id!(
    /// Dense index of a *downloading process* inside a dataset's process
    /// table.
    ///
    /// Processes are identified by [`FileHash`] on the wire, but the
    /// process table assigns them their own dense id space so process and
    /// file columns can never be cross-indexed by mistake.
    ProcessId,
    "P-"
);

dense_id!(
    /// Dense index of a machine inside a dataset's machine table.
    ///
    /// [`MachineId`] is the sparse anonymised agent identifier; a
    /// `MachineIdx` is its position in the dataset's interning table.
    MachineIdx,
    "m#"
);

dense_id!(
    /// Dense index of an effective second-level domain (e2LD) inside a
    /// dataset's URL table.
    ///
    /// Every interned URL resolves to exactly one `E2ldId`, letting
    /// per-domain statistics run over integer columns instead of owned
    /// domain strings.
    E2ldId,
    "D-"
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn file_hash_hex_rendering_is_zero_padded() {
        assert_eq!(FileHash::from_raw(0).to_string(), "0000000000000000");
        assert_eq!(FileHash::from_raw(u64::MAX).to_string(), "ffffffffffffffff");
    }

    #[test]
    fn ids_are_usable_as_map_keys() {
        let mut set = HashSet::new();
        set.insert(FileHash::from_raw(1));
        set.insert(FileHash::from_raw(1));
        set.insert(FileHash::from_raw(2));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn ids_round_trip_raw() {
        assert_eq!(FileHash::from(42u64).raw(), 42);
        assert_eq!(MachineId::from(42u64).raw(), 42);
        assert_eq!(UrlId::from(42u32).index(), 42);
    }

    #[test]
    fn ids_order_by_raw_value() {
        assert!(FileHash::from_raw(1) < FileHash::from_raw(2));
        assert!(MachineId::from_raw(1) < MachineId::from_raw(2));
        assert!(UrlId::from_raw(1) < UrlId::from_raw(2));
    }

    #[test]
    fn dense_ids_round_trip_and_render() {
        assert_eq!(FileId::from_raw(3).index(), 3);
        assert_eq!(FileId::from(3u32).raw(), 3);
        assert_eq!(FileId::from_raw(3).to_string(), "F-3");
        assert_eq!(ProcessId::from_raw(9).to_string(), "P-9");
        assert_eq!(MachineIdx::from_raw(1).to_string(), "m#1");
        assert_eq!(E2ldId::from_raw(0).to_string(), "D-0");
        assert!(E2ldId::from_raw(1) < E2ldId::from_raw(2));
    }
}
