//! Per-file metadata records.
//!
//! [`FileMeta`] holds the *observable* static properties of a software file
//! (size, code-signing information, packer) that §IV-C measures and that
//! Table XV turns into classification features. [`LatentProfile`] holds the
//! *hidden* truth about a file that only the synthetic world knows; the
//! ground-truth oracle reveals it probabilistically, which is how the
//! unlabeled long tail arises.

use crate::label::FileNature;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Code-signing information attached to a signed executable.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SignerInfo {
    /// The subject (signing entity), e.g. `"Somoto Ltd."`.
    pub subject: String,
    /// The certification authority in the chain of trust,
    /// e.g. `"thawte code signing ca g2"`.
    pub ca: String,
    /// Whether the signature verifies against an unrevoked chain.
    pub valid: bool,
}

impl SignerInfo {
    /// Convenience constructor for a valid signature.
    pub fn valid(subject: impl Into<String>, ca: impl Into<String>) -> Self {
        Self {
            subject: subject.into(),
            ca: ca.into(),
            valid: true,
        }
    }
}

impl fmt::Display for SignerInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (CA: {}{})",
            self.subject,
            self.ca,
            if self.valid { "" } else { ", INVALID" }
        )
    }
}

/// Identification of the packing software applied to an executable, if any
/// known packer was recognised (§IV-C: INNO, UPX, AutoIt, Molebox, …).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PackerInfo {
    /// Packer product name, e.g. `"UPX"` or `"NSIS"`.
    pub name: String,
}

impl PackerInfo {
    /// Creates a packer record.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into() }
    }
}

impl fmt::Display for PackerInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Observable static properties of a software file, gathered (in the real
/// system) from VirusTotal and the vendor's internal analysis
/// infrastructure.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct FileMeta {
    /// File size in bytes.
    pub size_bytes: u64,
    /// On-disk file name (anonymised path's final component).
    pub disk_name: String,
    /// Code-signing record, if the file carries a signature.
    pub signer: Option<SignerInfo>,
    /// Recognised packer, if the file is packed with known software.
    pub packer: Option<PackerInfo>,
}

impl FileMeta {
    /// Whether the file carries a *valid* software signature — the
    /// property Table VI tabulates.
    pub fn is_validly_signed(&self) -> bool {
        self.signer.as_ref().is_some_and(|s| s.valid)
    }

    /// Whether the file is packed with a recognised packer.
    pub fn is_packed(&self) -> bool {
        self.packer.is_some()
    }

    /// The signing subject, if validly signed.
    pub fn valid_signer_subject(&self) -> Option<&str> {
        self.signer
            .as_ref()
            .filter(|s| s.valid)
            .map(|s| s.subject.as_str())
    }
}

/// The hidden truth about a file, known only to the synthetic world.
///
/// * `nature` — what the file actually is.
/// * `family` — malware family name (drives Fig. 1), if malicious and the
///   family is nameable; `None` models the 58% of samples AVclass cannot
///   name.
/// * `visibility` — propensity in `[0, 1]` that labeling sources ever
///   encounter the file (crowd-sourced VT submissions, whitelist
///   inclusion). Low-prevalence long-tail files have low visibility, which
///   is precisely why 83% of files stay unknown.
/// * `detectability` — propensity in `[0, 1]` that AV engines develop a
///   signature for the file once seen.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatentProfile {
    /// True nature of the file.
    pub nature: FileNature,
    /// Malware family, if malicious and nameable.
    pub family: Option<String>,
    /// Propensity that labeling sources ever see the file.
    pub visibility: f64,
    /// Propensity that engines that saw the file detect it.
    pub detectability: f64,
}

impl LatentProfile {
    /// A benign profile with the given visibility.
    pub fn benign(visibility: f64) -> Self {
        Self {
            nature: FileNature::Benign,
            family: None,
            visibility,
            detectability: 0.0,
        }
    }

    /// A malicious profile.
    pub fn malicious(
        nature: FileNature,
        family: Option<String>,
        visibility: f64,
        detectability: f64,
    ) -> Self {
        debug_assert!(
            nature.is_malicious(),
            "malicious profile needs malicious nature"
        );
        Self {
            nature,
            family,
            visibility,
            detectability,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::MalwareType;

    #[test]
    fn valid_signature_detection() {
        let mut meta = FileMeta {
            size_bytes: 1024,
            disk_name: "setup.exe".into(),
            signer: Some(SignerInfo::valid("Somoto Ltd.", "verisign class 3")),
            packer: None,
        };
        assert!(meta.is_validly_signed());
        assert_eq!(meta.valid_signer_subject(), Some("Somoto Ltd."));

        meta.signer.as_mut().unwrap().valid = false;
        assert!(!meta.is_validly_signed());
        assert_eq!(meta.valid_signer_subject(), None);

        meta.signer = None;
        assert!(!meta.is_validly_signed());
    }

    #[test]
    fn packer_detection() {
        let meta = FileMeta {
            packer: Some(PackerInfo::new("UPX")),
            ..FileMeta::default()
        };
        assert!(meta.is_packed());
        assert!(!FileMeta::default().is_packed());
    }

    #[test]
    fn signer_display_marks_invalid() {
        let mut s = SignerInfo::valid("TeamViewer", "digicert");
        assert!(!s.to_string().contains("INVALID"));
        s.valid = false;
        assert!(s.to_string().contains("INVALID"));
    }

    #[test]
    fn latent_constructors() {
        let b = LatentProfile::benign(0.9);
        assert!(!b.nature.is_malicious());
        assert_eq!(b.detectability, 0.0);

        let m = LatentProfile::malicious(
            FileNature::Malicious(MalwareType::Dropper),
            Some("firseria".into()),
            0.5,
            0.8,
        );
        assert!(m.nature.is_malicious());
        assert_eq!(m.family.as_deref(), Some("firseria"));
    }
}
