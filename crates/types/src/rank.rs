//! Alexa-style domain popularity ranks and the rank buckets used as a
//! classification feature (Table XV: "Download domain's Alexa rank").

use serde::{Deserialize, Serialize};
use std::fmt;

/// A domain's position in an Alexa-style top-sites ranking. `None` models
/// a domain outside the ranked set entirely.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct AlexaRank(Option<u32>);

impl AlexaRank {
    /// An unranked domain.
    pub const UNRANKED: AlexaRank = AlexaRank(None);

    /// A ranked domain. Rank 1 is the most popular site.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is zero — ranks are 1-based.
    pub fn ranked(rank: u32) -> Self {
        assert!(rank >= 1, "Alexa ranks are 1-based");
        Self(Some(rank))
    }

    /// The numeric rank, if ranked.
    pub const fn rank(self) -> Option<u32> {
        self.0
    }

    /// Whether the domain appears in the ranking at all.
    pub const fn is_ranked(self) -> bool {
        self.0.is_some()
    }

    /// Whether the domain sits in the top-1M set the paper's whitelisting
    /// pipeline consumes.
    pub fn in_top_million(self) -> bool {
        matches!(self.0, Some(r) if r <= 1_000_000)
    }

    /// The coarse bucket used as a rule-learning feature.
    pub fn bucket(self) -> RankBucket {
        match self.0 {
            None => RankBucket::Unranked,
            Some(r) if r <= 1_000 => RankBucket::Top1k,
            Some(r) if r <= 10_000 => RankBucket::To10k,
            Some(r) if r <= 100_000 => RankBucket::To100k,
            Some(r) if r <= 1_000_000 => RankBucket::To1m,
            Some(_) => RankBucket::Unranked,
        }
    }
}

impl fmt::Display for AlexaRank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            Some(r) => write!(f, "#{r}"),
            None => f.write_str("unranked"),
        }
    }
}

/// Coarse Alexa-rank bucket, the categorical value the rule learner sees.
///
/// The paper's example rules speak in exactly these intervals, e.g.
/// *"Alexa rank of file's URL is between 10,000 to 100,000"* (§VII).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum RankBucket {
    /// Rank 1–1,000.
    Top1k,
    /// Rank 1,001–10,000.
    To10k,
    /// Rank 10,001–100,000.
    To100k,
    /// Rank 100,001–1,000,000.
    To1m,
    /// Not in the top million (or absent from the ranking).
    #[default]
    Unranked,
}

impl RankBucket {
    /// All buckets in increasing-rank order.
    pub const ALL: [RankBucket; 5] = [
        RankBucket::Top1k,
        RankBucket::To10k,
        RankBucket::To100k,
        RankBucket::To1m,
        RankBucket::Unranked,
    ];

    /// Human-readable interval, as it appears in rendered rules.
    pub const fn name(self) -> &'static str {
        match self {
            RankBucket::Top1k => "top 1k",
            RankBucket::To10k => "1k to 10k",
            RankBucket::To100k => "10k to 100k",
            RankBucket::To1m => "100k to 1M",
            RankBucket::Unranked => "unranked",
        }
    }
}

impl fmt::Display for RankBucket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(AlexaRank::ranked(1).bucket(), RankBucket::Top1k);
        assert_eq!(AlexaRank::ranked(1_000).bucket(), RankBucket::Top1k);
        assert_eq!(AlexaRank::ranked(1_001).bucket(), RankBucket::To10k);
        assert_eq!(AlexaRank::ranked(10_000).bucket(), RankBucket::To10k);
        assert_eq!(AlexaRank::ranked(10_001).bucket(), RankBucket::To100k);
        assert_eq!(AlexaRank::ranked(100_000).bucket(), RankBucket::To100k);
        assert_eq!(AlexaRank::ranked(100_001).bucket(), RankBucket::To1m);
        assert_eq!(AlexaRank::ranked(1_000_000).bucket(), RankBucket::To1m);
        assert_eq!(AlexaRank::ranked(1_000_001).bucket(), RankBucket::Unranked);
        assert_eq!(AlexaRank::UNRANKED.bucket(), RankBucket::Unranked);
    }

    #[test]
    fn top_million_membership() {
        assert!(AlexaRank::ranked(999_999).in_top_million());
        assert!(!AlexaRank::ranked(1_000_001).in_top_million());
        assert!(!AlexaRank::UNRANKED.in_top_million());
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn rank_zero_panics() {
        AlexaRank::ranked(0);
    }

    #[test]
    fn unranked_sorts_last() {
        // PartialOrd on the Option<u32> puts None first; the *bucket*
        // ordering is what analyses use, and Unranked is last there.
        assert!(RankBucket::Top1k < RankBucket::Unranked);
        assert_eq!(RankBucket::default(), RankBucket::Unranked);
    }

    #[test]
    fn display_formats() {
        assert_eq!(AlexaRank::ranked(42).to_string(), "#42");
        assert_eq!(AlexaRank::UNRANKED.to_string(), "unranked");
        assert_eq!(RankBucket::To100k.to_string(), "10k to 100k");
    }
}
