//! Study-relative timestamps.
//!
//! The paper's observation window spans seven months, January 2014 to
//! August 2014 (§III). All timestamps in `downlake` are measured in seconds
//! from the start of that window (2014-01-01 00:00:00), which keeps the
//! arithmetic needed by the escalation analysis (Fig. 5 time deltas) and the
//! monthly rollups (Table I) trivially cheap.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Sub};

/// Number of seconds in a day.
pub const SECONDS_PER_DAY: i64 = 86_400;

/// Number of calendar months in the study window (January through July —
/// the paper collects "January 2014 to August 2014", i.e. seven monthly
/// buckets ending before August).
pub const MONTHS_IN_STUDY: usize = 7;

/// Cumulative day offsets of each month boundary within the 2014 study
/// window (non-leap year). `MONTH_START_DAY[i]` is the first day index of
/// month `i`, and the window ends at day 212 (1 August).
const MONTH_START_DAY: [u32; MONTHS_IN_STUDY + 1] = [0, 31, 59, 90, 120, 151, 181, 212];

/// A calendar month of the study window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Month {
    January,
    February,
    March,
    April,
    May,
    June,
    July,
}

impl Month {
    /// All months of the study window, in order.
    pub const ALL: [Month; MONTHS_IN_STUDY] = [
        Month::January,
        Month::February,
        Month::March,
        Month::April,
        Month::May,
        Month::June,
        Month::July,
    ];

    /// Zero-based index of the month within the study window.
    pub const fn index(self) -> usize {
        self as usize
    }

    /// The month with the given zero-based index, if within the window.
    pub fn from_index(index: usize) -> Option<Month> {
        Month::ALL.get(index).copied()
    }

    /// First day (inclusive) of the month, as a day offset from 2014-01-01.
    pub const fn start_day(self) -> u32 {
        MONTH_START_DAY[self as usize]
    }

    /// One-past-the-last day of the month.
    pub const fn end_day(self) -> u32 {
        MONTH_START_DAY[self as usize + 1]
    }

    /// Number of days in the month.
    pub const fn days(self) -> u32 {
        self.end_day() - self.start_day()
    }

    /// The month that follows this one, if still inside the study window.
    pub fn next(self) -> Option<Month> {
        Month::from_index(self.index() + 1)
    }

    /// Short English name, as used in the paper's tables ("Jan", "Feb", …).
    pub const fn short_name(self) -> &'static str {
        match self {
            Month::January => "Jan",
            Month::February => "Feb",
            Month::March => "Mar",
            Month::April => "Apr",
            Month::May => "May",
            Month::June => "Jun",
            Month::July => "Jul",
        }
    }
}

impl fmt::Display for Month {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

/// A point in time, in seconds since the start of the study window
/// (2014-01-01 00:00:00).
///
/// ```
/// use downlake_types::{Month, Timestamp};
/// let t = Timestamp::from_day(35); // 5 February
/// assert_eq!(t.month(), Month::February);
/// assert_eq!(t.day(), 35);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Timestamp(i64);

impl Timestamp {
    /// The start of the study window.
    pub const EPOCH: Timestamp = Timestamp(0);

    /// Creates a timestamp from raw seconds since the window start.
    pub const fn from_seconds(secs: i64) -> Self {
        Self(secs)
    }

    /// Creates a timestamp at midnight of the given day offset.
    pub const fn from_day(day: u32) -> Self {
        Self(day as i64 * SECONDS_PER_DAY)
    }

    /// Seconds since the window start.
    pub const fn seconds(self) -> i64 {
        self.0
    }

    /// Day offset from 2014-01-01 (negative times clamp to day 0).
    pub const fn day(self) -> u32 {
        if self.0 <= 0 {
            0
        } else {
            (self.0 / SECONDS_PER_DAY) as u32
        }
    }

    /// The study month this timestamp falls in. Timestamps past the window
    /// end clamp to [`Month::July`].
    pub fn month(self) -> Month {
        let day = self.day();
        for month in Month::ALL {
            if day < month.end_day() {
                return month;
            }
        }
        Month::July
    }

    /// Whether the timestamp falls inside the seven-month study window.
    pub fn in_study_window(self) -> bool {
        self.0 >= 0 && self.day() < MONTH_START_DAY[MONTHS_IN_STUDY]
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}+{}s", self.day(), self.0.rem_euclid(SECONDS_PER_DAY))
    }
}

impl Add<Duration> for Timestamp {
    type Output = Timestamp;

    fn add(self, rhs: Duration) -> Timestamp {
        Timestamp(self.0 + rhs.0)
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = Duration;

    fn sub(self, rhs: Timestamp) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

/// A signed span of time between two [`Timestamp`]s.
///
/// ```
/// use downlake_types::{Duration, Timestamp};
/// let delta = Timestamp::from_day(7) - Timestamp::from_day(2);
/// assert_eq!(delta, Duration::from_days(5));
/// assert_eq!(delta.whole_days(), 5);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Duration(i64);

impl Duration {
    /// The zero-length span.
    pub const ZERO: Duration = Duration(0);

    /// Creates a span from whole seconds.
    pub const fn from_seconds(secs: i64) -> Self {
        Self(secs)
    }

    /// Creates a span from whole days.
    pub const fn from_days(days: i64) -> Self {
        Self(days * SECONDS_PER_DAY)
    }

    /// Length in seconds.
    pub const fn seconds(self) -> i64 {
        self.0
    }

    /// Length in whole days, truncated toward zero (so "later the same
    /// day" is day 0, matching Fig. 5's day-granularity CDF).
    pub const fn whole_days(self) -> i64 {
        self.0 / SECONDS_PER_DAY
    }

    /// Whether the span is negative.
    pub const fn is_negative(self) -> bool {
        self.0 < 0
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn month_boundaries_match_2014_calendar() {
        assert_eq!(Month::January.days(), 31);
        assert_eq!(Month::February.days(), 28);
        assert_eq!(Month::March.days(), 31);
        assert_eq!(Month::April.days(), 30);
        assert_eq!(Month::May.days(), 31);
        assert_eq!(Month::June.days(), 30);
        assert_eq!(Month::July.days(), 31);
        assert_eq!(Month::July.end_day(), 212);
    }

    #[test]
    fn timestamp_month_assignment() {
        assert_eq!(Timestamp::from_day(0).month(), Month::January);
        assert_eq!(Timestamp::from_day(30).month(), Month::January);
        assert_eq!(Timestamp::from_day(31).month(), Month::February);
        assert_eq!(Timestamp::from_day(211).month(), Month::July);
        // Past the window clamps to July.
        assert_eq!(Timestamp::from_day(400).month(), Month::July);
    }

    #[test]
    fn window_membership() {
        assert!(Timestamp::from_day(0).in_study_window());
        assert!(Timestamp::from_day(211).in_study_window());
        assert!(!Timestamp::from_day(212).in_study_window());
        assert!(!Timestamp::from_seconds(-1).in_study_window());
    }

    #[test]
    fn duration_arithmetic() {
        let a = Timestamp::from_day(10);
        let b = a + Duration::from_days(3);
        assert_eq!(b.day(), 13);
        assert_eq!((b - a).whole_days(), 3);
        assert!((a - b).is_negative());
    }

    #[test]
    fn same_day_delta_is_day_zero() {
        let morning = Timestamp::from_seconds(9 * 3600);
        let evening = Timestamp::from_seconds(21 * 3600);
        assert_eq!((evening - morning).whole_days(), 0);
    }

    #[test]
    fn month_iteration_and_next() {
        let mut seen = 0;
        let mut m = Some(Month::January);
        while let Some(cur) = m {
            seen += 1;
            m = cur.next();
        }
        assert_eq!(seen, MONTHS_IN_STUDY);
        assert_eq!(Month::July.next(), None);
    }

    #[test]
    fn negative_timestamp_clamps_day() {
        assert_eq!(Timestamp::from_seconds(-5).day(), 0);
    }
}
