//! Download URL handling and effective second-level domain extraction.
//!
//! The paper aggregates download URLs by *effective second-level domain*
//! (e2LD, §II-B): `dl.files.softonic.com` → `softonic.com`, but
//! `cdn.example.co.uk` → `example.co.uk`. We carry a compact public-suffix
//! table covering the suffixes that occur in the paper's tables (and the
//! common multi-label country suffixes) rather than the full Mozilla PSL.

use crate::error::ParseUrlError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Multi-label public suffixes recognised by
/// [`effective_second_level_domain`]. Single-label suffixes (`com`, `net`,
/// `ru`, …) need no table: any final label is treated as a TLD.
const MULTI_LABEL_SUFFIXES: &[&str] = &[
    "co.uk", "org.uk", "ac.uk", "gov.uk", "com.br", "net.br", "org.br", "com.au", "net.au",
    "org.au", "co.jp", "ne.jp", "or.jp", "com.cn", "net.cn", "org.cn", "co.in", "co.kr", "com.mx",
    "com.ar", "com.tr", "co.za", "com.tw", "com.hk", "co.nz", "com.sg", "com.my", "co.th",
    "com.vn", "com.ua", "co.il", "com.pl", "com.ru",
];

/// Returns the effective second-level domain of a fully-qualified host name.
///
/// The host is lower-cased. Hosts that are bare IPv4 addresses are returned
/// unchanged (the paper's feed contains raw-IP download sources; they group
/// as themselves). A host that *is* a public suffix, or a single label,
/// is returned unchanged.
///
/// ```
/// use downlake_types::effective_second_level_domain;
/// assert_eq!(effective_second_level_domain("dl.files.Softonic.com"), "softonic.com");
/// assert_eq!(effective_second_level_domain("cdn.baixaki.com.br"), "baixaki.com.br");
/// assert_eq!(effective_second_level_domain("192.168.10.4"), "192.168.10.4");
/// assert_eq!(effective_second_level_domain("localhost"), "localhost");
/// ```
pub fn effective_second_level_domain(host: &str) -> String {
    let host = host.to_ascii_lowercase();
    if is_ipv4(&host) {
        return host;
    }
    let labels: Vec<&str> = host.split('.').filter(|l| !l.is_empty()).collect();
    if labels.len() <= 1 {
        return host;
    }
    // Check for a multi-label public suffix: e2LD = suffix + one more label.
    for suffix in MULTI_LABEL_SUFFIXES {
        let suffix_labels = suffix.split('.').count();
        if labels.len() > suffix_labels && host_ends_with_suffix(&labels, suffix) {
            let keep = suffix_labels + 1;
            return labels[labels.len() - keep..].join(".");
        }
        if labels.len() == suffix_labels && host_ends_with_suffix(&labels, suffix) {
            // The host *is* a public suffix; return as-is.
            return host;
        }
    }
    // Single-label TLD: keep last two labels.
    labels[labels.len() - 2..].join(".")
}

fn host_ends_with_suffix(labels: &[&str], suffix: &str) -> bool {
    let suffix_labels: Vec<&str> = suffix.split('.').collect();
    if labels.len() < suffix_labels.len() {
        return false;
    }
    labels[labels.len() - suffix_labels.len()..] == suffix_labels[..]
}

fn is_ipv4(host: &str) -> bool {
    let mut parts = 0;
    for part in host.split('.') {
        if part.is_empty() || part.len() > 3 || !part.bytes().all(|b| b.is_ascii_digit()) {
            return false;
        }
        parts += 1;
    }
    parts == 4
}

/// A parsed download URL: scheme, host, path, and cached e2LD.
///
/// ```
/// use downlake_types::Url;
/// let u: Url = "https://dl.mediafire.com/f/setup_v2.exe".parse()?;
/// assert_eq!(u.scheme(), "https");
/// assert_eq!(u.host(), "dl.mediafire.com");
/// assert_eq!(u.e2ld(), "mediafire.com");
/// assert_eq!(u.path(), "/f/setup_v2.exe");
/// # Ok::<(), downlake_types::ParseUrlError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Url {
    scheme: String,
    host: String,
    path: String,
    e2ld: String,
}

impl Url {
    /// Builds a URL from pre-split components. The host is lower-cased and
    /// the e2LD computed eagerly.
    ///
    /// # Errors
    ///
    /// Returns [`ParseUrlError`] if the host is empty or contains
    /// whitespace.
    pub fn from_parts(scheme: &str, host: &str, path: &str) -> Result<Self, ParseUrlError> {
        if host.is_empty() {
            return Err(ParseUrlError::new(host, "empty host"));
        }
        if host.chars().any(|c| c.is_whitespace() || c == '/') {
            return Err(ParseUrlError::new(host, "host contains separators"));
        }
        let host = host.to_ascii_lowercase();
        let e2ld = effective_second_level_domain(&host);
        let path = if path.is_empty() { "/" } else { path };
        Ok(Self {
            scheme: scheme.to_owned(),
            host,
            path: path.to_owned(),
            e2ld,
        })
    }

    /// URL scheme (`http` or `https` in the feed).
    pub fn scheme(&self) -> &str {
        &self.scheme
    }

    /// Fully-qualified host.
    pub fn host(&self) -> &str {
        &self.host
    }

    /// Path component, always starting with `/`.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Effective second-level domain of the host.
    pub fn e2ld(&self) -> &str {
        &self.e2ld
    }

    /// Final path segment — the downloaded file's name as it appears in
    /// the URL, or `""` for directory-style URLs.
    pub fn file_name(&self) -> &str {
        self.path.rsplit('/').next().unwrap_or("")
    }
}

impl FromStr for Url {
    type Err = ParseUrlError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (scheme, rest) = match s.split_once("://") {
            Some((scheme, rest)) => (scheme, rest),
            None => return Err(ParseUrlError::new(s, "missing scheme")),
        };
        if scheme.is_empty() {
            return Err(ParseUrlError::new(s, "empty scheme"));
        }
        let (host, path) = match rest.find('/') {
            Some(idx) => (&rest[..idx], &rest[idx..]),
            None => (rest, "/"),
        };
        Url::from_parts(scheme, host, path)
    }
}

impl fmt::Display for Url {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}://{}{}", self.scheme, self.host, self.path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e2ld_plain_com() {
        assert_eq!(
            effective_second_level_domain("softonic.com"),
            "softonic.com"
        );
        assert_eq!(
            effective_second_level_domain("dl.files.softonic.com"),
            "softonic.com"
        );
    }

    #[test]
    fn e2ld_multi_label_suffix() {
        assert_eq!(
            effective_second_level_domain("mirror.baixaki.com.br"),
            "baixaki.com.br"
        );
        assert_eq!(
            effective_second_level_domain("a.b.example.co.uk"),
            "example.co.uk"
        );
    }

    #[test]
    fn e2ld_host_equal_to_suffix_is_kept() {
        assert_eq!(effective_second_level_domain("co.uk"), "co.uk");
        assert_eq!(effective_second_level_domain("com"), "com");
    }

    #[test]
    fn e2ld_is_case_insensitive() {
        assert_eq!(
            effective_second_level_domain("CDN.MediaFire.COM"),
            "mediafire.com"
        );
    }

    #[test]
    fn e2ld_ip_addresses_group_as_themselves() {
        assert_eq!(effective_second_level_domain("10.0.0.1"), "10.0.0.1");
        // Not a valid IPv4 — treated as domain labels.
        assert_eq!(effective_second_level_domain("10.0.0.1000"), "0.1000");
    }

    #[test]
    fn url_parse_round_trip() {
        let u: Url = "http://dl24x7.net/media/player.exe".parse().unwrap();
        assert_eq!(u.to_string(), "http://dl24x7.net/media/player.exe");
        assert_eq!(u.file_name(), "player.exe");
        assert_eq!(u.e2ld(), "dl24x7.net");
    }

    #[test]
    fn url_without_path_gets_root() {
        let u: Url = "https://inbox.com".parse().unwrap();
        assert_eq!(u.path(), "/");
        assert_eq!(u.file_name(), "");
    }

    #[test]
    fn url_rejects_garbage() {
        assert!("no-scheme.com/x".parse::<Url>().is_err());
        assert!("://empty.com/".parse::<Url>().is_err());
        assert!(Url::from_parts("http", "", "/x").is_err());
        assert!(Url::from_parts("http", "bad host", "/x").is_err());
    }

    #[test]
    fn e2ld_of_subdomain_of_suffix_takes_one_extra_label() {
        assert_eq!(
            effective_second_level_domain("downloads.softonic.com.br"),
            "softonic.com.br"
        );
    }
}
