//! Core vocabulary for the `downlake` system — a reproduction of
//! *Exploring the Long Tail of (Malicious) Software Downloads* (DSN 2017).
//!
//! This crate defines the identifier newtypes, timestamps, URL/e2LD handling,
//! label taxonomies, malware behaviour types, process categories, and
//! file-metadata records shared by every other `downlake` crate. It has no
//! knowledge of how events are generated, labeled, or analysed.
//!
//! # Example
//!
//! ```
//! use downlake_types::{FileHash, MalwareType, Timestamp, Url};
//!
//! let f = FileHash::from_raw(0xdead_beef);
//! assert_eq!(f.to_string(), "00000000deadbeef");
//!
//! let u: Url = "http://dl.softonic.com/pkg/app.exe".parse().unwrap();
//! assert_eq!(u.e2ld(), "softonic.com");
//!
//! let t = Timestamp::from_day(40);
//! assert_eq!(t.month().index(), 1); // February 2014
//! assert!(MalwareType::Banker.is_specific());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod error;
mod ids;
mod label;
mod meta;
mod process;
mod rank;
mod time;
mod url;

pub use error::{ParseLabelError, ParseUrlError};
pub use ids::{E2ldId, FileHash, FileId, MachineId, MachineIdx, ProcessId, UrlId};
pub use label::{FileLabel, FileNature, MalwareType, UrlLabel};
pub use meta::{FileMeta, LatentProfile, PackerInfo, SignerInfo};
pub use process::{BrowserKind, ProcessCategory};
pub use rank::{AlexaRank, RankBucket};
pub use time::{Duration, Month, Timestamp, MONTHS_IN_STUDY, SECONDS_PER_DAY};
pub use url::{effective_second_level_domain, Url};
