//! Downloading-process categories.
//!
//! §V-A groups client processes into five broad classes — browsers, Windows
//! system processes, Java runtime processes, Acrobat Reader, and everything
//! else — assigned from the on-disk executable name of the process.

use crate::error::ParseLabelError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A popular web browser, as distinguished in Table XI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum BrowserKind {
    Firefox,
    Chrome,
    Opera,
    Safari,
    InternetExplorer,
}

impl BrowserKind {
    /// All browsers, in Table XI order.
    pub const ALL: [BrowserKind; 5] = [
        BrowserKind::Firefox,
        BrowserKind::Chrome,
        BrowserKind::Opera,
        BrowserKind::Safari,
        BrowserKind::InternetExplorer,
    ];

    /// Display name matching the paper's tables.
    pub const fn name(self) -> &'static str {
        match self {
            BrowserKind::Firefox => "Firefox",
            BrowserKind::Chrome => "Chrome",
            BrowserKind::Opera => "Opera",
            BrowserKind::Safari => "Safari",
            BrowserKind::InternetExplorer => "IE",
        }
    }

    /// Canonical on-disk executable name for this browser.
    pub const fn executable(self) -> &'static str {
        match self {
            BrowserKind::Firefox => "firefox.exe",
            BrowserKind::Chrome => "chrome.exe",
            BrowserKind::Opera => "opera.exe",
            BrowserKind::Safari => "safari.exe",
            BrowserKind::InternetExplorer => "iexplore.exe",
        }
    }
}

impl fmt::Display for BrowserKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Broad category of a downloading process (§V-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProcessCategory {
    /// A web browser (the dominant download vector).
    Browser(BrowserKind),
    /// A Windows system process (svchost, explorer, …) — malicious
    /// downloads here suggest exploitation of unpatched components.
    Windows,
    /// Java runtime environment processes — notoriously exploited.
    Java,
    /// Adobe Acrobat Reader — likewise.
    AcrobatReader,
    /// Any other process.
    Other,
}

impl ProcessCategory {
    /// The five aggregate categories of Table X (browsers collapsed).
    pub const AGGREGATES: [ProcessCategory; 5] = [
        ProcessCategory::Browser(BrowserKind::Chrome), // representative
        ProcessCategory::Windows,
        ProcessCategory::Java,
        ProcessCategory::AcrobatReader,
        ProcessCategory::Other,
    ];

    /// Whether the process is any browser.
    pub const fn is_browser(self) -> bool {
        matches!(self, ProcessCategory::Browser(_))
    }

    /// The concrete browser, if the process is one.
    pub const fn browser(self) -> Option<BrowserKind> {
        match self {
            ProcessCategory::Browser(kind) => Some(kind),
            _ => None,
        }
    }

    /// Aggregate display name, collapsing browsers (Table X row labels).
    pub const fn aggregate_name(self) -> &'static str {
        match self {
            ProcessCategory::Browser(_) => "Browsers",
            ProcessCategory::Windows => "Windows Processes",
            ProcessCategory::Java => "Java",
            ProcessCategory::AcrobatReader => "Acrobat Reader",
            ProcessCategory::Other => "All other processes",
        }
    }

    /// Classifies a process by the name of the executable file on disk from
    /// which it was launched, mirroring the paper's name-list approach.
    ///
    /// ```
    /// use downlake_types::{BrowserKind, ProcessCategory};
    /// assert_eq!(
    ///     ProcessCategory::from_executable_name("FIREFOX.EXE"),
    ///     ProcessCategory::Browser(BrowserKind::Firefox),
    /// );
    /// assert_eq!(
    ///     ProcessCategory::from_executable_name("svchost.exe"),
    ///     ProcessCategory::Windows,
    /// );
    /// ```
    pub fn from_executable_name(name: &str) -> ProcessCategory {
        let lowered = name.to_ascii_lowercase();
        match lowered.as_str() {
            "firefox.exe" | "firefox" => ProcessCategory::Browser(BrowserKind::Firefox),
            "chrome.exe" | "chrome" | "googlechrome.exe" => {
                ProcessCategory::Browser(BrowserKind::Chrome)
            }
            "opera.exe" | "opera" => ProcessCategory::Browser(BrowserKind::Opera),
            "safari.exe" | "safari" => ProcessCategory::Browser(BrowserKind::Safari),
            "iexplore.exe" | "iexplore" | "ielowutil.exe" => {
                ProcessCategory::Browser(BrowserKind::InternetExplorer)
            }
            "svchost.exe" | "explorer.exe" | "rundll32.exe" | "services.exe" | "winlogon.exe"
            | "wuauclt.exe" | "taskhost.exe" | "csrss.exe" | "smss.exe" | "lsass.exe"
            | "spoolsv.exe" | "dllhost.exe" | "conhost.exe" | "msiexec.exe" => {
                ProcessCategory::Windows
            }
            "java.exe" | "javaw.exe" | "javaws.exe" | "jp2launcher.exe" | "jusched.exe" => {
                ProcessCategory::Java
            }
            "acrord32.exe" | "acrobat.exe" | "reader_sl.exe" | "acrordr.exe" => {
                ProcessCategory::AcrobatReader
            }
            _ => ProcessCategory::Other,
        }
    }
}

impl fmt::Display for ProcessCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProcessCategory::Browser(kind) => write!(f, "Browser({kind})"),
            other => f.write_str(other.aggregate_name()),
        }
    }
}

impl FromStr for BrowserKind {
    type Err = ParseLabelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lowered = s.to_ascii_lowercase();
        for kind in BrowserKind::ALL {
            if kind.name().to_ascii_lowercase() == lowered {
                return Ok(kind);
            }
        }
        match lowered.as_str() {
            "internet explorer" | "internetexplorer" | "msie" => Ok(BrowserKind::InternetExplorer),
            _ => Err(ParseLabelError::new(s, "browser")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn executable_name_classification() {
        assert_eq!(
            ProcessCategory::from_executable_name("chrome.exe"),
            ProcessCategory::Browser(BrowserKind::Chrome)
        );
        assert_eq!(
            ProcessCategory::from_executable_name("AcroRd32.exe"),
            ProcessCategory::AcrobatReader
        );
        assert_eq!(
            ProcessCategory::from_executable_name("javaw.exe"),
            ProcessCategory::Java
        );
        assert_eq!(
            ProcessCategory::from_executable_name("svchost.exe"),
            ProcessCategory::Windows
        );
        assert_eq!(
            ProcessCategory::from_executable_name("dropper_v2.exe"),
            ProcessCategory::Other
        );
    }

    #[test]
    fn browser_parsing() {
        assert_eq!(
            "IE".parse::<BrowserKind>().unwrap(),
            BrowserKind::InternetExplorer
        );
        assert_eq!(
            "internet explorer".parse::<BrowserKind>().unwrap(),
            BrowserKind::InternetExplorer
        );
        assert_eq!(
            "chrome".parse::<BrowserKind>().unwrap(),
            BrowserKind::Chrome
        );
        assert!("netscape".parse::<BrowserKind>().is_err());
    }

    #[test]
    fn aggregate_names_collapse_browsers() {
        assert_eq!(
            ProcessCategory::Browser(BrowserKind::Opera).aggregate_name(),
            "Browsers"
        );
        assert_eq!(
            ProcessCategory::Windows.aggregate_name(),
            "Windows Processes"
        );
    }

    #[test]
    fn browser_accessors() {
        let p = ProcessCategory::Browser(BrowserKind::Safari);
        assert!(p.is_browser());
        assert_eq!(p.browser(), Some(BrowserKind::Safari));
        assert!(!ProcessCategory::Java.is_browser());
        assert_eq!(ProcessCategory::Java.browser(), None);
    }

    #[test]
    fn all_browser_executables_classify_back() {
        for kind in BrowserKind::ALL {
            assert_eq!(
                ProcessCategory::from_executable_name(kind.executable()),
                ProcessCategory::Browser(kind)
            );
        }
    }
}
