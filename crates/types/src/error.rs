//! Error types returned by parsing routines in this crate.

use std::error::Error;
use std::fmt;

/// Returned when a string cannot be parsed into a [`crate::Url`].
///
/// The message carries the offending input (truncated) and the reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseUrlError {
    input: String,
    reason: &'static str,
}

impl ParseUrlError {
    pub(crate) fn new(input: &str, reason: &'static str) -> Self {
        let mut input = input.to_owned();
        input.truncate(80);
        Self { input, reason }
    }

    /// The (possibly truncated) input that failed to parse.
    pub fn input(&self) -> &str {
        &self.input
    }

    /// Human-readable reason the input was rejected.
    pub fn reason(&self) -> &'static str {
        self.reason
    }
}

impl fmt::Display for ParseUrlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid url {:?}: {}", self.input, self.reason)
    }
}

impl Error for ParseUrlError {}

/// Returned when a string cannot be parsed into a label enum such as
/// [`crate::MalwareType`] or [`crate::FileLabel`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseLabelError {
    input: String,
    expected: &'static str,
}

impl ParseLabelError {
    pub(crate) fn new(input: &str, expected: &'static str) -> Self {
        let mut input = input.to_owned();
        input.truncate(80);
        Self { input, expected }
    }

    /// The input that failed to parse.
    pub fn input(&self) -> &str {
        &self.input
    }
}

impl fmt::Display for ParseLabelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown {} name: {:?}", self.expected, self.input)
    }
}

impl Error for ParseLabelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn url_error_truncates_long_input() {
        let long = "x".repeat(500);
        let err = ParseUrlError::new(&long, "too long");
        assert_eq!(err.input().len(), 80);
        assert_eq!(err.reason(), "too long");
    }

    #[test]
    fn errors_display_reason() {
        let err = ParseUrlError::new("not a url", "missing host");
        let text = err.to_string();
        assert!(text.contains("not a url"));
        assert!(text.contains("missing host"));

        let err = ParseLabelError::new("zzz", "malware type");
        assert!(err.to_string().contains("malware type"));
        assert_eq!(err.input(), "zzz");
    }
}
