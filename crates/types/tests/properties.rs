//! Property-based tests for the vocabulary crate: URL/e2LD handling and
//! time arithmetic.

use downlake_types::{
    effective_second_level_domain, AlexaRank, Duration, Timestamp, Url, SECONDS_PER_DAY,
};
use proptest::prelude::*;

/// Plausible host-name labels.
fn label() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9]{0,8}".prop_map(|s| s)
}

fn host() -> impl Strategy<Value = String> {
    proptest::collection::vec(label(), 1..5).prop_map(|labels| labels.join("."))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// e2LD extraction is idempotent and output is a suffix of the input.
    #[test]
    fn e2ld_idempotent_and_suffix(h in host()) {
        let once = effective_second_level_domain(&h);
        let twice = effective_second_level_domain(&once);
        prop_assert_eq!(&once, &twice, "idempotence");
        prop_assert!(h.ends_with(&once), "{} not a suffix of {}", once, h);
        // The e2LD has at most one more label than a public suffix —
        // never more labels than the input.
        prop_assert!(once.matches('.').count() <= h.matches('.').count());
    }

    /// e2LD is case-insensitive.
    #[test]
    fn e2ld_case_insensitive(h in host()) {
        let upper = h.to_uppercase();
        prop_assert_eq!(
            effective_second_level_domain(&h),
            effective_second_level_domain(&upper)
        );
    }

    /// Subdomains never change the e2LD.
    #[test]
    fn subdomains_preserve_e2ld(h in host(), sub in label()) {
        let base = effective_second_level_domain(&h);
        let expanded = effective_second_level_domain(&format!("{sub}.{h}"));
        // Expanding can only matter when the original host *was* a bare
        // public suffix or single label; otherwise the e2LD is stable.
        if h.contains('.') && base.matches('.').count() >= 1 && base != h {
            prop_assert_eq!(base, expanded);
        }
    }

    /// URLs round-trip through Display → parse.
    #[test]
    fn url_round_trip(h in host(), path in "[a-z0-9/._-]{0,30}") {
        let url = Url::from_parts("http", &h, &format!("/{path}")).expect("valid host");
        let rendered = url.to_string();
        let reparsed: Url = rendered.parse().expect("display output must re-parse");
        prop_assert_eq!(url, reparsed);
    }

    /// Timestamp/Duration arithmetic is consistent.
    #[test]
    fn time_arithmetic(day in 0u32..212, offset_days in 0i64..90, secs in 0i64..SECONDS_PER_DAY) {
        let t = Timestamp::from_seconds(Timestamp::from_day(day).seconds() + secs);
        let later = t + Duration::from_days(offset_days);
        prop_assert_eq!((later - t).whole_days(), offset_days);
        prop_assert!(later >= t);
        prop_assert_eq!(t.day(), day);
        // month() is consistent with day ranges.
        let m = t.month();
        prop_assert!(m.start_day() <= day && day < m.end_day());
    }

    /// Rank buckets partition the rank space without gaps.
    #[test]
    fn rank_buckets_cover(rank in 1u32..2_000_000) {
        let bucket = AlexaRank::ranked(rank).bucket();
        let name = bucket.name();
        prop_assert!(!name.is_empty());
        // Bucket boundaries are monotone in the rank.
        if rank > 1 {
            let prev = AlexaRank::ranked(rank - 1).bucket();
            prop_assert!(prev <= bucket);
        }
    }
}
