//! Regeneration benches: one benchmark per paper figure (Figs. 1–6).

use criterion::{criterion_group, criterion_main, Criterion};
use downlake::experiments;
use downlake_bench::tiny_study;
use std::hint::black_box;

fn bench_figures(c: &mut Criterion) {
    let study = tiny_study();
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("fig1", |b| b.iter(|| black_box(experiments::fig1(study))));
    group.bench_function("fig2", |b| b.iter(|| black_box(experiments::fig2(study))));
    group.bench_function("fig3", |b| b.iter(|| black_box(experiments::fig3(study))));
    group.bench_function("fig4", |b| b.iter(|| black_box(experiments::fig4(study))));
    group.bench_function("fig5", |b| b.iter(|| black_box(experiments::fig5(study))));
    group.bench_function("fig6", |b| b.iter(|| black_box(experiments::fig6(study))));
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
