//! Regeneration benches: one benchmark per paper table (Tables I–XIV).

use criterion::{criterion_group, criterion_main, Criterion};
use downlake::experiments;
use downlake_bench::tiny_study;
use std::hint::black_box;

fn bench_tables(c: &mut Criterion) {
    let study = tiny_study();
    let mut group = c.benchmark_group("tables");
    group.sample_size(10);
    group.bench_function("table1", |b| {
        b.iter(|| black_box(experiments::table1(study)))
    });
    group.bench_function("table2", |b| {
        b.iter(|| black_box(experiments::table2(study)))
    });
    group.bench_function("table3", |b| {
        b.iter(|| black_box(experiments::table3(study)))
    });
    group.bench_function("table4", |b| {
        b.iter(|| black_box(experiments::table4(study)))
    });
    group.bench_function("table5", |b| {
        b.iter(|| black_box(experiments::table5(study)))
    });
    group.bench_function("table6", |b| {
        b.iter(|| black_box(experiments::table6(study)))
    });
    group.bench_function("table7", |b| {
        b.iter(|| black_box(experiments::table7(study)))
    });
    group.bench_function("table8", |b| {
        b.iter(|| black_box(experiments::table8(study)))
    });
    group.bench_function("table9", |b| {
        b.iter(|| black_box(experiments::table9(study)))
    });
    group.bench_function("packers", |b| {
        b.iter(|| black_box(experiments::packers(study)))
    });
    group.bench_function("table10", |b| {
        b.iter(|| black_box(experiments::table10(study)))
    });
    group.bench_function("table11", |b| {
        b.iter(|| black_box(experiments::table11(study)))
    });
    group.bench_function("table12", |b| {
        b.iter(|| black_box(experiments::table12(study)))
    });
    group.bench_function("table13", |b| {
        b.iter(|| black_box(experiments::table13(study)))
    });
    group.bench_function("table14", |b| {
        b.iter(|| black_box(experiments::table14(study)))
    });
    group.bench_function("table15", |b| b.iter(|| black_box(experiments::table15())));
    group.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
